"""Table II — per-stage evaluation of gStoreD on the YAGO2 workload (YQ1-YQ4)."""

from repro.bench import format_table, per_stage_table, print_experiment


def regenerate_table2(num_sites: int):
    return per_stage_table("YAGO2", scale=1, strategy="hash", num_sites=num_sites)


def test_table2_yago_per_stage(benchmark, num_sites):
    rows = benchmark.pedantic(regenerate_table2, args=(num_sites,), iterations=1, rounds=1)
    print_experiment("Table II — per-stage evaluation on YAGO2 (scaled)", format_table(rows))

    queries = {row["query"]: row for row in rows}
    # YQ3 is the unselective query dominating the workload (its huge number
    # of local partial matches and crossing matches is the paper's headline
    # observation for this table).
    assert queries["YQ3"]["local_partial_matches"] == max(row["local_partial_matches"] for row in rows)
    assert queries["YQ3"]["results"] == max(row["results"] for row in rows)
    assert queries["YQ3"]["total_time_ms"] == max(row["total_time_ms"] for row in rows)
    # YQ2 has an empty answer; YQ1 and YQ4 are selective with small answers.
    assert queries["YQ2"]["results"] == 0
    assert 0 < queries["YQ1"]["results"] < queries["YQ3"]["results"]
    assert 0 < queries["YQ4"]["results"] < queries["YQ3"]["results"]
