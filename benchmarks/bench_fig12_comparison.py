"""Fig. 12 — online performance comparison against DREAM, S2X, S2RDF, CliqueSquare.

The paper compares gStoreD (over the hash, semantic-hash and METIS
partitionings) with four published distributed RDF systems on YAGO2,
LUBM 1B and BTC.  Expected shape, per the paper's discussion:

* the cloud-based systems (S2RDF, CliqueSquare, S2X) pay a large scan/shuffle
  overhead on every query, so selective queries and smaller datasets favour
  DREAM and gStoreD;
* gStoreD over its best partitioning is competitive with or better than
  DREAM on complex queries, where DREAM's large star subqueries explode.

Absolute times are not comparable to the paper (simulation vs MPI cluster);
the series below reproduce the relative ordering.
"""

from repro.bench import comparison_series, format_series, print_experiment


def regenerate(dataset: str, num_sites: int, queries=None, scale=1):
    return comparison_series(
        dataset,
        scale=scale,
        num_sites=num_sites,
        query_names=queries,
        gstored_strategies=("hash", "semantic_hash", "metis"),
    )


def _gstored_best(series, query):
    return min(
        series[label][query]
        for label in series
        if label.startswith("gStoreD-") and query in series[label]
    )


def test_fig12a_yago_comparison(benchmark, num_sites):
    series = benchmark.pedantic(regenerate, args=("YAGO2", num_sites), iterations=1, rounds=1)
    print_experiment(
        "Fig. 12(a) — online comparison on YAGO2 (response time, ms)",
        format_series("rows = queries, columns = systems", series),
    )
    assert {"DREAM", "S2RDF", "CliqueSquare", "S2X"} <= set(series)
    # On the selective YAGO2 queries the native engines (gStoreD best
    # partitioning, DREAM) beat the cloud-style scan-everything systems.
    for query in ("YQ1", "YQ4"):
        cloud_best = min(series[s][query] for s in ("S2RDF", "CliqueSquare", "S2X"))
        assert _gstored_best(series, query) <= cloud_best


def test_fig12b_lubm_comparison(benchmark, num_sites):
    series = benchmark.pedantic(
        regenerate, args=("LUBM", num_sites), kwargs={"scale": 2}, iterations=1, rounds=1
    )
    print_experiment(
        "Fig. 12(b) — online comparison on LUBM (response time, ms)",
        format_series("rows = queries, columns = systems", series),
    )
    # Selective LUBM queries: gStoreD's best partitioning beats the
    # cloud-based engines.
    for query in ("LQ4", "LQ5", "LQ6"):
        cloud_best = min(series[s][query] for s in ("S2RDF", "CliqueSquare", "S2X"))
        assert _gstored_best(series, query) <= cloud_best


def test_fig12c_btc_comparison(benchmark, num_sites):
    series = benchmark.pedantic(regenerate, args=("BTC", num_sites), iterations=1, rounds=1)
    print_experiment(
        "Fig. 12(c) — online comparison on BTC (response time, ms)",
        format_series("rows = queries, columns = systems", series),
    )
    # The BTC workload is dominated by selective star queries, where gStoreD
    # answers locally; its best partitioning must beat the cloud systems.
    for query in ("BQ1", "BQ2", "BQ3"):
        cloud_best = min(series[s][query] for s in ("S2RDF", "CliqueSquare", "S2X"))
        assert _gstored_best(series, query) <= cloud_best
