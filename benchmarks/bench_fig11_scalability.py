"""Fig. 11 — scalability of gStoreD with the LUBM dataset size.

The paper evaluates LUBM 100M / 500M / 1B and splits the queries into star
queries (Fig. 11a: LQ2, LQ4, LQ5) and other shapes (Fig. 11b: LQ1, LQ3, LQ6,
LQ7).  Expected shape: response times grow roughly proportionally with the
dataset size (the method is partition bounded), with the complex queries
growing faster than the stars.
"""

from repro.bench import format_series, print_experiment, scalability_series

STAR_QUERIES = ("LQ2", "LQ4", "LQ5")
OTHER_QUERIES = ("LQ1", "LQ3", "LQ6", "LQ7")

#: Scaled-down stand-ins for the paper's 100M / 500M / 1B triple datasets.
SCALES = {"100M": 1, "500M": 3, "1B": 6}


def regenerate_fig11a(num_sites: int):
    return scalability_series(STAR_QUERIES, scales=SCALES, num_sites=num_sites)


def regenerate_fig11b(num_sites: int):
    return scalability_series(OTHER_QUERIES, scales=SCALES, num_sites=num_sites)


def test_fig11a_star_query_scalability(benchmark, num_sites):
    series = benchmark.pedantic(regenerate_fig11a, args=(num_sites,), iterations=1, rounds=1)
    print_experiment(
        "Fig. 11(a) — star query response time vs dataset scale (ms)",
        format_series("rows = scales, columns = queries", series),
    )
    assert set(series) == set(STAR_QUERIES)
    for query, points in series.items():
        assert set(points) == set(SCALES)


def test_fig11b_other_query_scalability(benchmark, num_sites):
    series = benchmark.pedantic(regenerate_fig11b, args=(num_sites,), iterations=1, rounds=1)
    print_experiment(
        "Fig. 11(b) — non-star query response time vs dataset scale (ms)",
        format_series("rows = scales, columns = queries", series),
    )
    # Bigger data means more work: the largest scale must not be faster than
    # the smallest one in aggregate.
    totals = {label: sum(series[q][label] for q in OTHER_QUERIES) for label in SCALES}
    assert totals["1B"] >= totals["100M"]
