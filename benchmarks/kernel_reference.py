"""The seed's object-path matcher, preserved verbatim as an A/B baseline.

This is the pre-encoding implementation of candidate computation and the
backtracking search — candidate pools of ``Node`` objects, per-step
``n3()`` sorts, generator-scan edge checks — kept alive as the reference
both for the Hypothesis equivalence suite
(``tests/property/test_property_kernel.py``) and the kernel benchmark
(``benchmarks/bench_kernel.py``).  One copy, two importers: if the baseline
ever needs a fix, the property suite and the bench gate stay in lockstep.

Not part of the installed package on purpose: production code must never
fall back to the object path.
"""

from repro.rdf.terms import IRI, Literal, Variable
from repro.sparql.query_graph import traversal_order
from repro.store import SignatureIndex


def _sort_key(node):
    return (type(node).__name__, node.n3())


def reference_edge_supported(graph, vertex, query, query_vertex, edge_index):
    """Seed ``edge_supported``: generator scans over ``graph.triples``."""
    edge = query.edge_at(edge_index)
    predicate = None if isinstance(edge.predicate, Variable) else edge.predicate
    if edge.subject == query_vertex:
        other = edge.object
        other_bound = None if isinstance(other, Variable) else other
        return any(True for _ in graph.triples(vertex, predicate, other_bound))
    other = edge.subject
    other_bound = None if isinstance(other, Variable) else other
    return any(True for _ in graph.triples(other_bound, predicate, vertex))


def _reference_variable_candidates(graph, query, query_vertex, index):
    required_edges = list(query.edges_of(query_vertex))
    if not required_edges:
        return set(graph.vertices)
    seed = None
    for edge in required_edges:
        predicate = None if isinstance(edge.predicate, Variable) else edge.predicate
        if edge.subject == query_vertex:
            other = edge.object
            other_bound = None if isinstance(other, Variable) else other
            matching = {t.subject for t in graph.triples(None, predicate, other_bound)}
        else:
            other = edge.subject
            other_bound = None if isinstance(other, Variable) else other
            matching = {t.object for t in graph.triples(other_bound, predicate, None)}
        if seed is None or len(matching) < len(seed):
            seed = matching
        if seed is not None and not seed:
            return set()
    needed = index.query_signature(query, query_vertex)
    survivors = set()
    for vertex in seed:
        if not index.signature_of(vertex).covers(needed):
            continue
        if all(
            reference_edge_supported(graph, vertex, query, query_vertex, edge.index)
            for edge in required_edges
        ):
            survivors.add(vertex)
    return survivors


def reference_candidates(graph, query, index):
    """Seed ``compute_candidates`` (no relaxed edges, no restriction)."""
    vertices_universe = graph.vertices
    candidates = {}
    for query_vertex in query.vertices:
        if isinstance(query_vertex, (IRI, Literal)):
            found = {query_vertex} if query_vertex in vertices_universe else set()
        else:
            found = _reference_variable_candidates(graph, query, query_vertex, index)
        candidates[query_vertex] = found
    return candidates


class ReferenceObjectMatcher:
    """The seed's backtracking search over Node/Triple objects."""

    def __init__(self, graph):
        self._graph = graph
        self._signatures = SignatureIndex(graph)
        self.search_steps = 0

    def find_matches(self, query):
        self.search_steps = 0
        candidates = reference_candidates(self._graph, query, self._signatures)
        if any(not candidates[vertex] for vertex in query.vertices):
            return
        order = traversal_order(query)
        yield from self._extend({}, order, 0, query, candidates)

    def _extend(self, assignment, order, depth, query, candidates):
        if depth == len(order):
            yield dict(assignment)
            return
        vertex = order[depth]
        for candidate in self._ordered_candidates(vertex, assignment, query, candidates):
            self.search_steps += 1
            if not self._consistent(vertex, candidate, assignment, query):
                continue
            assignment[vertex] = candidate
            yield from self._extend(assignment, order, depth + 1, query, candidates)
            del assignment[vertex]

    def _ordered_candidates(self, vertex, assignment, query, candidates):
        pool = candidates[vertex]
        narrowed = None
        for edge in query.edges_of(vertex):
            other = edge.other_endpoint(vertex) if vertex in edge.endpoints else None
            if other is None or other not in assignment or other == vertex:
                continue
            other_value = assignment[other]
            predicate = None if isinstance(edge.predicate, Variable) else edge.predicate
            if edge.subject == vertex:
                reachable = {t.subject for t in self._graph.triples(None, predicate, other_value)}
            else:
                reachable = {t.object for t in self._graph.triples(other_value, predicate, None)}
            narrowed = reachable if narrowed is None else narrowed & reachable
            if not narrowed:
                return iter(())
        if narrowed is None:
            return iter(sorted(pool, key=_sort_key))
        return iter(sorted(narrowed & pool, key=_sort_key))

    def _consistent(self, vertex, candidate, assignment, query):
        for edge in query.edges_of(vertex):
            subject_value = candidate if edge.subject == vertex else assignment.get(edge.subject)
            object_value = candidate if edge.object == vertex else assignment.get(edge.object)
            if edge.subject == vertex and edge.object == vertex:
                subject_value = object_value = candidate
            if subject_value is None or object_value is None:
                continue
            if not self._edge_exists(subject_value, edge, object_value):
                return False
        return True

    def _edge_exists(self, subject_value, edge, object_value):
        if isinstance(edge.predicate, Variable):
            return any(True for _ in self._graph.triples(subject_value, None, object_value))
        if not isinstance(edge.predicate, IRI):
            return False
        return any(True for _ in self._graph.triples(subject_value, edge.predicate, object_value))
