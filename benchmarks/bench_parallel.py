"""Execution runtime A/B — serial vs threads vs processes on LUBM.

Not a paper figure: this benchmark validates the `repro.exec` subsystem the
way bench_planner validates the planner.  Every query runs cache-warm under
the serial backend, under thread pools and under process pools of several
sizes, recording real wall-clock time per backend and checking that results
and the per-stage shipment fingerprint are bit-identical across all of them.

Expected shape: determinism holds everywhere unconditionally.  Wall-clock
speedup is a property of the *host*:

* threads interleave rather than overlap pure-Python site tasks on a stock
  (GIL) CPython build, so the thread columns only show speedup on a
  multi-core free-threaded runtime;
* processes sidestep the GIL entirely — each worker owns a bootstrapped copy
  of the sites — so on a multi-core host (>= 4 cores and a workload heavy
  enough that per-task pickling cannot dominate) the process columns must
  beat serial by >= 1.5x on the multi-join LUBM workload.  On smaller hosts
  the A/B is recorded but not asserted.

`max_workers=1` must stay close to serial everywhere: backends run
single-item batches inline and only pay pool overhead on the multi-site
fan-out itself.
"""

import json
import os
import sys
from pathlib import Path

from repro.bench import (
    format_table,
    parallel_comparison_rows,
    prepare_workload,
    print_experiment,
)
from repro.core import EngineConfig, GStoreDEngine
from repro.obs import Trace

WORKER_COUNTS = (1, 2, 4)
PROCESS_WORKER_COUNTS = (2, 4)
LUBM_QUERIES = ("LQ1", "LQ3", "LQ6", "LQ7")

#: The process-speedup gate of the acceptance contract: a host with at least
#: this many cores must show >= PROCESS_SPEEDUP_FLOOR on the multi-join
#: workload (given a workload large enough to be measurable, see below).
PROCESS_SPEEDUP_CORES = 4
PROCESS_SPEEDUP_FLOOR = 1.5
#: Below this serial total (ms) a single noisy round could dominate the
#: ratio, so the speedup stays a recorded observation instead of a gate.
PROCESS_SPEEDUP_MIN_SERIAL_MS = 300.0
#: Runs of the main A/B rewrite this artifact: the wall-clock rows plus one
#: per-stage trace summary per query (see docs/observability.md).
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _usable_cores() -> int:
    """CPUs this process may actually run on (affinity/cgroup aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def _host_can_overlap_python() -> bool:
    """True when *threads* can actually run the per-site tasks in parallel."""
    gil_enabled = getattr(sys, "_is_gil_enabled", lambda: True)()
    return _usable_cores() >= 2 and not gil_enabled


def _host_can_overlap_processes() -> bool:
    """True when worker processes have real cores to spread over."""
    return _usable_cores() >= PROCESS_SPEEDUP_CORES


def traced_stage_summaries(query_names, num_sites):
    """One cache-warm traced serial run per query: the per-stage trace
    summaries embedded in the JSON artifact alongside the wall-clock rows,
    recording where each query's time went (stage spans with shipment
    attributes, one task span per site)."""
    workload = prepare_workload("LUBM", num_sites=num_sites)
    config = EngineConfig.full().with_options(executor="serial")
    summaries = {}
    for name in query_names:
        workload.cluster.reset_network()
        trace = Trace("query", query=name)
        engine = GStoreDEngine(workload.cluster, config)
        try:
            engine.execute(workload.queries[name], query_name=name)  # warm the plan cache
            workload.cluster.reset_network()
            engine.execute(workload.queries[name], query_name=name, trace=trace)
        finally:
            engine.close()
        trace.finish()
        summaries[name] = trace.summary().splitlines()
    return summaries


def _process_speedup(rows) -> float:
    """Serial-over-best-process wall-clock ratio across the row set."""
    serial_total = sum(row["serial_wall_ms"] for row in rows)
    best_process_total = min(
        sum(row[f"processes{n}_wall_ms"] for row in rows) for n in PROCESS_WORKER_COUNTS
    )
    return serial_total / best_process_total if best_process_total else 0.0


def test_parallel_ab_lubm(benchmark, num_sites):
    rows = benchmark.pedantic(
        parallel_comparison_rows,
        args=("LUBM", LUBM_QUERIES),
        kwargs={
            "num_sites": num_sites,
            "worker_counts": WORKER_COUNTS,
            "process_worker_counts": PROCESS_WORKER_COUNTS,
        },
        iterations=1,
        rounds=1,
    )
    serial_total = sum(row["serial_wall_ms"] for row in rows)
    print_experiment(
        "Execution runtime A/B — LUBM wall clock (ms), serial vs threads vs processes",
        format_table(rows)
        + f"\nbest process speedup over serial: {_process_speedup(rows):.2f}x "
        + f"(cores={_usable_cores()}; informational here — the hard gate is "
        + "test_process_speedup_multijoin)",
    )
    # Determinism is unconditional: every backend and worker count returns
    # the same solutions and the same shipment fingerprint.
    assert all(row["identical"] for row in rows)
    threads1_total = sum(row["threads1_wall_ms"] for row in rows)
    # No regression at max_workers=1 beyond pool overhead and timer noise.
    assert threads1_total <= serial_total * 2.0 + 50.0
    # Thread speedup needs a host whose threads actually overlap Python *and*
    # a workload large enough that pool overhead can't dominate one noisy
    # round; below that this stays a recorded A/B, not a hard gate.
    if _host_can_overlap_python() and serial_total > 50.0:
        best_parallel = min(
            sum(row[f"threads{n}_wall_ms"] for row in rows) for n in WORKER_COUNTS if n > 1
        )
        assert best_parallel < serial_total
    payload = {
        "benchmark": "bench_parallel",
        "dataset": "LUBM",
        "num_sites": num_sites,
        "worker_counts": list(WORKER_COUNTS),
        "process_worker_counts": list(PROCESS_WORKER_COUNTS),
        "rows": rows,
        "best_process_speedup": round(_process_speedup(rows), 2),
        # Per-stage trace summaries: one traced serial run per query.
        "stage_traces": traced_stage_summaries(LUBM_QUERIES, num_sites),
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {RESULTS_PATH}")


def test_process_speedup_multijoin(benchmark, num_sites):
    """The multi-core gate: processes beat serial >= 1.5x on heavy multi-joins.

    Runs the multi-join LUBM queries at scale 3, where per-site partial
    evaluation dominates the per-task pickling, and asserts the >= 1.5x
    wall-clock speedup on hosts with >= 4 cores.  On smaller hosts the
    numbers are recorded (the determinism assertion still applies) but the
    speedup stays an observation — a 1-core container cannot overlap
    anything.
    """
    rows = benchmark.pedantic(
        parallel_comparison_rows,
        args=("LUBM", LUBM_QUERIES),
        kwargs={
            "scale": 3,
            "num_sites": num_sites,
            "worker_counts": (),
            "process_worker_counts": PROCESS_WORKER_COUNTS,
        },
        iterations=1,
        rounds=1,
    )
    serial_total = sum(row["serial_wall_ms"] for row in rows)
    process_speedup = _process_speedup(rows)
    print_experiment(
        "Execution runtime — process-pool speedup gate (LUBM scale 3, multi-join)",
        format_table(rows)
        + f"\nbest process speedup over serial: {process_speedup:.2f}x "
        + f"(cores={_usable_cores()}, gate armed={_host_can_overlap_processes()})",
    )
    assert all(row["identical"] for row in rows)
    # >= 4 usable cores and a measurable workload must show >= 1.5x.
    if _host_can_overlap_processes() and serial_total >= PROCESS_SPEEDUP_MIN_SERIAL_MS:
        assert process_speedup >= PROCESS_SPEEDUP_FLOOR, (
            f"expected >= {PROCESS_SPEEDUP_FLOOR}x process speedup on a "
            f"{_usable_cores()}-core host, measured {process_speedup:.2f}x"
        )


def test_parallel_star_queries_identical(benchmark, num_sites):
    """The star shortcut path also fans out per site; same determinism bar."""
    rows = benchmark.pedantic(
        parallel_comparison_rows,
        args=("LUBM", ("LQ2", "LQ4", "LQ5")),
        kwargs={
            "num_sites": num_sites,
            "worker_counts": (2,),
            "process_worker_counts": (2,),
        },
        iterations=1,
        rounds=1,
    )
    print_experiment(
        "Execution runtime A/B — LUBM star queries (local evaluation fan-out)",
        format_table(rows),
    )
    assert all(row["identical"] for row in rows)
    assert all(row["results"] > 0 for row in rows)
