"""Execution runtime A/B — serial vs thread-pool per-site fan-out on LUBM.

Not a paper figure: this benchmark validates the `repro.exec` subsystem the
way bench_planner validates the planner.  Every query runs cache-warm under
the serial backend and under thread pools of several sizes, recording real
wall-clock time per backend and checking that results and the per-stage
shipment fingerprint are bit-identical across all of them.

Expected shape: determinism holds everywhere unconditionally.  Wall-clock
speedup is a property of the *host*: the per-site tasks are pure Python, so
on a stock (GIL) CPython build threads interleave rather than overlap and
the A/B records overhead, not speedup — the speedup assertion therefore only
arms on a multi-core free-threaded runtime, where the fan-out genuinely runs
sites concurrently.  `max_workers=1` must stay close to serial everywhere:
the backend runs single-item batches inline and only pays pool overhead on
the multi-site fan-out itself.
"""

import os
import sys

from repro.bench import format_table, parallel_comparison_rows, print_experiment

WORKER_COUNTS = (1, 2, 4)
LUBM_QUERIES = ("LQ1", "LQ3", "LQ6", "LQ7")


def _host_can_overlap_python() -> bool:
    """True when threads can actually run the per-site tasks in parallel."""
    cores = os.cpu_count() or 1
    gil_enabled = getattr(sys, "_is_gil_enabled", lambda: True)()
    return cores >= 2 and not gil_enabled


def test_parallel_ab_lubm(benchmark, num_sites):
    rows = benchmark.pedantic(
        parallel_comparison_rows,
        args=("LUBM", LUBM_QUERIES),
        kwargs={"num_sites": num_sites, "worker_counts": WORKER_COUNTS},
        iterations=1,
        rounds=1,
    )
    print_experiment(
        "Execution runtime A/B — LUBM wall clock (ms), serial vs thread pools",
        format_table(rows),
    )
    # Determinism is unconditional: every backend and worker count returns
    # the same solutions and the same shipment fingerprint.
    assert all(row["identical"] for row in rows)
    serial_total = sum(row["serial_wall_ms"] for row in rows)
    threads1_total = sum(row["threads1_wall_ms"] for row in rows)
    # No regression at max_workers=1 beyond pool overhead and timer noise.
    assert threads1_total <= serial_total * 2.0 + 50.0
    # Speedup needs a host whose threads actually overlap Python *and* a
    # workload large enough that pool overhead can't dominate one noisy
    # round; below that this stays a recorded A/B, not a hard gate.
    if _host_can_overlap_python() and serial_total > 50.0:
        best_parallel = min(
            sum(row[f"threads{n}_wall_ms"] for row in rows) for n in WORKER_COUNTS if n > 1
        )
        assert best_parallel < serial_total


def test_parallel_star_queries_identical(benchmark, num_sites):
    """The star shortcut path also fans out per site; same determinism bar."""
    rows = benchmark.pedantic(
        parallel_comparison_rows,
        args=("LUBM", ("LQ2", "LQ4", "LQ5")),
        kwargs={"num_sites": num_sites, "worker_counts": (2,)},
        iterations=1,
        rounds=1,
    )
    print_experiment(
        "Execution runtime A/B — LUBM star queries (local evaluation fan-out)",
        format_table(rows),
    )
    assert all(row["identical"] for row in rows)
    assert all(row["results"] > 0 for row in rows)
