"""Table III — per-stage evaluation of gStoreD on the BTC workload (BQ1-BQ7)."""

from repro.bench import format_table, per_stage_table, print_experiment


def regenerate_table3(num_sites: int):
    return per_stage_table("BTC", scale=1, strategy="hash", num_sites=num_sites)


def test_table3_btc_per_stage(benchmark, num_sites):
    rows = benchmark.pedantic(regenerate_table3, args=(num_sites,), iterations=1, rounds=1)
    print_experiment("Table III — per-stage evaluation on BTC (scaled)", format_table(rows))

    queries = {row["query"]: row for row in rows}
    # BQ1-BQ3 are star queries: answered locally, no optimization-stage cost.
    for star in ("BQ1", "BQ2", "BQ3"):
        assert queries[star]["local_partial_matches"] == 0
        assert queries[star]["lec_pruning_shipment_kb"] == 0
    # The selective non-star queries produce partial matches but few results,
    # and the empty queries end with zero matches — as in the paper's table.
    assert queries["BQ4"]["local_partial_matches"] > 0
    assert queries["BQ4"]["results"] > 0
    assert queries["BQ6"]["results"] == 0
    assert queries["BQ7"]["results"] == 0
