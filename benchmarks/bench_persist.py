"""Persistence A/B — warm cold-open from a store file vs full rebuild.

The point of :mod:`repro.persist` is the restart path: a coordinator (or a
``repro serve`` process) coming back up should *open* its cluster from the
store file instead of regenerating the dataset, re-partitioning it and
re-collecting per-fragment statistics.  This benchmark measures both paths
to a fully queryable cluster (statistics forced, one query answered) on the
LUBM workload at scale 2 and gates the ratio:

* cold-open (``ClusterStore.open`` + ``load_cluster``) must be at least
  ``COLD_OPEN_SPEEDUP_FLOOR``x faster than the full rebuild
  (generate + partition + build + statistics);
* both paths must return bit-identical answers and per-stage shipment
  fingerprints (the determinism contract of docs/persistence.md).

Runs rewrite ``BENCH_persist.json`` with the measured wall-clock numbers,
the store-file size and the parity verdicts.
"""

import dataclasses
import json
import time
from pathlib import Path

from repro.bench import (
    format_table,
    prepare_workload,
    print_experiment,
    run_query,
    stage_shipment_snapshot,
)
from repro.core import EngineConfig
from repro.persist import ClusterStore

DATASET = "LUBM"
SCALE = 2
NUM_SITES = 6
QUERY = "LQ2"

#: The acceptance gate: opening a saved cluster must beat rebuilding it
#: from scratch by at least this factor.
COLD_OPEN_SPEEDUP_FLOOR = 3.0

#: Wall-clock rounds per path; the best round counts (noise suppression).
ROUNDS = 2

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_persist.json"
SERIAL = EngineConfig.full().with_options(executor="serial")


def _force_statistics(cluster):
    """Touch every site's planner statistics so both paths end equally warm."""
    for site in cluster:
        site.store.statistics


def _fingerprint(workload):
    result = run_query(workload, QUERY, SERIAL)
    rows = sorted(map(sorted, (row.items() for row in result.results.to_table())))
    return rows, dict(result.statistics.work), stage_shipment_snapshot(result)


def persist_ab():
    """Measure rebuild vs cold-open to a queryable cluster; return one row.

    Each path runs ``ROUNDS`` times and the best wall clock counts, so the
    ratio compares the work the paths do rather than one-time process
    warmup (first SQLite open, lazy imports) or timer noise.
    """
    # Full rebuild: the path every session pays without a store file.
    rebuild_times = []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        rebuilt = prepare_workload(DATASET, scale=SCALE, strategy="hash", num_sites=NUM_SITES)
        _force_statistics(rebuilt.cluster)
        rebuild_times.append(time.perf_counter() - started)
    rebuild_s = min(rebuild_times)

    path = RESULTS_PATH.parent / "BENCH_persist.store"
    try:
        ClusterStore.create(
            path, rebuilt.partitioned, dataset=DATASET, scale=SCALE, overwrite=True
        ).close()
        file_bytes = path.stat().st_size

        # Cold-open: what a restarting coordinator pays instead.
        cold_times = []
        for _ in range(ROUNDS):
            started = time.perf_counter()
            store = ClusterStore.open(path)
            reopened = store.load_cluster()
            _force_statistics(reopened)
            cold_times.append(time.perf_counter() - started)
            if len(cold_times) < ROUNDS:
                store.close()
        cold_open_s = min(cold_times)

        warm = dataclasses.replace(rebuilt, cluster=reopened)
        identical = _fingerprint(warm) == _fingerprint(rebuilt)
        store.close()
    finally:
        path.unlink(missing_ok=True)

    return {
        "dataset": f"{DATASET}@{SCALE}",
        "num_sites": NUM_SITES,
        "base_triples": len(rebuilt.graph),
        "store_kb": round(file_bytes / 1024.0, 1),
        "rebuild_wall_ms": round(rebuild_s * 1000.0, 2),
        "cold_open_wall_ms": round(cold_open_s * 1000.0, 2),
        "speedup": round(rebuild_s / cold_open_s, 2) if cold_open_s else 0.0,
        "identical": identical,
    }


def test_persist_cold_open_speedup(benchmark):
    row = benchmark.pedantic(persist_ab, iterations=1, rounds=1)
    print_experiment(
        f"Persistence A/B — store cold-open vs full rebuild ({DATASET} scale {SCALE})",
        format_table([row])
        + f"\ncold-open speedup over rebuild: {row['speedup']:.2f}x "
        + f"(gate: >= {COLD_OPEN_SPEEDUP_FLOOR}x)",
    )
    assert row["identical"], "reopened cluster diverged from the rebuilt cluster"
    assert row["speedup"] >= COLD_OPEN_SPEEDUP_FLOOR, (
        f"expected cold-open >= {COLD_OPEN_SPEEDUP_FLOOR}x faster than a full "
        f"rebuild, measured {row['speedup']:.2f}x"
    )
    payload = {"benchmark": "bench_persist", "gate": COLD_OPEN_SPEEDUP_FLOOR, "row": row}
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {RESULTS_PATH}")
