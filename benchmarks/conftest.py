"""Shared configuration for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation section (Section VIII).  The modules use ``pytest-benchmark`` to
time the regeneration and print the resulting rows/series, so that

    pytest benchmarks/ --benchmark-only

reproduces the whole evaluation in one run.  The printed tables are the
artefacts to compare against EXPERIMENTS.md (and against the paper).
"""

from __future__ import annotations

import pytest

#: Simulated cluster size used across all benchmarks (stands in for the
#: paper's 12-machine cluster while staying fast enough for CI).
NUM_SITES = 6


@pytest.fixture(scope="session")
def num_sites() -> int:
    return NUM_SITES
