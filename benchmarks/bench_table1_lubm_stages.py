"""Table I — per-stage evaluation of gStoreD on the LUBM workload.

Paper columns: time and data shipment of the candidate-assembly stage, time
of local-partial-match computation, time and shipment of the LEC
feature-based optimization, time of the LEC feature-based assembly, total
time, number of local partial matches and number of crossing matches — one
row per query LQ1-LQ7.
"""

from repro.bench import format_table, per_stage_table, print_experiment


def regenerate_table1(num_sites: int):
    return per_stage_table("LUBM", scale=1, strategy="hash", num_sites=num_sites)


def test_table1_lubm_per_stage(benchmark, num_sites):
    rows = benchmark.pedantic(regenerate_table1, args=(num_sites,), iterations=1, rounds=1)
    print_experiment("Table I — per-stage evaluation on LUBM (scaled)", format_table(rows))

    queries = {row["query"]: row for row in rows}
    # Star queries (LQ2, LQ4, LQ5) are answered locally: no partial matches,
    # no optimization-stage cost — the zero columns of the paper's table.
    for star in ("LQ2", "LQ4", "LQ5"):
        assert queries[star]["local_partial_matches"] == 0
        assert queries[star]["candidates_shipment_kb"] == 0
        assert queries[star]["lec_pruning_shipment_kb"] == 0
    # Non-star queries generate local partial matches and crossing work.
    assert queries["LQ1"]["local_partial_matches"] > 0
    assert queries["LQ7"]["local_partial_matches"] > 0
    # LQ7 is the heaviest query of the workload, as in the paper.
    assert queries["LQ7"]["total_time_ms"] >= queries["LQ4"]["total_time_ms"]
    # LQ3 has an empty answer.
    assert queries["LQ3"]["results"] == 0
