"""Ablation: cost-guided partitioning refinement (extension of Section VII).

The paper's Section VII only *selects* among existing partitionings; this
repository additionally implements a local-search refinement that moves
boundary vertices when doing so lowers CostPartitioning.  The ablation
measures, on the LUBM workload's non-star queries, what the refinement does
to (a) the cost-model value and (b) the actual response time and shipment of
the full gStoreD engine.
"""

from repro.api import Session
from repro.bench import format_table, print_experiment
from repro.datasets import lubm
from repro.partition import HashPartitioner, partitioning_cost, refine_partitioning

QUERIES = ("LQ1", "LQ3", "LQ6", "LQ7")


def run_workload(partitioned):
    total_time = 0.0
    total_shipment = 0.0
    with Session.from_partitioned(partitioned, dataset="LUBM", queries=lubm.queries()) as session:
        for name in QUERIES:
            result = session.query(name)
            total_time += result.statistics.total_time_ms
            total_shipment += result.statistics.total_shipment_kb
    return total_time, total_shipment


def compare_refinement(num_sites: int):
    graph = lubm.generate(scale=1)
    original = HashPartitioner(num_sites).partition(graph)
    refined, report = refine_partitioning(original, max_passes=2)
    rows = []
    for label, partitioned in (("hash", original), ("hash+refined", refined)):
        time_ms, shipment_kb = run_workload(partitioned)
        rows.append(
            {
                "partitioning": label,
                "cost_model": round(partitioning_cost(partitioned).cost, 2),
                "crossing_edges": len(partitioned.crossing_edges),
                "workload_time_ms": round(time_ms, 1),
                "workload_shipment_kb": round(shipment_kb, 1),
            }
        )
    rows.append(
        {
            "partitioning": "(refinement report)",
            "cost_model": round(report.final_cost, 2),
            "crossing_edges": report.moves,
            "workload_time_ms": report.passes,
            "workload_shipment_kb": round(report.improvement * 100, 1),
        }
    )
    return rows


def test_ablation_cost_guided_refinement(benchmark, num_sites):
    rows = benchmark.pedantic(compare_refinement, args=(num_sites,), iterations=1, rounds=1)
    print_experiment(
        "Ablation — cost-guided partitioning refinement (extension of Section VII)",
        format_table(rows),
    )
    by_label = {row["partitioning"]: row for row in rows}
    # Refinement must never make the cost-model value worse.
    assert by_label["hash+refined"]["cost_model"] <= by_label["hash"]["cost_model"]
