"""Fig. 9 — ablation of the three optimizations (gStoreD-Basic / LA / LO / Full).

The paper plots the response time of the four engine configurations for the
non-star queries of LUBM (LQ1, LQ3, LQ6, LQ7) and all YAGO2 queries.  The
expected shape: every added optimization is at least as fast overall, the
LEC-feature assembly never adds communication, and the pruning / candidate
optimizations pay off most on selective complex queries.
"""

from repro.bench import ablation_series, format_series, print_experiment

LUBM_QUERIES = ("LQ1", "LQ3", "LQ6", "LQ7")
YAGO_QUERIES = ("YQ1", "YQ2", "YQ3", "YQ4")


def regenerate_fig9a(num_sites: int):
    return ablation_series("LUBM", LUBM_QUERIES, scale=1, num_sites=num_sites)


def regenerate_fig9b(num_sites: int):
    return ablation_series("YAGO2", YAGO_QUERIES, scale=1, num_sites=num_sites)


def test_fig9a_lubm_ablation(benchmark, num_sites):
    series = benchmark.pedantic(regenerate_fig9a, args=(num_sites,), iterations=1, rounds=1)
    print_experiment(
        "Fig. 9(a) — optimization ablation on LUBM (response time, ms)",
        format_series("rows = queries, columns = engine configurations", series),
    )
    assert set(series) == {"gStoreD-Basic", "gStoreD-LA", "gStoreD-LO", "gStoreD"}
    # Aggregate over the workload the fully optimized engine must not be
    # slower than the unoptimized baseline (per-query noise is tolerated).
    basic_total = sum(series["gStoreD-Basic"].values())
    full_total = sum(series["gStoreD"].values())
    assert full_total <= basic_total * 1.5


def test_fig9b_yago_ablation(benchmark, num_sites):
    series = benchmark.pedantic(regenerate_fig9b, args=(num_sites,), iterations=1, rounds=1)
    print_experiment(
        "Fig. 9(b) — optimization ablation on YAGO2 (response time, ms)",
        format_series("rows = queries, columns = engine configurations", series),
    )
    la_total = sum(series["gStoreD-LA"].values())
    basic_total = sum(series["gStoreD-Basic"].values())
    # The LA optimization only regroups the join and never adds shipment, so
    # it should not be slower than Basic in aggregate.
    assert la_total <= basic_total * 1.25
