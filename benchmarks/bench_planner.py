"""Planner A/B — cost-based vertex ordering vs the seed's static order.

Not a paper figure: this benchmark validates the `repro.planner` subsystem
the way Fig. 9 validates the paper's optimizations.  Two views:

* a deterministic work comparison (search steps of the centralized matcher,
  machine-independent — the assertions live here), and
* the distributed response-time series with the planner off vs on (printed
  for the report; the second planner-on run is plan-cache warm).

Expected shape: the planner never loses on star/selective queries (the
static order already starts from constants) and wins clearly on the
multi-join complex queries (LQ1/LQ6/LQ7), where ordering by predicate
selectivity fails doomed branches early.
"""

from repro.bench import (
    format_series,
    format_table,
    planner_comparison_series,
    planner_search_report,
    print_experiment,
)

LUBM_COMPLEX_QUERIES = ("LQ1", "LQ3", "LQ6", "LQ7")


def test_planner_search_steps_lubm(benchmark):
    rows = benchmark.pedantic(planner_search_report, args=("LUBM",), iterations=1, rounds=1)
    print_experiment(
        "Planner A/B — LUBM search steps (static vs cost-based order)",
        format_table(rows),
    )
    by_query = {row["query"]: row for row in rows}
    # The planner must never blow up the search: no worse than a small
    # constant factor on any query, and strictly less work overall.
    for row in rows:
        assert row["planned_steps"] <= max(row["static_steps"] * 1.2, row["static_steps"] + 4)
    total_static = sum(row["static_steps"] for row in rows)
    total_planned = sum(row["planned_steps"] for row in rows)
    assert total_planned < total_static
    # ...and it must be measurably faster on at least one multi-join query.
    assert any(
        by_query[name]["planned_steps"] < by_query[name]["static_steps"] * 0.8
        for name in LUBM_COMPLEX_QUERIES
    )
    # Running every query twice means at least half the lookups hit the cache.
    assert rows[-1]["plan_cache_hit_rate"] >= 0.5


def test_planner_search_steps_yago(benchmark):
    rows = benchmark.pedantic(planner_search_report, args=("YAGO2",), iterations=1, rounds=1)
    print_experiment(
        "Planner A/B — YAGO2 search steps (static vs cost-based order)",
        format_table(rows),
    )
    total_static = sum(row["static_steps"] for row in rows)
    total_planned = sum(row["planned_steps"] for row in rows)
    assert total_planned <= total_static


def test_planner_response_time_lubm(benchmark, num_sites):
    series = benchmark.pedantic(
        planner_comparison_series,
        args=("LUBM", LUBM_COMPLEX_QUERIES),
        kwargs={"scale": 1, "num_sites": num_sites},
        iterations=1,
        rounds=1,
    )
    print_experiment(
        "Planner A/B — LUBM distributed response time (ms, planner-on is cache-warm)",
        format_series("rows = queries, columns = planner off/on", series),
    )
    assert set(series) == {"planner-off", "planner-on"}
    # Wall-clock is noisy in CI; tolerate the same slack as the Fig. 9 checks.
    off_total = sum(series["planner-off"].values())
    on_total = sum(series["planner-on"].values())
    assert on_total <= off_total * 1.5
