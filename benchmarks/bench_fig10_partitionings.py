"""Fig. 10 — effect of the partitioning strategy on gStoreD itself.

Fig. 10(a) plots the evaluation time of the non-star LUBM queries under the
three partitionings, Fig. 10(b) the size of the shipped LEC features for the
YAGO2 queries.  Expected shape: the partitioning with the lowest Section VII
cost (semantic hash for LUBM, hash for YAGO2) gives the best or
near-best numbers, and METIS — whose cost is highest on YAGO2 — never wins
there.
"""

from repro.bench import (
    format_series,
    lec_feature_shipment_series,
    partitioning_performance_series,
    print_experiment,
)

LUBM_QUERIES = ("LQ1", "LQ3", "LQ6", "LQ7")
YAGO_QUERIES = ("YQ1", "YQ2", "YQ3", "YQ4")


def regenerate_fig10a(num_sites: int):
    return partitioning_performance_series("LUBM", LUBM_QUERIES, scale=1, num_sites=num_sites)


def regenerate_fig10b(num_sites: int):
    return lec_feature_shipment_series("YAGO2", YAGO_QUERIES, scale=1, num_sites=num_sites)


def test_fig10a_lubm_partitioning_times(benchmark, num_sites):
    series = benchmark.pedantic(regenerate_fig10a, args=(num_sites,), iterations=1, rounds=1)
    print_experiment(
        "Fig. 10(a) — gStoreD response time per partitioning on LUBM (ms)",
        format_series("rows = queries, columns = partitioning strategies", series),
    )
    assert set(series) == {"hash", "semantic_hash", "metis"}
    for strategy in series:
        assert all(value >= 0 for value in series[strategy].values())


def test_fig10b_yago_lec_feature_shipment(benchmark, num_sites):
    series = benchmark.pedantic(regenerate_fig10b, args=(num_sites,), iterations=1, rounds=1)
    print_experiment(
        "Fig. 10(b) — shipped LEC-feature volume per partitioning on YAGO2 (KB)",
        format_series("rows = queries, columns = partitioning strategies", series),
    )
    assert set(series) == {"hash", "semantic_hash", "metis"}
    # The unselective query (YQ3) dominates the shipped LEC-feature volume
    # under every partitioning — the shape Fig. 10(b) shows.  (The paper's
    # additional observation that METIS ships the most features relies on the
    # imbalance real METIS exhibits at the 284M-triple scale, which the
    # scaled-down dataset cannot reproduce; see EXPERIMENTS.md.)
    for strategy, points in series.items():
        assert points["YQ3"] == max(points.values()), strategy
