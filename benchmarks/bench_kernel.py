"""Kernel A/B — dictionary-encoded integer matching vs the seed's object path.

Not a paper figure: this benchmark validates the `repro.store.encoding`
kernel swap the way `bench_planner.py` validates the planner.  The baseline
is the seed's object-path matcher (candidate pools of ``Node`` objects,
per-step ``n3()`` sorts, generator-scan edge checks), preserved verbatim in
`kernel_reference.py` and shared with the Hypothesis equivalence suite; both
implementations run over the LUBM workload, split into the multi-join
shapes (cycle/tree/complex) and the star shapes the paper distinguishes.

Two guarantees are asserted on every run:

* **bit-identical behaviour** — the encoded kernel yields the identical
  *sequence* of matches and the identical ``search_steps`` counter for every
  query (the dictionary assigns ids in the old candidate sort order, so the
  search visits the exact same branches);
* **the speedup gate** — the encoded kernel must beat the object path by
  ``>= 2x`` wall-clock on the multi-join workload (and on the stars).  With
  ``REPRO_KERNEL_SMOKE=1`` the benchmark runs at tiny scale with a ``>= 1x``
  gate — that is the CI bench-smoke job, which only guards against the
  encoded kernel regressing below the object path.

Full (non-smoke) runs rewrite ``BENCH_kernel.json`` at the repository root —
the first point of the perf trajectory; see `docs/benchmarks.md`.
"""

import json
import os
import time
from contextlib import nullcontext
from pathlib import Path

from kernel_reference import ReferenceObjectMatcher
from repro.bench import format_table, print_experiment
from repro.datasets import lubm
from repro.obs import CATEGORY_STAGE, Trace
from repro.sparql.query_graph import QueryGraph
from repro.store import LocalMatcher

#: Smoke mode: tiny scale, non-regression gate only (the CI bench-smoke job).
SMOKE = os.environ.get("REPRO_KERNEL_SMOKE") == "1"
SCALE = 1 if SMOKE else 2
SPEEDUP_GATE = 1.0 if SMOKE else 2.0
REPEATS = 3 if SMOKE else 7
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


# ----------------------------------------------------------------------
# A/B harness (the object-path baseline lives in kernel_reference.py)
# ----------------------------------------------------------------------
def _best_ms(run, repeats=REPEATS):
    """Best-of-N wall-clock of ``run()`` in milliseconds (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best * 1000.0


def kernel_comparison_rows(scale=SCALE, trace=None):
    """One row per LUBM query: object path vs encoded kernel, warm caches.

    With a ``trace`` attached, each query's A/B measurement becomes one
    stage span carrying the measured times as attributes, so the JSON
    artifact records a per-stage trace summary alongside the raw rows.
    """
    graph = lubm.generate(scale=scale)
    queries = lubm.queries()
    encoded = LocalMatcher(graph)
    reference = ReferenceObjectMatcher(graph)
    rows = []
    for name, query in queries.items():
        query_graph = QueryGraph.from_query(query)
        encoded_matches = list(encoded.find_matches(query_graph))
        encoded_steps = encoded.search_steps
        reference_matches = list(reference.find_matches(query_graph))
        reference_steps = reference.search_steps
        # Bit-identical behaviour: same match sequence, same work counter.
        assert encoded_matches == reference_matches, f"{name}: kernels disagree on matches"
        assert encoded_steps == reference_steps, f"{name}: kernels disagree on search_steps"
        span_cm = (
            trace.span(f"stage:match:{name}", CATEGORY_STAGE)
            if trace is not None
            else nullcontext()
        )
        with span_cm as span:
            object_ms = _best_ms(lambda: list(reference.find_matches(query_graph)))
            encoded_ms = _best_ms(lambda: list(encoded.find_matches(query_graph)))
            if span is not None:
                span.set(
                    shape=query_graph.classify_shape(),
                    search_steps=encoded_steps,
                    object_ms=round(object_ms, 3),
                    encoded_ms=round(encoded_ms, 3),
                )
        rows.append(
            {
                "query": name,
                "shape": query_graph.classify_shape(),
                "results": len(encoded_matches),
                "search_steps": encoded_steps,
                "object_ms": round(object_ms, 3),
                "encoded_ms": round(encoded_ms, 3),
                "speedup": round(object_ms / encoded_ms, 2) if encoded_ms else float("inf"),
            }
        )
    return rows


def _workload_speedup(rows):
    object_total = sum(row["object_ms"] for row in rows)
    encoded_total = sum(row["encoded_ms"] for row in rows)
    return object_total, encoded_total, (object_total / encoded_total if encoded_total else float("inf"))


def test_kernel_ab_lubm(benchmark):
    trace = Trace("bench_kernel", scale=SCALE)
    rows = benchmark.pedantic(
        kernel_comparison_rows, kwargs={"trace": trace}, iterations=1, rounds=1
    )
    trace.finish()
    mode = "smoke" if SMOKE else "full"
    print_experiment(
        f"Kernel A/B — LUBM scale {SCALE} ({mode}): object path vs encoded kernel",
        format_table(rows),
    )
    multi_join = [row for row in rows if row["shape"] != "star"]
    stars = [row for row in rows if row["shape"] == "star"]
    assert multi_join and stars, "the LUBM workload must cover both shape families"

    object_mj, encoded_mj, speedup_mj = _workload_speedup(multi_join)
    object_star, encoded_star, speedup_star = _workload_speedup(stars)
    print(
        f"multi-join: {object_mj:.2f}ms -> {encoded_mj:.2f}ms ({speedup_mj:.1f}x)   "
        f"star: {object_star:.2f}ms -> {encoded_star:.2f}ms ({speedup_star:.1f}x)"
    )
    # The gate: >= 2x on the multi-join workload in full runs; the CI smoke
    # run only requires the encoded kernel not to be slower.
    assert speedup_mj >= SPEEDUP_GATE, (
        f"encoded kernel speedup {speedup_mj:.2f}x below the {SPEEDUP_GATE}x gate on multi-joins"
    )
    assert speedup_star >= SPEEDUP_GATE, (
        f"encoded kernel speedup {speedup_star:.2f}x below the {SPEEDUP_GATE}x gate on stars"
    )

    if not SMOKE:
        payload = {
            "benchmark": "bench_kernel",
            "dataset": "LUBM",
            "scale": SCALE,
            "repeats": REPEATS,
            "rows": rows,
            "multi_join": {
                "object_ms": round(object_mj, 3),
                "encoded_ms": round(encoded_mj, 3),
                "speedup": round(speedup_mj, 2),
            },
            "star": {
                "object_ms": round(object_star, 3),
                "encoded_ms": round(encoded_star, 3),
                "speedup": round(speedup_star, 2),
            },
            # Per-stage trace summary of this run: one span per query's A/B
            # measurement, with the measured times as span attributes.
            "trace_summary": trace.summary().splitlines(),
        }
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {RESULTS_PATH}")
