"""Kernel A/B — object path vs encoded kernels, plus the kernel matrix.

Not a paper figure: this benchmark validates the `repro.store` matching
kernels the way `bench_planner.py` validates the planner.  Three sections,
each a pytest test so the CI bench-smoke job runs all of them:

1. **Object-path A/B** (`test_kernel_ab_lubm`) — the seed's object-path
   matcher (candidate pools of ``Node`` objects, per-step ``n3()`` sorts,
   generator-scan edge checks), preserved verbatim in `kernel_reference.py`,
   against the encoded default kernel.  Gate: encoded ``>= 2x`` on the
   multi-join workload (``>= 1x`` in smoke mode).
2. **Kernel matrix** (`test_kernel_matrix_lubm`) — ``sets`` vs ``python``
   vs ``vectorized`` over the LUBM workload at a larger scale, where the
   array kernels' batched frontier pays off.  Gate: ``vectorized >= 2x``
   over ``sets`` on the multi-join workload and on the stars (``>= 1x`` in
   smoke mode; skipped entirely when numpy is unavailable).
3. **Shard scaling** (`test_kernel_shard_scaling`) — intra-site sharding of
   the depth-0 frontier: per-shard critical-path time for K in {2, 4, 8},
   asserting the concatenated shard bindings and summed ``search_steps``
   reproduce the unsharded run exactly.

Every section asserts **bit-identical behaviour** before timing anything:
identical match *sequences* and identical ``search_steps`` for every query
(the dictionary assigns ids in the old candidate sort order, so every
kernel visits the exact same branches).

With ``REPRO_KERNEL_SMOKE=1`` everything runs at tiny scale with
non-regression gates — that is the CI bench-smoke job.  Full (non-smoke)
runs rewrite ``BENCH_kernel.json`` at the repository root once all three
sections have run; see `docs/benchmarks.md` and `docs/performance.md`.
"""

import json
import os
import time
from contextlib import nullcontext
from pathlib import Path

from kernel_reference import ReferenceObjectMatcher
from repro.bench import format_table, print_experiment
from repro.datasets import lubm
from repro.obs import CATEGORY_STAGE, Trace
from repro.sparql.query_graph import QueryGraph
from repro.store import KERNEL_PYTHON, KERNEL_SETS, KERNEL_VECTORIZED, LocalMatcher
from repro.store.kernel import numpy_or_none

#: Smoke mode: tiny scale, non-regression gates only (the CI bench-smoke job).
SMOKE = os.environ.get("REPRO_KERNEL_SMOKE") == "1"
SCALE = 1 if SMOKE else 2
#: The kernel matrix and shard scaling run at a larger scale: the array
#: kernels' advantage is batching, which tiny frontiers cannot show.
KERNEL_SCALE = 2 if SMOKE else 24
SPEEDUP_GATE = 1.0 if SMOKE else 2.0
#: ``vectorized`` over ``sets`` on the kernel-matrix workloads.
VECTOR_GATE = 1.0 if SMOKE else 2.0
REPEATS = 3 if SMOKE else 7
SHARD_COUNTS = (2, 4, 8)
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: Sections accumulate here; the last test writes the JSON artifact once
#: every section is present (so running a single test never writes a
#: partial file).
_SECTIONS = {}

#: LUBM graphs are immutable here — share them across the sections.
_GRAPH_CACHE = {}


def _lubm_graph(scale):
    if scale not in _GRAPH_CACHE:
        _GRAPH_CACHE[scale] = lubm.generate(scale=scale)
    return _GRAPH_CACHE[scale]


# ----------------------------------------------------------------------
# A/B harness (the object-path baseline lives in kernel_reference.py)
# ----------------------------------------------------------------------
def _best_ms(run, repeats=REPEATS):
    """Best-of-N wall-clock of ``run()`` in milliseconds (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best * 1000.0


def kernel_comparison_rows(scale=SCALE, trace=None):
    """One row per LUBM query: object path vs encoded kernel, warm caches.

    With a ``trace`` attached, each query's A/B measurement becomes one
    stage span carrying the measured times as attributes, so the JSON
    artifact records a per-stage trace summary alongside the raw rows.
    """
    graph = _lubm_graph(scale)
    queries = lubm.queries()
    encoded = LocalMatcher(graph)
    reference = ReferenceObjectMatcher(graph)
    rows = []
    for name, query in queries.items():
        query_graph = QueryGraph.from_query(query)
        encoded_matches = list(encoded.find_matches(query_graph))
        encoded_steps = encoded.search_steps
        reference_matches = list(reference.find_matches(query_graph))
        reference_steps = reference.search_steps
        # Bit-identical behaviour: same match sequence, same work counter.
        assert encoded_matches == reference_matches, f"{name}: kernels disagree on matches"
        assert encoded_steps == reference_steps, f"{name}: kernels disagree on search_steps"
        span_cm = (
            trace.span(f"stage:match:{name}", CATEGORY_STAGE)
            if trace is not None
            else nullcontext()
        )
        with span_cm as span:
            object_ms = _best_ms(lambda: list(reference.find_matches(query_graph)))
            encoded_ms = _best_ms(lambda: list(encoded.find_matches(query_graph)))
            if span is not None:
                span.set(
                    shape=query_graph.classify_shape(),
                    search_steps=encoded_steps,
                    object_ms=round(object_ms, 3),
                    encoded_ms=round(encoded_ms, 3),
                )
        rows.append(
            {
                "query": name,
                "shape": query_graph.classify_shape(),
                "results": len(encoded_matches),
                "search_steps": encoded_steps,
                "object_ms": round(object_ms, 3),
                "encoded_ms": round(encoded_ms, 3),
                "speedup": round(object_ms / encoded_ms, 2) if encoded_ms else float("inf"),
            }
        )
    return rows


def _workload_speedup(rows, baseline="object_ms", contender="encoded_ms"):
    baseline_total = sum(row[baseline] for row in rows)
    contender_total = sum(row[contender] for row in rows)
    speedup = baseline_total / contender_total if contender_total else float("inf")
    return baseline_total, contender_total, speedup


# ----------------------------------------------------------------------
# Section 2: the kernel matrix (sets vs python vs vectorized)
# ----------------------------------------------------------------------
def kernel_matrix_rows(scale=KERNEL_SCALE):
    """One row per LUBM query: all available kernels over the same graph.

    Asserts the full determinism contract before timing: every kernel
    produces the identical match sequence and identical ``search_steps``.
    ``vectorized`` is skipped (with its column absent) when numpy is not
    importable — the matrix then only witnesses sets/python parity.
    """
    graph = _lubm_graph(scale)
    kernels = [KERNEL_SETS, KERNEL_PYTHON]
    if numpy_or_none() is not None:
        kernels.append(KERNEL_VECTORIZED)
    matchers = {name: LocalMatcher(graph, kernel=name) for name in kernels}
    rows = []
    for name, query in lubm.queries().items():
        query_graph = QueryGraph.from_query(query)
        reference_matches = None
        reference_steps = None
        timings = {}
        for kernel in kernels:
            matcher = matchers[kernel]
            matches = list(matcher.find_matches(query_graph))
            if reference_matches is None:
                reference_matches, reference_steps = matches, matcher.search_steps
            else:
                assert matches == reference_matches, (
                    f"{name}: {kernel} and {kernels[0]} disagree on matches"
                )
                assert matcher.search_steps == reference_steps, (
                    f"{name}: {kernel} and {kernels[0]} disagree on search_steps"
                )
            timings[kernel] = _best_ms(lambda m=matcher: list(m.find_matches(query_graph)))
        row = {
            "query": name,
            "shape": query_graph.classify_shape(),
            "results": len(reference_matches),
            "search_steps": reference_steps,
        }
        for kernel in kernels:
            row[f"{kernel}_ms"] = round(timings[kernel], 3)
        if KERNEL_VECTORIZED in timings:
            vectorized = timings[KERNEL_VECTORIZED]
            row["speedup"] = (
                round(timings[KERNEL_SETS] / vectorized, 2) if vectorized else float("inf")
            )
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Section 3: intra-site shard scaling
# ----------------------------------------------------------------------
def shard_scaling_rows(scale=KERNEL_SCALE, shard_counts=SHARD_COUNTS):
    """Critical-path time of the sharded search for each LUBM query.

    Every (query, K) pair first proves the sharding contract — the shards'
    bindings concatenated in shard order equal the unsharded sequence and
    their ``search_steps`` sum to the unsharded total — then records the
    slowest shard's time (the critical path a K-worker pool would see).
    """
    matcher = LocalMatcher(_lubm_graph(scale))
    rows = []
    for name, query in lubm.queries().items():
        unsharded = matcher.raw_matches(query)
        unsharded_steps = matcher.search_steps
        unsharded_ms = _best_ms(lambda: matcher.raw_matches(query))
        for num_shards in shard_counts:
            combined = []
            steps = 0
            shard_ms = []
            for index in range(num_shards):
                combined.extend(matcher.shard_matches(query, index, num_shards))
                steps += matcher.search_steps
                shard_ms.append(
                    _best_ms(lambda i=index: matcher.shard_matches(query, i, num_shards))
                )
            assert combined == unsharded, f"{name}: shard concat diverges at K={num_shards}"
            assert steps == unsharded_steps, f"{name}: shard steps diverge at K={num_shards}"
            critical = max(shard_ms)
            rows.append(
                {
                    "query": name,
                    "shards": num_shards,
                    "unsharded_ms": round(unsharded_ms, 3),
                    "critical_path_ms": round(critical, 3),
                    "speedup": round(unsharded_ms / critical, 2) if critical else float("inf"),
                }
            )
    return rows


# ----------------------------------------------------------------------
# The tests (pytest runs them in definition order; the last writes JSON)
# ----------------------------------------------------------------------
def test_kernel_ab_lubm(benchmark):
    trace = Trace("bench_kernel", scale=SCALE)
    rows = benchmark.pedantic(
        kernel_comparison_rows, kwargs={"trace": trace}, iterations=1, rounds=1
    )
    trace.finish()
    mode = "smoke" if SMOKE else "full"
    print_experiment(
        f"Kernel A/B — LUBM scale {SCALE} ({mode}): object path vs encoded kernel",
        format_table(rows),
    )
    multi_join = [row for row in rows if row["shape"] != "star"]
    stars = [row for row in rows if row["shape"] == "star"]
    assert multi_join and stars, "the LUBM workload must cover both shape families"

    object_mj, encoded_mj, speedup_mj = _workload_speedup(multi_join)
    object_star, encoded_star, speedup_star = _workload_speedup(stars)
    print(
        f"multi-join: {object_mj:.2f}ms -> {encoded_mj:.2f}ms ({speedup_mj:.1f}x)   "
        f"star: {object_star:.2f}ms -> {encoded_star:.2f}ms ({speedup_star:.1f}x)"
    )
    # The gate: >= 2x on the multi-join workload in full runs; the CI smoke
    # run only requires the encoded kernel not to be slower.
    assert speedup_mj >= SPEEDUP_GATE, (
        f"encoded kernel speedup {speedup_mj:.2f}x below the {SPEEDUP_GATE}x gate on multi-joins"
    )
    assert speedup_star >= SPEEDUP_GATE, (
        f"encoded kernel speedup {speedup_star:.2f}x below the {SPEEDUP_GATE}x gate on stars"
    )
    _SECTIONS["ab"] = {
        "scale": SCALE,
        "repeats": REPEATS,
        "rows": rows,
        "multi_join": {
            "object_ms": round(object_mj, 3),
            "encoded_ms": round(encoded_mj, 3),
            "speedup": round(speedup_mj, 2),
        },
        "star": {
            "object_ms": round(object_star, 3),
            "encoded_ms": round(encoded_star, 3),
            "speedup": round(speedup_star, 2),
        },
        # Per-stage trace summary of this run: one span per query's A/B
        # measurement, with the measured times as span attributes.
        "trace_summary": trace.summary().splitlines(),
    }


def test_kernel_matrix_lubm():
    rows = kernel_matrix_rows()
    mode = "smoke" if SMOKE else "full"
    print_experiment(
        f"Kernel matrix — LUBM scale {KERNEL_SCALE} ({mode}): sets vs python vs vectorized",
        format_table(rows),
    )
    multi_join = [row for row in rows if row["shape"] != "star"]
    stars = [row for row in rows if row["shape"] == "star"]
    assert multi_join and stars, "the LUBM workload must cover both shape families"

    vectorized_available = numpy_or_none() is not None
    summary = {}
    for label, subset in (("multi_join", multi_join), ("star", stars)):
        entry = {
            "sets_ms": round(sum(row["sets_ms"] for row in subset), 3),
            "python_ms": round(sum(row["python_ms"] for row in subset), 3),
        }
        if vectorized_available:
            sets_total, vectorized_total, speedup = _workload_speedup(
                subset, baseline="sets_ms", contender="vectorized_ms"
            )
            entry["vectorized_ms"] = round(vectorized_total, 3)
            entry["vectorized_speedup"] = round(speedup, 2)
            print(
                f"{label}: sets {sets_total:.2f}ms -> vectorized {vectorized_total:.2f}ms "
                f"({speedup:.1f}x)"
            )
            # The tentpole gate: vectorized >= 2x over the set-based kernel
            # on the multi-join workload (and the stars) in full runs.
            assert speedup >= VECTOR_GATE, (
                f"vectorized speedup {speedup:.2f}x below the {VECTOR_GATE}x gate on {label}"
            )
        summary[label] = entry
    _SECTIONS["kernels"] = {
        "scale": KERNEL_SCALE,
        "repeats": REPEATS,
        "vectorized_available": vectorized_available,
        "rows": rows,
        **summary,
    }


def test_kernel_shard_scaling():
    rows = shard_scaling_rows()
    mode = "smoke" if SMOKE else "full"
    print_experiment(
        f"Shard scaling — LUBM scale {KERNEL_SCALE} ({mode}): "
        f"critical-path time for K in {SHARD_COUNTS}",
        format_table(rows),
    )
    # Parity (concatenation + step accounting) is asserted per row inside
    # shard_scaling_rows; the timing columns are informational — shard
    # speedup depends on how evenly the depth-0 frontier splits.
    _SECTIONS["sharding"] = {
        "scale": KERNEL_SCALE,
        "repeats": REPEATS,
        "shard_counts": list(SHARD_COUNTS),
        "rows": rows,
    }

    if not SMOKE and all(key in _SECTIONS for key in ("ab", "kernels", "sharding")):
        payload = {
            "benchmark": "bench_kernel",
            "dataset": "LUBM",
            "ab": _SECTIONS["ab"],
            "kernels": _SECTIONS["kernels"],
            "sharding": _SECTIONS["sharding"],
        }
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {RESULTS_PATH}")
