"""Table IV — CostPartitioning of hash / semantic hash / METIS partitionings.

The paper reports the Section VII cost of the three partitionings on YAGO2
and LUBM 100M.  The shape to reproduce: on LUBM the semantic hash
partitioning is cheaper than plain hashing (URI hierarchies separate
universities cleanly), while on YAGO2 all entities share one URI hierarchy so
semantic hashing cannot beat plain hashing.  The paper additionally finds
METIS to be the most expensive option on YAGO2 because its fragments are
badly imbalanced at the 284M-triple scale; our scaled-down datasets are too
small to reproduce that imbalance, so no assertion is made on METIS's rank
(the measured values are still printed for comparison).
"""

from repro.bench import format_table, partitioning_cost_table, print_experiment


def regenerate_table4(num_sites: int):
    return partitioning_cost_table(datasets=("YAGO2", "LUBM"), num_sites=num_sites, scale=1)


def test_table4_partitioning_costs(benchmark, num_sites):
    rows = benchmark.pedantic(regenerate_table4, args=(num_sites,), iterations=1, rounds=1)
    print_experiment("Table IV — CostPartitioning per strategy", format_table(rows))

    by_dataset = {row["dataset"]: row for row in rows}
    # LUBM: the URI hierarchy makes semantic hashing cheaper than plain hashing.
    lubm = by_dataset["LUBM"]
    assert lubm["semantic_hash"] <= lubm["hash"]
    # YAGO2: a single shared URI hierarchy means semantic hashing cannot beat
    # plain hashing (the paper measures them as approximately equal).
    yago = by_dataset["YAGO2"]
    assert yago["hash"] <= yago["semantic_hash"] * 1.05
