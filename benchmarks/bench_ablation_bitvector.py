"""Ablation: candidate bit-vector width (a design knob of Section VI).

Algorithm 4 compresses each variable's internal candidates into a
*fixed-length* bit vector; the paper argues the fixed length keeps the
communication cost bounded.  The width trades communication against
false-positive candidates: a narrow vector ships fewer bytes but lets more
useless extended candidates through (hash collisions), a wide vector prunes
more but costs more to exchange.

This ablation sweeps the width on the LUBM workload's most
partial-match-heavy query and reports, per width: the bytes shipped in the
candidate-exchange stage, the number of local partial matches enumerated and
the number of extended-candidate bindings the filter rejected.
"""

from repro.bench import format_table, prepare_workload, print_experiment, run_query
from repro.core import EngineConfig

WIDTHS = (256, 1024, 4096, 16384)
QUERY = "LQ1"


def sweep_bitvector_widths(num_sites: int):
    workload = prepare_workload("LUBM", scale=1, strategy="hash", num_sites=num_sites)
    rows = []
    for width in WIDTHS:
        config = EngineConfig.full().with_options(bit_vector_bits=width)
        result = run_query(workload, QUERY, config)
        stats = result.statistics
        rows.append(
            {
                "bit_vector_bits": width,
                "candidate_shipment_kb": round(stats.find_stage("candidate_exchange").shipped_kb, 3),
                "filtered_extended_candidates": stats.counter(
                    "partial_evaluation", "filtered_extended_candidates"
                ),
                "local_partial_matches": stats.counter("partial_evaluation", "local_partial_matches"),
                "total_time_ms": round(stats.total_time_ms, 2),
                "results": stats.num_results,
            }
        )
    return rows


def test_ablation_candidate_bitvector_width(benchmark, num_sites):
    rows = benchmark.pedantic(sweep_bitvector_widths, args=(num_sites,), iterations=1, rounds=1)
    print_experiment(
        f"Ablation — candidate bit-vector width (Algorithm 4) on LUBM {QUERY}",
        format_table(rows),
    )
    by_width = {row["bit_vector_bits"]: row for row in rows}
    # The answer must not depend on the width (the filter is sound).
    assert len({row["results"] for row in rows}) == 1
    # Wider vectors ship more bytes during the candidate exchange.
    assert (
        by_width[WIDTHS[0]]["candidate_shipment_kb"]
        < by_width[WIDTHS[-1]]["candidate_shipment_kb"]
    )
    # Wider vectors never *increase* the number of enumerated local partial
    # matches (fewer false-positive extended candidates survive the filter).
    assert (
        by_width[WIDTHS[-1]]["local_partial_matches"]
        <= by_width[WIDTHS[0]]["local_partial_matches"]
    )
