"""Tests for the synthetic dataset generators."""

import pytest

from repro.datasets import btc, lubm, yago
from repro.datasets.generator_utils import DatasetInfo
from repro.rdf import Literal


@pytest.mark.parametrize("module", [lubm, yago, btc])
class TestCommonGeneratorProperties:
    def test_deterministic_for_same_seed(self, module):
        assert module.generate(scale=1, seed=5) == module.generate(scale=1, seed=5)

    def test_different_seeds_differ(self, module):
        assert module.generate(scale=1, seed=1) != module.generate(scale=1, seed=2)

    def test_scale_increases_size(self, module):
        small = module.generate(scale=1)
        large = module.generate(scale=2)
        assert len(large) > len(small)

    def test_no_literal_subjects(self, module):
        graph = module.generate(scale=1)
        assert not any(isinstance(triple.subject, Literal) for triple in graph)

    def test_graph_mostly_connected(self, module):
        graph = module.generate(scale=1)
        components = graph.connected_components()
        largest = max(len(component) for component in components)
        assert largest > 0.5 * len(graph.vertices)

    def test_dataset_info(self, module):
        graph = module.generate(scale=1)
        info = module.dataset_info(graph, scale=1)
        assert isinstance(info, DatasetInfo)
        assert info.triples == len(graph)
        assert info.as_row()["scale"] == 1


class TestLubmSchema:
    def test_contains_core_classes(self):
        graph = lubm.generate(scale=1)
        types = {t.object for t in graph.triples(None, None, None) if t.predicate.local_name == "type"}
        assert lubm.GRADUATE_STUDENT in types
        assert lubm.FULL_PROFESSOR in types
        assert lubm.DEPARTMENT in types

    def test_every_student_has_department_and_courses(self):
        graph = lubm.generate(scale=1)
        students = graph.subjects(predicate=lubm.MEMBER_OF)
        for student in list(students)[:10]:
            assert graph.objects(student, lubm.TAKES_COURSE) or graph.objects(student, lubm.WORKS_FOR)

    def test_doctoral_degrees_link_universities(self):
        graph = lubm.generate(scale=2)
        degrees = list(graph.triples(None, lubm.DOCTORAL_DEGREE_FROM, None))
        assert degrees
        universities = graph.subjects(predicate=lubm.NAME) & {t.object for t in degrees}
        assert universities


class TestYagoSchema:
    def test_people_have_birth_places(self):
        graph = yago.generate(scale=1)
        assert len(list(graph.triples(None, yago.WAS_BORN_IN, None))) > 0

    def test_cities_located_in_countries(self):
        graph = yago.generate(scale=1)
        for triple in graph.triples(None, yago.IS_LOCATED_IN, None):
            assert triple.object in graph.vertices


class TestBtcSchema:
    def test_heterogeneous_vocabularies_present(self):
        graph = btc.generate(scale=1)
        predicates = {p.value for p in graph.predicates}
        assert any("foaf" in p for p in predicates)
        assert any("geonames" in p for p in predicates)
        assert any("dc/" in p or "dc#" in p or "/dc" in p for p in predicates)

    def test_articles_have_creators(self):
        graph = btc.generate(scale=1)
        assert len(list(graph.triples(None, btc.DC_CREATOR, None))) > 0
