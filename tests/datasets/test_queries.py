"""Tests for the benchmark query sets (shape classes and answerability)."""

import pytest

from repro.datasets import btc, lubm, yago
from repro.sparql import QueryGraph
from repro.store import evaluate_centralized


class TestLubmQueries:
    def test_seven_queries(self):
        assert set(lubm.queries()) == {f"LQ{i}" for i in range(1, 8)}

    def test_star_queries_are_stars(self):
        queries = lubm.queries()
        for name in lubm.STAR_QUERIES:
            assert QueryGraph(queries[name].bgp).is_star(), name

    def test_complex_queries_are_not_stars(self):
        queries = lubm.queries()
        for name in lubm.COMPLEX_QUERIES:
            assert not QueryGraph(queries[name].bgp).is_star(), name

    def test_queries_are_connected(self):
        for name, query in lubm.queries().items():
            assert QueryGraph(query.bgp).is_connected(), name

    @pytest.mark.parametrize("name", ["LQ1", "LQ2", "LQ4", "LQ5", "LQ6", "LQ7"])
    def test_non_empty_answers(self, lubm_graph, name):
        query = lubm.queries()[name]
        assert len(evaluate_centralized(lubm_graph, query)) > 0

    def test_lq3_is_empty(self, lubm_graph):
        assert len(evaluate_centralized(lubm_graph, lubm.queries()["LQ3"])) == 0

    def test_selective_flags(self):
        queries = lubm.queries()
        assert QueryGraph(queries["LQ4"].bgp).has_selective_pattern()
        assert QueryGraph(queries["LQ6"].bgp).has_selective_pattern()
        assert not QueryGraph(queries["LQ1"].bgp).has_selective_pattern()


class TestYagoQueries:
    def test_four_queries(self):
        assert set(yago.queries()) == {"YQ1", "YQ2", "YQ3", "YQ4"}

    def test_all_non_star(self):
        for name, query in yago.queries().items():
            assert not QueryGraph(query.bgp).is_star(), name

    def test_yq3_is_the_largest_answer(self, yago_graph):
        sizes = {
            name: len(evaluate_centralized(yago_graph, query))
            for name, query in yago.queries().items()
        }
        assert sizes["YQ3"] == max(sizes.values())
        assert sizes["YQ2"] == 0
        assert sizes["YQ1"] > 0


class TestBtcQueries:
    def test_seven_queries(self):
        assert set(btc.queries()) == {f"BQ{i}" for i in range(1, 8)}

    def test_star_classification(self):
        queries = btc.queries()
        for name in btc.STAR_QUERIES:
            assert QueryGraph(queries[name].bgp).is_star(), name
        for name in btc.COMPLEX_QUERIES:
            assert not QueryGraph(queries[name].bgp).is_star(), name

    def test_every_query_is_selective(self):
        # The BTC workload of the paper is dominated by selective queries.
        queries = btc.queries()
        selective = [QueryGraph(q.bgp).has_selective_pattern() for q in queries.values()]
        assert sum(selective) >= 5

    def test_empty_and_non_empty_mix(self, btc_graph):
        sizes = {
            name: len(evaluate_centralized(btc_graph, query))
            for name, query in btc.queries().items()
        }
        assert sizes["BQ1"] > 0
        assert sizes["BQ4"] > 0
        assert sizes["BQ6"] == 0
        assert sizes["BQ7"] == 0
