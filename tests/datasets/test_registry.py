"""Tests for the dataset registry, the paper example and the random generators."""

import pytest

from repro.datasets import (
    DATASETS,
    LUBM_SCALES,
    all_benchmark_queries,
    build_example_graph,
    build_example_partitioning,
    example_query,
    get_dataset,
    query_shape,
    random_assignment,
    random_connected_query,
    random_graph,
)
from repro.partition import build_partitioned_graph
from repro.sparql import QueryGraph
from repro.store import evaluate_centralized


class TestRegistry:
    def test_three_datasets_registered(self):
        assert set(DATASETS) == {"LUBM", "YAGO2", "BTC"}

    def test_get_dataset(self):
        spec = get_dataset("LUBM")
        assert spec.name == "LUBM"
        assert set(spec.query_names()) == {f"LQ{i}" for i in range(1, 8)}

    def test_get_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            get_dataset("DBpedia")

    def test_lubm_scales_are_increasing(self):
        values = list(LUBM_SCALES.values())
        assert values == sorted(values)
        assert set(LUBM_SCALES) == {"100M", "500M", "1B"}

    def test_all_benchmark_queries(self):
        queries = all_benchmark_queries()
        assert sum(len(qs) for qs in queries.values()) == 18

    def test_query_shape_helper(self):
        spec = get_dataset("LUBM")
        assert query_shape(spec.queries()["LQ2"]) == "star"


class TestPaperExample:
    def test_graph_has_19_triples(self):
        assert len(build_example_graph()) == 19

    def test_partitioning_matches_figure1(self):
        partitioned = build_example_partitioning()
        assert partitioned.num_fragments == 3
        partitioned.validate()
        assert len(partitioned.fragment(0).crossing_edges) == 3

    def test_query_answer_count(self):
        graph = build_example_graph()
        assert len(evaluate_centralized(graph, example_query())) == 4

    def test_query_graph_shape(self):
        graph = QueryGraph(example_query().bgp)
        assert graph.num_vertices == 5
        assert graph.num_edges == 4
        assert not graph.is_star()


class TestRandomGenerators:
    def test_random_graph_is_deterministic(self):
        assert random_graph(3) == random_graph(3)

    def test_random_graph_size(self):
        graph = random_graph(1, num_vertices=20, num_edges=40)
        assert len(graph) >= 40
        assert len(graph.vertices) <= 20

    def test_random_query_has_answers(self):
        graph = random_graph(7)
        query = random_connected_query(graph, seed=7, num_edges=3)
        assert query is not None
        assert len(evaluate_centralized(graph, query)) >= 1

    def test_random_query_is_connected(self):
        graph = random_graph(11)
        query = random_connected_query(graph, seed=11, num_edges=4)
        assert QueryGraph(query.bgp).is_connected()

    def test_random_assignment_covers_all_vertices(self):
        graph = random_graph(5)
        assignment = random_assignment(graph, seed=5, num_fragments=3)
        assert set(assignment) == graph.vertices
        partitioned = build_partitioned_graph(graph, assignment, num_fragments=3)
        partitioned.validate()
