"""Snapshot of the public API surface.

Anything exported from ``repro`` or ``repro.api`` is a compatibility
promise: downstream code imports these names, and the docs reference them.
This test freezes the surface so an accidental rename/removal fails CI; a
*deliberate* change updates the snapshot here (and ``docs/api.md``).
"""

import repro
import repro.api

#: Everything ``repro`` exports — keep sorted.
REPRO_EXPORTS = [
    "ABLATION_CONFIGS",
    "AppliedDelta",
    "AsyncSession",
    "Binding",
    "CentralizedEngine",
    "Cluster",
    "ClusterStore",
    "DistributedResult",
    "EngineConfig",
    "ExecutorBackend",
    "FaultPlan",
    "GStoreDEngine",
    "GraphStatistics",
    "HashPartitioner",
    "IRI",
    "LECFeature",
    "Literal",
    "LocalMatcher",
    "LocalPartialMatch",
    "MetisLikePartitioner",
    "MetricsRegistry",
    "Namespace",
    "NamespaceManager",
    "OptimizationLevel",
    "PartitionedGraph",
    "QueryEngine",
    "QueryPlan",
    "QueryPlanner",
    "QueryServer",
    "QueryStatistics",
    "RDFGraph",
    "Result",
    "ResultSet",
    "RetryPolicy",
    "SelectQuery",
    "SemanticHashPartitioner",
    "SerialBackend",
    "Session",
    "ShipmentSnapshot",
    "StageProfiler",
    "StoreError",
    "ThreadPoolBackend",
    "Trace",
    "Tracer",
    "Triple",
    "TripleStore",
    "Variable",
    "__version__",
    "build_cluster",
    "collect_statistics",
    "engine_names",
    "evaluate_centralized",
    "make_backend",
    "make_engine",
    "make_partitioner",
    "open",
    "open_session",
    "parse_query",
    "partitioning_cost",
    "quickstart_cluster",
    "run_per_site",
    "select_best_partitioning",
]

#: Everything ``repro.api`` exports — keep sorted.
REPRO_API_EXPORTS = [
    "AdmissionController",
    "AdmissionError",
    "AsyncSession",
    "CentralizedEngine",
    "EngineAdapter",
    "EngineSpec",
    "QueryBatch",
    "QueryEngine",
    "QueryServer",
    "Result",
    "ResultCache",
    "STAGE_CENTRALIZED",
    "Session",
    "engine_aliases",
    "engine_names",
    "engine_spec",
    "engine_specs",
    "make_engine",
    "open",
    "open_session",
    "register_engine",
    "resolve_engine_name",
    "result_cache_key",
]

#: The engine registry is part of the CLI and docs contract too.
ENGINE_REGISTRY_SNAPSHOT = ("centralized", "cloud", "decomp", "dream", "gstored", "s2x")


def test_repro_all_matches_the_snapshot():
    assert sorted(repro.__all__) == sorted(REPRO_EXPORTS)


def test_repro_api_all_matches_the_snapshot():
    assert sorted(repro.api.__all__) == sorted(REPRO_API_EXPORTS)


def test_every_exported_name_resolves():
    for name in repro.__all__:
        assert getattr(repro, name) is not None
    for name in repro.api.__all__:
        assert getattr(repro.api, name) is not None


def test_engine_registry_matches_the_snapshot():
    assert repro.engine_names() == ENGINE_REGISTRY_SNAPSHOT


def test_open_is_the_session_entry_point():
    assert repro.open is repro.open_session is repro.api.open_session
