"""Integration tests varying the number of sites and partitioning granularity."""

import pytest

from repro.core import EngineConfig, GStoreDEngine
from repro.datasets import lubm
from repro.distributed import build_cluster
from repro.partition import HashPartitioner
from repro.store import evaluate_centralized


@pytest.fixture(scope="module")
def graph():
    return lubm.generate(scale=1)


@pytest.mark.parametrize("num_sites", [1, 2, 3, 6, 9])
class TestSiteCountInvariance:
    def test_answers_do_not_depend_on_site_count(self, graph, num_sites):
        query = lubm.queries()["LQ6"]
        expected = evaluate_centralized(graph, query).project(query.effective_projection, distinct=True)
        cluster = build_cluster(HashPartitioner(num_sites).partition(graph))
        result = GStoreDEngine(cluster, EngineConfig.full()).execute(query, query_name="LQ6")
        assert result.results.same_solutions(expected)

    def test_single_site_needs_no_crossing_work(self, graph, num_sites):
        if num_sites != 1:
            pytest.skip("only meaningful for the single-site case")
        cluster = build_cluster(HashPartitioner(1).partition(graph))
        result = GStoreDEngine(cluster).execute(lubm.queries()["LQ1"], query_name="LQ1")
        assert result.statistics.counter("partial_evaluation", "local_partial_matches") == 0
        assert result.statistics.counter("assembly", "crossing_matches") == 0


class TestShipmentScaling:
    def test_more_sites_means_more_crossing_edges_and_shipment(self, graph):
        query = lubm.queries()["LQ1"]
        shipments = []
        crossing = []
        for num_sites in (2, 6):
            partitioned = HashPartitioner(num_sites).partition(graph)
            crossing.append(len(partitioned.crossing_edges))
            cluster = build_cluster(partitioned)
            result = GStoreDEngine(cluster, EngineConfig.lec_optimized()).execute(query)
            shipments.append(result.statistics.total_shipment_bytes)
        assert crossing[0] < crossing[1]
        assert shipments[0] < shipments[1]
