"""End-to-end integration tests: distributed answers equal centralized answers.

This is the central correctness claim of the whole reproduction: whatever the
partitioning, whatever the optimization level, and whichever comparison
system runs the query, the distributed answer must be exactly the answer the
centralized matcher computes on the unpartitioned graph.
"""

import pytest

from repro.baselines import BASELINE_ENGINES, make_baseline
from repro.core import ABLATION_CONFIGS, EngineConfig, GStoreDEngine
from repro.datasets import btc, lubm, yago
from repro.distributed import build_cluster
from repro.partition import make_partitioner
from repro.store import evaluate_centralized

DATASET_MODULES = {"LUBM": lubm, "YAGO2": yago, "BTC": btc}


def centralized_answer(graph, query):
    return evaluate_centralized(graph, query).project(query.effective_projection, distinct=True)


@pytest.fixture(scope="module")
def environments():
    """One graph + three partitioned clusters per dataset (built once)."""
    envs = {}
    for name, module in DATASET_MODULES.items():
        graph = module.generate(scale=1)
        clusters = {
            strategy: build_cluster(make_partitioner(strategy, 4).partition(graph))
            for strategy in ("hash", "semantic_hash", "metis")
        }
        envs[name] = (graph, clusters, module.queries())
    return envs


class TestGStoreDAgainstCentralized:
    # Every dataset is checked under hash partitioning; the full 3x3 grid is
    # only run for the smallest dataset (YAGO2) to keep the suite fast — the
    # hypothesis property tests cover random partitionings of random graphs.
    @pytest.mark.parametrize(
        "dataset, strategy",
        [
            ("LUBM", "hash"),
            ("BTC", "hash"),
            ("YAGO2", "hash"),
            ("YAGO2", "semantic_hash"),
            ("YAGO2", "metis"),
            ("BTC", "metis"),
            ("LUBM", "semantic_hash"),
        ],
    )
    def test_full_engine_every_query(self, environments, dataset, strategy):
        graph, clusters, queries = environments[dataset]
        cluster = clusters[strategy]
        for name, query in queries.items():
            expected = centralized_answer(graph, query)
            cluster.reset_network()
            result = GStoreDEngine(cluster, EngineConfig.full()).execute(query, query_name=name)
            assert result.results.same_solutions(expected), f"{dataset}/{strategy}/{name}"

    @pytest.mark.parametrize("config_index", range(len(ABLATION_CONFIGS)))
    def test_every_optimization_level_on_yago_hash(self, environments, config_index):
        graph, clusters, queries = environments["YAGO2"]
        cluster = clusters["hash"]
        config = ABLATION_CONFIGS[config_index]
        for name, query in queries.items():
            expected = centralized_answer(graph, query)
            cluster.reset_network()
            result = GStoreDEngine(cluster, config).execute(query, query_name=name)
            assert result.results.same_solutions(expected), f"{config.label}/{name}"


class TestBaselinesAgainstCentralized:
    @pytest.mark.parametrize("baseline", sorted(BASELINE_ENGINES))
    def test_baselines_every_query(self, environments, baseline):
        graph, clusters, queries = environments["YAGO2"]
        cluster = clusters["hash"]
        engine = make_baseline(baseline, cluster)
        for name, query in queries.items():
            expected = centralized_answer(graph, query)
            cluster.reset_network()
            result = engine.execute(query, query_name=name)
            assert result.results.same_solutions(expected), f"{baseline}/YAGO2/{name}"


class TestConsistencyAcrossEngines:
    def test_all_engines_agree_with_each_other(self, environments):
        graph, clusters, queries = environments["YAGO2"]
        cluster = clusters["hash"]
        query = queries["YQ4"]
        answers = []
        for config in ABLATION_CONFIGS:
            cluster.reset_network()
            answers.append(GStoreDEngine(cluster, config).execute(query).results.as_set())
        for baseline in BASELINE_ENGINES:
            cluster.reset_network()
            answers.append(make_baseline(baseline, cluster).execute(query).results.as_set())
        assert all(answer == answers[0] for answer in answers)
