"""Tests for the :mod:`repro.api` engine protocol, registry and adapters."""

import pytest

import repro
from repro import EngineConfig, GStoreDEngine
from repro.api import (
    STAGE_CENTRALIZED,
    CentralizedEngine,
    EngineAdapter,
    QueryEngine,
    Result,
    engine_names,
    engine_specs,
    make_engine,
    resolve_engine_name,
)
from repro.baselines import CliqueSquareEngine, DreamEngine, S2RDFEngine, S2XEngine
from repro.datasets.paper_example import (
    build_example_partitioning,
    example_query,
)
from repro.distributed import build_cluster

ALL_ENGINES = ("centralized", "cloud", "decomp", "dream", "gstored", "s2x")


@pytest.fixture()
def cluster():
    return build_cluster(build_example_partitioning())


class TestRegistry:
    def test_engine_names_cover_all_five_evaluator_families(self):
        assert engine_names() == ALL_ENGINES

    def test_specs_are_sorted_and_summarized(self):
        specs = engine_specs()
        assert tuple(spec.name for spec in specs) == ALL_ENGINES
        assert all(spec.summary for spec in specs)

    @pytest.mark.parametrize(
        ("alias", "canonical"),
        [
            ("DREAM", "dream"),
            ("CliqueSquare", "decomp"),
            ("S2RDF", "cloud"),
            ("S2X", "s2x"),
            ("central", "centralized"),
            ("GStored", "gstored"),
            ("  gstored  ", "gstored"),
        ],
    )
    def test_aliases_resolve_case_insensitively(self, alias, canonical):
        assert resolve_engine_name(alias) == canonical

    def test_engine_spec_and_aliases_expose_the_registry(self):
        from repro.api import engine_aliases, engine_spec

        assert engine_spec("DREAM").name == "dream"
        assert engine_spec("gstored").accepts_config is True
        assert engine_aliases()["s2rdf"] == "cloud"
        assert engine_aliases()["cliquesquare"] == "decomp"

    def test_unknown_engine_error_enumerates_choices(self, cluster):
        with pytest.raises(ValueError) as excinfo:
            make_engine("sparql-over-carrier-pigeon", cluster)
        message = str(excinfo.value)
        for name in ALL_ENGINES:
            assert name in message

    def test_config_rejected_for_fixed_strategy_engines(self, cluster):
        with pytest.raises(ValueError) as excinfo:
            make_engine("dream", cluster, config=EngineConfig.full())
        assert "EngineConfig" in str(excinfo.value)
        assert "gstored" in str(excinfo.value)

    @pytest.mark.parametrize(
        ("name", "inner_type"),
        [
            ("dream", DreamEngine),
            ("decomp", CliqueSquareEngine),
            ("cloud", S2RDFEngine),
            ("s2x", S2XEngine),
            ("gstored", GStoreDEngine),
        ],
    )
    def test_factories_build_the_expected_engines(self, cluster, name, inner_type):
        with make_engine(name, cluster) as engine:
            assert isinstance(engine.inner, inner_type)

    def test_every_registry_engine_satisfies_the_protocol(self, cluster):
        for name in engine_names():
            with make_engine(name, cluster) as engine:
                assert isinstance(engine, QueryEngine)
                result = engine.execute(example_query(), query_name=name)
                assert isinstance(result, Result)
                assert result.statistics.query_name == name


class TestCentralizedEngine:
    def test_records_a_single_timed_stage(self, cluster):
        with CentralizedEngine(cluster) as engine:
            result = engine.execute(example_query(), query_name="example", dataset="paper")
        stats = result.statistics
        assert stats.engine == "Centralized"
        assert [stage.name for stage in stats.stages] == [STAGE_CENTRALIZED]
        assert stats.total_shipment_bytes == 0
        assert stats.num_results == len(result) == 4

    def test_matcher_is_cached_across_queries_and_dropped_on_close(self, cluster):
        engine = CentralizedEngine(cluster)
        engine.execute(example_query())
        first = engine._matcher
        engine.execute(example_query())
        assert engine._matcher is first
        engine.close()
        assert engine._matcher is None


class TestContextManagers:
    """Satellite: engines are context managers, so pools cannot leak."""

    def test_gstored_engine_closes_owned_backend_on_exit(self, cluster):
        config = EngineConfig.full().with_executor("threads", 2)
        with GStoreDEngine(cluster, config) as engine:
            engine.execute(example_query())
            assert engine.backend._pool is not None
        assert engine.backend._pool is None

    def test_adapter_exit_closes_the_inner_engine(self, cluster):
        config = EngineConfig.full().with_executor("threads", 2)
        with make_engine("gstored", cluster, config=config) as engine:
            engine.execute(example_query())
        assert engine.inner.backend._pool is None

    def test_injected_backend_survives_engine_close(self, cluster):
        backend = repro.ThreadPoolBackend(2)
        try:
            config = EngineConfig.full().with_executor("threads", 2)
            with make_engine("gstored", cluster, config=config, backend=backend) as engine:
                engine.execute(example_query())
            assert backend._pool is not None  # caller-owned pool stays warm
        finally:
            backend.close()

    def test_baselines_support_with_blocks(self, cluster):
        with DreamEngine(cluster) as engine:
            assert len(engine.execute(example_query()).results) == 4


class TestEngineAdapter:
    def test_adapter_reports_the_inner_name(self, cluster):
        adapter = EngineAdapter(S2XEngine(cluster))
        assert adapter.name == "S2X"

    def test_adapter_close_tolerates_engines_without_close(self, cluster):
        class Bare:
            name = "bare"

            def execute(self, query, query_name="", dataset=""):  # pragma: no cover
                raise NotImplementedError

        EngineAdapter(Bare()).close()  # must not raise
