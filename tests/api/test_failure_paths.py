"""Regression tests for failure paths the concurrency PR left half-covered.

Three contracts from ``docs/serving.md`` that only had happy-path coverage:

* ``Session.query_many`` hitting an engine exception mid-batch must
  propagate it, leave a failure-metric footprint, and leave the session —
  including the message bus's per-thread ledger stacks — clean enough that
  the next query works;
* cancelling an ``AsyncSession`` query mid-flight must not poison the shared
  session or its thread pool;
* the opt-in :class:`~repro.api.ResultCache` must never serve degraded
  answers, and failed queries must never populate it.
"""

import asyncio

import pytest

import repro
from repro.api.cache import ResultCache
from repro.faults import FaultPlan
from repro.obs import MetricsRegistry


@pytest.fixture()
def session():
    with repro.open(dataset="paper", partitioner="paper") as open_session:
        yield open_session


# ----------------------------------------------------------------------
# query_many: engine exception mid-batch
# ----------------------------------------------------------------------
def test_query_many_propagates_a_mid_batch_failure_and_stays_usable(session, monkeypatch):
    engine = session.engine()
    real_execute = engine.execute
    calls = {"n": 0}

    def failing_execute(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 2:
            raise RuntimeError("injected engine failure on query 2")
        return real_execute(*args, **kwargs)

    monkeypatch.setattr(engine, "execute", failing_execute)
    with pytest.raises(RuntimeError, match="injected engine failure"):
        session.query_many(["example", "example", "example"])

    # The failure left a metrics footprint...
    failures = session.metrics.snapshot()["repro_query_failures_total"]["series"]
    assert sum(failures.values()) == 1
    # ...no leaked per-thread ledger on the bus...
    assert all(not stack for stack in session.cluster.bus._ledgers.values())
    # ...and the session still answers (batch and single-query paths).
    monkeypatch.setattr(engine, "execute", real_execute)
    batch = session.query_many(["example", "example"])
    assert len(batch) == 2 and all(len(result) == 4 for result in batch)


def test_query_many_failure_returns_no_partial_batch(session, monkeypatch):
    """The batch is all-or-nothing: a mid-batch raise yields no QueryBatch."""
    engine = session.engine()
    monkeypatch.setattr(
        engine, "execute", lambda *a, **k: (_ for _ in ()).throw(RuntimeError("down"))
    )
    with pytest.raises(RuntimeError):
        session.query_many(["example"])
    assert not session.closed


# ----------------------------------------------------------------------
# AsyncSession: cancellation mid-query
# ----------------------------------------------------------------------
def test_async_session_survives_cancellation_mid_query():
    async def scenario():
        async with repro.AsyncSession.open(
            dataset="paper", partitioner="paper"
        ) as async_session:
            task = asyncio.ensure_future(async_session.query("example"))
            # Cancel as early as possible — whether the underlying thread had
            # started the query or not, the facade must stay usable.
            await asyncio.sleep(0)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            follow_up = await async_session.query("example")
            assert len(follow_up) == 4
            # The shared session is still healthy for concurrent callers too.
            results = await asyncio.gather(
                async_session.query("example"), async_session.query("example")
            )
            assert [len(result) for result in results] == [4, 4]

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# ResultCache: degraded and failed results never populate it
# ----------------------------------------------------------------------
def test_degraded_results_are_never_cached_and_never_served():
    plan = FaultPlan.parse("kill:1@partial_evaluation:unrecoverable")
    with repro.open(
        dataset="paper", partitioner="paper", result_cache=8, faults=plan
    ) as degraded_session:
        first = degraded_session.query("example")
        assert first.degraded and first.missing_sites == [1]
        assert len(degraded_session.result_cache) == 0
        second = degraded_session.query("example")
        assert not second.cache_hit  # re-executed, not served from cache
        assert degraded_session.degraded_queries == 2


def test_put_refuses_degraded_results_directly(session):
    cache = ResultCache(4, MetricsRegistry())
    healthy = session.query("example")
    degraded = session.query("example")
    degraded.statistics.extra["degraded"] = True
    cache.put("degraded-key", degraded)
    assert len(cache) == 0 and cache.get("degraded-key") is None
    cache.put("healthy-key", healthy)
    assert len(cache) == 1 and cache.get("healthy-key") is not None


def test_failed_queries_never_reach_the_cache(monkeypatch):
    with repro.open(
        dataset="paper", partitioner="paper", result_cache=8
    ) as caching_session:
        engine = caching_session.engine()
        monkeypatch.setattr(
            engine, "execute", lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        with pytest.raises(RuntimeError):
            caching_session.query("example")
        assert len(caching_session.result_cache) == 0
        assert caching_session.result_cache.misses == 1
