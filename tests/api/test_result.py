"""Tests for the unified :class:`repro.api.Result` type."""

import pytest

from repro import parse_query
from repro.api import Result
from repro.datasets.paper_example import build_example_graph, example_query
from repro.distributed import QueryStatistics
from repro.sparql.bindings import ResultSet
from repro.store import evaluate_centralized


@pytest.fixture(scope="module")
def example_results():
    graph = build_example_graph()
    query = example_query()
    return evaluate_centralized(graph, query).project(query.effective_projection, distinct=True)


class TestLaziness:
    def test_thunk_is_not_evaluated_until_accessed(self, example_results):
        calls = []

        def produce():
            calls.append(1)
            return example_results

        result = Result(produce)
        assert calls == []
        assert len(result) == 4
        assert calls == [1]

    def test_thunk_is_evaluated_exactly_once(self, example_results):
        calls = []

        def produce():
            calls.append(1)
            return example_results

        result = Result(produce)
        result.rows()
        result.sorted_rows()
        result.to_dicts()
        list(result)
        assert calls == [1]


class TestRowViews:
    def test_rows_are_sorted_within_each_row(self, example_results):
        for row in Result(example_results).rows():
            assert list(row) == sorted(row)
            assert all("=" in cell for cell in row)

    def test_sorted_rows_is_order_insensitive_canonical_form(self, example_results):
        forward = Result(ResultSet(list(example_results), example_results.variables))
        backward = Result(ResultSet(list(example_results)[::-1], example_results.variables))
        assert forward.rows() != backward.rows()
        assert forward.sorted_rows() == backward.sorted_rows()

    def test_to_dicts_matches_result_set_table(self, example_results):
        assert Result(example_results).to_dicts() == example_results.to_table()


class TestEqualityAndStatistics:
    def test_equality_against_result_and_result_set(self, example_results):
        result = Result(example_results)
        assert result == Result(example_results)
        assert result == example_results
        assert result.same_solutions(example_results)
        assert result.same_solutions(Result(example_results))

    def test_inequality_on_different_solutions(self, example_results):
        other = ResultSet(list(example_results)[:1], example_results.variables)
        assert Result(example_results) != Result(other)

    def test_default_statistics_are_attached(self, example_results):
        result = Result(example_results)
        assert isinstance(result.statistics, QueryStatistics)
        assert result.statistics.total_shipment_bytes == 0

    def test_from_distributed_preserves_results_and_statistics(self):
        import repro

        with repro.open(dataset="paper") as session:
            engine = session.engine("gstored")
            distributed = engine.inner.execute(session.queries["example"])
        lifted = Result.from_distributed(distributed)
        assert lifted.statistics is distributed.statistics
        assert lifted.results is distributed.results
        assert len(lifted) == len(distributed.results)
