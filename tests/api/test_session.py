"""Tests for the :class:`repro.api.Session` facade and ``repro.open``."""

import threading

import pytest

import repro
from repro import EngineConfig, Session
from repro.api import QueryBatch, Result
from repro.datasets.paper_example import build_example_partitioning, example_query

EXAMPLE_SPARQL = (
    "PREFIX ex: <http://example.org/> "
    'SELECT ?p2 ?l WHERE { ?t ex:label ?l . ?p1 ex:influencedBy ?p2 . '
    '?p2 ex:mainInterest ?t . ?p1 ex:name "Crispin Wright"@en . }'
)


class TestOpen:
    def test_open_defaults_to_the_paper_example(self):
        with repro.open() as session:
            assert session.dataset == "paper-example"
            assert session.num_sites == 3
            assert set(session.queries) == {"example"}

    def test_open_named_dataset_prepares_cluster_and_queries(self):
        with repro.open(dataset="yago2", sites=3) as session:
            assert session.dataset == "YAGO2"
            assert session.num_sites == 3
            assert set(session.queries) == {"YQ1", "YQ2", "YQ3", "YQ4"}
            assert session.partitioned.strategy == "hash"

    def test_open_is_case_insensitive_and_accepts_partitioner(self):
        with repro.open(dataset="LUBM", sites=2, partitioner="metis") as session:
            assert session.partitioned.strategy == "metis"

    def test_unknown_dataset_error_enumerates_choices(self):
        with pytest.raises(ValueError) as excinfo:
            repro.open(dataset="wikidata")
        message = str(excinfo.value)
        for choice in ("BTC", "LUBM", "YAGO2", "paper"):
            assert choice in message

    def test_unknown_engine_fails_before_first_query(self):
        with pytest.raises(ValueError, match="unknown engine"):
            repro.open(dataset="paper", engine="sparkle")

    def test_paper_partitioner_reproduces_figure1(self):
        with repro.open(dataset="paper", partitioner="paper") as session:
            assert session.partitioned.strategy == "figure1"
            assert session.num_sites == 3

    def test_paper_partitioner_rejects_other_site_counts(self):
        with pytest.raises(ValueError, match="3 fragments"):
            repro.open(dataset="paper", partitioner="paper", sites=5)

    def test_paper_partitioner_matching_is_case_insensitive(self):
        with repro.open(dataset="paper", partitioner=" Paper ") as session:
            assert session.partitioned.strategy == "figure1"

    def test_paper_partitioner_on_a_named_dataset_is_explained(self):
        with pytest.raises(ValueError, match="dataset='paper'"):
            repro.open(dataset="lubm", partitioner="paper")

    def test_unknown_partitioner_error_enumerates_choices(self):
        with pytest.raises(ValueError) as excinfo:
            repro.open(dataset="lubm", partitioner="round_robin")
        message = str(excinfo.value)
        for choice in ("hash", "metis", "semantic_hash", "paper"):
            assert choice in message

    def test_config_options_flow_into_the_engine_config(self):
        with repro.open(dataset="paper", use_lec_pruning=False) as session:
            assert session.config.use_lec_pruning is False
            assert session.engine("gstored").inner.config.use_lec_pruning is False

    def test_explicit_config_object_is_honored(self):
        with repro.open(dataset="paper", config=EngineConfig.basic()) as session:
            assert session.config.use_candidate_exchange is False


class TestQuery:
    def test_query_accepts_text_name_and_parsed_query(self):
        with repro.open(dataset="paper") as session:
            by_text = session.query(EXAMPLE_SPARQL)
            by_name = session.query("example")
            by_object = session.query(example_query())
            assert isinstance(by_text, Result)
            assert by_text.sorted_rows() == by_name.sorted_rows() == by_object.sorted_rows()
            # Named benchmark queries stamp their name into the statistics.
            assert by_name.statistics.query_name == "example"
            assert by_name.statistics.dataset == "paper-example"

    def test_query_engine_override_and_caching(self):
        with repro.open(dataset="paper") as session:
            assert session._engines == {}  # engines are created lazily
            session.query("example")  # materializes the default engine
            session.query("example", engine="dream")
            session.query("example", engine="DREAM")  # alias hits the same cache slot
            assert set(session._engines) == {"gstored", "dream"}
            assert session.engine("dream") is session.engine("DREAM")

    def test_each_query_gets_fresh_network_accounting(self):
        with repro.open(dataset="paper") as session:
            first = session.query("example")
            second = session.query("example")
            assert (
                first.statistics.total_shipment_bytes
                == second.statistics.total_shipment_bytes
            )

    def test_executor_threads_is_used_and_annotated(self):
        with repro.open(dataset="paper", executor="threads", workers=2) as session:
            assert session.backend.name == "threads"
            result = session.query("example")
            assert result.statistics.extra["executor"] == "threads"
            assert result.statistics.extra["max_workers"] == 2

    def test_workers_alone_imply_threads(self):
        with repro.open(dataset="paper", workers=2) as session:
            assert session.backend.name == "threads"
            assert session.backend.max_workers == 2

    def test_explain_shows_the_plan(self):
        with repro.open(dataset="paper") as session:
            text = session.explain("example")
            assert "query shape" in text
            assert "vertex order" in text

    def test_planner_cache_is_shared_across_queries(self):
        with repro.open(dataset="paper") as session:
            session.query("example")
            hits_before = session.planner.cache.hits
            session.query("example")
            assert session.planner.cache.hits > hits_before


class TestEngineConstructionRace:
    def test_concurrent_engine_calls_build_exactly_once(self, monkeypatch):
        """Regression: the old unlocked check-then-insert could build the
        same engine twice, leaking the loser unclosed."""
        import repro.api.session as session_module

        real_make_engine = session_module.make_engine
        builds = []
        build_gate = threading.Barrier(8, timeout=30)

        def counting_make_engine(name, *args, **kwargs):
            builds.append(name)
            return real_make_engine(name, *args, **kwargs)

        monkeypatch.setattr(session_module, "make_engine", counting_make_engine)
        with repro.open(dataset="paper") as session:
            engines = []

            def grab():
                build_gate.wait()  # maximize the overlap window
                engines.append(session.engine("dream"))

            threads = [threading.Thread(target=grab) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert builds.count("dream") == 1
            assert len({id(engine) for engine in engines}) == 1


class TestFailureFinalization:
    class _ExplodingEngine:
        name = "exploding"
        supports_tracing = False

        def execute(self, *args, **kwargs):
            raise RuntimeError("boom in the engine")

        def close(self):
            pass

    def test_failed_query_finishes_the_trace_and_counts_the_failure(self):
        with repro.open(dataset="paper", trace=True) as session:
            session._engines["gstored"] = self._ExplodingEngine()
            with pytest.raises(RuntimeError, match="boom in the engine"):
                session.query("example")
            trace = session.tracer.last
            assert trace is not None
            assert "RuntimeError: boom in the engine" in trace.root.attrs["error"]
            assert trace.duration_s >= 0.0  # root span is closed, not leaked
            failures = session.metrics.snapshot()["repro_query_failures_total"]
            assert sum(failures["series"].values()) == 1
            assert "engine=exploding" in str(list(failures["series"]))

    def test_failure_metrics_work_without_tracing(self):
        with repro.open(dataset="paper") as session:
            session._engines["gstored"] = self._ExplodingEngine()
            with pytest.raises(RuntimeError, match="boom"):
                session.query("example")
            assert "repro_query_failures_total" in session.metrics.prometheus_text()

    def test_close_shuts_the_backend_down_even_when_an_engine_close_raises(self):
        class _BadCloseEngine:
            name = "bad-close"

            def close(self):
                raise RuntimeError("close failed")

        session = repro.open(dataset="paper", executor="threads", workers=2)
        session.query("example")  # warms the pool
        session._engines["bad-close"] = _BadCloseEngine()
        backend = session.backend
        with pytest.raises(RuntimeError, match="close failed"):
            session.close()
        assert session.closed
        assert backend._pool is None  # the pool did not leak


class TestEncodedRebuildsDelta:
    def test_record_query_reports_rebuilds_since_open(self):
        """Regression: the gauge used to absorb the whole process history."""

        def gauge_after_one_query():
            with repro.open(dataset="paper") as session:
                session.query("example")
                snapshot = session.metrics.snapshot()["repro_encoded_graph_rebuilds"]
                (value,) = snapshot["series"].values()
                return value

        first = gauge_after_one_query()
        second = gauge_after_one_query()
        # Each session reports only its own builds (one per site fragment of
        # its fresh graph), so the value is identical run after run instead
        # of climbing with the process-global counter.
        assert first == second


class TestQueryMany:
    def test_batch_preserves_order_and_reports_per_query(self):
        with repro.open(dataset="paper") as session:
            batch = session.query_many(["example", EXAMPLE_SPARQL])
            assert isinstance(batch, QueryBatch)
            assert len(batch) == 2
            assert batch[0].sorted_rows() == batch[1].sorted_rows()
            assert [entry["query_name"] for entry in batch.report] == ["example", "(inline)"]
            for entry in batch.report:
                assert entry["engine"] == "gStoreD"
                assert entry["backend"] == "serial"
                assert entry["rows"] == 4
                assert entry["shipped_bytes"] > 0
                assert entry["cache_hit"] is False

    def test_batch_warms_the_plan_cache_once(self):
        with repro.open(dataset="paper") as session:
            batch = session.query_many(["example", "example", "example"])
            assert len(batch) == 3
            # The warmup plus the first execution prime the cache; the later
            # identical queries plan from it.
            assert session.planner.cache.hits >= 2

    def test_batch_engine_override_applies_to_every_query(self):
        with repro.open(dataset="paper") as session:
            batch = session.query_many(["example"], engine="centralized")
            assert batch.report[0]["engine"] == "Centralized"

    def test_batch_reports_cache_hits(self):
        with repro.open(dataset="paper", result_cache=4) as session:
            batch = session.query_many(["example", "example"])
            assert [entry["cache_hit"] for entry in batch.report] == [False, True]


class TestLifecycle:
    def test_close_shuts_engines_and_backend_down(self):
        session = repro.open(dataset="paper", executor="threads", workers=2)
        session.query("example")
        backend = session.backend
        assert backend._pool is not None
        session.close()
        assert session.closed
        assert backend._pool is None
        assert session._engines == {}

    def test_close_is_idempotent(self):
        session = repro.open(dataset="paper")
        session.close()
        session.close()

    def test_closed_session_rejects_work(self):
        session = repro.open(dataset="paper")
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.query("example")
        with pytest.raises(RuntimeError, match="closed"):
            session.explain("example")
        with pytest.raises(RuntimeError, match="closed"):
            session.engine("dream")

    def test_context_manager_closes_on_exception(self):
        with pytest.raises(KeyError):
            with repro.open(dataset="paper") as session:
                raise KeyError("boom")
        assert session.closed


class TestAlternativeConstructors:
    def test_from_partitioned_wraps_a_custom_partitioning(self):
        partitioned = build_example_partitioning()
        with Session.from_partitioned(partitioned, dataset="custom") as session:
            assert session.partitioned is partitioned
            result = session.query(EXAMPLE_SPARQL)
            assert len(result) == 4

    def test_from_cluster_shares_the_caller_cluster(self):
        from repro.distributed import build_cluster

        cluster = build_cluster(build_example_partitioning())
        with Session.from_cluster(cluster) as session:
            assert session.cluster is cluster
            assert len(session.query(EXAMPLE_SPARQL)) == 4


class TestCustomRegisteredEngines:
    def test_accepts_config_engines_get_the_session_config_and_backend(self):
        """Sessions dispatch on EngineSpec.accepts_config, not on the name."""
        from repro.api import EngineSpec, register_engine
        from repro.api.engines import _ALIASES, _REGISTRY

        captured = {}

        def factory(cluster, config, backend):
            captured["config"] = config
            captured["backend"] = backend
            return repro.make_engine("gstored", cluster, config=config, backend=backend)

        register_engine(
            EngineSpec(
                name="custom-gstored",
                summary="test double",
                factory=factory,
                accepts_config=True,
            )
        )
        try:
            with repro.open(
                dataset="paper", executor="threads", workers=2, engine="custom-gstored"
            ) as session:
                result = session.query("example")
                assert len(result) == 4
                assert captured["config"] is session.config
                assert captured["backend"] is session.backend
        finally:
            _REGISTRY.pop("custom-gstored", None)
            _ALIASES.pop("custom-gstored", None)
