"""Determinism of one shared :class:`~repro.api.Session` under parallel queries.

The serving layer's contract (``docs/serving.md``) is that a query returns
the same answers, the same deterministic statistics and the same shipment
breakdown whether it ran alone or next to other queries on other threads.
These tests pin that contract: a serial re-run of every workload query is
fingerprinted first, then a thread storm re-runs them concurrently on the
same session — over every executor backend — and every concurrent result
must match its serial fingerprint bit for bit.

Timing fields are deliberately *outside* the fingerprint (wall-clock time is
scheduling-dependent by nature); everything else — rows, work counters,
per-stage shipment and message counts, the per-query ledger snapshot — is in.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro

EXAMPLE_SPARQL = (
    "PREFIX ex: <http://example.org/> "
    'SELECT ?p2 ?l WHERE { ?t ex:label ?l . ?p1 ex:influencedBy ?p2 . '
    '?p2 ex:mainInterest ?t . ?p1 ex:name "Crispin Wright"@en . }'
)
STAR_SPARQL = (
    "PREFIX ex: <http://example.org/> "
    "SELECT ?p ?t WHERE { ?p ex:mainInterest ?t . ?p ex:bornIn ?c . }"
)
QUERIES = {"example": EXAMPLE_SPARQL, "star": STAR_SPARQL}

#: (executor, workers) grid pinned by the acceptance criteria.
BACKENDS = [
    ("serial", None),
    ("threads", 1),
    ("threads", 2),
    ("threads", 8),
    ("processes", 1),
    ("processes", 2),
    ("processes", 8),
]


def fingerprint(result):
    """Every deterministic field of a result — no wall-clock anywhere."""
    stats = result.statistics
    stages = tuple(
        (
            stage.name,
            stage.shipped_bytes,
            stage.messages,
            tuple(sorted(stage.counters.items())),
        )
        for stage in stats.stages
    )
    shipment = result.shipment
    ledger = (
        shipment.total_bytes,
        shipment.total_messages,
        tuple(sorted(shipment.bytes_by_stage.items())),
        tuple(sorted(shipment.messages_by_stage.items())),
        tuple(sorted(shipment.bytes_by_kind.items())),
    )
    return (
        tuple(result.sorted_rows()),
        stats.num_results,
        tuple(sorted(stats.work.items())),
        stages,
        ledger,
    )


@pytest.mark.parametrize(("executor", "workers"), BACKENDS)
def test_concurrent_results_match_the_serial_rerun(executor, workers):
    kwargs = {"executor": executor} if workers is None else {
        "executor": executor,
        "workers": workers,
    }
    with repro.open(dataset="paper", **kwargs) as session:
        # Warm-up: the first execution of each query populates the plan
        # cache, so plan_cache counters are identical for every later run.
        for text in QUERIES.values():
            session.query(text)
        serial = {name: fingerprint(session.query(text)) for name, text in QUERIES.items()}

        def storm(thread_index):
            name = list(QUERIES)[thread_index % len(QUERIES)]
            return name, fingerprint(session.query(QUERIES[name]))

        with ThreadPoolExecutor(max_workers=8, thread_name_prefix="storm") as pool:
            outcomes = list(pool.map(storm, range(16)))
    for name, concurrent_fingerprint in outcomes:
        assert concurrent_fingerprint == serial[name]


def test_concurrent_mixed_engines_match_their_serial_reruns():
    """gStoreD, the centralized matcher and a baseline share one session."""
    engines = ("gstored", "centralized", "dream")
    with repro.open(dataset="paper", executor="threads", workers=2) as session:
        for engine in engines:
            session.query("example", engine=engine)  # warm plan + engine caches
        serial = {
            engine: fingerprint(session.query("example", engine=engine))
            for engine in engines
        }

        def storm(thread_index):
            engine = engines[thread_index % len(engines)]
            return engine, fingerprint(session.query("example", engine=engine))

        with ThreadPoolExecutor(max_workers=6, thread_name_prefix="mixed") as pool:
            outcomes = list(pool.map(storm, range(18)))
    answers = {engine: print_rows for engine, (print_rows, *_rest) in serial.items()}
    assert len(set(answers.values())) == 1  # all three engines agree on the query
    for engine, concurrent_fingerprint in outcomes:
        assert concurrent_fingerprint == serial[engine]


def test_shipment_ledger_isolates_overlapping_queries():
    """Two in-flight queries never see each other's messages.

    A barrier forces both threads to be inside ``session.query`` at the same
    time; each result's ledger snapshot must equal the single-query shipment.
    """
    with repro.open(dataset="paper", executor="threads", workers=2) as session:
        session.query("example")
        alone = session.query("example")
        barrier = threading.Barrier(2, timeout=30)
        results = {}

        def run(slot):
            barrier.wait()
            results[slot] = session.query("example")

        threads = [threading.Thread(target=run, args=(slot,)) for slot in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    for result in results.values():
        assert result.shipment.total_bytes == alone.shipment.total_bytes
        assert result.shipment.total_messages == alone.shipment.total_messages
        assert result.statistics.total_shipment_bytes == alone.statistics.total_shipment_bytes


class TestResultCacheUnderMutation:
    def test_graph_mutation_invalidates_cached_results(self):
        from repro.rdf import IRI, Literal, Triple

        with repro.open(dataset="paper", result_cache=8) as session:
            miss = session.query("example")
            hit = session.query("example")
            assert miss.cache_hit is False
            assert hit.cache_hit is True
            assert hit.sorted_rows() == miss.sorted_rows()
            assert session.result_cache.describe()["hits"] == 1

            # Any successful mutation bumps RDFGraph.version, which is part
            # of the cache key — the next query must execute, not hit.
            ex = "http://example.org/"
            assert session.graph.add(
                Triple(IRI(ex + "NewPhilosopher"), IRI(ex + "name"), Literal("New", language="en"))
            )
            after = session.query("example")
            assert after.cache_hit is False
            assert after.sorted_rows() == miss.sorted_rows()
            assert session.result_cache.describe()["misses"] == 2

    def test_cache_hits_are_correct_under_concurrency(self):
        with repro.open(dataset="paper", result_cache=8, executor="threads", workers=2) as session:
            baseline = session.query("example")

            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(pool.map(lambda _: session.query("example"), range(16)))
            assert all(r.sorted_rows() == baseline.sorted_rows() for r in results)
            assert all(r.cache_hit for r in results)
            # A hit's statistics stay detached: mutating one result's copy
            # cannot leak into another's.
            results[0].statistics.num_results = -1
            assert results[1].statistics.num_results == baseline.statistics.num_results


class TestUpdateSerialization:
    """``Session.update`` holds an exclusive writer gate against queries.

    PR 7 made one session safe under parallel queries; a mutation must
    therefore wait for every in-flight query to drain (and hold new ones
    back) instead of patching encodings and fragments under their feet.
    """

    def test_update_waits_for_inflight_queries(self):
        from repro.rdf import IRI, Triple

        with repro.open(dataset="paper", executor="serial") as session:
            engine = session.engine()
            query_entered = threading.Event()
            release_query = threading.Event()
            update_done = threading.Event()
            real_execute = engine.execute

            def slow_execute(*args, **kwargs):
                query_entered.set()
                assert release_query.wait(10)
                return real_execute(*args, **kwargs)

            engine.execute = slow_execute
            ex = "http://example.org/"
            added = Triple(IRI(ex + "Gated"), IRI(ex + "name"), IRI(ex + "GatedName"))

            def run_query():
                session.query("example")

            def run_update():
                assert query_entered.wait(10)
                session.update(add=[added])
                update_done.set()

            query_thread = threading.Thread(target=run_query)
            update_thread = threading.Thread(target=run_update)
            query_thread.start()
            update_thread.start()
            assert query_entered.wait(10)
            # The query is parked inside execute() holding the read side of
            # the gate: the update must not complete until it finishes.
            assert not update_done.wait(0.3)
            release_query.set()
            query_thread.join(10)
            update_thread.join(10)
            assert update_done.is_set()
            assert added in set(session.graph)

    def test_queries_issued_during_an_update_see_the_mutated_state(self):
        from repro.distributed.cluster import Cluster
        from repro.rdf import IRI, Triple

        with repro.open(dataset="paper", executor="serial") as session:
            ex = "http://example.org/"
            added = Triple(IRI(ex + "Held"), IRI(ex + "name"), IRI(ex + "HeldName"))
            update_entered = threading.Event()
            release_update = threading.Event()
            real_apply = Cluster.apply

            def slow_apply(cluster, *args, **kwargs):
                update_entered.set()
                assert release_update.wait(10)
                return real_apply(cluster, *args, **kwargs)

            rows = []

            def run_update():
                session.update(add=[added])

            def run_query():
                assert update_entered.wait(10)
                # Issued mid-update: must block until the writer releases,
                # then observe the fully-applied mutation.
                result = session.query(
                    "PREFIX ex: <http://example.org/> "
                    "SELECT ?n WHERE { ex:Held ex:name ?n . }"
                )
                rows.append(result.sorted_rows())

            import unittest.mock

            with unittest.mock.patch.object(Cluster, "apply", slow_apply):
                update_thread = threading.Thread(target=run_update)
                query_thread = threading.Thread(target=run_query)
                update_thread.start()
                query_thread.start()
                assert update_entered.wait(10)
                assert not rows  # the query is gated behind the writer
                release_update.set()
                update_thread.join(10)
                query_thread.join(10)
            assert len(rows) == 1 and len(rows[0]) == 1
