"""Tests for :mod:`repro.api.serving` — AsyncSession, admission, HTTP server."""

import asyncio
import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro
from repro.api import AdmissionController, AdmissionError, AsyncSession, QueryServer
from repro.api.serving import (
    INFLIGHT_FAMILY,
    QUEUE_DEPTH_FAMILY,
    REJECTED_FAMILY,
)


class TestAsyncSession:
    def test_gathered_queries_share_one_warm_session(self):
        async def main():
            async with AsyncSession.open(dataset="paper") as session:
                first, second = await asyncio.gather(
                    session.query("example"),
                    session.query("example", engine="centralized"),
                )
                assert first.sorted_rows() == second.sorted_rows()
                assert first.shipment.total_bytes > 0
                return session

        session = asyncio.run(main())
        assert session.closed
        assert session.session.closed  # the wrapped Session closed too

    def test_wraps_an_existing_session(self):
        inner = repro.open(dataset="paper")

        async def main():
            async with AsyncSession(inner, max_concurrency=2) as session:
                assert session.max_concurrency == 2
                result = await session.query("example")
                assert len(result) == 4
                plan = await session.explain("example")
                assert "query shape" in plan

        asyncio.run(main())
        assert inner.closed

    def test_query_many_returns_the_batch_report(self):
        async def main():
            async with AsyncSession.open(dataset="paper") as session:
                batch = await session.query_many(["example", "example"])
                assert len(batch) == 2
                assert [entry["rows"] for entry in batch.report] == [4, 4]

        asyncio.run(main())

    def test_closed_async_session_rejects_work(self):
        async def main():
            session = AsyncSession.open(dataset="paper")
            await session.close()
            await session.close()  # idempotent
            with pytest.raises(RuntimeError, match="closed"):
                await session.query("example")

        asyncio.run(main())

    def test_rejects_a_nonpositive_concurrency(self):
        with repro.open(dataset="paper") as inner:
            with pytest.raises(ValueError, match="max_concurrency"):
                AsyncSession(inner, max_concurrency=0)


class TestAdmissionController:
    def test_validates_its_bounds(self):
        with pytest.raises(ValueError, match="max_inflight"):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError, match="max_queue"):
            AdmissionController(max_queue=-1)

    def test_idle_controller_admits_even_with_zero_queue(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        with controller.admit():
            assert controller.inflight == 1
        assert controller.inflight == 0

    def test_overload_rejects_instead_of_queueing(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        occupied = threading.Event()
        release = threading.Event()

        def hold():
            with controller.admit():
                occupied.set()
                release.wait(timeout=30)

        holder = threading.Thread(target=hold)
        holder.start()
        try:
            assert occupied.wait(timeout=30)
            with pytest.raises(AdmissionError, match="queue full"):
                with controller.admit():
                    pass  # pragma: no cover - never admitted
            assert controller.rejected == 1
        finally:
            release.set()
            holder.join()

    def test_queued_caller_runs_once_a_slot_frees(self):
        controller = AdmissionController(max_inflight=1, max_queue=1)
        occupied = threading.Event()
        release = threading.Event()
        order = []

        def hold():
            with controller.admit():
                occupied.set()
                release.wait(timeout=30)
                order.append("holder")

        def queued():
            with controller.admit():
                order.append("queued")

        holder = threading.Thread(target=hold)
        holder.start()
        assert occupied.wait(timeout=30)
        waiter = threading.Thread(target=queued)
        waiter.start()
        while controller.queued == 0 and waiter.is_alive():
            pass  # spin until the waiter is parked in the queue
        release.set()
        holder.join()
        waiter.join()
        assert order == ["holder", "queued"]
        assert controller.rejected == 0

    def test_admission_metrics_are_precreated_and_updated(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        controller = AdmissionController(max_inflight=2, max_queue=0, metrics=registry)
        text = registry.prometheus_text()
        for family in (QUEUE_DEPTH_FAMILY, INFLIGHT_FAMILY, REJECTED_FAMILY):
            assert family in text
        with controller.admit():
            assert f"{INFLIGHT_FAMILY} 1" in registry.prometheus_text()
        assert f"{INFLIGHT_FAMILY} 0" in registry.prometheus_text()


def _post(base, payload, timeout=30):
    request = urllib.request.Request(
        base + "/query",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


class TestQueryServer:
    @pytest.fixture()
    def served(self):
        session = repro.open(dataset="paper", result_cache=8)
        with QueryServer(session, port=0, max_inflight=2, max_queue=2) as server:
            host, port = server.address
            yield session, server, f"http://{host}:{port}"
        session.close()

    def test_healthz_reports_the_session(self, served):
        session, _server, base = served
        with urllib.request.urlopen(base + "/healthz", timeout=30) as response:
            body = json.loads(response.read())
        assert body == {
            "status": "ok",
            "dataset": session.dataset,
            "engine": session.default_engine,
            "executor": session.backend.name,
        }

    def test_query_roundtrip_and_cache_hit(self, served):
        _session, _server, base = served
        status, first = _post(base, {"query": "example"})
        assert status == 200
        assert first["num_rows"] == 4
        assert first["cache_hit"] is False
        assert len(first["rows"]) == 4
        status, second = _post(base, {"query": "example"})
        assert second["cache_hit"] is True
        assert second["rows"] == first["rows"]

    def test_engine_override_is_honored(self, served):
        _session, _server, base = served
        status, body = _post(base, {"query": "example", "engine": "centralized"})
        assert status == 200
        assert body["engine"] == "Centralized"

    def test_bad_requests_get_400(self, served):
        _session, _server, base = served
        request = urllib.request.Request(
            base + "/query", data=b"not json", headers={"Content-Type": "application/json"}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, {"query": 42})
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, {"query": "example", "engine": "sparkle"})
        assert excinfo.value.code == 400

    def test_unknown_paths_get_404(self, served):
        _session, _server, base = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base + "/nope", timeout=30)
        assert excinfo.value.code == 404

    def test_metrics_endpoint_exposes_the_new_families(self, served):
        _session, _server, base = served
        _post(base, {"query": "example"})
        _post(base, {"query": "example"})
        with urllib.request.urlopen(base + "/metrics", timeout=30) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode("utf-8")
        for family in (
            "repro_queries_total",
            "repro_result_cache_hits_total",
            "repro_result_cache_misses_total",
            QUEUE_DEPTH_FAMILY,
            INFLIGHT_FAMILY,
            REJECTED_FAMILY,
        ):
            assert family in text

    def test_overload_sheds_with_429(self, monkeypatch):
        """Saturate inflight + queue with blocked queries; the next is 429."""
        session = repro.open(dataset="paper")
        release = threading.Event()
        entered = threading.Semaphore(0)
        real_query = session.query

        def slow_query(*args, **kwargs):
            entered.release()
            release.wait(timeout=30)
            return real_query(*args, **kwargs)

        monkeypatch.setattr(session, "query", slow_query)
        with QueryServer(session, port=0, max_inflight=1, max_queue=1) as server:
            host, port = server.address
            base = f"http://{host}:{port}"
            with ThreadPoolExecutor(max_workers=2) as pool:
                blocked = [pool.submit(_post, base, {"query": "example"}) for _ in range(2)]
                assert entered.acquire(timeout=30)  # one query is executing
                while server.admission.queued == 0:
                    pass  # spin until the second request is parked in the queue
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _post(base, {"query": "example"})
                assert excinfo.value.code == 429
                assert "retry" in json.loads(excinfo.value.read())["error"]
                release.set()
                statuses = [future.result()[0] for future in blocked]
            assert statuses == [200, 200]
            assert f"{REJECTED_FAMILY} 1" in session.metrics.prometheus_text()
        session.close()

    def test_shutdown_keeps_the_session_open(self):
        session = repro.open(dataset="paper")
        server = QueryServer(session, port=0).start()
        server.shutdown()
        server.shutdown()  # idempotent
        assert not session.closed
        assert len(session.query("example")) == 4
        session.close()
