"""The legacy entry points still work — but say where the new API lives."""

import warnings

import pytest

import repro
import repro.bench as bench
from repro.partition import HashPartitioner


class TestQuickstartCluster:
    def test_warns_and_points_at_repro_open(self):
        with pytest.warns(DeprecationWarning, match=r"repro\.open"):
            repro.quickstart_cluster()

    def test_behavior_is_unchanged(self):
        with pytest.warns(DeprecationWarning):
            cluster, namespaces = repro.quickstart_cluster(num_fragments=3, strategy="hash")
        # Same data, same partitioning, same answers as the session path.
        with repro.open(dataset="paper", sites=3, partitioner="hash") as session:
            assert cluster.num_sites == session.num_sites == 3
            assert len(cluster.graph) == len(session.graph)
            query = repro.parse_query(
                "PREFIX ex: <http://example.org/> "
                'SELECT ?p2 WHERE { ?p1 ex:influencedBy ?p2 . ?p1 ex:name "Crispin Wright"@en . }'
            )
            with repro.GStoreDEngine(cluster) as engine:
                legacy = engine.execute(query)
            assert session.query(query).same_solutions(legacy.results)
        assert namespaces.resolve("ex:label").value == "http://example.org/label"


class TestBenchMakePartitioner:
    def test_warns_and_points_at_the_replacement(self):
        with pytest.warns(DeprecationWarning, match=r"repro\.partition\.make_partitioner"):
            bench.make_partitioner("hash", 3)

    def test_behavior_is_unchanged(self):
        with pytest.warns(DeprecationWarning):
            partitioner = bench.make_partitioner("hash", 3)
        assert isinstance(partitioner, HashPartitioner)
        assert partitioner.num_fragments == 3

    def test_unknown_strategy_still_raises_key_error(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(KeyError):
                bench.make_partitioner("round_robin", 3)


def test_internal_call_paths_do_not_warn():
    """The harness itself must not route through its own deprecated shim."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        workload = bench.prepare_workload("YAGO2", num_sites=2)
        bench.run_query(workload, "YQ1")
