"""Registry-wide parity suite.

Two guarantees of the :mod:`repro.api` redesign:

* every registered engine answers the paper-example workload with exactly
  the same sorted rows as :func:`repro.store.evaluate_centralized`, under
  the serial and the threaded executor backend;
* for each evaluator, the new API is *bit-identical* to its pre-redesign
  call path — same sorted rows, and same ``shipped_bytes`` / ``messages``
  fingerprint where the engine ships data.
"""

import pytest

import repro
from repro import EngineConfig, GStoreDEngine, parse_query
from repro.api import Result, engine_names, make_engine
from repro.baselines import BASELINE_ENGINES
from repro.datasets.paper_example import build_example_partitioning, example_query
from repro.distributed import build_cluster
from repro.store import evaluate_centralized

#: The paper-example workload: the Fig. 2 query plus a star and a path query
#: over the same graph, exercising the star shortcut and the general
#: pipeline of every engine.
WORKLOAD = {
    "example": example_query(),
    "star": parse_query(
        "PREFIX ex: <http://example.org/> "
        'SELECT ?p ?n WHERE { ?p ex:name ?n . ?p ex:birthDate "1942-12-21" . }'
    ),
    "path": parse_query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?p ?l WHERE { ?p ex:mainInterest ?t . ?t ex:label ?l . }"
    ),
}


def centralized_rows(graph, query):
    """The ground-truth sorted rows (distinct-projected like every engine)."""
    raw = evaluate_centralized(graph, query)
    return Result(raw.project(query.effective_projection, distinct=True)).sorted_rows()


@pytest.mark.parametrize("executor", ["serial", "threads"])
@pytest.mark.parametrize("engine_name", engine_names())
def test_every_engine_matches_centralized_on_the_paper_workload(engine_name, executor):
    with repro.open(
        dataset="paper", engine=engine_name, executor=executor, workers=2
    ) as session:
        for query_name, query in WORKLOAD.items():
            result = session.query(query, query_name=query_name)
            expected = centralized_rows(session.graph, query)
            assert result.sorted_rows() == expected, (
                f"{engine_name} under {executor} disagrees on {query_name}"
            )
            assert result.sorted_rows()  # the workload has no empty answers


def shipment_fingerprint(statistics):
    return [(s.name, s.shipped_bytes, s.messages) for s in statistics.stages]


class TestNewApiIsBitIdenticalToTheOldCallPaths:
    def test_gstored_via_session_matches_direct_engine_construction(self):
        query = example_query()
        # Old path: hand-built cluster + GStoreDEngine.
        old_cluster = build_cluster(build_example_partitioning())
        with GStoreDEngine(old_cluster, EngineConfig.full()) as engine:
            old = engine.execute(query, query_name="example")
        # New path: session + registry, over the same Fig. 1 partitioning.
        with repro.open(dataset="paper", partitioner="paper") as session:
            new = session.query(query, query_name="example")
        assert new.sorted_rows() == Result.from_distributed(old).sorted_rows()
        assert shipment_fingerprint(new.statistics) == shipment_fingerprint(old.statistics)

    @pytest.mark.parametrize("report_name", sorted(BASELINE_ENGINES))
    def test_baselines_via_registry_match_direct_construction(self, report_name):
        query = example_query()
        old_cluster = build_cluster(build_example_partitioning())
        old = BASELINE_ENGINES[report_name](old_cluster).execute(query, query_name="example")

        new_cluster = build_cluster(build_example_partitioning())
        with make_engine(report_name, new_cluster) as engine:
            new = engine.execute(query, query_name="example")
        assert new.sorted_rows() == Result.from_distributed(old).sorted_rows()
        assert shipment_fingerprint(new.statistics) == shipment_fingerprint(old.statistics)
        assert new.statistics.engine == old.statistics.engine == report_name

    def test_centralized_engine_matches_evaluate_centralized(self):
        cluster = build_cluster(build_example_partitioning())
        for query in WORKLOAD.values():
            with make_engine("centralized", cluster) as engine:
                new = engine.execute(query)
            assert new.sorted_rows() == centralized_rows(cluster.graph, query)
            assert new.statistics.total_shipment_bytes == 0
