"""Shared fixtures and Hypothesis configuration for the whole test-suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.datasets import btc, lubm, yago

# Shared Hypothesis profiles.  ``default`` bounds example counts so the fast
# suite stays fast even for tests without an explicit ``@settings``;
# ``thorough`` is for local deep runs (HYPOTHESIS_PROFILE=thorough).
settings.register_profile(
    "default",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("thorough", max_examples=200, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
from repro.datasets.paper_example import (
    build_example_graph,
    build_example_partitioning,
    example_query,
)
from repro.distributed import build_cluster
from repro.partition import HashPartitioner
from repro.rdf import IRI, Literal, Namespace, RDFGraph, Triple, Variable
from repro.sparql import QueryGraph

EX = Namespace("http://example.org/")


@pytest.fixture(scope="session")
def example_graph() -> RDFGraph:
    """The paper's Fig. 1 RDF graph."""
    return build_example_graph()


@pytest.fixture(scope="session")
def example_partitioning():
    """The paper's Fig. 1 three-fragment partitioning."""
    return build_example_partitioning()


@pytest.fixture(scope="session")
def example_query_obj():
    """The paper's Fig. 2 query."""
    return example_query()


@pytest.fixture(scope="session")
def example_query_graph(example_query_obj) -> QueryGraph:
    return QueryGraph(example_query_obj.bgp)


@pytest.fixture(scope="session")
def example_cluster(example_partitioning):
    return build_cluster(example_partitioning)


@pytest.fixture(scope="session")
def lubm_graph() -> RDFGraph:
    return lubm.generate(scale=1)


@pytest.fixture(scope="session")
def yago_graph() -> RDFGraph:
    return yago.generate(scale=1)


@pytest.fixture(scope="session")
def btc_graph() -> RDFGraph:
    return btc.generate(scale=1)


@pytest.fixture(scope="session")
def lubm_cluster(lubm_graph):
    return build_cluster(HashPartitioner(4).partition(lubm_graph))


@pytest.fixture()
def tiny_graph() -> RDFGraph:
    """A 4-vertex toy graph used by many unit tests.

    a --knows--> b --knows--> c,  a --likes--> c,  c --name--> "Carol"
    """
    graph = RDFGraph(name="tiny")
    a, b, c = EX.term("a"), EX.term("b"), EX.term("c")
    graph.add(Triple(a, EX.term("knows"), b))
    graph.add(Triple(b, EX.term("knows"), c))
    graph.add(Triple(a, EX.term("likes"), c))
    graph.add(Triple(c, EX.term("name"), Literal("Carol")))
    return graph
