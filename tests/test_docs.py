"""Lightweight lint for the docs tree (and the README).

The CI docs job runs exactly this module.  It keeps the documentation
honest without a docs toolchain:

* every ``` fence is closed, and every opener declares a language;
* every ``python`` fence actually compiles (documents with broken example
  code fail the build — execution is deliberately out of scope, since the
  examples shell out to the CLI and build clusters);
* every relative markdown link points at a file that exists;
* the docs mention the public knobs they claim to document (spot checks, so
  a rename that orphans the docs fails here and not in a user's terminal).
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted((REPO_ROOT / "docs").glob("*.md")) + [REPO_ROOT / "README.md"]

#: Languages allowed on fence openers; "text" is for ASCII diagrams/output.
KNOWN_LANGUAGES = {"bash", "python", "text"}

_FENCE = re.compile(r"^```(.*)$")
_RELATIVE_LINK = re.compile(r"\[[^\]]+\]\((?!https?://|#)([^)#]+)(?:#[^)]*)?\)")


def _fences(text):
    """Yield ``(language, body, opener_line_number)`` for every fence."""
    language = None
    body: list = []
    opened_at = 0
    for number, line in enumerate(text.splitlines(), start=1):
        match = _FENCE.match(line.strip())
        if not match:
            if language is not None:
                body.append(line)
            continue
        if language is None:
            language = match.group(1).strip() or "(none)"
            body = []
            opened_at = number
        else:
            yield language, "\n".join(body), opened_at
            language = None
    if language is not None:
        yield language, "\n".join(body), opened_at
        yield "UNCLOSED", "", opened_at


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_fences_are_closed_and_tagged(path):
    for language, _body, line in _fences(path.read_text(encoding="utf-8")):
        assert language != "UNCLOSED", f"{path.name}:{line}: unclosed code fence"
        assert language != "(none)", f"{path.name}:{line}: fence without a language tag"
        assert language in KNOWN_LANGUAGES, (
            f"{path.name}:{line}: unknown fence language {language!r} "
            f"(expected one of {sorted(KNOWN_LANGUAGES)})"
        )


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_python_fences_compile(path):
    for language, body, line in _fences(path.read_text(encoding="utf-8")):
        if language != "python":
            continue
        try:
            compile(body, f"{path.name}:{line}", "exec")
        except SyntaxError as error:  # pragma: no cover - failure path
            pytest.fail(f"{path.name}:{line}: python fence does not compile: {error}")


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(path):
    text = path.read_text(encoding="utf-8")
    for match in _RELATIVE_LINK.finditer(text):
        target = (path.parent / match.group(1)).resolve()
        assert target.exists(), f"{path.name}: broken relative link -> {match.group(1)}"


def test_docs_cover_the_execution_surface():
    text = (REPO_ROOT / "docs" / "execution.md").read_text(encoding="utf-8")
    for required in (
        "REPRO_EXECUTOR",
        "REPRO_MAX_WORKERS",
        "SiteTask",
        "WorkerBootstrap",
        "processes",
        "determinism",
    ):
        assert required in text, f"docs/execution.md no longer mentions {required}"
    # The documented executor names must match the code's registry.
    from repro.exec import EXECUTOR_CHOICES

    for name in EXECUTOR_CHOICES:
        assert f"`{name}`" in text, f"docs/execution.md does not document executor {name!r}"


def test_docs_cover_the_api_surface():
    text = (REPO_ROOT / "docs" / "api.md").read_text(encoding="utf-8")
    for required in (
        "repro.open",
        "Session",
        "make_engine",
        "Result",
        "sorted_rows",
        "QueryEngine",
        "DeprecationWarning",
    ):
        assert required in text, f"docs/api.md no longer mentions {required}"
    # The documented registry must match the code's registry.
    from repro.api import engine_names

    for name in engine_names():
        assert f"`{name}`" in text, f"docs/api.md does not document engine {name!r}"


def test_docs_cover_the_observability_surface():
    text = (REPO_ROOT / "docs" / "observability.md").read_text(encoding="utf-8")
    for required in (
        "--trace",
        "--metrics",
        "REPRO_PROFILE",
        "Perfetto",
        "validate_chrome_trace",
        "repro_queries_total",
        "repro_stage_seconds",
        "repro_shipped_bytes_total",
        "SpanContext",
        "synthesized",
    ):
        assert required in text, f"docs/observability.md no longer mentions {required}"


def test_docs_cover_the_serving_surface():
    text = (REPO_ROOT / "docs" / "serving.md").read_text(encoding="utf-8")
    for required in (
        "AsyncSession",
        "query_many",
        "result_cache",
        "QueryServer",
        "repro serve",
        "429",
        "max-inflight",
        "max-queue",
        "repro_admission_queue_depth",
        "repro_admission_rejected_total",
        "repro_result_cache_hits_total",
        "repro_result_cache_misses_total",
        "determinism",
    ):
        assert required in text, f"docs/serving.md no longer mentions {required}"


def test_docs_cover_the_fault_surface():
    text = (REPO_ROOT / "docs" / "faults.md").read_text(encoding="utf-8")
    for required in (
        "--inject-faults",
        "FaultPlan",
        "random:SEED",
        "kill:",
        "flaky:",
        "slow:",
        "unrecoverable",
        "RetryPolicy",
        "degraded",
        "missing_sites",
        "repro_task_retries_total",
        "repro_site_failures_total",
        "repro_degraded_queries_total",
        "chaos-smoke",
        "determinism",
    ):
        assert required in text, f"docs/faults.md no longer mentions {required}"
    # The documented injectable stages must match the code's registry.
    from repro.faults import INJECTABLE_STAGES

    for stage in INJECTABLE_STAGES:
        assert f"`{stage}`" in text, f"docs/faults.md does not document stage {stage!r}"


def test_docs_cover_the_persistence_surface():
    text = (REPO_ROOT / "docs" / "persistence.md").read_text(encoding="utf-8")
    for required in (
        "repro store",
        "ClusterStore",
        "schema_version",
        "delta_head",
        "compact",
        "repro-fragment/3",
        "delta_seq",
        "read-only",
        "repro_encoded_graph_rebuilds",
        "repro_encoded_graph_patches",
        "BENCH_persist.json",
        "persist-smoke",
        "determinism",
    ):
        assert required in text, f"docs/persistence.md no longer mentions {required}"


def test_docs_cover_every_benchmark_module():
    text = (REPO_ROOT / "docs" / "benchmarks.md").read_text(encoding="utf-8")
    for module in sorted((REPO_ROOT / "benchmarks").glob("bench_*.py")):
        assert module.name in text, f"docs/benchmarks.md does not mention {module.name}"


def test_readme_points_into_the_docs_tree():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for target in (
        "docs/architecture.md",
        "docs/execution.md",
        "docs/benchmarks.md",
        "docs/observability.md",
        "docs/serving.md",
        "docs/faults.md",
        "docs/persistence.md",
    ):
        assert target in text, f"README.md does not link to {target}"
