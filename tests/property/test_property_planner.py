"""Property-based tests: planner orders never change query answers.

The planner's whole contract is that it only reorders the search.  These
tests drive random graphs, random connected queries and random
partitionings through (a) the centralized matcher and (b) the distributed
engine, with and without the planner, and require identical result sets.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EngineConfig, GStoreDEngine
from repro.datasets import random_assignment, random_connected_query, random_graph
from repro.distributed import build_cluster
from repro.partition import build_partitioned_graph
from repro.planner import PlanOptimizer, QueryPlanner, collect_statistics, shape_key
from repro.sparql import QueryGraph
from repro.store import LocalMatcher

seeds = st.integers(min_value=0, max_value=5_000)
fragment_counts = st.integers(min_value=1, max_value=4)
query_sizes = st.integers(min_value=1, max_value=4)
constant_probabilities = st.sampled_from([0.0, 0.25, 0.5])


class TestPlannerEquivalence:
    @given(seeds, query_sizes, constant_probabilities)
    @settings(max_examples=20, deadline=None)
    def test_centralized_matcher_same_solutions(self, seed, query_edges, constant_probability):
        graph = random_graph(seed, num_vertices=16, num_edges=32, num_predicates=3)
        query = random_connected_query(
            graph, seed + 31, num_edges=query_edges, constant_probability=constant_probability
        )
        static = LocalMatcher(graph)
        planned = LocalMatcher(graph, planner=QueryPlanner.from_graph(graph))
        assert planned.evaluate(query).same_solutions(static.evaluate(query))

    @given(seeds, fragment_counts, query_sizes)
    @settings(max_examples=10, deadline=None)
    def test_distributed_engine_same_solutions(self, seed, num_fragments, query_edges):
        graph = random_graph(seed, num_vertices=16, num_edges=32, num_predicates=3)
        query = random_connected_query(graph, seed + 101, num_edges=query_edges, constant_probability=0.25)
        assignment = random_assignment(graph, seed + 7, num_fragments)
        partitioned = build_partitioned_graph(graph, assignment, num_fragments=num_fragments)
        cluster = build_cluster(partitioned)
        expected = GStoreDEngine(
            cluster, EngineConfig.full().with_options(use_planner=False)
        ).execute(query)
        cluster.reset_network()
        actual = GStoreDEngine(cluster, EngineConfig.full()).execute(query)
        assert actual.results.same_solutions(expected.results)


class TestPlanInvariants:
    @given(seeds, query_sizes)
    @settings(max_examples=20, deadline=None)
    def test_plan_is_always_a_permutation(self, seed, query_edges):
        graph = random_graph(seed, num_vertices=16, num_edges=32, num_predicates=3)
        query = random_connected_query(graph, seed + 13, num_edges=query_edges, constant_probability=0.3)
        query_graph = QueryGraph(query.bgp)
        plan = PlanOptimizer(collect_statistics(graph)).plan(query_graph)
        assert sorted(plan.vertex_order) == list(range(query_graph.num_vertices))
        assert sorted(plan.edge_order) == list(range(query_graph.num_edges))

    @given(seeds, query_sizes)
    @settings(max_examples=20, deadline=None)
    def test_shape_key_stable_under_replanning(self, seed, query_edges):
        graph = random_graph(seed, num_vertices=16, num_edges=32, num_predicates=3)
        query = random_connected_query(graph, seed + 13, num_edges=query_edges, constant_probability=0.3)
        query_graph = QueryGraph(query.bgp)
        assert shape_key(query_graph) == shape_key(QueryGraph(query.bgp))
