"""Property-based equivalence: encoded integer kernel vs the object path.

The dictionary-encoding PR swapped the matching kernel under every engine.
This suite runs the *pre-encoding* object path as the reference — the
seed's ``LocalMatcher`` search and candidate computation over
``Node``/``Triple`` objects, preserved verbatim in
``benchmarks/kernel_reference.py`` (shared with the kernel benchmark so the
property suite and the bench gate validate against the same baseline) —
and asserts, on random graphs and queries, that the encoded kernel produces

* the identical *sequence* of match assignments (not just the same set),
* the identical ``search_steps`` work counter, and
* identical result rows and per-stage shipment fingerprints when the kernel
  runs under the distributed engine at workers 1, 2 and 8.
"""

import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))
from kernel_reference import ReferenceObjectMatcher, reference_candidates

from repro.bench import stage_shipment_snapshot
from repro.core import EngineConfig, GStoreDEngine
from repro.datasets import random_assignment, random_connected_query, random_graph
from repro.distributed import build_cluster
from repro.partition import build_partitioned_graph
from repro.sparql.query_graph import QueryGraph
from repro.store import LocalMatcher, SignatureIndex, evaluate_centralized

seeds = st.integers(min_value=0, max_value=5_000)
fragment_counts = st.integers(min_value=1, max_value=4)
query_sizes = st.integers(min_value=1, max_value=4)
constant_probabilities = st.sampled_from([0.0, 0.25, 0.5])
#: The worker counts the kernel acceptance contract names.
worker_counts = st.sampled_from([1, 2, 8])

SERIAL = EngineConfig.full().with_options(executor="serial")


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
def sorted_rows(results):
    """Canonical sorted representation of a result set."""
    return sorted(sorted(row.items()) for row in results.to_table())


class TestKernelEquivalence:
    @given(seeds, query_sizes, constant_probabilities)
    @settings(max_examples=40, deadline=None)
    def test_encoded_kernel_replays_the_object_path_exactly(
        self, seed, query_edges, constant_probability
    ):
        """Same match sequence, same search_steps, on random graphs/queries."""
        graph = random_graph(seed, num_vertices=16, num_edges=32, num_predicates=3)
        query = random_connected_query(
            graph, seed + 101, num_edges=query_edges, constant_probability=constant_probability
        )
        query_graph = QueryGraph.from_query(query)
        reference = ReferenceObjectMatcher(graph)
        encoded = LocalMatcher(graph)
        reference_matches = list(reference.find_matches(query_graph))
        encoded_matches = list(encoded.find_matches(query_graph))
        assert encoded_matches == reference_matches
        assert encoded.search_steps == reference.search_steps

    @given(seeds, query_sizes)
    @settings(max_examples=15, deadline=None)
    def test_candidate_pools_match_the_object_path(self, seed, query_edges):
        from repro.store import compute_candidates

        graph = random_graph(seed, num_vertices=16, num_edges=32, num_predicates=3)
        query = random_connected_query(graph, seed + 11, num_edges=query_edges)
        query_graph = QueryGraph.from_query(query)
        index = SignatureIndex(graph)
        assert compute_candidates(graph, query_graph, index) == reference_candidates(
            graph, query_graph, index
        )

    @given(seeds, fragment_counts, query_sizes, constant_probabilities, worker_counts)
    @settings(max_examples=10, deadline=None)
    def test_distributed_rows_and_fingerprints_at_workers_1_2_8(
        self, seed, num_fragments, query_edges, constant_probability, workers
    ):
        """The kernel swap is invisible to the engines: identical rows and
        identical per-stage shipment fingerprints under serial and threaded
        execution at the contract's worker counts.  (The process-pool legs at
        workers 1/2/8 live in test_property_exec.py.)"""
        graph = random_graph(seed, num_vertices=16, num_edges=32, num_predicates=3)
        query = random_connected_query(
            graph, seed + 101, num_edges=query_edges, constant_probability=constant_probability
        )
        assignment = random_assignment(graph, seed + 7, num_fragments)
        partitioned = build_partitioned_graph(graph, assignment, num_fragments=num_fragments)
        cluster = build_cluster(partitioned)

        expected = evaluate_centralized(graph, query).project(
            query.effective_projection, distinct=True
        )
        expected_rows = sorted_rows(expected)

        cluster.reset_network()
        serial = GStoreDEngine(cluster, SERIAL).execute(query)
        serial_snapshot = stage_shipment_snapshot(serial)

        cluster.reset_network()
        threaded_engine = GStoreDEngine(cluster, EngineConfig.full().with_workers(workers))
        threaded = threaded_engine.execute(query)
        threaded_engine.close()

        assert sorted_rows(serial.results) == expected_rows
        assert sorted_rows(threaded.results) == expected_rows
        assert stage_shipment_snapshot(threaded) == serial_snapshot
