"""Property-based equivalence: every matching kernel vs the object path.

The dictionary-encoding PR swapped the matching kernel under every engine;
the vectorized-kernel PR split it into three selectable implementations
(``sets`` / ``python`` / ``vectorized``).  This suite runs the
*pre-encoding* object path as the reference — the seed's ``LocalMatcher``
search and candidate computation over ``Node``/``Triple`` objects,
preserved verbatim in ``benchmarks/kernel_reference.py`` (shared with the
kernel benchmark so the property suite and the bench gate validate against
the same baseline) — and asserts, on random graphs and queries, that every
kernel produces

* the identical *sequence* of match assignments (not just the same set),
* the identical ``search_steps`` work counter — also after graph mutations
  (incremental adjacency patching) and under depth-0 frontier sharding, and
* identical result rows and per-stage shipment fingerprints when the kernel
  runs under the distributed engine (serial / threads / processes, workers
  1, 2 and 8, with and without intra-site sharding).
"""

import os
import sys
from contextlib import contextmanager
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))
from kernel_reference import ReferenceObjectMatcher, reference_candidates

from repro.bench import stage_shipment_snapshot
from repro.core import EngineConfig, GStoreDEngine
from repro.datasets import random_assignment, random_connected_query, random_graph
from repro.distributed import build_cluster
from repro.exec import ProcessPoolBackend
from repro.partition import build_partitioned_graph
from repro.rdf import Triple
from repro.sparql.query_graph import QueryGraph
from repro.store import (
    KERNEL_ENV,
    KERNEL_PYTHON,
    KERNEL_SETS,
    KERNEL_VECTORIZED,
    LocalMatcher,
    SignatureIndex,
    evaluate_centralized,
)
from repro.store.kernel import numpy_or_none

seeds = st.integers(min_value=0, max_value=5_000)
fragment_counts = st.integers(min_value=1, max_value=4)
query_sizes = st.integers(min_value=1, max_value=4)
constant_probabilities = st.sampled_from([0.0, 0.25, 0.5])
#: The worker counts the kernel acceptance contract names.
worker_counts = st.sampled_from([1, 2, 8])
shard_counts = st.sampled_from([2, 3, 8])

SERIAL = EngineConfig.full().with_options(executor="serial")

#: Every kernel importable in this interpreter (vectorized needs numpy).
KERNELS = tuple(
    kernel
    for kernel in (KERNEL_SETS, KERNEL_PYTHON, KERNEL_VECTORIZED)
    if kernel != KERNEL_VECTORIZED or numpy_or_none() is not None
)


@contextmanager
def kernel_env(name):
    """Temporarily pin $REPRO_KERNEL (engines resolve it per call)."""
    prior = os.environ.get(KERNEL_ENV)
    os.environ[KERNEL_ENV] = name
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = prior


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
def sorted_rows(results):
    """Canonical sorted representation of a result set."""
    return sorted(sorted(row.items()) for row in results.to_table())


class TestKernelEquivalence:
    @given(seeds, query_sizes, constant_probabilities)
    @settings(max_examples=40, deadline=None)
    def test_encoded_kernel_replays_the_object_path_exactly(
        self, seed, query_edges, constant_probability
    ):
        """Same match sequence, same search_steps, on random graphs/queries."""
        graph = random_graph(seed, num_vertices=16, num_edges=32, num_predicates=3)
        query = random_connected_query(
            graph, seed + 101, num_edges=query_edges, constant_probability=constant_probability
        )
        query_graph = QueryGraph.from_query(query)
        reference = ReferenceObjectMatcher(graph)
        encoded = LocalMatcher(graph)
        reference_matches = list(reference.find_matches(query_graph))
        encoded_matches = list(encoded.find_matches(query_graph))
        assert encoded_matches == reference_matches
        assert encoded.search_steps == reference.search_steps

    @given(seeds, query_sizes)
    @settings(max_examples=15, deadline=None)
    def test_candidate_pools_match_the_object_path(self, seed, query_edges):
        from repro.store import compute_candidates

        graph = random_graph(seed, num_vertices=16, num_edges=32, num_predicates=3)
        query = random_connected_query(graph, seed + 11, num_edges=query_edges)
        query_graph = QueryGraph.from_query(query)
        index = SignatureIndex(graph)
        assert compute_candidates(graph, query_graph, index) == reference_candidates(
            graph, query_graph, index
        )

    @given(seeds, fragment_counts, query_sizes, constant_probabilities, worker_counts)
    @settings(max_examples=10, deadline=None)
    def test_distributed_rows_and_fingerprints_at_workers_1_2_8(
        self, seed, num_fragments, query_edges, constant_probability, workers
    ):
        """The kernel swap is invisible to the engines: identical rows and
        identical per-stage shipment fingerprints under serial and threaded
        execution at the contract's worker counts.  (The process-pool legs at
        workers 1/2/8 live in test_property_exec.py.)"""
        graph = random_graph(seed, num_vertices=16, num_edges=32, num_predicates=3)
        query = random_connected_query(
            graph, seed + 101, num_edges=query_edges, constant_probability=constant_probability
        )
        assignment = random_assignment(graph, seed + 7, num_fragments)
        partitioned = build_partitioned_graph(graph, assignment, num_fragments=num_fragments)
        cluster = build_cluster(partitioned)

        expected = evaluate_centralized(graph, query).project(
            query.effective_projection, distinct=True
        )
        expected_rows = sorted_rows(expected)

        cluster.reset_network()
        serial = GStoreDEngine(cluster, SERIAL).execute(query)
        serial_snapshot = stage_shipment_snapshot(serial)

        cluster.reset_network()
        threaded_engine = GStoreDEngine(cluster, EngineConfig.full().with_workers(workers))
        threaded = threaded_engine.execute(query)
        threaded_engine.close()

        assert sorted_rows(serial.results) == expected_rows
        assert sorted_rows(threaded.results) == expected_rows
        assert stage_shipment_snapshot(threaded) == serial_snapshot


class TestKernelMatrixEquivalence:
    """sets == python == vectorized == the object path, always."""

    @given(seeds, query_sizes, constant_probabilities)
    @settings(max_examples=25, deadline=None)
    def test_every_kernel_replays_the_object_path_exactly(
        self, seed, query_edges, constant_probability
    ):
        graph = random_graph(seed, num_vertices=16, num_edges=32, num_predicates=3)
        query = random_connected_query(
            graph, seed + 101, num_edges=query_edges, constant_probability=constant_probability
        )
        query_graph = QueryGraph.from_query(query)
        reference = ReferenceObjectMatcher(graph)
        reference_matches = list(reference.find_matches(query_graph))
        for kernel in KERNELS:
            matcher = LocalMatcher(graph, kernel=kernel)
            assert list(matcher.find_matches(query_graph)) == reference_matches, kernel
            assert matcher.search_steps == reference.search_steps, kernel
            assert matcher.last_kernel == kernel

    @given(seeds, query_sizes)
    @settings(max_examples=15, deadline=None)
    def test_mutation_then_query_keeps_kernels_in_lockstep(self, seed, query_edges):
        """Incremental adjacency patching is exact: after additions and a
        removal, every warm matcher agrees with a cold matcher over a copy
        of the mutated graph — and all kernels agree with each other."""
        graph = random_graph(seed, num_vertices=16, num_edges=32, num_predicates=3)
        query = random_connected_query(graph, seed + 101, num_edges=query_edges)
        query_graph = QueryGraph.from_query(query)
        matchers = {kernel: LocalMatcher(graph, kernel=kernel) for kernel in KERNELS}
        for matcher in matchers.values():  # warm the adjacency caches
            list(matcher.find_matches(query_graph))

        extra = random_graph(seed + 1, num_vertices=16, num_edges=8, num_predicates=3)
        graph.add_all(extra)
        graph.discard(next(iter(graph)))

        reference = ReferenceObjectMatcher(graph)
        expected = list(reference.find_matches(query_graph))
        cold = LocalMatcher(graph.copy(), kernel=KERNELS[0])
        cold_matches = list(cold.find_matches(query_graph))
        assert cold_matches == expected
        for kernel, matcher in matchers.items():
            assert list(matcher.find_matches(query_graph)) == expected, kernel
            assert matcher.search_steps == reference.search_steps, kernel

    @given(seeds, query_sizes, constant_probabilities, shard_counts)
    @settings(max_examples=15, deadline=None)
    def test_shard_concatenation_replays_the_unsharded_stream(
        self, seed, query_edges, constant_probability, num_shards
    ):
        """Depth-0 frontier shards partition the search exactly: bindings
        concatenated in shard order equal the unsharded sequence and the
        per-shard ``search_steps`` sum to the unsharded total — for every
        kernel."""
        graph = random_graph(seed, num_vertices=16, num_edges=32, num_predicates=3)
        query = random_connected_query(
            graph, seed + 101, num_edges=query_edges, constant_probability=constant_probability
        )
        for kernel in KERNELS:
            matcher = LocalMatcher(graph, kernel=kernel)
            unsharded = matcher.raw_matches(query)
            unsharded_steps = matcher.search_steps
            combined = []
            steps = 0
            for index in range(num_shards):
                combined.extend(matcher.shard_matches(query, index, num_shards))
                steps += matcher.search_steps
            assert combined == unsharded, kernel
            assert steps == unsharded_steps, kernel


class TestDistributedKernelParity:
    """Kernel choice and intra-site sharding are invisible to the engines."""

    @given(seeds, fragment_counts, query_sizes, worker_counts)
    @settings(max_examples=8, deadline=None)
    def test_kernels_and_shards_are_invisible_to_the_engine(
        self, seed, num_fragments, query_edges, workers
    ):
        """For every kernel, serial × shards_per_site ∈ {1, 3} and threaded
        × shards_per_site = 2 at workers 1/2/8 all reproduce the reference
        rows and per-stage shipment fingerprints."""
        graph = random_graph(seed, num_vertices=16, num_edges=32, num_predicates=3)
        query = random_connected_query(graph, seed + 101, num_edges=query_edges)
        assignment = random_assignment(graph, seed + 7, num_fragments)
        partitioned = build_partitioned_graph(graph, assignment, num_fragments=num_fragments)
        cluster = build_cluster(partitioned)

        cluster.reset_network()
        reference = GStoreDEngine(cluster, SERIAL).execute(query)
        reference_rows = sorted_rows(reference.results)
        reference_snapshot = stage_shipment_snapshot(reference)

        for kernel in KERNELS:
            with kernel_env(kernel):
                for shards in (1, 3):
                    cluster.reset_network()
                    config = SERIAL.with_options(shards_per_site=shards)
                    outcome = GStoreDEngine(cluster, config).execute(query)
                    assert sorted_rows(outcome.results) == reference_rows, (kernel, shards)
                    assert stage_shipment_snapshot(outcome) == reference_snapshot, (
                        kernel,
                        shards,
                    )
                cluster.reset_network()
                threaded_config = EngineConfig.full().with_workers(workers).with_options(
                    shards_per_site=2
                )
                engine = GStoreDEngine(cluster, threaded_config)
                threaded = engine.execute(query)
                engine.close()
                assert sorted_rows(threaded.results) == reference_rows, kernel
                assert stage_shipment_snapshot(threaded) == reference_snapshot, kernel


class TestProcessPoolKernelParity:
    """Fixed-seed process-pool legs: the env-selected kernel crosses the
    pickle boundary and still reproduces the serial reference exactly."""

    @pytest.mark.parametrize("workers", [1, 2, 8])
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_process_pool_matches_serial_reference(self, kernel, workers):
        graph = random_graph(1234, num_vertices=16, num_edges=32, num_predicates=3)
        query = random_connected_query(graph, 1335, num_edges=3)
        assignment = random_assignment(graph, 1241, 3)
        partitioned = build_partitioned_graph(graph, assignment, num_fragments=3)
        cluster = build_cluster(partitioned)

        cluster.reset_network()
        reference = GStoreDEngine(cluster, SERIAL).execute(query)
        reference_rows = sorted_rows(reference.results)
        reference_snapshot = stage_shipment_snapshot(reference)

        with kernel_env(kernel):
            cluster.reset_network()
            with ProcessPoolBackend(max_workers=workers) as backend:
                config = EngineConfig.full().with_executor("processes", workers).with_options(
                    shards_per_site=2
                )
                engine = GStoreDEngine(cluster, config, backend=backend)
                outcome = engine.execute(query)
                engine.close()
        assert sorted_rows(outcome.results) == reference_rows
        assert stage_shipment_snapshot(outcome) == reference_snapshot
