"""Property-based tests on LEC features and the pruning/assembly invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LECFeaturePruner,
    compute_lec_features,
    features_joinable,
    group_features_by_sign,
    lec_feature_of,
)
from repro.core.assembly import BasicAssembler, LECAssembler
from repro.core.partial_eval import evaluate_fragment
from repro.core.partial_match import check_local_partial_match
from repro.datasets import random_assignment, random_connected_query, random_graph
from repro.partition import build_partitioned_graph
from repro.sparql import QueryGraph

seeds = st.integers(min_value=0, max_value=5_000)
fragment_counts = st.integers(min_value=2, max_value=4)
query_sizes = st.integers(min_value=2, max_value=4)


def random_setting(seed: int, num_fragments: int, query_edges: int):
    graph = random_graph(seed, num_vertices=18, num_edges=36, num_predicates=3)
    query = random_connected_query(graph, seed + 17, num_edges=query_edges, constant_probability=0.2)
    assignment = random_assignment(graph, seed + 5, num_fragments)
    partitioned = build_partitioned_graph(graph, assignment, num_fragments=num_fragments)
    query_graph = QueryGraph(query.bgp)
    lpms_per_fragment = {
        fragment.fragment_id: evaluate_fragment(fragment, query_graph).local_partial_matches
        for fragment in partitioned
    }
    return partitioned, query_graph, lpms_per_fragment


class TestLocalPartialMatchInvariants:
    @given(seeds, fragment_counts, query_sizes)
    @settings(max_examples=12, deadline=None)
    def test_every_enumerated_lpm_satisfies_definition5(self, seed, num_fragments, query_edges):
        partitioned, query_graph, lpms_per_fragment = random_setting(seed, num_fragments, query_edges)
        for fragment in partitioned:
            for lpm in lpms_per_fragment[fragment.fragment_id]:
                assert check_local_partial_match(lpm, query_graph, fragment) == []

    @given(seeds, fragment_counts, query_sizes)
    @settings(max_examples=12, deadline=None)
    def test_lpms_in_same_class_share_feature(self, seed, num_fragments, query_edges):
        _, _, lpms_per_fragment = random_setting(seed, num_fragments, query_edges)
        for lpms in lpms_per_fragment.values():
            classes = compute_lec_features(lpms)
            for feature, members in classes.items():
                for member in members:
                    assert lec_feature_of(member) == feature


class TestTheorem5:
    @given(seeds, fragment_counts, query_sizes)
    @settings(max_examples=12, deadline=None)
    def test_same_sign_features_are_never_joinable(self, seed, num_fragments, query_edges):
        _, query_graph, lpms_per_fragment = random_setting(seed, num_fragments, query_edges)
        features = [
            lec_feature_of(lpm) for lpms in lpms_per_fragment.values() for lpm in lpms
        ]
        groups = group_features_by_sign(features)
        for members in groups.values():
            for i, left in enumerate(members):
                for right in members[i + 1 :]:
                    assert not features_joinable(left, right, query_graph)

    @given(seeds, fragment_counts, query_sizes)
    @settings(max_examples=12, deadline=None)
    def test_joinability_is_symmetric(self, seed, num_fragments, query_edges):
        _, query_graph, lpms_per_fragment = random_setting(seed, num_fragments, query_edges)
        features = [lec_feature_of(lpm) for lpms in lpms_per_fragment.values() for lpm in lpms]
        for left in features[:12]:
            for right in features[:12]:
                assert features_joinable(left, right, query_graph) == features_joinable(
                    right, left, query_graph
                )


class TestPruningAndAssemblyInvariants:
    @given(seeds, fragment_counts, query_sizes)
    @settings(max_examples=10, deadline=None)
    def test_pruning_preserves_assembled_answers(self, seed, num_fragments, query_edges):
        _, query_graph, lpms_per_fragment = random_setting(seed, num_fragments, query_edges)
        all_lpms = [lpm for lpms in lpms_per_fragment.values() for lpm in lpms]
        classes = compute_lec_features(all_lpms)
        outcome = LECFeaturePruner(query_graph).prune(list(classes))
        surviving = [
            lpm for feature, members in classes.items() if outcome.survives(feature) for lpm in members
        ]
        assembler = LECAssembler(query_graph)
        before = {m.assignment for m in assembler.assemble(all_lpms).matches}
        after = {m.assignment for m in assembler.assemble(surviving).matches}
        assert before == after

    @given(seeds, fragment_counts, query_sizes)
    @settings(max_examples=10, deadline=None)
    def test_basic_and_lec_assembly_agree(self, seed, num_fragments, query_edges):
        _, query_graph, lpms_per_fragment = random_setting(seed, num_fragments, query_edges)
        all_lpms = [lpm for lpms in lpms_per_fragment.values() for lpm in lpms]
        basic = BasicAssembler(query_graph).assemble(all_lpms)
        lec = LECAssembler(query_graph).assemble(all_lpms)
        assert {m.assignment for m in basic.matches} == {m.assignment for m in lec.matches}

    @given(seeds, fragment_counts, query_sizes)
    @settings(max_examples=10, deadline=None)
    def test_assembled_matches_are_complete_and_consistent(self, seed, num_fragments, query_edges):
        _, query_graph, lpms_per_fragment = random_setting(seed, num_fragments, query_edges)
        all_lpms = [lpm for lpms in lpms_per_fragment.values() for lpm in lpms]
        outcome = LECAssembler(query_graph).assemble(all_lpms)
        for match in outcome.matches:
            assert match.is_complete(query_graph)
            assert len(match.matched_vertices()) == query_graph.num_vertices
