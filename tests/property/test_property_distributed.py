"""Property-based end-to-end test: distributed answers equal centralized answers.

This is the strongest property of the reproduction: for random graphs,
random connected BGP queries and random vertex-disjoint partitionings, every
optimization level of the gStoreD engine returns exactly the solutions the
centralized matcher computes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ABLATION_CONFIGS, EngineConfig, GStoreDEngine
from repro.datasets import random_assignment, random_connected_query, random_graph
from repro.distributed import build_cluster
from repro.partition import build_partitioned_graph
from repro.store import evaluate_centralized

seeds = st.integers(min_value=0, max_value=5_000)
fragment_counts = st.integers(min_value=1, max_value=4)
query_sizes = st.integers(min_value=1, max_value=4)
constant_probabilities = st.sampled_from([0.0, 0.25, 0.5])


def build_environment(seed, num_fragments, query_edges, constant_probability):
    graph = random_graph(seed, num_vertices=16, num_edges=32, num_predicates=3)
    query = random_connected_query(
        graph, seed + 101, num_edges=query_edges, constant_probability=constant_probability
    )
    assignment = random_assignment(graph, seed + 7, num_fragments)
    partitioned = build_partitioned_graph(graph, assignment, num_fragments=num_fragments)
    return graph, query, build_cluster(partitioned)


class TestDistributedEqualsCentralized:
    @given(seeds, fragment_counts, query_sizes, constant_probabilities)
    @settings(max_examples=12, deadline=None)
    def test_full_engine(self, seed, num_fragments, query_edges, constant_probability):
        graph, query, cluster = build_environment(seed, num_fragments, query_edges, constant_probability)
        expected = evaluate_centralized(graph, query).project(query.effective_projection, distinct=True)
        result = GStoreDEngine(cluster, EngineConfig.full()).execute(query)
        assert result.results.same_solutions(expected)
        assert len(result.results) >= 1  # the sampled subgraph itself is always a match

    @given(seeds, fragment_counts, query_sizes)
    @settings(max_examples=6, deadline=None)
    def test_every_optimization_level(self, seed, num_fragments, query_edges):
        graph, query, cluster = build_environment(seed, num_fragments, query_edges, 0.25)
        expected = evaluate_centralized(graph, query).project(query.effective_projection, distinct=True)
        for config in ABLATION_CONFIGS:
            cluster.reset_network()
            result = GStoreDEngine(cluster, config).execute(query)
            assert result.results.same_solutions(expected)

    @given(seeds, fragment_counts, query_sizes)
    @settings(max_examples=6, deadline=None)
    def test_star_shortcut_disabled_is_still_correct(self, seed, num_fragments, query_edges):
        graph, query, cluster = build_environment(seed, num_fragments, query_edges, 0.0)
        expected = evaluate_centralized(graph, query).project(query.effective_projection, distinct=True)
        config = EngineConfig.full().with_options(star_shortcut=False)
        result = GStoreDEngine(cluster, config).execute(query)
        assert result.results.same_solutions(expected)


class TestAccountingInvariants:
    @given(seeds, fragment_counts, query_sizes)
    @settings(max_examples=8, deadline=None)
    def test_shipment_totals_match_message_bus(self, seed, num_fragments, query_edges):
        graph, query, cluster = build_environment(seed, num_fragments, query_edges, 0.25)
        cluster.reset_network()
        result = GStoreDEngine(cluster, EngineConfig.full()).execute(query)
        assert result.statistics.total_shipment_bytes == cluster.bus.total_bytes
        assert result.statistics.total_time_s >= 0
