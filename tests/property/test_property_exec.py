"""Property-based cross-engine equivalence for the execution runtime.

For random graphs, random connected BGP queries and random vertex-disjoint
partitionings, the gStoreD engine under the serial backend, the gStoreD
engine under the thread-pool backend, the gStoreD engine under the
process-pool backend and the centralized triple store all return *identical
sorted result sets* — not merely the same multiset, the same rows in the
same canonical order — and identical per-stage ``shipped_bytes``/``messages``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import stage_shipment_snapshot
from repro.core import EngineConfig, GStoreDEngine
from repro.datasets import random_assignment, random_connected_query, random_graph
from repro.distributed import build_cluster
from repro.exec import ProcessPoolBackend
from repro.obs import Trace
from repro.partition import build_partitioned_graph
from repro.store import evaluate_centralized

seeds = st.integers(min_value=0, max_value=5_000)
fragment_counts = st.integers(min_value=1, max_value=4)
query_sizes = st.integers(min_value=1, max_value=4)
constant_probabilities = st.sampled_from([0.0, 0.25, 0.5])
worker_counts = st.sampled_from([2, 3, 8])
#: The worker counts the process-path acceptance contract names.
process_worker_counts = st.sampled_from([1, 2, 8])

SERIAL = EngineConfig.full().with_options(executor="serial")


def build_environment(seed, num_fragments, query_edges, constant_probability):
    graph = random_graph(seed, num_vertices=16, num_edges=32, num_predicates=3)
    query = random_connected_query(
        graph, seed + 101, num_edges=query_edges, constant_probability=constant_probability
    )
    assignment = random_assignment(graph, seed + 7, num_fragments)
    partitioned = build_partitioned_graph(graph, assignment, num_fragments=num_fragments)
    return graph, query, build_cluster(partitioned)


def sorted_rows(results):
    """Canonical sorted representation of a result set."""
    return sorted(sorted(row.items()) for row in results.to_table())


class TestCrossEngineEquivalence:
    @given(seeds, fragment_counts, query_sizes, constant_probabilities, worker_counts)
    @settings(max_examples=12, deadline=None)
    def test_serial_threads_and_centralized_agree(
        self, seed, num_fragments, query_edges, constant_probability, workers
    ):
        graph, query, cluster = build_environment(
            seed, num_fragments, query_edges, constant_probability
        )
        expected = evaluate_centralized(graph, query).project(
            query.effective_projection, distinct=True
        )
        serial = GStoreDEngine(cluster, SERIAL).execute(query)
        cluster.reset_network()
        threaded_engine = GStoreDEngine(cluster, EngineConfig.full().with_workers(workers))
        threaded = threaded_engine.execute(query)
        threaded_engine.close()

        expected_rows = sorted_rows(expected)
        assert sorted_rows(serial.results) == expected_rows
        assert sorted_rows(threaded.results) == expected_rows
        assert serial.results.same_solutions(expected)
        assert threaded.results.same_solutions(expected)

    @given(seeds, fragment_counts, query_sizes, constant_probabilities, process_worker_counts)
    @settings(max_examples=8, deadline=None)
    def test_serial_threads_processes_and_centralized_agree(
        self, seed, num_fragments, query_edges, constant_probability, workers
    ):
        """The full acceptance chain: serial == threads == processes == centralized.

        Every leg is compared on sorted rows *and* on the per-stage
        ``(shipped_bytes, messages)`` fingerprint, for process worker counts
        1, 2 and 8.
        """
        graph, query, cluster = build_environment(
            seed, num_fragments, query_edges, constant_probability
        )
        expected = evaluate_centralized(graph, query).project(
            query.effective_projection, distinct=True
        )
        expected_rows = sorted_rows(expected)

        cluster.reset_network()
        serial = GStoreDEngine(cluster, SERIAL).execute(query)
        serial_snapshot = stage_shipment_snapshot(serial)

        cluster.reset_network()
        threaded_engine = GStoreDEngine(cluster, EngineConfig.full().with_workers(workers))
        threaded = threaded_engine.execute(query)
        threaded_engine.close()

        cluster.reset_network()
        with ProcessPoolBackend(max_workers=workers) as backend:
            process_engine = GStoreDEngine(
                cluster, EngineConfig.full().with_executor("processes", workers), backend=backend
            )
            processed = process_engine.execute(query)
            process_engine.close()

        assert sorted_rows(serial.results) == expected_rows
        assert sorted_rows(threaded.results) == expected_rows
        assert sorted_rows(processed.results) == expected_rows
        assert processed.results.same_solutions(expected)
        assert stage_shipment_snapshot(threaded) == serial_snapshot
        assert stage_shipment_snapshot(processed) == serial_snapshot

    @given(seeds, fragment_counts, query_sizes, process_worker_counts)
    @settings(max_examples=4, deadline=None)
    def test_tracing_on_is_equivalent_to_tracing_off(
        self, seed, num_fragments, query_edges, workers
    ):
        """Tracing must never perturb execution: answers, per-stage shipment
        fingerprints and ``search_steps`` are bit-identical with a trace
        attached, across the serial, thread-pool and process-pool backends."""
        _, query, cluster = build_environment(seed, num_fragments, query_edges, 0.25)
        cluster.reset_network()
        untraced = GStoreDEngine(cluster, SERIAL).execute(query)
        base_rows = sorted_rows(untraced.results)
        base_snapshot = stage_shipment_snapshot(untraced)
        base_work = dict(untraced.statistics.work)

        cluster.reset_network()
        serial_traced = GStoreDEngine(cluster, SERIAL).execute(query, trace=Trace("query"))

        cluster.reset_network()
        threaded_engine = GStoreDEngine(cluster, EngineConfig.full().with_workers(workers))
        threaded_traced = threaded_engine.execute(query, trace=Trace("query"))
        threaded_engine.close()

        cluster.reset_network()
        with ProcessPoolBackend(max_workers=workers) as backend:
            process_engine = GStoreDEngine(
                cluster, EngineConfig.full().with_executor("processes", workers), backend=backend
            )
            process_traced = process_engine.execute(query, trace=Trace("query"))
            process_engine.close()

        for traced in (serial_traced, threaded_traced, process_traced):
            assert sorted_rows(traced.results) == base_rows
            assert stage_shipment_snapshot(traced) == base_snapshot
            assert dict(traced.statistics.work) == base_work

    @given(seeds, fragment_counts, query_sizes)
    @settings(max_examples=6, deadline=None)
    def test_threaded_shipment_equals_serial_shipment(self, seed, num_fragments, query_edges):
        _, query, cluster = build_environment(seed, num_fragments, query_edges, 0.25)
        cluster.reset_network()
        serial = GStoreDEngine(cluster, SERIAL).execute(query)
        serial_snapshot = stage_shipment_snapshot(serial)
        cluster.reset_network()
        engine = GStoreDEngine(cluster, EngineConfig.full().with_workers(4))
        threaded = engine.execute(query)
        engine.close()
        assert stage_shipment_snapshot(threaded) == serial_snapshot
        assert threaded.statistics.total_shipment_bytes == cluster.bus.total_bytes
