"""Property-based tests on partitioning invariants (Definition 1, cost model)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import random_assignment, random_graph
from repro.partition import (
    HashPartitioner,
    MetisLikePartitioner,
    SemanticHashPartitioner,
    build_partitioned_graph,
    crossing_edge_distribution,
    crossing_edge_expectation,
    partitioning_cost,
)

seeds = st.integers(min_value=0, max_value=10_000)
fragment_counts = st.integers(min_value=1, max_value=6)
graph_sizes = st.tuples(
    st.integers(min_value=4, max_value=40), st.integers(min_value=4, max_value=80)
)


def build_random_partitioning(seed: int, num_fragments: int, sizes):
    graph = random_graph(seed, num_vertices=sizes[0], num_edges=sizes[1])
    assignment = random_assignment(graph, seed + 1, num_fragments)
    return graph, build_partitioned_graph(graph, assignment, num_fragments=num_fragments)


class TestDefinition1Invariants:
    @given(seeds, fragment_counts, graph_sizes)
    @settings(max_examples=40, deadline=None)
    def test_random_assignments_always_satisfy_definition1(self, seed, num_fragments, sizes):
        _, partitioned = build_random_partitioning(seed, num_fragments, sizes)
        partitioned.validate()

    @given(seeds, fragment_counts, graph_sizes)
    @settings(max_examples=40, deadline=None)
    def test_internal_edges_partition_non_crossing_edges(self, seed, num_fragments, sizes):
        graph, partitioned = build_random_partitioning(seed, num_fragments, sizes)
        internal = set()
        for fragment in partitioned:
            internal |= fragment.internal_edges
        assert internal | partitioned.crossing_edges == set(graph)
        assert not (internal & partitioned.crossing_edges)

    @given(seeds, fragment_counts, graph_sizes)
    @settings(max_examples=40, deadline=None)
    def test_crossing_edges_stored_exactly_twice(self, seed, num_fragments, sizes):
        _, partitioned = build_random_partitioning(seed, num_fragments, sizes)
        for edge in partitioned.crossing_edges:
            holders = [f for f in partitioned if edge in f.crossing_edges]
            assert len(holders) == 2

    @given(seeds, graph_sizes)
    @settings(max_examples=30, deadline=None)
    def test_single_fragment_has_no_extended_vertices(self, seed, sizes):
        _, partitioned = build_random_partitioning(seed, 1, sizes)
        assert partitioned.crossing_edges == set()
        assert partitioned.fragment(0).extended_vertices == set()


class TestPartitionerProperties:
    @given(seeds, st.integers(min_value=2, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_all_strategies_produce_valid_partitionings(self, seed, num_fragments):
        graph = random_graph(seed, num_vertices=30, num_edges=60)
        for partitioner in (
            HashPartitioner(num_fragments),
            SemanticHashPartitioner(num_fragments),
            MetisLikePartitioner(num_fragments),
        ):
            partitioner.partition(graph).validate()


class TestCostModelProperties:
    @given(seeds, fragment_counts, graph_sizes)
    @settings(max_examples=40, deadline=None)
    def test_distribution_is_a_probability_distribution(self, seed, num_fragments, sizes):
        _, partitioned = build_random_partitioning(seed, num_fragments, sizes)
        distribution = crossing_edge_distribution(partitioned)
        if distribution:
            assert math.isclose(sum(distribution.values()), 1.0, rel_tol=1e-9)
            assert all(0 < p <= 1 for p in distribution.values())

    @given(seeds, fragment_counts, graph_sizes)
    @settings(max_examples=40, deadline=None)
    def test_cost_is_nonnegative_and_consistent(self, seed, num_fragments, sizes):
        _, partitioned = build_random_partitioning(seed, num_fragments, sizes)
        cost = partitioning_cost(partitioned)
        assert cost.expectation >= 0
        assert cost.cost == cost.expectation * cost.largest_fragment_edges
        assert cost.expectation <= len(partitioned.crossing_edges) or not partitioned.crossing_edges

    @given(seeds, fragment_counts, graph_sizes)
    @settings(max_examples=40, deadline=None)
    def test_expectation_bounded_by_max_boundary_degree(self, seed, num_fragments, sizes):
        _, partitioned = build_random_partitioning(seed, num_fragments, sizes)
        crossing = partitioned.crossing_edges
        if not crossing:
            assert crossing_edge_expectation(partitioned) == 0
            return
        degrees = {}
        for edge in crossing:
            degrees[edge.subject] = degrees.get(edge.subject, 0) + 1
            degrees[edge.object] = degrees.get(edge.object, 0) + 1
        assert crossing_edge_expectation(partitioned) <= max(degrees.values())
