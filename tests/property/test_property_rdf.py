"""Property-based tests on the RDF substrate (terms, graphs, N-Triples)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import IRI, Literal, RDFGraph, Triple, parse_string, parse_term, serialize

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_safe_text = st.text(
    alphabet=string.ascii_letters + string.digits + " .,:;!?'\"\\\n\t-_()", max_size=40
)
_local_names = st.text(alphabet=string.ascii_letters + string.digits + "_-", min_size=1, max_size=12)

iris = st.builds(lambda name: IRI("http://example.org/" + name), _local_names)
languages = st.sampled_from([None, "en", "de", "fr", "zh"])


@st.composite
def literals(draw):
    text = draw(_safe_text)
    language = draw(languages)
    if language is None and draw(st.booleans()):
        return Literal(text, datatype=draw(iris))
    return Literal(text, language=language)


nodes = st.one_of(iris, literals())
triples = st.builds(Triple, iris, iris, nodes)
graphs = st.builds(lambda ts: RDFGraph(ts), st.lists(triples, max_size=40))


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
class TestTermRoundTrips:
    @given(iris)
    def test_iri_n3_roundtrip(self, iri):
        assert parse_term(iri.n3()) == iri

    @given(literals())
    def test_literal_n3_roundtrip(self, literal):
        assert parse_term(literal.n3()) == literal

    @given(triples)
    def test_triple_line_roundtrip(self, triple):
        from repro.rdf import parse_line

        assert parse_line(triple.n3()) == triple


class TestGraphInvariants:
    @given(graphs)
    @settings(max_examples=50)
    def test_serialization_roundtrip(self, graph):
        assert parse_string(serialize(graph)) == graph

    @given(graphs)
    @settings(max_examples=50)
    def test_len_equals_number_of_distinct_triples(self, graph):
        assert len(graph) == len(set(graph))

    @given(graphs)
    @settings(max_examples=50)
    def test_every_triple_is_indexed_consistently(self, graph):
        for triple in graph:
            assert triple in graph
            assert triple in graph.out_edges(triple.subject)
            assert triple in graph.in_edges(triple.object)
            assert list(graph.triples(triple.subject, triple.predicate, triple.object)) == [triple]

    @given(graphs)
    @settings(max_examples=50)
    def test_degree_sums_to_twice_edge_count(self, graph):
        # Each triple contributes one out-degree and one in-degree.
        assert sum(graph.degree(v) for v in graph.vertices) == 2 * len(graph)

    @given(graphs, triples)
    @settings(max_examples=50)
    def test_add_then_discard_restores_graph(self, graph, triple):
        already_there = triple in graph
        graph_copy = graph.copy()
        graph_copy.add(triple)
        if not already_there:
            graph_copy.discard(triple)
        assert graph_copy == graph

    @given(graphs)
    @settings(max_examples=30)
    def test_connected_components_partition_vertices(self, graph):
        components = graph.connected_components()
        union = set().union(*components) if components else set()
        assert union == graph.vertices
        assert sum(len(c) for c in components) == len(graph.vertices)
