"""Documentation can't rot: every exported public API name stays documented.

The ``docs/`` tree and the README describe ``repro.api``, ``repro.exec``,
``repro.obs`` and ``repro.planner`` by their public names; this sweep
asserts that
everything those packages export through ``__all__`` actually exists and
that every exported function and class defined in this codebase carries a
non-trivial docstring.  (Typing aliases and plain constants cannot hold
docstrings; for those the sweep only checks existence.)
"""

import inspect

import pytest

import repro.api
import repro.exec
import repro.obs
import repro.planner

SWEPT_MODULES = (repro.api, repro.exec, repro.obs, repro.planner)


def _documented_objects(module):
    """The exported (name, object) pairs that can carry their own docstring."""
    pairs = []
    for name in module.__all__:
        obj = getattr(module, name)  # raises AttributeError if __all__ lies
        defined_here = getattr(obj, "__module__", "").startswith("repro")
        if defined_here and (inspect.isfunction(obj) or inspect.isclass(obj)):
            pairs.append((name, obj))
    return pairs


@pytest.mark.parametrize("module", SWEPT_MODULES, ids=lambda m: m.__name__)
def test_module_has_a_docstring(module):
    assert module.__doc__ and len(module.__doc__.strip()) > 40


@pytest.mark.parametrize("module", SWEPT_MODULES, ids=lambda m: m.__name__)
def test_every_export_resolves(module):
    for name in module.__all__:
        # getattr raises AttributeError when __all__ names a missing export;
        # a None export would be an accident too (nothing here is a sentinel).
        assert getattr(module, name) is not None, f"{module.__name__}.{name} is None"


@pytest.mark.parametrize("module", SWEPT_MODULES, ids=lambda m: m.__name__)
def test_every_exported_callable_is_documented(module):
    undocumented = [
        name
        for name, obj in _documented_objects(module)
        if not (inspect.getdoc(obj) or "").strip()
    ]
    assert not undocumented, (
        f"{module.__name__} exports undocumented public API: {', '.join(undocumented)}"
    )


@pytest.mark.parametrize("module", SWEPT_MODULES, ids=lambda m: m.__name__)
def test_exported_class_public_methods_are_documented(module):
    """Public methods of exported classes need docstrings too (dir() surface)."""
    missing = []
    for name, obj in _documented_objects(module):
        if not inspect.isclass(obj):
            continue
        for attr_name, attr in vars(obj).items():
            if attr_name.startswith("_") or not inspect.isfunction(attr):
                continue
            if not (inspect.getdoc(attr) or "").strip():
                missing.append(f"{name}.{attr_name}")
    assert not missing, f"{module.__name__} has undocumented public methods: {', '.join(missing)}"
