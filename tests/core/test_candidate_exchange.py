"""Unit tests for assembling variables' internal candidates (Algorithm 4)."""

import pytest

from repro.core import (
    CandidateBitVector,
    GlobalCandidateFilter,
    build_site_vectors,
    union_site_vectors,
)
from repro.rdf import Namespace, Variable
from repro.sparql import QueryGraph, parse_query
from repro.distributed import build_cluster
from repro.partition import HashPartitioner
from repro.datasets import lubm

EX = Namespace("http://example.org/")
X, Y = Variable("x"), Variable("y")
A, B, C = EX.term("a"), EX.term("b"), EX.term("c")


class TestCandidateBitVector:
    def test_membership_has_no_false_negatives(self):
        vector = CandidateBitVector()
        vector.add_all([A, B])
        assert vector.might_contain(A)
        assert vector.might_contain(B)

    def test_empty_vector_contains_nothing(self):
        assert not CandidateBitVector().might_contain(A)

    def test_union(self):
        left, right = CandidateBitVector(), CandidateBitVector()
        left.add(A)
        right.add(B)
        union = left.union(right)
        assert union.might_contain(A)
        assert union.might_contain(B)

    def test_union_requires_same_width(self):
        with pytest.raises(ValueError):
            CandidateBitVector(width=64).union(CandidateBitVector(width=128))

    def test_shipment_size_is_fixed(self):
        empty = CandidateBitVector(width=1024)
        full = CandidateBitVector(width=1024)
        full.add_all([EX.term(f"v{i}") for i in range(100)])
        assert empty.shipment_size() == full.shipment_size() == 1024 // 8 + 4

    def test_popcount(self):
        vector = CandidateBitVector()
        vector.add(A)
        assert vector.popcount() >= 1

    def test_from_candidates(self):
        vector = CandidateBitVector.from_candidates([A, B, C], width=2048)
        assert vector.width == 2048
        assert vector.might_contain(C)


class TestGlobalFilter:
    def test_allows_unknown_variables(self):
        assert GlobalCandidateFilter({}).allows(X, A)

    def test_blocks_unlisted_candidates(self):
        vector = CandidateBitVector()
        vector.add(A)
        candidate_filter = GlobalCandidateFilter({X: vector})
        assert candidate_filter.allows(X, A)
        assert not candidate_filter.allows(X, B) or vector.might_contain(B)

    def test_len_and_shipment(self):
        candidate_filter = GlobalCandidateFilter({X: CandidateBitVector(), Y: CandidateBitVector()})
        assert len(candidate_filter) == 2
        assert candidate_filter.shipment_size() > 2 * CandidateBitVector().shipment_size() - 8


class TestAlgorithm4:
    def test_build_site_vectors_skips_constants(self):
        vectors = build_site_vectors({X: {A}, EX.term("const"): {EX.term("const")}})
        assert set(vectors) == {X}

    def test_union_site_vectors_is_bitwise_or(self):
        site1 = build_site_vectors({X: {A}})
        site2 = build_site_vectors({X: {B}, Y: {C}})
        merged = union_site_vectors([site1, site2])
        assert merged.allows(X, A)
        assert merged.allows(X, B)
        assert merged.allows(Y, C)

    def test_union_covers_every_internal_candidate_of_every_site(self):
        """Soundness of the Section VI optimization: every vertex that is an
        internal candidate somewhere must pass the global filter."""
        graph = lubm.generate(scale=1)
        cluster = build_cluster(HashPartitioner(4).partition(graph))
        query = lubm.queries()["LQ1"]
        query_graph = QueryGraph(query.bgp)
        per_site = []
        per_site_candidates = []
        for site in cluster:
            candidates = site.internal_candidates(query_graph)
            per_site_candidates.append(candidates)
            per_site.append(build_site_vectors(candidates))
        merged = union_site_vectors(per_site)
        for candidates in per_site_candidates:
            for vertex, values in candidates.items():
                if not isinstance(vertex, Variable):
                    continue
                for value in values:
                    assert merged.allows(vertex, value)
