"""Unit and integration tests for the gStoreD engine pipeline."""

import pytest

from repro.core import (
    ABLATION_CONFIGS,
    EngineConfig,
    GStoreDEngine,
    STAGE_ASSEMBLY,
    STAGE_CANDIDATES,
    STAGE_PARTIAL_EVAL,
    STAGE_PLANNING,
    STAGE_PRUNING,
    execute_ablation,
)
from repro.datasets import lubm
from repro.distributed import build_cluster
from repro.partition import HashPartitioner
from repro.store import evaluate_centralized
from repro.sparql import parse_query


@pytest.fixture(scope="module")
def lubm_setup():
    graph = lubm.generate(scale=1)
    cluster = build_cluster(HashPartitioner(4).partition(graph))
    return graph, cluster, lubm.queries()


class TestPipelineStages:
    def test_all_stages_present_for_complex_query(self, lubm_setup):
        graph, cluster, queries = lubm_setup
        cluster.reset_network()
        result = GStoreDEngine(cluster, EngineConfig.full()).execute(queries["LQ1"], query_name="LQ1")
        names = [stage.name for stage in result.statistics.stages]
        assert names == [
            STAGE_PLANNING,
            STAGE_CANDIDATES,
            STAGE_PARTIAL_EVAL,
            STAGE_PRUNING,
            STAGE_ASSEMBLY,
        ]

    def test_star_query_skips_optimizations(self, lubm_setup):
        graph, cluster, queries = lubm_setup
        cluster.reset_network()
        result = GStoreDEngine(cluster, EngineConfig.full()).execute(queries["LQ2"], query_name="LQ2")
        stats = result.statistics
        assert stats.counter(STAGE_PARTIAL_EVAL, "local_partial_matches") == 0
        assert stats.find_stage(STAGE_CANDIDATES).parallel_time_ms == 0
        assert stats.find_stage(STAGE_PRUNING).shipped_bytes == 0
        assert stats.extra["query_shape"] == "star"

    def test_star_shortcut_can_be_disabled(self, lubm_setup):
        graph, cluster, queries = lubm_setup
        central = evaluate_centralized(graph, queries["LQ4"])
        cluster.reset_network()
        config = EngineConfig.full().with_options(star_shortcut=False)
        result = GStoreDEngine(cluster, config).execute(queries["LQ4"], query_name="LQ4")
        assert result.results.same_solutions(
            central.project(queries["LQ4"].effective_projection, distinct=True)
        )

    def test_basic_config_has_no_pruning_or_candidate_stage_costs(self, lubm_setup):
        graph, cluster, queries = lubm_setup
        cluster.reset_network()
        result = GStoreDEngine(cluster, EngineConfig.basic()).execute(queries["LQ1"], query_name="LQ1")
        stats = result.statistics
        assert stats.find_stage(STAGE_PRUNING) is None or stats.find_stage(STAGE_PRUNING).shipped_bytes == 0
        assert stats.counter(STAGE_PRUNING, "lec_features", default=0) == 0
        assert stats.counter(STAGE_CANDIDATES, "variables", default=0) == 0

    def test_pruning_reports_feature_counts(self, lubm_setup):
        graph, cluster, queries = lubm_setup
        cluster.reset_network()
        result = GStoreDEngine(cluster, EngineConfig.lec_optimized()).execute(queries["LQ1"], query_name="LQ1")
        stats = result.statistics
        assert stats.counter(STAGE_PRUNING, "lec_features") > 0
        assert stats.counter(STAGE_PRUNING, "surviving_features") <= stats.counter(STAGE_PRUNING, "lec_features")

    def test_data_shipment_recorded_for_each_stage(self, lubm_setup):
        graph, cluster, queries = lubm_setup
        cluster.reset_network()
        result = GStoreDEngine(cluster, EngineConfig.full()).execute(queries["LQ1"], query_name="LQ1")
        stats = result.statistics
        assert stats.find_stage(STAGE_CANDIDATES).shipped_bytes > 0
        assert stats.find_stage(STAGE_PRUNING).shipped_bytes > 0
        assert stats.find_stage(STAGE_ASSEMBLY).shipped_bytes > 0
        assert stats.total_shipment_bytes == cluster.bus.total_bytes

    def test_metadata_recorded(self, lubm_setup):
        graph, cluster, queries = lubm_setup
        cluster.reset_network()
        result = GStoreDEngine(cluster).execute(queries["LQ6"], query_name="LQ6", dataset="LUBM")
        stats = result.statistics
        assert stats.query_name == "LQ6"
        assert stats.dataset == "LUBM"
        assert stats.engine == "gStoreD"
        assert stats.partitioning == "hash"
        assert stats.extra["selective"] is True


class TestCorrectness:
    @pytest.mark.parametrize("query_name", ["LQ1", "LQ2", "LQ3", "LQ4", "LQ5", "LQ6", "LQ7"])
    def test_every_config_matches_centralized(self, lubm_setup, query_name):
        graph, cluster, queries = lubm_setup
        query = queries[query_name]
        central = evaluate_centralized(graph, query).project(query.effective_projection, distinct=True)
        for config in ABLATION_CONFIGS:
            cluster.reset_network()
            result = GStoreDEngine(cluster, config).execute(query, query_name=query_name)
            assert result.results.same_solutions(central), f"{config.label} differs on {query_name}"

    def test_execute_ablation_helper_runs_all_configs(self, lubm_setup):
        graph, cluster, queries = lubm_setup
        results = execute_ablation(cluster, queries["LQ6"], query_name="LQ6")
        assert len(results) == 4
        labels = [r.statistics.engine for r in results]
        assert labels == ["gStoreD-Basic", "gStoreD-LA", "gStoreD-LO", "gStoreD"]
        counts = {len(r.results) for r in results}
        assert len(counts) == 1

    def test_result_is_iterable_and_sized(self, lubm_setup):
        graph, cluster, queries = lubm_setup
        cluster.reset_network()
        result = GStoreDEngine(cluster).execute(queries["LQ6"], query_name="LQ6")
        assert len(result) == len(list(result))

    def test_limit_is_applied(self, lubm_setup):
        graph, cluster, queries = lubm_setup
        query = parse_query(
            "PREFIX ub: <http://example.org/univ-bench#> "
            "SELECT ?s WHERE { ?s ub:advisor ?p . ?p ub:teacherOf ?c . } LIMIT 3"
        )
        cluster.reset_network()
        result = GStoreDEngine(cluster).execute(query)
        assert len(result.results) == 3
