"""Unit tests for the LEC feature-based pruning (Algorithm 2)."""

import pytest

from repro.core import LECFeature, LECFeaturePruner, compute_lec_features, prune_features
from repro.core.partial_eval import evaluate_fragment
from repro.partition import HashPartitioner
from repro.rdf import Namespace, Triple
from repro.sparql import QueryGraph
from repro.datasets import lubm
from repro.store import evaluate_centralized

EX = Namespace("http://example.org/")


class TestPruner:
    def test_empty_input(self, example_query_graph):
        outcome = LECFeaturePruner(example_query_graph).prune([])
        assert outcome.total_features == 0
        assert outcome.surviving == set()
        assert outcome.pruned_count == 0

    def test_single_complete_feature_survives(self, example_query_graph):
        full_sign = (1 << example_query_graph.num_vertices) - 1
        feature = LECFeature(0, frozenset([(0, Triple(EX.term("a"), EX.term("p"), EX.term("b")))]), full_sign)
        outcome = LECFeaturePruner(example_query_graph).prune([feature])
        assert outcome.survives(feature)

    def test_isolated_feature_is_pruned(self, example_query_graph):
        feature = LECFeature(0, frozenset([(0, Triple(EX.term("a"), EX.term("p"), EX.term("b")))]), 0b1)
        outcome = LECFeaturePruner(example_query_graph).prune([feature])
        assert not outcome.survives(feature)
        assert outcome.pruned_count == 1

    def test_paper_example_prunes_exactly_one_feature(self, example_partitioning, example_query_graph):
        features = []
        for fragment in example_partitioning:
            lpms = evaluate_fragment(fragment, example_query_graph).local_partial_matches
            features.extend(compute_lec_features(lpms))
        outcome = LECFeaturePruner(example_query_graph).prune(features)
        assert outcome.total_features == 7
        assert outcome.pruned_count == 1
        assert outcome.join_attempts > 0
        assert outcome.complete_combinations >= 1

    def test_duplicate_features_are_counted_once(self, example_query_graph):
        full_sign = (1 << example_query_graph.num_vertices) - 1
        feature = LECFeature(0, frozenset([(0, Triple(EX.term("a"), EX.term("p"), EX.term("b")))]), full_sign)
        outcome = LECFeaturePruner(example_query_graph).prune([feature, feature])
        assert outcome.total_features == 1


class TestPruningSoundness:
    """Pruning must never remove a local partial match needed by an answer."""

    @pytest.mark.parametrize("query_name", ["LQ1", "LQ6", "LQ7"])
    def test_pruned_lpms_do_not_change_answers(self, lubm_graph, query_name):
        from repro.core.assembly import LECAssembler

        query = lubm.queries()[query_name]
        query_graph = QueryGraph(query.bgp)
        partitioned = HashPartitioner(4).partition(lubm_graph)

        classes_by_site = {}
        for fragment in partitioned:
            lpms = evaluate_fragment(fragment, query_graph).local_partial_matches
            classes_by_site[fragment.fragment_id] = compute_lec_features(lpms)

        features_by_site = {site: list(classes) for site, classes in classes_by_site.items()}
        _, surviving = prune_features(query_graph, features_by_site)

        all_lpms = [
            lpm
            for classes in classes_by_site.values()
            for members in classes.values()
            for lpm in members
        ]
        surviving_lpms = [
            lpm
            for site, classes in classes_by_site.items()
            for feature, members in classes.items()
            if feature in surviving[site]
            for lpm in members
        ]
        assembler = LECAssembler(query_graph)
        full = {m.assignment for m in assembler.assemble(all_lpms).matches}
        pruned = {m.assignment for m in assembler.assemble(surviving_lpms).matches}
        assert full == pruned

    def test_per_site_survivors_are_subsets(self, example_partitioning, example_query_graph):
        features_by_site = {}
        for fragment in example_partitioning:
            lpms = evaluate_fragment(fragment, example_query_graph).local_partial_matches
            features_by_site[fragment.fragment_id] = list(compute_lec_features(lpms))
        outcome, surviving = prune_features(example_query_graph, features_by_site)
        for site, features in features_by_site.items():
            assert surviving[site] <= set(features)
        assert sum(len(s) for s in surviving.values()) == len(outcome.surviving)
