"""Unit tests for the engine configuration / optimization levels."""

from repro.core import ABLATION_CONFIGS, EngineConfig, OptimizationLevel


class TestNamedConfigs:
    def test_basic_disables_everything(self):
        config = EngineConfig.basic()
        assert not config.use_lec_assembly
        assert not config.use_lec_pruning
        assert not config.use_candidate_exchange
        assert config.level is OptimizationLevel.BASIC
        assert config.label == "gStoreD-Basic"

    def test_la_enables_only_assembly(self):
        config = EngineConfig.lec_assembly_only()
        assert config.use_lec_assembly
        assert not config.use_lec_pruning
        assert config.label == "gStoreD-LA"

    def test_lo_enables_assembly_and_pruning(self):
        config = EngineConfig.lec_optimized()
        assert config.use_lec_assembly and config.use_lec_pruning
        assert not config.use_candidate_exchange
        assert config.label == "gStoreD-LO"

    def test_full_enables_everything(self):
        config = EngineConfig.full()
        assert config.use_lec_assembly and config.use_lec_pruning and config.use_candidate_exchange
        assert config.label == "gStoreD"

    def test_for_level_roundtrip(self):
        for level in OptimizationLevel:
            assert EngineConfig.for_level(level).level is level

    def test_ablation_configs_order(self):
        labels = [config.label for config in ABLATION_CONFIGS]
        assert labels == ["gStoreD-Basic", "gStoreD-LA", "gStoreD-LO", "gStoreD"]


class TestOptions:
    def test_with_options_returns_modified_copy(self):
        config = EngineConfig.full()
        modified = config.with_options(star_shortcut=False)
        assert modified.star_shortcut is False
        assert config.star_shortcut is True

    def test_describe_contains_switches(self):
        description = EngineConfig.full().describe()
        assert description["label"] == "gStoreD"
        assert description["lec_pruning"] is True

    def test_default_is_full(self):
        assert EngineConfig().level is OptimizationLevel.FULL
