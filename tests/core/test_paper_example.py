"""Tests reproducing the paper's worked examples (Fig. 1-7, Examples 4-8).

These tests follow the running example end to end: the eight local partial
matches of Fig. 3, the seven LEC features of Example 6, the five LEC feature
groups of Example 7, the pruning of PM²₃ (Example / Algorithm 2), the four
local partial match groups of Example 8 and the final answers of the query.
"""

import pytest

from repro.core import (
    EngineConfig,
    GStoreDEngine,
    LECFeaturePruner,
    compute_lec_features,
    lec_feature_of,
)
from repro.core.assembly import LECAssembler
from repro.core.partial_eval import PartialEvaluator
from repro.core.partial_match import check_local_partial_match
from repro.datasets.paper_example import VERTEX
from repro.rdf import Variable
from repro.store import evaluate_centralized


@pytest.fixture(scope="module")
def per_fragment_lpms(example_partitioning_module, example_query_graph_module):
    lpms = {}
    for fragment in example_partitioning_module:
        outcome = PartialEvaluator(fragment, paranoid=True).evaluate(example_query_graph_module)
        lpms[fragment.fragment_id] = outcome.local_partial_matches
    return lpms


@pytest.fixture(scope="module")
def example_partitioning_module():
    from repro.datasets.paper_example import build_example_partitioning

    return build_example_partitioning()


@pytest.fixture(scope="module")
def example_query_graph_module():
    from repro.datasets.paper_example import example_query
    from repro.sparql import QueryGraph

    return QueryGraph(example_query().bgp)


class TestFigure3LocalPartialMatches:
    def test_fragment1_has_three_lpms(self, per_fragment_lpms):
        assert len(per_fragment_lpms[0]) == 3

    def test_fragment2_has_three_lpms(self, per_fragment_lpms):
        assert len(per_fragment_lpms[1]) == 3

    def test_fragment3_has_two_lpms(self, per_fragment_lpms):
        assert len(per_fragment_lpms[2]) == 2

    def test_every_lpm_satisfies_definition5(
        self, per_fragment_lpms, example_partitioning_module, example_query_graph_module
    ):
        for fragment in example_partitioning_module:
            for lpm in per_fragment_lpms[fragment.fragment_id]:
                violations = check_local_partial_match(lpm, example_query_graph_module, fragment)
                assert violations == []

    def test_pm11_of_the_paper_is_found(self, per_fragment_lpms):
        """PM¹₁ = [006, NULL, 001, NULL, 003] in fragment F1."""
        serializations = {
            tuple(sorted((v.n3(), val.n3()) for v, val in lpm.assignment))
            for lpm in per_fragment_lpms[0]
        }
        expected = tuple(
            sorted(
                [
                    (Variable("p2").n3(), VERTEX["006"].n3()),
                    (Variable("p1").n3(), VERTEX["001"].n3()),
                    (VERTEX["003"].n3(), VERTEX["003"].n3()),
                ]
            )
        )
        assert expected in serializations

    def test_pm23_of_the_paper_is_found(self, per_fragment_lpms):
        """PM²₃ = [014, 013, NULL, 017, NULL] in fragment F3 — the one later pruned."""
        found = False
        for lpm in per_fragment_lpms[2]:
            mapping = {v.n3(): val.n3() for v, val in lpm.assignment}
            if mapping.get("?p2") == VERTEX["014"].n3() and mapping.get("?t") == VERTEX["013"].n3():
                found = True
        assert found


class TestExample6And7LECFeatures:
    def test_seven_lec_features_in_total(self, per_fragment_lpms):
        features = set()
        for lpms in per_fragment_lpms.values():
            features.update(compute_lec_features(lpms))
        assert len(features) == 7

    def test_pm12_and_pm22_share_a_feature(self, per_fragment_lpms):
        """PM¹₂ and PM²₂ are equivalent, so fragment F2 has 2 distinct features for 3 LPMs."""
        classes = compute_lec_features(per_fragment_lpms[1])
        assert len(classes) == 2
        sizes = sorted(len(members) for members in classes.values())
        assert sizes == [1, 2]

    def test_lec_feature_groups_are_sign_homogeneous(self, per_fragment_lpms):
        """Example 7 of the paper lists 5 groups (it keeps the two features
        whose LECSign is [01010] — LF(PM³₁) from F1 and LF(PM²₃) from F3 — in
        separate groups).  Definition 10 only requires every group to be
        sign-homogeneous, and our implementation merges groups with equal
        LECSign maximally, giving 4 groups for the same 7 features.  What
        matters for Theorem 5 is that no group mixes different LECSigns."""
        from repro.core import group_features_by_sign

        features = []
        for lpms in per_fragment_lpms.values():
            features.extend(compute_lec_features(lpms))
        groups = group_features_by_sign(features)
        assert len(features) == 7
        assert len(groups) == 4
        for sign, members in groups.items():
            assert all(member.lec_sign == sign for member in members)


class TestAlgorithm2Pruning:
    def test_pm23_feature_is_pruned(self, per_fragment_lpms, example_query_graph_module):
        features = []
        for lpms in per_fragment_lpms.values():
            features.extend(compute_lec_features(lpms))
        outcome = LECFeaturePruner(example_query_graph_module).prune(features)
        assert outcome.total_features == 7
        # The PM²₃ feature (from F3, centred on vertex 014) cannot contribute.
        pruned = [f for f in features if f not in outcome.surviving]
        assert len(pruned) == 1
        assert pruned[0].fragment_id == 2

    def test_surviving_features_cover_the_answers(self, per_fragment_lpms, example_query_graph_module):
        features = []
        for lpms in per_fragment_lpms.values():
            features.extend(compute_lec_features(lpms))
        outcome = LECFeaturePruner(example_query_graph_module).prune(features)
        assert outcome.complete_combinations >= 1


class TestExample8AssemblyGroups:
    def test_four_lpm_groups_after_pruning(self, per_fragment_lpms, example_query_graph_module):
        classes_by_fragment = {
            fragment_id: compute_lec_features(lpms) for fragment_id, lpms in per_fragment_lpms.items()
        }
        every_feature = [feature for classes in classes_by_fragment.values() for feature in classes]
        outcome = LECFeaturePruner(example_query_graph_module).prune(every_feature)
        surviving = []
        for classes in classes_by_fragment.values():
            for feature, members in classes.items():
                if feature in outcome.surviving:
                    surviving.extend(members)
        # Note: pruning one LPM of F3 leaves 7 LPMs in 4 LECSign groups (Example 8).
        groups = LECAssembler._group_by_sign(surviving)
        assert len(groups) == 4

    def test_assembly_produces_the_crossing_matches(
        self, per_fragment_lpms, example_query_graph_module
    ):
        lpms = [lpm for members in per_fragment_lpms.values() for lpm in members]
        outcome = LECAssembler(example_query_graph_module).assemble(lpms)
        assert outcome.num_matches == 4


class TestEndToEndExample:
    def test_engine_matches_centralized_answer(self, example_graph, example_query_obj, example_cluster):
        central = evaluate_centralized(example_graph, example_query_obj)
        engine = GStoreDEngine(example_cluster, EngineConfig.full())
        result = engine.execute(example_query_obj, query_name="fig2")
        assert result.results.same_solutions(
            central.project(example_query_obj.effective_projection, distinct=True)
        )
        assert len(result.results) == 4
