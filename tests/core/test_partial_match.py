"""Unit tests for the LocalPartialMatch value object and Definition 5 checker."""

import pytest

from repro.core import LocalPartialMatch, check_local_partial_match
from repro.partition import build_partitioned_graph
from repro.rdf import Namespace, RDFGraph, Triple, TriplePattern, Variable
from repro.sparql import BasicGraphPattern, QueryGraph

EX = Namespace("http://example.org/")
A, B, C, D = EX.term("a"), EX.term("b"), EX.term("c"), EX.term("d")
P, Q = EX.term("p"), EX.term("q")
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture()
def setting():
    """a --p--> b --q--> c with {a,b} in F0 and {c} in F1; query ?x p ?y . ?y q ?z."""
    graph = RDFGraph([Triple(A, P, B), Triple(B, Q, C)])
    partitioned = build_partitioned_graph(graph, {A: 0, B: 0, C: 1}, num_fragments=2)
    query = QueryGraph(BasicGraphPattern([TriplePattern(X, P, Y), TriplePattern(Y, Q, Z)]))
    return graph, partitioned, query


def lpm_f0(partitioned, query):
    """The full LPM of fragment 0: {x→a, y→b, z→c} (z extended)."""
    fragment = partitioned.fragment(0)
    return LocalPartialMatch.build(
        fragment_id=0,
        mapping={X: A, Y: B, Z: C},
        edge_mapping={0: Triple(A, P, B), 1: Triple(B, Q, C)},
        crossing_edge_indexes={1},
        query=query,
        fragment=fragment,
    )


def lpm_f1(partitioned, query):
    """The LPM of fragment 1: {y→b, z→c} (y extended)."""
    fragment = partitioned.fragment(1)
    return LocalPartialMatch.build(
        fragment_id=1,
        mapping={Y: B, Z: C},
        edge_mapping={1: Triple(B, Q, C)},
        crossing_edge_indexes={1},
        query=query,
        fragment=fragment,
    )


class TestConstruction:
    def test_internal_mask_marks_internal_vertices(self, setting):
        _, partitioned, query = setting
        lpm = lpm_f0(partitioned, query)
        assert lpm.internal_vertex_indexes() == {query.vertex_index(X), query.vertex_index(Y)}

    def test_fragment_id(self, setting):
        _, partitioned, query = setting
        assert lpm_f0(partitioned, query).fragment_id == 0

    def test_mapping_and_value_of(self, setting):
        _, partitioned, query = setting
        lpm = lpm_f0(partitioned, query)
        assert lpm.mapping()[Z] == C
        assert lpm.value_of(X) == A
        assert lpm.value_of(Variable("missing")) is None

    def test_serialization_vector(self, setting):
        _, partitioned, query = setting
        lpm = lpm_f1(partitioned, query)
        assert lpm.serialization(query) == (None, B.n3(), C.n3())

    def test_num_matched(self, setting):
        _, partitioned, query = setting
        assert lpm_f0(partitioned, query).num_matched == 3
        assert lpm_f1(partitioned, query).num_matched == 2

    def test_shipment_size_positive_and_monotone(self, setting):
        _, partitioned, query = setting
        assert lpm_f0(partitioned, query).shipment_size() > lpm_f1(partitioned, query).shipment_size() > 0


class TestJoin:
    def test_joinable_pair(self, setting):
        _, partitioned, query = setting
        assert lpm_f0(partitioned, query).can_join(lpm_f1(partitioned, query))

    def test_join_is_symmetric(self, setting):
        _, partitioned, query = setting
        left, right = lpm_f0(partitioned, query), lpm_f1(partitioned, query)
        assert left.can_join(right) == right.can_join(left)

    def test_join_merges_masks_and_assignments(self, setting):
        _, partitioned, query = setting
        joined = lpm_f0(partitioned, query).join(lpm_f1(partitioned, query))
        assert joined.is_complete(query)
        assert joined.fragments == frozenset({0, 1})
        assert joined.mapping() == {X: A, Y: B, Z: C}

    def test_cannot_join_with_overlapping_internal_mask(self, setting):
        _, partitioned, query = setting
        lpm = lpm_f0(partitioned, query)
        assert not lpm.can_join(lpm)

    def test_cannot_join_without_common_crossing_edge(self, setting):
        _, partitioned, query = setting
        fragment1 = partitioned.fragment(1)
        other = LocalPartialMatch.build(
            fragment_id=1,
            mapping={Z: C},
            edge_mapping={},
            crossing_edge_indexes=set(),
            query=query,
            fragment=fragment1,
        )
        assert not lpm_f0(partitioned, query).can_join(other)

    def test_cannot_join_with_conflicting_vertex_assignment(self, setting):
        graph, partitioned, query = setting
        fragment1 = partitioned.fragment(1)
        conflicting = LocalPartialMatch.build(
            fragment_id=1,
            mapping={Y: B, Z: C, X: C},
            edge_mapping={1: Triple(B, Q, C)},
            crossing_edge_indexes={1},
            query=query,
            fragment=fragment1,
        )
        base = lpm_f0(partitioned, query)
        assert not base.can_join(conflicting)

    def test_to_binding_keeps_only_variables(self, setting):
        _, partitioned, query = setting
        binding = lpm_f0(partitioned, query).to_binding()
        assert set(binding.variables) == {X, Y, Z}


class TestDefinition5Checker:
    def test_valid_lpm_has_no_violations(self, setting):
        _, partitioned, query = setting
        assert check_local_partial_match(lpm_f0(partitioned, query), query, partitioned.fragment(0)) == []
        assert check_local_partial_match(lpm_f1(partitioned, query), query, partitioned.fragment(1)) == []

    def test_missing_crossing_edge_is_reported(self, setting):
        _, partitioned, query = setting
        fragment = partitioned.fragment(0)
        lpm = LocalPartialMatch(
            fragments=frozenset({0}),
            assignment=frozenset({(X, A), (Y, B)}.items() if False else [(X, A), (Y, B)]),
            edge_assignment=frozenset([(0, Triple(A, P, B))]),
            crossing_assignment=frozenset(),
            internal_mask=0b11,
        )
        violations = check_local_partial_match(lpm, query, fragment)
        assert any("crossing edge" in violation for violation in violations)

    def test_unexpanded_internal_vertex_is_reported(self, setting):
        _, partitioned, query = setting
        fragment = partitioned.fragment(0)
        # y -> b is internal but its q-edge to ?z is not matched.
        lpm = LocalPartialMatch(
            fragments=frozenset({0}),
            assignment=frozenset([(X, A), (Y, B)]),
            edge_assignment=frozenset([(0, Triple(A, P, B))]),
            crossing_assignment=frozenset([(0, Triple(A, P, B))]),
            internal_mask=0b11,
        )
        violations = check_local_partial_match(lpm, query, fragment)
        assert any("misses query edge" in violation for violation in violations)

    def test_constant_mismatch_is_reported(self):
        graph = RDFGraph([Triple(A, P, B), Triple(B, Q, C)])
        partitioned = build_partitioned_graph(graph, {A: 0, B: 0, C: 1}, num_fragments=2)
        query = QueryGraph(BasicGraphPattern([TriplePattern(D, P, Y), TriplePattern(Y, Q, Z)]))
        fragment = partitioned.fragment(0)
        lpm = LocalPartialMatch(
            fragments=frozenset({0}),
            assignment=frozenset([(D, A), (Y, B), (Z, C)]),
            edge_assignment=frozenset([(0, Triple(A, P, B)), (1, Triple(B, Q, C))]),
            crossing_assignment=frozenset([(1, Triple(B, Q, C))]),
            internal_mask=0b11,
        )
        violations = check_local_partial_match(lpm, query, fragment)
        assert any("constant" in violation for violation in violations)

    def test_disconnected_matched_part_is_reported(self):
        # Graph: a-p->b (F0 internal), c-q->d crossing; query: ?x p ?y . ?z q ?w (disconnected).
        graph = RDFGraph([Triple(A, P, B), Triple(C, Q, D)])
        partitioned = build_partitioned_graph(graph, {A: 0, B: 0, C: 0, D: 1}, num_fragments=2)
        w = Variable("w")
        query = QueryGraph(BasicGraphPattern([TriplePattern(X, P, Y), TriplePattern(Z, Q, w)]))
        fragment = partitioned.fragment(0)
        lpm = LocalPartialMatch(
            fragments=frozenset({0}),
            assignment=frozenset([(X, A), (Y, B), (Z, C), (w, D)]),
            edge_assignment=frozenset([(0, Triple(A, P, B)), (1, Triple(C, Q, D))]),
            crossing_assignment=frozenset([(1, Triple(C, Q, D))]),
            internal_mask=0b111,
        )
        violations = check_local_partial_match(lpm, query, fragment)
        assert any("not connected" in violation for violation in violations)
