"""Unit tests for the per-fragment partial evaluation (LPM enumeration)."""

import pytest

from repro.core import GlobalCandidateFilter, CandidateBitVector
from repro.core.partial_eval import PartialEvaluator, evaluate_fragment
from repro.core.partial_match import check_local_partial_match
from repro.partition import HashPartitioner, build_partitioned_graph
from repro.rdf import Literal, Namespace, RDFGraph, Triple, TriplePattern, Variable
from repro.sparql import BasicGraphPattern, QueryGraph
from repro.datasets import lubm

EX = Namespace("http://example.org/")
A, B, C, D = EX.term("a"), EX.term("b"), EX.term("c"), EX.term("d")
P, Q = EX.term("p"), EX.term("q")
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def path_setting():
    """a -p-> b -q-> c across two fragments, path query."""
    graph = RDFGraph([Triple(A, P, B), Triple(B, Q, C)])
    partitioned = build_partitioned_graph(graph, {A: 0, B: 0, C: 1}, num_fragments=2)
    query = QueryGraph(BasicGraphPattern([TriplePattern(X, P, Y), TriplePattern(Y, Q, Z)]))
    return partitioned, query


class TestEnumeration:
    def test_fragment_with_internal_region_produces_lpm(self):
        partitioned, query = path_setting()
        outcome = evaluate_fragment(partitioned.fragment(0), query)
        assert outcome.count == 1
        lpm = outcome.local_partial_matches[0]
        assert lpm.mapping() == {X: A, Y: B, Z: C}

    def test_fragment_with_extended_only_region(self):
        partitioned, query = path_setting()
        outcome = evaluate_fragment(partitioned.fragment(1), query)
        assert outcome.count == 1
        lpm = outcome.local_partial_matches[0]
        assert lpm.mapping() == {Y: B, Z: C}
        assert lpm.internal_vertex_indexes() == {query.vertex_index(Z)}

    def test_no_lpm_without_crossing_edges(self):
        graph = RDFGraph([Triple(A, P, B), Triple(B, Q, C)])
        partitioned = build_partitioned_graph(graph, {A: 0, B: 0, C: 0}, num_fragments=1)
        query = QueryGraph(BasicGraphPattern([TriplePattern(X, P, Y), TriplePattern(Y, Q, Z)]))
        outcome = evaluate_fragment(partitioned.fragment(0), query)
        assert outcome.count == 0

    def test_condition6_splits_disconnected_internal_regions(self):
        # a -p-> x -q-> b where x lives on another fragment: fragment 0 owns a and b.
        graph = RDFGraph([Triple(A, P, D), Triple(D, Q, B)])
        partitioned = build_partitioned_graph(graph, {A: 0, B: 0, D: 1}, num_fragments=2)
        query = QueryGraph(BasicGraphPattern([TriplePattern(X, P, Y), TriplePattern(Y, Q, Z)]))
        outcome = evaluate_fragment(partitioned.fragment(0), query)
        # Two separate LPMs: {x→a, y→d} and {y→d, z→b}; never one merged LPM.
        assert outcome.count == 2
        for lpm in outcome.local_partial_matches:
            assert len(lpm.internal_vertex_indexes()) == 1

    def test_constants_restrict_seeds(self):
        graph = RDFGraph([Triple(A, P, B), Triple(B, Q, C), Triple(D, P, B)])
        partitioned = build_partitioned_graph(graph, {A: 0, D: 0, B: 0, C: 1}, num_fragments=2)
        query = QueryGraph(BasicGraphPattern([TriplePattern(A, P, Y), TriplePattern(Y, Q, Z)]))
        outcome = evaluate_fragment(partitioned.fragment(0), query)
        assert outcome.count == 1
        assert outcome.local_partial_matches[0].value_of(A) == A

    def test_every_produced_lpm_is_valid(self):
        graph = lubm.generate(scale=1)
        partitioned = HashPartitioner(4).partition(graph)
        query = QueryGraph(lubm.queries()["LQ1"].bgp)
        for fragment in partitioned:
            outcome = evaluate_fragment(fragment, query)
            for lpm in outcome.local_partial_matches:
                assert check_local_partial_match(lpm, query, fragment) == []

    def test_paranoid_mode_matches_normal_mode(self):
        partitioned, query = path_setting()
        normal = evaluate_fragment(partitioned.fragment(0), query, paranoid=False)
        paranoid = evaluate_fragment(partitioned.fragment(0), query, paranoid=True)
        assert {lpm.assignment for lpm in normal.local_partial_matches} == {
            lpm.assignment for lpm in paranoid.local_partial_matches
        }

    def test_duplicate_lpms_are_not_emitted(self):
        graph = lubm.generate(scale=1)
        partitioned = HashPartitioner(3).partition(graph)
        query = QueryGraph(lubm.queries()["LQ6"].bgp)
        for fragment in partitioned:
            outcome = evaluate_fragment(fragment, query)
            keys = [(lpm.assignment, lpm.edge_assignment) for lpm in outcome.local_partial_matches]
            assert len(keys) == len(set(keys))

    def test_seeds_explored_counter(self):
        partitioned, query = path_setting()
        outcome = evaluate_fragment(partitioned.fragment(0), query)
        assert outcome.seeds_explored >= 1


class TestCandidateFilter:
    def test_filter_blocks_extended_candidates(self):
        partitioned, query = path_setting()
        # A filter claiming ?z has no internal candidates anywhere blocks the
        # F0 LPM (whose z→c is an extended binding).
        empty_vector = CandidateBitVector()
        candidate_filter = GlobalCandidateFilter({Z: empty_vector})
        outcome = evaluate_fragment(partitioned.fragment(0), query, candidate_filter=candidate_filter)
        assert outcome.count == 0
        assert outcome.branches_pruned_by_filter >= 1

    def test_filter_allows_listed_candidates(self):
        partitioned, query = path_setting()
        vector = CandidateBitVector()
        vector.add(C)
        candidate_filter = GlobalCandidateFilter({Z: vector})
        outcome = evaluate_fragment(partitioned.fragment(0), query, candidate_filter=candidate_filter)
        assert outcome.count == 1

    def test_filter_never_applies_to_internal_bindings(self):
        partitioned, query = path_setting()
        # Fragment 1 binds ?z internally to c; an empty ?z vector must not block it.
        candidate_filter = GlobalCandidateFilter({Z: CandidateBitVector()})
        outcome = evaluate_fragment(partitioned.fragment(1), query, candidate_filter=candidate_filter)
        assert outcome.count == 1
