"""Unit tests for the assembly stage (Algorithm 3 and the basic join)."""

import pytest

from repro.core.assembly import BasicAssembler, LECAssembler, assemble_matches
from repro.core.partial_eval import evaluate_fragment
from repro.partition import HashPartitioner, SemanticHashPartitioner
from repro.sparql import QueryGraph
from repro.datasets import btc, lubm, yago


def collect_lpms(partitioned, query_graph):
    lpms = []
    for fragment in partitioned:
        lpms.extend(evaluate_fragment(fragment, query_graph).local_partial_matches)
    return lpms


class TestAssemblersAgree:
    """Both strategies must produce exactly the same complete matches."""

    @pytest.mark.parametrize(
        "dataset, query_name",
        [
            (lubm, "LQ1"),
            (lubm, "LQ6"),
            (lubm, "LQ7"),
            (yago, "YQ1"),
            (yago, "YQ4"),
            (btc, "BQ4"),
            (btc, "BQ5"),
        ],
    )
    def test_basic_and_lec_assembler_same_matches(self, dataset, query_name):
        graph = dataset.generate(scale=1)
        query = dataset.queries()[query_name]
        query_graph = QueryGraph(query.bgp)
        partitioned = HashPartitioner(4).partition(graph)
        lpms = collect_lpms(partitioned, query_graph)
        basic = BasicAssembler(query_graph).assemble(lpms)
        lec = LECAssembler(query_graph).assemble(lpms)
        assert {m.assignment for m in basic.matches} == {m.assignment for m in lec.matches}

    def test_lec_assembler_attempts_no_more_joins_than_basic(self):
        graph = lubm.generate(scale=1)
        query_graph = QueryGraph(lubm.queries()["LQ7"].bgp)
        partitioned = HashPartitioner(4).partition(graph)
        lpms = collect_lpms(partitioned, query_graph)
        basic = BasicAssembler(query_graph).assemble(lpms)
        lec = LECAssembler(query_graph).assemble(lpms)
        assert lec.join_attempts <= basic.join_attempts


class TestAssemblyDetails:
    def test_assemble_matches_dispatches_on_flag(self, example_partitioning, example_query_graph):
        lpms = collect_lpms(example_partitioning, example_query_graph)
        lec_outcome = assemble_matches(example_query_graph, lpms, use_lec_grouping=True)
        basic_outcome = assemble_matches(example_query_graph, lpms, use_lec_grouping=False)
        assert lec_outcome.num_matches == basic_outcome.num_matches == 4

    def test_empty_input_produces_no_matches(self, example_query_graph):
        outcome = LECAssembler(example_query_graph).assemble([])
        assert outcome.num_matches == 0
        assert outcome.groups == 0

    def test_matches_are_complete_and_distinct(self, example_partitioning, example_query_graph):
        lpms = collect_lpms(example_partitioning, example_query_graph)
        outcome = LECAssembler(example_query_graph).assemble(lpms)
        assignments = [m.assignment for m in outcome.matches]
        assert len(assignments) == len(set(assignments))
        for match in outcome.matches:
            assert match.is_complete(example_query_graph)

    def test_bindings_project_variables_only(self, example_partitioning, example_query_graph):
        lpms = collect_lpms(example_partitioning, example_query_graph)
        outcome = LECAssembler(example_query_graph).assemble(lpms)
        for binding in outcome.bindings():
            assert all(variable.is_variable for variable in binding.variables)

    def test_same_fragment_lpms_can_participate_in_one_match(self):
        """A crossing match may need two LPMs of the same fragment (two
        disconnected internal regions) — the BQ4 regression scenario."""
        graph = btc.generate(scale=1)
        query_graph = QueryGraph(btc.queries()["BQ4"].bgp)
        partitioned = HashPartitioner(4).partition(graph)
        lpms = collect_lpms(partitioned, query_graph)
        outcome = LECAssembler(query_graph).assemble(lpms)
        multi_region = [m for m in outcome.matches if len(m.fragments) < 4 and len(m.fragments) >= 2]
        assert outcome.num_matches > 0
        assert multi_region or all(len(m.fragments) >= 1 for m in outcome.matches)

    def test_group_count_reported(self, example_partitioning, example_query_graph):
        lpms = collect_lpms(example_partitioning, example_query_graph)
        outcome = LECAssembler(example_query_graph).assemble(lpms)
        assert outcome.groups >= 4
