"""Unit tests for LEC features, joinability and grouping."""

import pytest

from repro.core import (
    JoinedLECFeature,
    LECFeature,
    build_join_graph,
    compute_lec_features,
    features_joinable,
    group_features_by_sign,
    lec_feature_of,
)
from repro.core.partial_eval import evaluate_fragment
from repro.partition import build_partitioned_graph
from repro.rdf import Namespace, RDFGraph, Triple, TriplePattern, Variable
from repro.sparql import BasicGraphPattern, QueryGraph

EX = Namespace("http://example.org/")
A, B, C, D = EX.term("a"), EX.term("b"), EX.term("c"), EX.term("d")
P, Q = EX.term("p"), EX.term("q")
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture()
def path_setting():
    graph = RDFGraph([Triple(A, P, B), Triple(B, Q, C)])
    partitioned = build_partitioned_graph(graph, {A: 0, B: 0, C: 1}, num_fragments=2)
    query = QueryGraph(BasicGraphPattern([TriplePattern(X, P, Y), TriplePattern(Y, Q, Z)]))
    lpms = {
        fid: evaluate_fragment(partitioned.fragment(fid), query).local_partial_matches
        for fid in (0, 1)
    }
    return partitioned, query, lpms


class TestLECFeature:
    def test_feature_of_lpm_matches_definition8(self, path_setting):
        partitioned, query, lpms = path_setting
        feature = lec_feature_of(lpms[0][0])
        assert feature.fragment_id == 0
        assert feature.crossing_edges() == {Triple(B, Q, C)}
        assert feature.query_edges() == {1}
        # x and y are internal in fragment 0.
        assert feature.lec_sign == (1 << query.vertex_index(X)) | (1 << query.vertex_index(Y))

    def test_sign_bits_rendering(self, path_setting):
        partitioned, query, lpms = path_setting
        feature = lec_feature_of(lpms[1][0])
        assert feature.sign_bits(query.num_vertices) == "001"

    def test_shipment_size_scales_with_crossing_edges(self):
        small = LECFeature(0, frozenset([(0, Triple(A, P, B))]), 0b1)
        large = LECFeature(0, frozenset([(0, Triple(A, P, B)), (1, Triple(B, Q, C))]), 0b1)
        assert 0 < small.shipment_size() < large.shipment_size()

    def test_features_are_hashable_and_deduplicated(self, path_setting):
        _, _, lpms = path_setting
        assert len({lec_feature_of(lpm) for lpm in lpms[0]}) == 1


class TestAlgorithm1:
    def test_compute_lec_features_groups_equivalent_lpms(self, path_setting):
        partitioned, query, lpms = path_setting
        classes = compute_lec_features(lpms[0] + lpms[1])
        assert len(classes) == 2
        assert sum(len(members) for members in classes.values()) == 2

    def test_equivalent_lpms_share_class(self):
        # Fragment 0 contains two distinct internal continuations behind the
        # same crossing edge, so two LPMs collapse into one LEC feature.
        graph = RDFGraph([Triple(A, P, B), Triple(A, Q, C), Triple(A, Q, D)])
        partitioned = build_partitioned_graph(graph, {A: 1, B: 0, C: 1, D: 1}, num_fragments=2)
        query = QueryGraph(BasicGraphPattern([TriplePattern(X, P, Y), TriplePattern(X, Q, Z)]))
        outcome = evaluate_fragment(partitioned.fragment(1), query)
        classes = compute_lec_features(outcome.local_partial_matches)
        assert len(outcome.local_partial_matches) == 2
        assert len(classes) == 1
        assert len(next(iter(classes.values()))) == 2

    def test_empty_input(self):
        assert compute_lec_features([]) == {}


class TestJoinability:
    def test_joinable_features(self, path_setting):
        partitioned, query, lpms = path_setting
        left = lec_feature_of(lpms[0][0])
        right = lec_feature_of(lpms[1][0])
        assert features_joinable(left, right, query)
        assert features_joinable(right, left, query)

    def test_same_fragment_not_joinable(self, path_setting):
        partitioned, query, lpms = path_setting
        feature = lec_feature_of(lpms[0][0])
        assert not features_joinable(feature, feature, query)

    def test_overlapping_signs_not_joinable(self, path_setting):
        partitioned, query, lpms = path_setting
        left = lec_feature_of(lpms[0][0])
        conflicting = LECFeature(1, left.crossing_map, left.lec_sign)
        assert not features_joinable(left, conflicting, query)

    def test_no_common_crossing_edge_not_joinable(self, path_setting):
        partitioned, query, lpms = path_setting
        left = lec_feature_of(lpms[0][0])
        other = LECFeature(1, frozenset([(0, Triple(A, P, B))]), 0b100)
        assert not features_joinable(left, other, query)

    def test_conflicting_crossing_endpoint_not_joinable(self, path_setting):
        partitioned, query, lpms = path_setting
        left = lec_feature_of(lpms[0][0])
        # The other feature shares query edge 1 (mapped to b-q-c, so ?y→b) but
        # also maps query edge 0 to d-p-d', forcing ?y→d' ≠ b: the vertex-level
        # conflict on ?y must make the features non-joinable.
        other = LECFeature(
            1,
            frozenset([(1, Triple(B, Q, C)), (0, Triple(D, P, EX.term("d2")))]),
            0b100,
        )
        joined_left = JoinedLECFeature.from_feature(left)
        assert not joined_left.joinable_with(other, query)
        assert not features_joinable(left, other, query)


class TestJoinedFeature:
    def test_join_accumulates(self, path_setting):
        partitioned, query, lpms = path_setting
        left = JoinedLECFeature.from_feature(lec_feature_of(lpms[0][0]))
        right = lec_feature_of(lpms[1][0])
        joined = left.join(right)
        assert joined.is_complete(query)
        assert joined.fragment_ids == frozenset({0, 1})
        assert len(joined.constituents) == 2

    def test_incomplete_join(self, path_setting):
        partitioned, query, lpms = path_setting
        left = JoinedLECFeature.from_feature(lec_feature_of(lpms[0][0]))
        assert not left.is_complete(query)


class TestGroupingAndJoinGraph:
    def test_groups_are_sign_homogeneous(self, path_setting):
        partitioned, query, lpms = path_setting
        features = [lec_feature_of(lpm) for lpm in lpms[0] + lpms[1]]
        groups = group_features_by_sign(features)
        for sign, members in groups.items():
            assert all(member.lec_sign == sign for member in members)

    def test_theorem5_same_sign_features_never_joinable(self, example_partitioning, example_query_graph):
        features = []
        for fragment in example_partitioning:
            outcome = evaluate_fragment(fragment, example_query_graph)
            features.extend(lec_feature_of(lpm) for lpm in outcome.local_partial_matches)
        groups = group_features_by_sign(features)
        for members in groups.values():
            for left in members:
                for right in members:
                    if left is not right:
                        assert not features_joinable(left, right, example_query_graph)

    def test_join_graph_edges_are_symmetric(self, example_partitioning, example_query_graph):
        features = []
        for fragment in example_partitioning:
            outcome = evaluate_fragment(fragment, example_query_graph)
            features.extend(lec_feature_of(lpm) for lpm in outcome.local_partial_matches)
        groups = group_features_by_sign(features)
        join_graph = build_join_graph(groups, example_query_graph)
        for sign, neighbours in join_graph.items():
            for neighbour in neighbours:
                assert sign in join_graph[neighbour]
