"""Unit tests for the matching-kernel machinery (`repro.store.kernel`).

Kernel selection ($REPRO_KERNEL, numpy fallback), shard bounds, the sorted
adjacency columns and their incremental invalidation, and the signature
bit-matrix — the parts the Hypothesis parity suite exercises only
indirectly.  The numpy-free paths are simulated by monkeypatching
``kernel._NUMPY`` so they run even on machines that have numpy installed.
"""

import pytest

import repro.store.kernel as kernel_module
from repro.rdf import Literal, Namespace, RDFGraph, Triple, TriplePattern, Variable
from repro.sparql import BasicGraphPattern, QueryGraph
from repro.store import (
    KERNEL_CHOICES,
    KERNEL_ENV,
    KERNEL_PYTHON,
    KERNEL_SETS,
    KERNEL_VECTORIZED,
    LocalMatcher,
    SignatureIndex,
    default_kernel,
    resolve_kernel,
    shard_bounds,
)
from repro.store.encoding import encoded_view
from repro.store.kernel import SortedAdjacency, adjacency_view, numpy_or_none

EX = Namespace("http://example.org/")
ALICE, BOB, CAROL, DAVE = EX.term("alice"), EX.term("bob"), EX.term("carol"), EX.term("dave")
KNOWS, NAME = EX.term("knows"), EX.term("name")


def social_graph() -> RDFGraph:
    graph = RDFGraph()
    graph.add(Triple(ALICE, KNOWS, BOB))
    graph.add(Triple(BOB, KNOWS, CAROL))
    graph.add(Triple(CAROL, KNOWS, ALICE))
    graph.add(Triple(ALICE, KNOWS, DAVE))
    graph.add(Triple(ALICE, NAME, Literal("Alice")))
    graph.add(Triple(BOB, NAME, Literal("Bob")))
    return graph


def knows_chain() -> QueryGraph:
    return QueryGraph(
        BasicGraphPattern(
            [
                TriplePattern(Variable("x"), KNOWS, Variable("y")),
                TriplePattern(Variable("y"), KNOWS, Variable("z")),
            ]
        )
    )


@pytest.fixture
def no_numpy(monkeypatch):
    """Simulate a numpy-free interpreter without uninstalling anything."""
    monkeypatch.setattr(kernel_module, "_NUMPY", None)
    monkeypatch.setattr(kernel_module, "_NUMPY_CHECKED", True)


# ----------------------------------------------------------------------
# Kernel selection
# ----------------------------------------------------------------------
class TestKernelResolution:
    def test_default_prefers_vectorized_when_numpy_imports(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        expected = KERNEL_VECTORIZED if numpy_or_none() is not None else KERNEL_PYTHON
        assert default_kernel() == expected
        assert resolve_kernel(None) == expected

    def test_environment_variable_wins(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, KERNEL_SETS)
        assert default_kernel() == KERNEL_SETS
        assert resolve_kernel() == KERNEL_SETS

    def test_environment_variable_is_validated(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "bogus")
        with pytest.raises(ValueError, match="unknown kernel 'bogus'"):
            default_kernel()

    def test_unknown_name_lists_the_choices(self):
        with pytest.raises(ValueError, match=", ".join(KERNEL_CHOICES)):
            resolve_kernel("simd")

    def test_explicit_name_passes_through(self):
        for name in (KERNEL_PYTHON, KERNEL_SETS):
            assert resolve_kernel(name) == name

    def test_numpy_free_default_is_python(self, no_numpy, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        assert default_kernel() == KERNEL_PYTHON

    def test_numpy_free_vectorized_is_an_error(self, no_numpy):
        with pytest.raises(ValueError, match="needs numpy"):
            resolve_kernel(KERNEL_VECTORIZED)

    def test_matcher_follows_the_environment(self, monkeypatch):
        matcher = LocalMatcher(social_graph())
        monkeypatch.setenv(KERNEL_ENV, KERNEL_SETS)
        list(matcher.find_matches(knows_chain()))
        assert matcher.kernel == KERNEL_SETS
        assert matcher.last_kernel == KERNEL_SETS
        monkeypatch.setenv(KERNEL_ENV, KERNEL_PYTHON)
        list(matcher.find_matches(knows_chain()))
        assert matcher.last_kernel == KERNEL_PYTHON

    def test_pinned_matcher_ignores_the_environment(self, monkeypatch):
        matcher = LocalMatcher(social_graph(), kernel=KERNEL_SETS)
        monkeypatch.setenv(KERNEL_ENV, KERNEL_PYTHON)
        list(matcher.find_matches(knows_chain()))
        assert matcher.last_kernel == KERNEL_SETS


# ----------------------------------------------------------------------
# Shard bounds
# ----------------------------------------------------------------------
class TestShardBounds:
    @pytest.mark.parametrize("count", [0, 1, 2, 7, 64, 1000])
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 8])
    def test_slices_tile_the_range_exactly(self, count, num_shards):
        covered = []
        for shard in range(num_shards):
            low, high = shard_bounds(count, shard, num_shards)
            assert 0 <= low <= high <= count
            covered.extend(range(low, high))
        assert covered == list(range(count))

    def test_out_of_range_shard_is_an_error(self):
        with pytest.raises(ValueError, match="outside"):
            shard_bounds(10, 3, 3)
        with pytest.raises(ValueError, match="outside"):
            shard_bounds(10, -1, 3)


# ----------------------------------------------------------------------
# Sorted adjacency columns
# ----------------------------------------------------------------------
class TestSortedAdjacency:
    def test_view_is_cached_per_flavor(self):
        encoded = encoded_view(social_graph())
        assert adjacency_view(encoded, KERNEL_PYTHON) is adjacency_view(encoded, KERNEL_PYTHON)
        assert adjacency_view(encoded, KERNEL_SETS) is adjacency_view(encoded, KERNEL_SETS)

    def test_columns_are_sorted_and_complete(self):
        graph = social_graph()
        encoded = encoded_view(graph)
        adjacency = adjacency_view(encoded, KERNEL_PYTHON)
        code = encoded.dictionary.id_of(KNOWS)
        alice = encoded.dictionary.id_of(ALICE)
        row = list(adjacency.objects_from(alice, code))
        assert row == sorted(row)
        assert {encoded.dictionary.n3_of(v) for v in row} == {BOB.n3(), DAVE.n3()}
        keys = list(adjacency.subject_keys(code))
        assert keys == sorted(keys)

    def test_vertex_pool_is_the_candidate_sort_order(self):
        encoded = encoded_view(social_graph())
        adjacency = adjacency_view(encoded, KERNEL_PYTHON)
        ids, array = adjacency.vertex_pool()
        assert tuple(ids) == encoded.sorted_vertex_ids
        assert array is None  # arrays only exist in the vectorized flavor
        assert adjacency.vertex_pool()[0] is ids  # memoized

    def test_invalidate_drops_only_the_touched_predicates(self):
        encoded = encoded_view(social_graph())
        adjacency = adjacency_view(encoded, KERNEL_PYTHON)
        knows = encoded.dictionary.id_of(KNOWS)
        name = encoded.dictionary.id_of(NAME)
        knows_column = adjacency.out_column(knows)
        name_column = adjacency.out_column(name)
        adjacency.invalidate({knows})
        assert adjacency.out_column(knows) is not knows_column
        assert adjacency.out_column(name) is name_column

    def test_vectorized_flavor_requires_numpy(self, no_numpy):
        encoded = encoded_view(social_graph())
        with pytest.raises(ValueError, match="needs numpy"):
            SortedAdjacency(encoded, KERNEL_VECTORIZED)

    @pytest.mark.parametrize("kernel", [KERNEL_SETS, KERNEL_PYTHON, KERNEL_VECTORIZED])
    def test_mutation_then_query_sees_the_new_edges(self, kernel):
        if kernel == KERNEL_VECTORIZED and numpy_or_none() is None:
            pytest.skip("numpy unavailable")
        graph = social_graph()
        matcher = LocalMatcher(graph, kernel=kernel)
        query = knows_chain()
        before = list(matcher.find_matches(query))
        graph.add(Triple(DAVE, KNOWS, CAROL))
        after = list(matcher.find_matches(query))
        assert len(after) > len(before)
        # A cold matcher over an identical graph agrees exactly — the
        # incrementally patched columns are not an approximation.
        fresh = LocalMatcher(graph.copy(), kernel=kernel)
        assert list(fresh.find_matches(query)) == after
        assert fresh.search_steps == matcher.search_steps


# ----------------------------------------------------------------------
# Signature bit-matrix (the vectorized kernel's filter input)
# ----------------------------------------------------------------------
class TestBitsMatrix:
    def test_matrix_words_match_the_bits_table(self):
        np = numpy_or_none()
        if np is None:
            pytest.skip("numpy unavailable")
        graph = social_graph()
        index = SignatureIndex(graph)
        encoded = encoded_view(graph)
        table = index.bits_table(encoded)
        matrix = index.bits_matrix(encoded)
        assert matrix.shape[0] == len(table)
        words = matrix.shape[1]
        for row, bits in zip(matrix, table):
            reassembled = 0
            for word in range(words):
                reassembled |= int(row[word]) << (64 * word)
            assert reassembled == bits

    def test_matrix_refreshes_after_mutation(self):
        np = numpy_or_none()
        if np is None:
            pytest.skip("numpy unavailable")
        graph = social_graph()
        index = SignatureIndex(graph)
        stale = index.bits_matrix(encoded_view(graph))
        graph.add(Triple(DAVE, NAME, Literal("Dave")))
        fresh = index.bits_matrix(encoded_view(graph))
        assert fresh is not stale
        assert fresh.shape[0] >= stale.shape[0]

    def test_numpy_free_matrix_is_an_error(self, no_numpy):
        graph = social_graph()
        index = SignatureIndex(graph)
        with pytest.raises(ValueError, match="needs numpy"):
            index.bits_matrix(encoded_view(graph))

    def test_stale_encoded_view_is_an_error(self):
        graph = social_graph()
        index = SignatureIndex(graph)
        other = encoded_view(social_graph())
        with pytest.raises(ValueError, match="different graph"):
            index.bits_table(other)


# ----------------------------------------------------------------------
# Numpy-free end to end
# ----------------------------------------------------------------------
class TestNumpyFreeMatching:
    def test_python_kernel_matches_sets_without_numpy(self, no_numpy, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        graph = social_graph()
        query = knows_chain()
        default = LocalMatcher(graph)
        sets = LocalMatcher(graph, kernel=KERNEL_SETS)
        default_matches = list(default.find_matches(query))
        sets_matches = list(sets.find_matches(query))
        assert default.last_kernel == KERNEL_PYTHON
        assert default_matches == sets_matches
        assert default.search_steps == sets.search_steps
