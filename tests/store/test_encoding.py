"""Unit tests for the dictionary-encoding layer (repro.store.encoding)."""

from repro.rdf import IRI, Literal, Namespace, RDFGraph, Triple
from repro.store import EncodedGraph, TermDictionary, encoded_view
from repro.store.encoding import PREDICATE_ABSENT, PREDICATE_ANY, term_sort_key

EX = Namespace("http://example.org/")
A, B, C = EX.term("a"), EX.term("b"), EX.term("c")
KNOWS, LIKES, NAME = EX.term("knows"), EX.term("likes"), EX.term("name")


def build_graph() -> RDFGraph:
    graph = RDFGraph()
    graph.add(Triple(A, KNOWS, B))
    graph.add(Triple(B, KNOWS, C))
    graph.add(Triple(A, LIKES, C))
    graph.add(Triple(C, NAME, Literal("Carol")))
    return graph


class TestTermDictionary:
    def test_ids_are_dense_and_bidirectional(self):
        dictionary = TermDictionary([A, B, KNOWS, Literal("x")])
        assert len(dictionary) == 4
        for term in (A, B, KNOWS, Literal("x")):
            assert dictionary.term_of(dictionary.id_of(term)) == term

    def test_id_order_is_the_candidate_sort_order(self):
        terms = [C, Literal("Carol"), A, KNOWS, B, NAME, LIKES]
        dictionary = TermDictionary(terms)
        by_id = [dictionary.term_of(i) for i in range(len(dictionary))]
        assert by_id == sorted(set(terms), key=term_sort_key)

    def test_any_id_subset_sorts_like_the_terms(self):
        dictionary = TermDictionary([A, B, C, KNOWS, Literal("Carol")])
        subset = {A, Literal("Carol"), C}
        ids = sorted(dictionary.encode_nodes(subset))
        assert [dictionary.term_of(i) for i in ids] == sorted(subset, key=term_sort_key)

    def test_unknown_terms_are_none_or_dropped(self):
        dictionary = TermDictionary([A, B])
        assert dictionary.get(C) is None
        assert C not in dictionary
        assert dictionary.encode_nodes([A, C]) == {dictionary.id_of(A)}

    def test_n3_is_precomputed(self):
        dictionary = TermDictionary([A, Literal("Carol")])
        for term_id in range(len(dictionary)):
            assert dictionary.n3_of(term_id) == dictionary.term_of(term_id).n3()


class TestEncodedGraph:
    def test_indexes_agree_with_the_object_graph(self):
        graph = build_graph()
        encoded = EncodedGraph(graph)
        id_of = encoded.dictionary.id_of
        for triple in graph:
            s, p, o = id_of(triple.subject), id_of(triple.predicate), id_of(triple.object)
            assert encoded.has_edge(s, p, o)
            assert s in encoded.subjects_to(p, o)
            assert o in encoded.objects_from(s, p)
            assert encoded.has_edge(s, PREDICATE_ANY, o)
        assert encoded.num_triples == len(graph)

    def test_vertex_ids_exclude_pure_predicates(self):
        graph = build_graph()
        encoded = EncodedGraph(graph)
        decoded = encoded.dictionary.decode_ids(encoded.vertex_ids)
        assert decoded == graph.vertices
        assert not encoded.is_vertex(encoded.dictionary.id_of(KNOWS))

    def test_absent_probes_are_empty(self):
        encoded = EncodedGraph(build_graph())
        id_of = encoded.dictionary.id_of
        assert not encoded.has_edge(id_of(A), PREDICATE_ABSENT, id_of(B))
        assert not encoded.has_edge(id_of(B), id_of(NAME), id_of(A))
        assert encoded.subjects_to(PREDICATE_ABSENT, id_of(B)) == set()
        assert encoded.objects_from(id_of(A), PREDICATE_ABSENT) == set()
        assert encoded.subjects_of_predicate(PREDICATE_ABSENT) == set()
        assert encoded.objects_of_predicate(PREDICATE_ABSENT) == set()

    def test_predicate_wide_probes(self):
        encoded = EncodedGraph(build_graph())
        id_of = encoded.dictionary.id_of
        decode = encoded.dictionary.decode_ids
        assert decode(encoded.subjects_of_predicate(id_of(KNOWS))) == {A, B}
        assert decode(encoded.objects_of_predicate(id_of(KNOWS))) == {B, C}
        assert encoded.has_out_edge(id_of(A), id_of(KNOWS))
        assert not encoded.has_out_edge(id_of(C), id_of(KNOWS))
        assert encoded.has_in_edge(id_of(C), PREDICATE_ANY)
        assert not encoded.has_in_edge(id_of(A), PREDICATE_ANY)

    def test_iter_triple_ids_round_trips(self):
        graph = build_graph()
        encoded = EncodedGraph(graph)
        term_of = encoded.dictionary.term_of
        rebuilt = {Triple(term_of(s), term_of(p), term_of(o)) for s, p, o in encoded.iter_triple_ids()}
        assert rebuilt == set(graph)

    def test_sorted_vertex_ids_are_sorted_and_complete(self):
        encoded = EncodedGraph(build_graph())
        assert list(encoded.sorted_vertex_ids) == sorted(encoded.vertex_ids)


class TestEncodedViewCache:
    def test_view_is_patched_in_place_when_the_graph_changes(self):
        graph = build_graph()
        first = encoded_view(graph)
        assert encoded_view(graph) is first
        graph.add(Triple(B, LIKES, A))
        # A single append patches the cached encoding in place instead of
        # rebuilding it (the delta machinery of repro.persist).
        second = encoded_view(graph)
        assert second is first
        id_of = second.dictionary.id_of
        assert second.has_edge(id_of(B), id_of(LIKES), id_of(A))

    def test_noop_mutations_keep_the_cache(self):
        graph = build_graph()
        first = encoded_view(graph)
        graph.add(Triple(A, KNOWS, B))  # already present
        assert encoded_view(graph) is first

    def test_copies_do_not_share_the_cache(self):
        graph = build_graph()
        first = encoded_view(graph)
        copy = graph.copy()
        assert encoded_view(copy) is not first


class TestKernelSurvivesMutation:
    def test_matcher_is_correct_after_graph_mutation(self):
        # The matcher and its signature index were built before the
        # mutation; dense ids shift when the encoding rebuilds, so the
        # index must resync instead of serving another term's bits.
        from repro.sparql import BasicGraphPattern, QueryGraph
        from repro.rdf import TriplePattern, Variable
        from repro.store import LocalMatcher

        graph = build_graph()
        matcher = LocalMatcher(graph)
        query = QueryGraph(BasicGraphPattern([TriplePattern(Variable("x"), KNOWS, Variable("y"))]))
        assert matcher.count_matches(query) == 2
        zed = EX.term("zed")
        graph.add(Triple(zed, KNOWS, A))
        graph.add(Triple(EX.term("aaa"), NAME, Literal("Aaa")))  # shifts low ids
        matches = list(matcher.find_matches(query))
        assert {(m[Variable("x")], m[Variable("y")]) for m in matches} == {
            (A, B),
            (B, C),
            (zed, A),
        }

    def test_bits_table_rejects_a_foreign_encoded_view(self):
        import pytest
        from repro.store import SignatureIndex

        graph = build_graph()
        other = RDFGraph([Triple(A, KNOWS, B)])
        index = SignatureIndex(graph)
        with pytest.raises(ValueError, match="different graph"):
            index.bits_table(encoded_view(other))
