"""Unit tests for vertex signatures and the signature index."""

from repro.rdf import IRI, Literal, Namespace, RDFGraph, Triple, TriplePattern, Variable
from repro.sparql import BasicGraphPattern, QueryGraph
from repro.store import SignatureIndex, VertexSignature

EX = Namespace("http://example.org/")
A, B, C = EX.term("a"), EX.term("b"), EX.term("c")
KNOWS, LIKES = EX.term("knows"), EX.term("likes")


def small_graph() -> RDFGraph:
    graph = RDFGraph()
    graph.add(Triple(A, KNOWS, B))
    graph.add(Triple(B, LIKES, C))
    graph.add(Triple(A, LIKES, C))
    return graph


class TestVertexSignature:
    def test_covers_subset(self):
        big = VertexSignature(0b1110)
        small = VertexSignature(0b0110)
        assert big.covers(small)
        assert not small.covers(big)

    def test_union(self):
        assert (VertexSignature(0b01) | VertexSignature(0b10)).bits == 0b11

    def test_popcount(self):
        assert VertexSignature(0b1011).popcount() == 3


class TestSignatureIndex:
    def test_every_vertex_has_a_signature(self):
        graph = small_graph()
        index = SignatureIndex(graph)
        for vertex in graph.vertices:
            assert index.signature_of(vertex).bits != 0

    def test_unknown_vertex_has_empty_signature(self):
        index = SignatureIndex(small_graph())
        assert index.signature_of(EX.term("unknown")).bits == 0

    def test_signatures_are_deterministic(self):
        graph = small_graph()
        first = SignatureIndex(graph)
        second = SignatureIndex(graph)
        for vertex in graph.vertices:
            assert first.signature_of(vertex).bits == second.signature_of(vertex).bits

    def test_data_signature_covers_query_signature_for_true_match(self):
        graph = small_graph()
        index = SignatureIndex(graph)
        # Query: ?x knows ?y . ?x likes ?z — vertex A matches ?x.
        query = QueryGraph(
            BasicGraphPattern(
                [
                    TriplePattern(Variable("x"), KNOWS, Variable("y")),
                    TriplePattern(Variable("x"), LIKES, Variable("z")),
                ]
            )
        )
        needed = index.query_signature(query, Variable("x"))
        assert index.signature_of(A).covers(needed)
        # Vertex B has no outgoing `knows`, so it must not cover the signature.
        assert not index.signature_of(B).covers(needed)

    def test_candidates_by_signature_never_miss_true_candidates(self):
        graph = small_graph()
        index = SignatureIndex(graph)
        query = QueryGraph(
            BasicGraphPattern([TriplePattern(Variable("x"), KNOWS, Variable("y"))])
        )
        candidates = index.candidates_by_signature(query, Variable("x"))
        assert A in candidates

    def test_candidates_for_constant_vertex(self):
        graph = small_graph()
        index = SignatureIndex(graph)
        query = QueryGraph(BasicGraphPattern([TriplePattern(A, KNOWS, Variable("y"))]))
        assert index.candidates_by_signature(query, A) == {A}

    def test_skip_edges_relaxes_constraints(self):
        graph = small_graph()
        index = SignatureIndex(graph)
        query = QueryGraph(
            BasicGraphPattern(
                [
                    TriplePattern(Variable("x"), KNOWS, Variable("y")),
                    TriplePattern(Variable("x"), LIKES, Variable("z")),
                ]
            )
        )
        full = index.query_signature(query, Variable("x"))
        relaxed = index.query_signature(query, Variable("x"), skip_edges={0})
        assert full.covers(relaxed)
        assert full.bits != relaxed.bits

    def test_variable_predicate_adds_no_constraint(self):
        graph = small_graph()
        index = SignatureIndex(graph)
        query = QueryGraph(
            BasicGraphPattern([TriplePattern(Variable("x"), Variable("p"), Variable("y"))])
        )
        assert index.query_signature(query, Variable("x")).bits == 0
