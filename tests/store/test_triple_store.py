"""Unit tests for the TripleStore facade."""

from repro.rdf import Literal, Namespace, RDFGraph, Triple, TriplePattern, Variable
from repro.sparql import BasicGraphPattern, QueryGraph, parse_query
from repro.store import TripleStore

EX = Namespace("http://example.org/")
A, B, C = EX.term("a"), EX.term("b"), EX.term("c")
KNOWS = EX.term("knows")


class TestLoading:
    def test_load_counts_new_triples(self):
        store = TripleStore(name="test")
        added = store.load([Triple(A, KNOWS, B), Triple(A, KNOWS, B), Triple(B, KNOWS, C)])
        assert added == 2
        assert len(store) == 2

    def test_add_single(self):
        store = TripleStore()
        assert store.add(Triple(A, KNOWS, B)) is True
        assert store.add(Triple(A, KNOWS, B)) is False

    def test_name_from_constructor(self):
        assert TripleStore(name="fragment-1").name == "fragment-1"

    def test_wraps_existing_graph(self):
        graph = RDFGraph([Triple(A, KNOWS, B)])
        store = TripleStore(graph)
        assert len(store) == 1
        assert store.graph is graph


class TestIndexInvalidation:
    def test_signature_index_resyncs_after_load(self):
        store = TripleStore()
        store.load([Triple(A, KNOWS, B)])
        first = store.signatures
        before = first.signature_of(B).bits
        store.load([Triple(B, KNOWS, C)])
        # The index object survives the mutation (it patches itself in
        # place from the graph's journal) but must serve fresh bits.
        assert store.signatures is first
        after = store.signatures.signature_of(B).bits
        assert after != 0
        assert after != before

    def test_matcher_survives_mutation_and_stays_correct(self):
        store = TripleStore()
        store.load([Triple(A, KNOWS, B)])
        first = store.matcher
        store.add(Triple(B, KNOWS, C))
        assert store.matcher is first
        query = QueryGraph(BasicGraphPattern([TriplePattern(Variable("x"), KNOWS, Variable("y"))]))
        assert len(list(store.find_matches(query))) == 2

    def test_removal_resyncs_indexes(self):
        store = TripleStore()
        store.load([Triple(A, KNOWS, B), Triple(B, KNOWS, C)])
        query = QueryGraph(BasicGraphPattern([TriplePattern(Variable("x"), KNOWS, Variable("y"))]))
        assert len(list(store.find_matches(query))) == 2
        assert store.discard(Triple(B, KNOWS, C))
        assert len(list(store.find_matches(query))) == 1
        assert store.statistics.num_triples == 1


class TestQuerying:
    def test_evaluate_query(self):
        store = TripleStore()
        store.load([Triple(A, KNOWS, B), Triple(B, KNOWS, C)])
        results = store.evaluate(
            parse_query("PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x ex:knows ?y }")
        )
        assert len(results) == 2

    def test_find_matches(self):
        store = TripleStore()
        store.load([Triple(A, KNOWS, B)])
        query = QueryGraph(BasicGraphPattern([TriplePattern(Variable("x"), KNOWS, Variable("y"))]))
        assert len(list(store.find_matches(query))) == 1

    def test_candidates(self):
        store = TripleStore()
        store.load([Triple(A, KNOWS, B), Triple(B, KNOWS, C)])
        query = QueryGraph(BasicGraphPattern([TriplePattern(Variable("x"), KNOWS, Variable("y"))]))
        candidates = store.candidates(query)
        assert candidates[Variable("x")] == {A, B}

    def test_stats(self):
        store = TripleStore()
        store.load([Triple(A, KNOWS, B)])
        assert store.stats()["triples"] == 1
