"""Unit tests for the centralized BGP matcher."""

from repro.rdf import IRI, Literal, Namespace, RDFGraph, Triple, TriplePattern, Variable
from repro.sparql import BasicGraphPattern, QueryGraph, SelectQuery, parse_query
from repro.store import LocalMatcher, evaluate_centralized

EX = Namespace("http://example.org/")
ALICE, BOB, CAROL, DAVE = EX.term("alice"), EX.term("bob"), EX.term("carol"), EX.term("dave")
KNOWS, NAME, AGE = EX.term("knows"), EX.term("name"), EX.term("age")


def social_graph() -> RDFGraph:
    graph = RDFGraph()
    graph.add(Triple(ALICE, KNOWS, BOB))
    graph.add(Triple(BOB, KNOWS, CAROL))
    graph.add(Triple(CAROL, KNOWS, ALICE))
    graph.add(Triple(ALICE, KNOWS, DAVE))
    graph.add(Triple(ALICE, NAME, Literal("Alice")))
    graph.add(Triple(BOB, NAME, Literal("Bob")))
    graph.add(Triple(CAROL, NAME, Literal("Carol")))
    return graph


def run(graph, text):
    return evaluate_centralized(graph, parse_query(text))


class TestFindMatches:
    def test_single_pattern_matches(self):
        matcher = LocalMatcher(social_graph())
        query = QueryGraph(BasicGraphPattern([TriplePattern(Variable("x"), KNOWS, Variable("y"))]))
        assert matcher.count_matches(query) == 4

    def test_path_matches(self):
        matcher = LocalMatcher(social_graph())
        query = QueryGraph(
            BasicGraphPattern(
                [
                    TriplePattern(Variable("x"), KNOWS, Variable("y")),
                    TriplePattern(Variable("y"), KNOWS, Variable("z")),
                ]
            )
        )
        # alice->bob->carol, bob->carol->alice, carol->alice->bob, carol->alice->dave.
        assert matcher.count_matches(query) == 4

    def test_cycle_matches(self):
        matcher = LocalMatcher(social_graph())
        query = QueryGraph(
            BasicGraphPattern(
                [
                    TriplePattern(Variable("x"), KNOWS, Variable("y")),
                    TriplePattern(Variable("y"), KNOWS, Variable("z")),
                    TriplePattern(Variable("z"), KNOWS, Variable("x")),
                ]
            )
        )
        assert matcher.count_matches(query) == 3  # the triangle, from each rotation

    def test_homomorphism_allows_repeated_data_vertices(self):
        graph = RDFGraph([Triple(ALICE, KNOWS, BOB), Triple(BOB, KNOWS, ALICE)])
        matcher = LocalMatcher(graph)
        query = QueryGraph(
            BasicGraphPattern(
                [
                    TriplePattern(Variable("x"), KNOWS, Variable("y")),
                    TriplePattern(Variable("y"), KNOWS, Variable("z")),
                ]
            )
        )
        # x and z may map to the same vertex: alice->bob->alice and bob->alice->bob.
        assert matcher.count_matches(query) == 2

    def test_variable_predicate(self):
        matcher = LocalMatcher(social_graph())
        query = QueryGraph(
            BasicGraphPattern([TriplePattern(ALICE, Variable("p"), Variable("y"))])
        )
        assert matcher.count_matches(query) == 3

    def test_no_matches_for_absent_pattern(self):
        matcher = LocalMatcher(social_graph())
        query = QueryGraph(BasicGraphPattern([TriplePattern(Variable("x"), AGE, Variable("y"))]))
        assert matcher.count_matches(query) == 0


class TestEvaluate:
    def test_select_with_constant(self):
        results = run(
            social_graph(),
            'PREFIX ex: <http://example.org/> SELECT ?who WHERE { ?who ex:name "Alice" . }',
        )
        assert len(results) == 1
        assert next(iter(results))[Variable("who")] == ALICE

    def test_projection(self):
        results = run(
            social_graph(),
            "PREFIX ex: <http://example.org/> SELECT ?y WHERE { ex:alice ex:knows ?y . }",
        )
        assert {binding[Variable("y")] for binding in results} == {BOB, DAVE}

    def test_distinct(self):
        results = run(
            social_graph(),
            "PREFIX ex: <http://example.org/> SELECT DISTINCT ?x WHERE { ?x ex:knows ?y . }",
        )
        assert len(results) == 3

    def test_limit(self):
        results = run(
            social_graph(),
            "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x ex:knows ?y . } LIMIT 2",
        )
        assert len(results) == 2

    def test_join_query(self):
        results = run(
            social_graph(),
            "PREFIX ex: <http://example.org/> "
            "SELECT ?a ?c WHERE { ?a ex:knows ?b . ?b ex:knows ?c . ?a ex:name ?n . }",
        )
        assert len(results) == 4

    def test_disconnected_query_is_cross_product(self):
        results = run(
            social_graph(),
            "PREFIX ex: <http://example.org/> "
            'SELECT ?x ?y WHERE { ?x ex:name "Alice" . ?y ex:name "Bob" . }',
        )
        assert len(results) == 1
        binding = next(iter(results))
        assert binding[Variable("x")] == ALICE
        assert binding[Variable("y")] == BOB

    def test_empty_result_for_unsatisfiable_query(self):
        results = run(
            social_graph(),
            'PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x ex:name "Nobody" . }',
        )
        assert len(results) == 0

    def test_paper_example_answer_count(self, example_graph, example_query_obj):
        results = evaluate_centralized(example_graph, example_query_obj)
        assert len(results) == 4
