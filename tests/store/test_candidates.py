"""Unit tests for per-variable candidate computation."""

from repro.rdf import IRI, Literal, Namespace, RDFGraph, Triple, TriplePattern, Variable
from repro.sparql import BasicGraphPattern, QueryGraph
from repro.store import compute_candidates, edge_supported

EX = Namespace("http://example.org/")
A, B, C, D = EX.term("a"), EX.term("b"), EX.term("c"), EX.term("d")
KNOWS, NAME = EX.term("knows"), EX.term("name")


def graph() -> RDFGraph:
    g = RDFGraph()
    g.add(Triple(A, KNOWS, B))
    g.add(Triple(B, KNOWS, C))
    g.add(Triple(C, KNOWS, D))
    g.add(Triple(A, NAME, Literal("Alice")))
    return g


def query_graph(*patterns) -> QueryGraph:
    return QueryGraph(BasicGraphPattern(patterns))


class TestEdgeSupported:
    def test_supported_outgoing_edge(self):
        q = query_graph(TriplePattern(Variable("x"), KNOWS, Variable("y")))
        assert edge_supported(graph(), A, q, Variable("x"), 0)

    def test_unsupported_outgoing_edge(self):
        q = query_graph(TriplePattern(Variable("x"), KNOWS, Variable("y")))
        assert not edge_supported(graph(), D, q, Variable("x"), 0)

    def test_supported_incoming_edge(self):
        q = query_graph(TriplePattern(Variable("x"), KNOWS, Variable("y")))
        assert edge_supported(graph(), B, q, Variable("y"), 0)

    def test_constant_other_endpoint(self):
        q = query_graph(TriplePattern(Variable("x"), KNOWS, C))
        assert edge_supported(graph(), B, q, Variable("x"), 0)
        assert not edge_supported(graph(), A, q, Variable("x"), 0)


class TestComputeCandidates:
    def test_single_pattern_candidates(self):
        q = query_graph(TriplePattern(Variable("x"), KNOWS, Variable("y")))
        candidates = compute_candidates(graph(), q)
        assert candidates[Variable("x")] == {A, B, C}
        assert candidates[Variable("y")] == {B, C, D}

    def test_multi_pattern_candidates_intersect_constraints(self):
        # ?x knows ?y and ?x name "Alice" — only A satisfies both.
        q = query_graph(
            TriplePattern(Variable("x"), KNOWS, Variable("y")),
            TriplePattern(Variable("x"), NAME, Literal("Alice")),
        )
        candidates = compute_candidates(graph(), q)
        assert candidates[Variable("x")] == {A}

    def test_constant_vertex_candidates(self):
        q = query_graph(TriplePattern(A, KNOWS, Variable("y")))
        candidates = compute_candidates(graph(), q)
        assert candidates[A] == {A}

    def test_missing_constant_vertex_gives_empty_set(self):
        q = query_graph(TriplePattern(EX.term("missing"), KNOWS, Variable("y")))
        candidates = compute_candidates(graph(), q)
        assert candidates[EX.term("missing")] == set()

    def test_restrict_to_universe(self):
        q = query_graph(TriplePattern(Variable("x"), KNOWS, Variable("y")))
        candidates = compute_candidates(graph(), q, restrict_to={A, B})
        assert candidates[Variable("x")] == {A, B}
        assert candidates[Variable("y")] == {B}

    def test_relaxed_edges_drop_constraints(self):
        q = query_graph(
            TriplePattern(Variable("x"), KNOWS, Variable("y")),
            TriplePattern(Variable("x"), NAME, Literal("Alice")),
        )
        relaxed = compute_candidates(graph(), q, relaxed_edges={Variable("x"): {1}})
        assert relaxed[Variable("x")] == {A, B, C}

    def test_all_edges_relaxed_allows_everything(self):
        q = query_graph(TriplePattern(Variable("x"), KNOWS, Variable("y")))
        relaxed = compute_candidates(graph(), q, relaxed_edges={Variable("x"): {0}})
        assert relaxed[Variable("x")] == graph().vertices

    def test_candidates_never_miss_true_matches(self):
        # Every vertex that actually participates in a match must be a candidate.
        q = query_graph(
            TriplePattern(Variable("x"), KNOWS, Variable("y")),
            TriplePattern(Variable("y"), KNOWS, Variable("z")),
        )
        candidates = compute_candidates(graph(), q)
        # True matches: (A,B,C) and (B,C,D).
        assert {A, B} <= candidates[Variable("x")]
        assert {B, C} <= candidates[Variable("y")]
        assert {C, D} <= candidates[Variable("z")]
