"""Determinism regression: worker count must never change what the engine reports.

The parallel runtime's contract is bit-identical *answers and accounting*:
running the same query under `max_workers` 1, 2 and 8 (and under the serial
reference backend) must produce identical solutions and identical
``shipped_bytes`` / ``messages`` for every stage — completion order must
never leak into the statistics.
"""

import pytest

from repro.bench import stage_shipment_snapshot as snapshot
from repro.core import EngineConfig, GStoreDEngine
from repro.datasets import get_dataset
from repro.obs import CATEGORY_TASK, Trace

WORKER_COUNTS = (1, 2, 8)

#: Explicitly serial, so the reference stays the reference even when the
#: suite runs under REPRO_EXECUTOR=threads (the CI matrix leg).
SERIAL = EngineConfig.full().with_options(executor="serial")


def run(cluster, query, config, trace=None):
    cluster.reset_network()
    engine = GStoreDEngine(cluster, config)
    try:
        if trace is not None:
            return engine.execute(query, trace=trace)
        return engine.execute(query)
    finally:
        engine.close()


@pytest.mark.parametrize("query_name", ["LQ1", "LQ7", "LQ2"])  # complex x2 + star
def test_worker_count_does_not_change_results_or_accounting(lubm_cluster, query_name):
    query = get_dataset("LUBM").queries()[query_name]
    # Warm the plan caches so the planning stage is in steady state for
    # every run (the cache-hit counter is not part of the fingerprint, but
    # warmed caches keep the runs maximally comparable).
    run(lubm_cluster, query, SERIAL)
    reference = run(lubm_cluster, query, SERIAL)
    reference_rows = sorted(map(sorted, (row.items() for row in reference.results.to_table())))
    for workers in WORKER_COUNTS:
        result = run(lubm_cluster, query, EngineConfig.full().with_workers(workers))
        rows = sorted(map(sorted, (row.items() for row in result.results.to_table())))
        assert rows == reference_rows
        assert result.results.same_solutions(reference.results)
        assert snapshot(result) == snapshot(reference)


def test_threaded_runs_agree_with_each_other(lubm_cluster):
    query = get_dataset("LUBM").queries()["LQ6"]
    snapshots = []
    result_sets = []
    for workers in WORKER_COUNTS:
        result = run(lubm_cluster, query, EngineConfig.full().with_workers(workers))
        snapshots.append(snapshot(result))
        result_sets.append(result.results)
    assert all(snap == snapshots[0] for snap in snapshots)
    assert all(results.same_solutions(result_sets[0]) for results in result_sets)


@pytest.mark.parametrize("query_name", ["LQ1", "LQ2"])  # general pipeline + star shortcut
def test_tracing_does_not_change_results_or_accounting(lubm_cluster, query_name):
    """Observability must be a pure observer: with a trace attached, every
    worker count still produces bit-identical answers, shipment fingerprints
    and ``search_steps`` — and the trace itself gains per-site task spans."""
    query = get_dataset("LUBM").queries()[query_name]
    run(lubm_cluster, query, SERIAL)  # warm the plan cache
    reference = run(lubm_cluster, query, SERIAL)
    reference_rows = sorted(map(sorted, (row.items() for row in reference.results.to_table())))
    for workers in WORKER_COUNTS:
        trace = Trace("query")
        result = run(lubm_cluster, query, EngineConfig.full().with_workers(workers), trace=trace)
        trace.finish()
        rows = sorted(map(sorted, (row.items() for row in result.results.to_table())))
        assert rows == reference_rows
        assert snapshot(result) == snapshot(reference)
        assert result.statistics.work == reference.statistics.work
        task_spans = trace.find_spans(category=CATEGORY_TASK)
        assert len(task_spans) >= lubm_cluster.num_sites


def test_traced_serial_equals_untraced_serial(lubm_cluster):
    query = get_dataset("LUBM").queries()["LQ7"]
    untraced = run(lubm_cluster, query, SERIAL)
    traced = run(lubm_cluster, query, SERIAL, trace=Trace("query"))
    assert traced.results.same_solutions(untraced.results)
    assert snapshot(traced) == snapshot(untraced)
    assert traced.statistics.work == untraced.statistics.work


def test_executor_is_recorded_for_non_serial_backends_only(lubm_cluster):
    query = get_dataset("LUBM").queries()["LQ2"]
    serial = run(lubm_cluster, query, SERIAL)
    threaded = run(lubm_cluster, query, EngineConfig.full().with_workers(2))
    # The serial reference must keep the paper's table layout unchanged.
    assert "executor" not in serial.statistics.extra
    assert threaded.statistics.extra["executor"] == "threads"
    assert threaded.statistics.extra["max_workers"] == 2
