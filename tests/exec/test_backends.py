"""Unit tests for the execution backends and the per-site fan-out helper."""

import threading
import time

import pytest

from repro.exec import (
    EXECUTOR_ENV_VAR,
    MAX_WORKERS_ENV_VAR,
    SerialBackend,
    ThreadPoolBackend,
    default_max_workers,
    make_backend,
    run_per_site,
)


class TestSerialBackend:
    def test_maps_in_order(self):
        backend = SerialBackend()
        assert backend.map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]
        assert backend.name == "serial"
        assert backend.max_workers == 1

    def test_propagates_exceptions(self):
        def boom(x):
            raise RuntimeError(f"task {x}")

        with pytest.raises(RuntimeError, match="task 1"):
            SerialBackend().map(boom, [1, 2])

    def test_empty_batch(self):
        assert SerialBackend().map(lambda x: x, []) == []


class TestThreadPoolBackend:
    def test_results_come_back_in_submission_order(self):
        # Later items finish *first* (shorter sleeps), yet the results must
        # come back in submission order — the determinism contract.
        items = list(range(6))

        def staggered(i):
            time.sleep((len(items) - i) * 0.005)
            return i * 10

        with ThreadPoolBackend(max_workers=6) as backend:
            assert backend.map(staggered, items) == [i * 10 for i in items]

    def test_actually_uses_multiple_threads(self):
        seen = set()
        barrier = threading.Barrier(3, timeout=5)

        def task(i):
            barrier.wait()  # deadlocks unless 3 tasks run concurrently
            seen.add(threading.current_thread().name)
            return i

        with ThreadPoolBackend(max_workers=3) as backend:
            assert backend.map(task, [0, 1, 2]) == [0, 1, 2]
        assert len(seen) >= 2

    def test_single_item_runs_inline(self):
        with ThreadPoolBackend(max_workers=4) as backend:
            thread_names = backend.map(lambda _: threading.current_thread().name, ["x"])
        assert thread_names == [threading.current_thread().name]

    def test_propagates_exceptions(self):
        def boom(x):
            if x == 1:
                raise ValueError("boom")
            return x

        with ThreadPoolBackend(max_workers=2) as backend:
            with pytest.raises(ValueError, match="boom"):
                backend.map(boom, [0, 1, 2])

    def test_usable_after_close(self):
        backend = ThreadPoolBackend(max_workers=2)
        assert backend.map(str, [1, 2]) == ["1", "2"]
        backend.close()
        backend.close()  # idempotent
        assert backend.map(str, [3, 4]) == ["3", "4"]
        backend.close()

    def test_rejects_invalid_worker_counts(self):
        with pytest.raises(ValueError):
            ThreadPoolBackend(max_workers=0)
        with pytest.raises(ValueError):
            ThreadPoolBackend(max_workers=-2)


class TestMakeBackend:
    def test_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        assert isinstance(make_backend(), SerialBackend)

    def test_environment_selects_threads(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "threads")
        monkeypatch.setenv(MAX_WORKERS_ENV_VAR, "3")
        backend = make_backend()
        assert isinstance(backend, ThreadPoolBackend)
        assert backend.max_workers == 3
        backend.close()

    def test_explicit_choice_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "threads")
        assert isinstance(make_backend("serial"), SerialBackend)

    def test_explicit_workers_override_environment(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV_VAR, "3")
        backend = make_backend("threads", 2)
        assert backend.max_workers == 2
        backend.close()

    def test_unknown_executor_error_enumerates_choices(self):
        with pytest.raises(ValueError, match="unknown executor") as excinfo:
            make_backend("mpi")
        message = str(excinfo.value)
        for choice in ("serial", "threads", "processes"):
            assert choice in message

    def test_default_max_workers_floor(self, monkeypatch):
        monkeypatch.delenv(MAX_WORKERS_ENV_VAR, raising=False)
        assert default_max_workers() >= 1
        monkeypatch.setenv(MAX_WORKERS_ENV_VAR, "0")
        with pytest.raises(ValueError):
            default_max_workers()

    @pytest.mark.parametrize("junk", ["four", "", "2.5", " 8x"])
    def test_default_max_workers_rejects_non_integers_by_name(self, monkeypatch, junk):
        # A bare int() traceback would not tell the user *which* variable is
        # malformed; the error must name $REPRO_MAX_WORKERS and echo the value.
        monkeypatch.setenv(MAX_WORKERS_ENV_VAR, junk)
        with pytest.raises(ValueError, match=MAX_WORKERS_ENV_VAR) as excinfo:
            default_max_workers()
        assert repr(junk) in str(excinfo.value)


class TestRunPerSite:
    def test_merges_in_site_id_order(self, example_cluster):
        with ThreadPoolBackend(max_workers=4) as backend:

            def staggered(site):
                time.sleep((example_cluster.num_sites - site.site_id) * 0.005)
                return site.site_id

            pairs = run_per_site(example_cluster, staggered, backend)
        assert [site.site_id for site, _ in pairs] == sorted(example_cluster.site_ids)
        assert [result for _, result in pairs] == sorted(example_cluster.site_ids)

    def test_defaults_to_serial(self, example_cluster):
        pairs = run_per_site(example_cluster, lambda site: site.name)
        assert [result for _, result in pairs] == [f"S{i}" for i in example_cluster.site_ids]
