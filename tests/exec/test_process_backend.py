"""Process-pool backend: unit behavior, worker bootstrap, and determinism.

The process backend's contract is the same as every other backend's —
submission-order results, bit-identical answers and shipment accounting —
plus the new mechanics this suite pins down: picklable ``SiteTask``
descriptors, per-worker site bootstrap from serialized fragments, pool
rebinding when the cluster changes, and inline execution of single-task
batches.
"""

import os
import pickle

import pytest

from repro.bench import stage_shipment_snapshot as snapshot
from repro.core import EngineConfig, GStoreDEngine
from repro.core.site_tasks import TASK_LOCAL_EVAL, local_eval_tasks
from repro.datasets import get_dataset
from repro.exec import (
    ProcessPoolBackend,
    SerialBackend,
    SiteTask,
    WorkerBootstrap,
    execute_site_task,
    make_backend,
    worker_is_initialized,
)
from repro.exec.worker import build_sites

#: The worker counts the acceptance contract names for the process path.
WORKER_COUNTS = (1, 2, 8)

#: Explicitly serial, so the reference stays the reference even when the
#: suite runs under REPRO_EXECUTOR=processes (the CI matrix leg).
SERIAL = EngineConfig.full().with_options(executor="serial")


def run(cluster, query, config, backend=None):
    cluster.reset_network()
    engine = GStoreDEngine(cluster, config, backend=backend)
    try:
        return engine.execute(query)
    finally:
        engine.close()


def sorted_rows(results):
    return sorted(sorted(row.items()) for row in results.to_table())


# Module-level on purpose: ProcessPoolExecutor must pickle it by reference.
def _square(x):
    return x * x


def _pid_of(_):
    return os.getpid()


class TestProcessPoolBackendUnit:
    def test_maps_in_submission_order(self):
        with ProcessPoolBackend(max_workers=2) as backend:
            assert backend.map(_square, [3, 1, 2]) == [9, 1, 4]
            assert backend.name == "processes"

    def test_single_item_runs_inline(self):
        with ProcessPoolBackend(max_workers=2) as backend:
            assert backend.map(_pid_of, ["x"]) == [os.getpid()]

    def test_multi_item_batches_leave_the_coordinator_process(self):
        with ProcessPoolBackend(max_workers=2) as backend:
            pids = set(backend.map(_pid_of, range(4)))
        assert pids  # ran somewhere
        assert os.getpid() not in pids  # ...and that somewhere was a worker

    def test_rejects_invalid_worker_counts(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(max_workers=0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(max_workers=-1)

    def test_usable_after_close(self):
        backend = ProcessPoolBackend(max_workers=2)
        assert backend.map(_square, [1, 2]) == [1, 4]
        backend.close()
        backend.close()  # idempotent
        assert backend.map(_square, [3, 4]) == [9, 16]
        backend.close()

    def test_make_backend_builds_processes(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "processes")
        monkeypatch.setenv("REPRO_MAX_WORKERS", "3")
        backend = make_backend()
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.max_workers == 3
        backend.close()


class TestSiteTaskDescriptors:
    def test_descriptors_and_results_are_picklable(self, example_cluster, example_query_obj):
        tasks = local_eval_tasks(example_cluster.site_ids, example_query_obj)
        rebuilt = pickle.loads(pickle.dumps(tasks))
        assert [task.site_id for task in rebuilt] == sorted(example_cluster.site_ids)
        assert all(task.stage == TASK_LOCAL_EVAL for task in rebuilt)
        result = execute_site_task(rebuilt[0], example_cluster.site(rebuilt[0].site_id))
        assert pickle.loads(pickle.dumps(result)).site_id == result.site_id
        assert result.elapsed_s >= 0.0

    def test_unknown_stage_is_a_lookup_error(self, example_cluster):
        with pytest.raises(LookupError, match="no site task registered"):
            execute_site_task(SiteTask(0, "no-such-stage"), example_cluster.site(0))

    def test_coordinator_process_is_not_a_worker(self):
        # The suite's coordinator process must never see a bootstrap
        # registry: tasks without an explicit site are workers-only.
        assert not worker_is_initialized()
        with pytest.raises(RuntimeError, match="bootstrapped"):
            execute_site_task(SiteTask(0, TASK_LOCAL_EVAL))


class TestWorkerBootstrap:
    def test_bootstrap_round_trips_fragments(self, example_cluster):
        bootstrap = WorkerBootstrap.from_cluster(example_cluster)
        rebuilt = build_sites(pickle.loads(pickle.dumps(bootstrap)))
        assert sorted(rebuilt) == sorted(example_cluster.site_ids)
        for site_id, site in rebuilt.items():
            original = example_cluster.site(site_id)
            assert site.fragment.internal_vertices == original.fragment.internal_vertices
            assert site.fragment.crossing_edges == original.fragment.crossing_edges
            assert site.planner is not None  # planner on by default

    def test_bootstrap_respects_planner_options(self, example_cluster):
        bootstrap = WorkerBootstrap.from_cluster(example_cluster, use_planner=False)
        rebuilt = build_sites(bootstrap)
        assert all(site.planner is None for site in rebuilt.values())

    def test_graph_statistics_through_the_process_pool(self, example_cluster):
        reference = example_cluster.graph_statistics(SerialBackend())
        with ProcessPoolBackend(max_workers=2) as backend:
            pooled = example_cluster.graph_statistics(backend)
        assert pooled.summary() == reference.summary()

    def test_default_options_share_one_pool_binding(self, example_cluster, example_query_obj):
        # graph_statistics passes no site options and a default engine passes
        # the default planner options; alternating between them must NOT
        # rebuild the pool (options normalize to the same binding).
        with ProcessPoolBackend(max_workers=2) as backend:
            example_cluster.graph_statistics(backend)
            pool = backend._pool
            assert pool is not None
            engine = GStoreDEngine(example_cluster, EngineConfig.full(), backend=backend)
            engine.execute(example_query_obj)
            engine.close()
            assert backend._pool is pool
            example_cluster.graph_statistics(backend)
            assert backend._pool is pool


@pytest.mark.parametrize("query_name", ["LQ1", "LQ7", "LQ2"])  # complex x2 + star
def test_worker_count_does_not_change_results_or_accounting(lubm_cluster, query_name):
    query = get_dataset("LUBM").queries()[query_name]
    run(lubm_cluster, query, SERIAL)  # warm the plan caches
    reference = run(lubm_cluster, query, SERIAL)
    reference_rows = sorted_rows(reference.results)
    for workers in WORKER_COUNTS:
        config = EngineConfig.full().with_executor("processes", workers)
        result = run(lubm_cluster, query, config)
        assert sorted_rows(result.results) == reference_rows
        assert result.results.same_solutions(reference.results)
        assert snapshot(result) == snapshot(reference)
        assert result.statistics.extra["executor"] == "processes"
        assert result.statistics.extra["max_workers"] == workers


def test_shared_backend_is_reused_and_survives_engine_close(lubm_cluster):
    query = get_dataset("LUBM").queries()["LQ6"]
    reference = run(lubm_cluster, query, SERIAL)
    backend = ProcessPoolBackend(max_workers=2)
    try:
        config = EngineConfig.full().with_executor("processes", 2)
        first = run(lubm_cluster, query, config, backend=backend)
        # engine.close() must NOT have torn the shared pool down: the second
        # run reuses the already-bootstrapped workers.
        pool_before = backend._pool
        assert pool_before is not None
        second = run(lubm_cluster, query, config, backend=backend)
        assert backend._pool is pool_before
        assert first.results.same_solutions(reference.results)
        assert second.results.same_solutions(reference.results)
        assert snapshot(first) == snapshot(reference)
        assert snapshot(second) == snapshot(reference)
    finally:
        backend.close()


def test_pool_rebinds_when_the_cluster_changes(lubm_cluster, example_cluster, example_query_obj):
    lubm_query = get_dataset("LUBM").queries()["LQ1"]
    backend = ProcessPoolBackend(max_workers=2)
    try:
        config = EngineConfig.full().with_executor("processes", 2)
        lubm_result = run(lubm_cluster, lubm_query, config, backend=backend)
        assert len(lubm_result.results) > 0
        # Same backend, different cluster: the pool must rebind to the new
        # cluster's fragments and still match its serial reference.
        example_serial = run(example_cluster, example_query_obj, SERIAL)
        example_result = run(example_cluster, example_query_obj, config, backend=backend)
        assert example_result.results.same_solutions(example_serial.results)
        assert snapshot(example_result) == snapshot(example_serial)
    finally:
        backend.close()
