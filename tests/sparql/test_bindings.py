"""Unit tests for solution mappings and result sets."""

from repro.rdf import IRI, Literal, Variable
from repro.sparql import Binding, ResultSet

X, Y, Z = Variable("x"), Variable("y"), Variable("z")
A, B, C = IRI("http://x/a"), IRI("http://x/b"), IRI("http://x/c")


class TestBinding:
    def test_construction_from_mapping(self):
        binding = Binding({X: A, Y: B})
        assert binding[X] == A
        assert binding.get(Z) is None
        assert len(binding) == 2

    def test_contains_and_variables(self):
        binding = Binding({X: A})
        assert X in binding
        assert Z not in binding
        assert binding.variables == {X}

    def test_equality_and_hash(self):
        assert Binding({X: A, Y: B}) == Binding({Y: B, X: A})
        assert len({Binding({X: A}), Binding({X: A})}) == 1

    def test_project(self):
        binding = Binding({X: A, Y: B})
        assert binding.project([X]) == Binding({X: A})
        assert binding.project([Z]) == Binding({})

    def test_compatible_with_shared_variable(self):
        assert Binding({X: A}).compatible_with(Binding({X: A, Y: B}))
        assert not Binding({X: A}).compatible_with(Binding({X: B}))

    def test_compatible_with_disjoint_variables(self):
        assert Binding({X: A}).compatible_with(Binding({Y: B}))

    def test_merge(self):
        merged = Binding({X: A}).merge(Binding({Y: B}))
        assert merged == Binding({X: A, Y: B})


class TestResultSet:
    def test_add_extend_len(self):
        results = ResultSet()
        results.add(Binding({X: A}))
        results.extend([Binding({X: B})])
        assert len(results) == 2
        assert bool(results)

    def test_variables_inferred_from_bindings(self):
        results = ResultSet([Binding({X: A, Y: B})])
        assert set(results.variables) == {X, Y}

    def test_project_with_distinct(self):
        results = ResultSet([Binding({X: A, Y: B}), Binding({X: A, Y: C})])
        projected = results.project([X], distinct=True)
        assert len(projected) == 1

    def test_project_without_distinct_keeps_duplicates(self):
        results = ResultSet([Binding({X: A, Y: B}), Binding({X: A, Y: C})])
        assert len(results.project([X])) == 2

    def test_distinct(self):
        results = ResultSet([Binding({X: A}), Binding({X: A})])
        assert len(results.distinct()) == 1

    def test_limit(self):
        results = ResultSet([Binding({X: A}), Binding({X: B})])
        assert len(results.limit(1)) == 1
        assert len(results.limit(None)) == 2

    def test_same_solutions_ignores_order(self):
        left = ResultSet([Binding({X: A}), Binding({X: B})])
        right = ResultSet([Binding({X: B}), Binding({X: A})])
        assert left.same_solutions(right)

    def test_same_solutions_detects_difference(self):
        left = ResultSet([Binding({X: A})])
        right = ResultSet([Binding({X: B})])
        assert not left.same_solutions(right)

    def test_to_table(self):
        results = ResultSet([Binding({X: A, Y: Literal("v")})])
        rows = results.to_table()
        assert rows == [{"x": A.n3(), "y": '"v"'}]
