"""Unit tests for the query graph (Definition 2)."""

from repro.rdf import IRI, Literal, TriplePattern, Variable
from repro.sparql import BasicGraphPattern, QueryGraph, traversal_order

P = IRI("http://example.org/p")
Q = IRI("http://example.org/q")
R = IRI("http://example.org/r")
X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")


def graph_of(*patterns) -> QueryGraph:
    return QueryGraph(BasicGraphPattern(patterns))


class TestStructure:
    def test_vertices_in_first_appearance_order(self):
        graph = graph_of(TriplePattern(X, P, Y), TriplePattern(Y, Q, Z))
        assert graph.vertices == (X, Y, Z)
        assert graph.vertex_index(Z) == 2
        assert graph.vertex_at(1) == Y

    def test_edges_keep_pattern_indexes(self):
        graph = graph_of(TriplePattern(X, P, Y), TriplePattern(Y, Q, Z))
        assert [edge.index for edge in graph.edges] == [0, 1]
        assert graph.edge_at(1).predicate == Q

    def test_parallel_edges_are_kept(self):
        graph = graph_of(TriplePattern(X, P, Y), TriplePattern(X, Q, Y))
        assert graph.num_edges == 2
        assert graph.num_vertices == 2

    def test_edges_of_and_neighbours(self):
        graph = graph_of(TriplePattern(X, P, Y), TriplePattern(Y, Q, Z))
        assert len(graph.edges_of(Y)) == 2
        assert graph.neighbours(Y) == {X, Z}

    def test_variables_excludes_constants(self):
        constant = IRI("http://example.org/c")
        graph = graph_of(TriplePattern(X, P, constant))
        assert graph.variables == (X,)
        assert graph.constant_vertices() == (constant,)

    def test_contains(self):
        graph = graph_of(TriplePattern(X, P, Y))
        assert X in graph
        assert Z not in graph

    def test_degree(self):
        graph = graph_of(TriplePattern(X, P, Y), TriplePattern(X, Q, Z))
        assert graph.degree(X) == 2
        assert graph.degree(Y) == 1


class TestShapeClassification:
    def test_single_edge_is_star(self):
        assert graph_of(TriplePattern(X, P, Y)).is_star()

    def test_subject_star(self):
        graph = graph_of(TriplePattern(X, P, Y), TriplePattern(X, Q, Z), TriplePattern(X, R, W))
        assert graph.is_star()
        assert graph.classify_shape() == "star"

    def test_object_star(self):
        graph = graph_of(TriplePattern(Y, P, X), TriplePattern(Z, Q, X))
        assert graph.is_star()

    def test_path_is_not_star(self):
        graph = graph_of(TriplePattern(X, P, Y), TriplePattern(Y, Q, Z), TriplePattern(Z, R, W))
        assert not graph.is_star()
        assert graph.classify_shape() == "path"

    def test_tree_classification(self):
        graph = graph_of(
            TriplePattern(X, P, Y),
            TriplePattern(Y, Q, Z),
            TriplePattern(Y, R, W),
            TriplePattern(X, R, Variable("v")),
        )
        assert graph.classify_shape() == "tree"

    def test_cycle_classification(self):
        graph = graph_of(TriplePattern(X, P, Y), TriplePattern(Y, Q, Z), TriplePattern(Z, R, X))
        assert graph.classify_shape() == "cycle"

    def test_complex_classification(self):
        graph = graph_of(
            TriplePattern(X, P, Y),
            TriplePattern(Y, Q, Z),
            TriplePattern(Z, R, X),
            TriplePattern(X, R, W),
            TriplePattern(W, Q, Y),
        )
        assert graph.classify_shape() == "complex"

    def test_paper_example_is_not_star(self, example_query_graph):
        assert not example_query_graph.is_star()

    def test_selectivity_detection(self):
        selective = graph_of(TriplePattern(X, P, Literal("Alice")))
        unselective = graph_of(TriplePattern(X, P, Y))
        assert selective.has_selective_pattern()
        assert not unselective.has_selective_pattern()


class TestConnectivityHelpers:
    def test_is_connected(self):
        assert graph_of(TriplePattern(X, P, Y), TriplePattern(Y, Q, Z)).is_connected()
        assert not graph_of(TriplePattern(X, P, Y), TriplePattern(Z, Q, W)).is_connected()

    def test_weakly_connected_via_respects_allowed_set(self):
        graph = graph_of(TriplePattern(X, P, Y), TriplePattern(Y, Q, Z))
        assert graph.weakly_connected_via(X, Z, {X, Y, Z})
        assert not graph.weakly_connected_via(X, Z, {X, Z})

    def test_induced_edge_set(self):
        graph = graph_of(TriplePattern(X, P, Y), TriplePattern(Y, Q, Z))
        assert graph.induced_edge_set({X, Y}) == frozenset({0})
        assert graph.induced_edge_set({X, Y, Z}) == frozenset({0, 1})


class TestTraversalOrder:
    def test_order_contains_every_vertex_once(self):
        graph = graph_of(TriplePattern(X, P, Y), TriplePattern(Y, Q, Z))
        order = traversal_order(graph)
        assert sorted(order, key=str) == sorted(graph.vertices, key=str)

    def test_order_is_connected(self):
        graph = graph_of(TriplePattern(X, P, Y), TriplePattern(Y, Q, Z), TriplePattern(Z, R, W))
        order = traversal_order(graph)
        placed = {order[0]}
        for vertex in order[1:]:
            assert graph.neighbours(vertex) & placed
            placed.add(vertex)

    def test_constants_come_first(self):
        constant = IRI("http://example.org/c")
        graph = graph_of(TriplePattern(X, P, constant), TriplePattern(X, Q, Y))
        assert traversal_order(graph)[0] == constant
