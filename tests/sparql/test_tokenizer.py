"""Unit tests for the SPARQL tokenizer."""

import pytest

from repro.sparql import SparqlSyntaxError, TokenType, tokenize


def types(text):
    return [token.type for token in tokenize(text)]


def values(text):
    return [token.value for token in tokenize(text)]


class TestBasicTokens:
    def test_keywords_are_case_insensitive(self):
        assert types("select WHERE Prefix")[:3] == [TokenType.KEYWORD] * 3
        assert values("SELECT")[:1] == ["select"]

    def test_iri_token(self):
        tokens = tokenize("<http://example.org/a>")
        assert tokens[0].type is TokenType.IRI
        assert tokens[0].value == "http://example.org/a"

    def test_prefixed_name_token(self):
        tokens = tokenize("foaf:name")
        assert tokens[0].type is TokenType.PREFIXED_NAME
        assert tokens[0].value == "foaf:name"

    def test_variable_tokens_with_question_mark_and_dollar(self):
        tokens = tokenize("?x $y")
        assert [t.type for t in tokens[:2]] == [TokenType.VARIABLE, TokenType.VARIABLE]
        assert [t.value for t in tokens[:2]] == ["x", "y"]

    def test_a_keyword_token(self):
        assert types("a")[0] is TokenType.A

    def test_punctuation(self):
        assert types("{ } . ; , *")[:-1] == [
            TokenType.LBRACE,
            TokenType.RBRACE,
            TokenType.DOT,
            TokenType.SEMICOLON,
            TokenType.COMMA,
            TokenType.STAR,
        ]

    def test_stream_ends_with_eof(self):
        assert types("?x")[-1] is TokenType.EOF


class TestLiterals:
    def test_plain_string_literal(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].type is TokenType.LITERAL
        assert tokens[0].value == '"hello world"'

    def test_language_tagged_literal(self):
        assert values('"hi"@en')[0] == '"hi"@en'

    def test_typed_literal_with_iri(self):
        raw = '"5"^^<http://www.w3.org/2001/XMLSchema#integer>'
        assert values(raw)[0] == raw

    def test_typed_literal_with_prefixed_name(self):
        assert values('"5"^^xsd:integer')[0] == '"5"^^xsd:integer'

    def test_numeric_literal(self):
        tokens = tokenize("42")
        assert tokens[0].type is TokenType.LITERAL
        assert tokens[0].value == "42"

    def test_escaped_quote(self):
        assert values('"a \\"quote\\""')[0] == '"a \\"quote\\""'


class TestCommentsAndErrors:
    def test_comments_are_skipped(self):
        assert types("# a comment\n?x")[0] is TokenType.VARIABLE

    def test_unterminated_iri_raises(self):
        with pytest.raises(SparqlSyntaxError):
            tokenize("<http://example.org/a")

    def test_unterminated_literal_raises(self):
        with pytest.raises(SparqlSyntaxError):
            tokenize('"unterminated')

    def test_empty_variable_raises(self):
        with pytest.raises(SparqlSyntaxError):
            tokenize("? .")

    def test_unexpected_character_raises(self):
        with pytest.raises(SparqlSyntaxError):
            tokenize("^")
