"""Unit tests for the SPARQL BGP parser."""

import pytest

from repro.rdf import IRI, Literal, NamespaceManager, RDF_TYPE, Variable
from repro.sparql import SparqlSyntaxError, format_query, parse_bgp, parse_query


class TestSelectParsing:
    def test_simple_select(self):
        query = parse_query("SELECT ?x WHERE { ?x <http://example.org/p> ?y . }")
        assert query.projection == (Variable("x"),)
        assert len(query.bgp) == 1
        pattern = query.bgp[0]
        assert pattern.subject == Variable("x")
        assert pattern.predicate == IRI("http://example.org/p")
        assert pattern.object == Variable("y")

    def test_select_star(self):
        query = parse_query("SELECT * WHERE { ?x <http://example.org/p> ?y }")
        assert query.projection == ()
        assert query.effective_projection == (Variable("x"), Variable("y"))

    def test_select_distinct(self):
        query = parse_query("SELECT DISTINCT ?x WHERE { ?x <http://x/p> ?y }")
        assert query.distinct

    def test_where_keyword_is_optional(self):
        query = parse_query("SELECT ?x { ?x <http://x/p> ?y }")
        assert len(query.bgp) == 1

    def test_limit(self):
        query = parse_query("SELECT ?x WHERE { ?x <http://x/p> ?y } LIMIT 5")
        assert query.limit == 5

    def test_ask_query(self):
        query = parse_query("ASK { ?x <http://x/p> ?y }")
        assert query.is_ask

    def test_multiple_patterns_with_dots(self):
        query = parse_query(
            "SELECT ?x WHERE { ?x <http://x/p> ?y . ?y <http://x/q> ?z . }"
        )
        assert len(query.bgp) == 2

    def test_trailing_dot_is_optional(self):
        query = parse_query("SELECT ?x WHERE { ?x <http://x/p> ?y . ?y <http://x/q> ?z }")
        assert len(query.bgp) == 2


class TestPrefixesAndTerms:
    def test_prefix_declaration(self):
        query = parse_query(
            "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x ex:p ?y }"
        )
        assert query.bgp[0].predicate == IRI("http://example.org/p")
        assert query.prefixes == {"ex": "http://example.org/"}

    def test_external_namespace_manager(self):
        manager = NamespaceManager({"ex": "http://example.org/"})
        query = parse_query("SELECT ?x WHERE { ?x ex:p ?y }", namespaces=manager)
        assert query.bgp[0].predicate == IRI("http://example.org/p")

    def test_unknown_prefix_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?x WHERE { ?x nope:p ?y }")

    def test_a_expands_to_rdf_type(self):
        query = parse_query("SELECT ?x WHERE { ?x a <http://example.org/Person> }")
        assert query.bgp[0].predicate == RDF_TYPE

    def test_plain_literal_object(self):
        query = parse_query('SELECT ?x WHERE { ?x <http://x/name> "Alice" }')
        assert query.bgp[0].object == Literal("Alice")

    def test_language_literal_object(self):
        query = parse_query('SELECT ?x WHERE { ?x <http://x/name> "Alice"@en }')
        assert query.bgp[0].object == Literal("Alice", language="en")

    def test_typed_literal_object(self):
        query = parse_query(
            'PREFIX xsd: <http://www.w3.org/2001/XMLSchema#> '
            'SELECT ?x WHERE { ?x <http://x/age> "42"^^xsd:integer }'
        )
        assert query.bgp[0].object == Literal("42", datatype=IRI("http://www.w3.org/2001/XMLSchema#integer"))

    def test_variable_predicate(self):
        query = parse_query("SELECT ?x WHERE { ?x ?p ?y }")
        assert query.bgp[0].predicate == Variable("p")


class TestAbbreviations:
    def test_semicolon_shares_subject(self):
        query = parse_query(
            "SELECT ?x WHERE { ?x <http://x/p> ?y ; <http://x/q> ?z . }"
        )
        assert len(query.bgp) == 2
        assert query.bgp[0].subject == query.bgp[1].subject == Variable("x")

    def test_comma_shares_subject_and_predicate(self):
        query = parse_query("SELECT ?x WHERE { ?x <http://x/p> ?y , ?z . }")
        assert len(query.bgp) == 2
        assert query.bgp[0].predicate == query.bgp[1].predicate

    def test_dangling_semicolon_before_close(self):
        query = parse_query("SELECT ?x WHERE { ?x <http://x/p> ?y ; }")
        assert len(query.bgp) == 1


class TestErrors:
    def test_empty_group_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?x WHERE { }")

    def test_select_without_variables_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT WHERE { ?x <http://x/p> ?y }")

    def test_garbage_after_query_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?x WHERE { ?x <http://x/p> ?y } garbage:x")

    def test_unsupported_query_form_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("DESCRIBE ?x")


class TestHelpers:
    def test_parse_bgp_accepts_bare_triples(self):
        bgp = parse_bgp("?x <http://x/p> ?y . ?y <http://x/q> ?z .")
        assert len(bgp) == 2

    def test_format_query_roundtrip(self):
        text = (
            "PREFIX ex: <http://example.org/> "
            'SELECT ?x WHERE { ?x ex:p ?y . ?y ex:name "Alice"@en . }'
        )
        query = parse_query(text)
        formatted = format_query(query)
        reparsed = parse_query(formatted)
        assert reparsed.bgp.patterns == query.bgp.patterns
        assert reparsed.projection == query.projection
