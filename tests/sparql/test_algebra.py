"""Unit tests for the SPARQL algebra (BGP, SelectQuery)."""

from repro.rdf import IRI, TriplePattern, Variable
from repro.sparql import BasicGraphPattern, SelectQuery, bgp_from_patterns

P = IRI("http://example.org/p")
Q = IRI("http://example.org/q")
X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")


class TestBasicGraphPattern:
    def test_variables_in_first_appearance_order(self):
        bgp = BasicGraphPattern([TriplePattern(X, P, Y), TriplePattern(Y, Q, Z)])
        assert bgp.variables == (X, Y, Z)

    def test_terms_are_subjects_and_objects(self):
        bgp = BasicGraphPattern([TriplePattern(X, P, Y)])
        assert bgp.terms == {X, Y}

    def test_len_and_indexing(self):
        bgp = BasicGraphPattern([TriplePattern(X, P, Y), TriplePattern(Y, Q, Z)])
        assert len(bgp) == 2
        assert bgp[1].predicate == Q

    def test_connected_components_single(self):
        bgp = BasicGraphPattern([TriplePattern(X, P, Y), TriplePattern(Y, Q, Z)])
        assert bgp.is_connected
        assert len(bgp.connected_components()) == 1

    def test_connected_components_split(self):
        bgp = BasicGraphPattern([TriplePattern(X, P, Y), TriplePattern(Z, Q, W)])
        components = bgp.connected_components()
        assert not bgp.is_connected
        assert len(components) == 2
        assert {len(c) for c in components} == {1}

    def test_connection_through_constant_term(self):
        shared = IRI("http://example.org/hub")
        bgp = BasicGraphPattern([TriplePattern(X, P, shared), TriplePattern(shared, Q, Y)])
        assert bgp.is_connected


class TestSelectQuery:
    def test_effective_projection_defaults_to_all_variables(self):
        query = SelectQuery(bgp=bgp_from_patterns([TriplePattern(X, P, Y)]))
        assert query.effective_projection == (X, Y)

    def test_effective_projection_uses_explicit_projection(self):
        query = SelectQuery(bgp=bgp_from_patterns([TriplePattern(X, P, Y)]), projection=(Y,))
        assert query.effective_projection == (Y,)

    def test_iteration_and_len(self):
        query = SelectQuery(bgp=bgp_from_patterns([TriplePattern(X, P, Y), TriplePattern(Y, Q, Z)]))
        assert len(query) == 2
        assert [pattern.predicate for pattern in query] == [P, Q]
