"""Unit tests for the planner's graph statistics collector."""

from repro.distributed import aggregate_graph_statistics, build_cluster
from repro.partition import HashPartitioner
from repro.planner import GraphStatistics, collect_statistics, degree_bucket, merge_statistics
from repro.rdf import IRI, Literal, Namespace, RDFGraph, Triple

EX = Namespace("http://example.org/")


class TestCollect:
    def test_counts(self, tiny_graph):
        stats = collect_statistics(tiny_graph)
        assert stats.num_triples == 4
        assert stats.num_vertices == len(tiny_graph.vertices)
        assert stats.num_predicates == 3

    def test_per_predicate_counts(self, tiny_graph):
        stats = collect_statistics(tiny_graph)
        knows = EX.term("knows")
        assert stats.predicate_count(knows) == 2
        assert stats.distinct_subjects(knows) == 2  # a and b
        assert stats.distinct_objects(knows) == 2  # b and c

    def test_unknown_predicate_is_zero(self, tiny_graph):
        stats = collect_statistics(tiny_graph)
        assert stats.predicate_count(EX.term("nope")) == 0
        assert stats.distinct_subjects(EX.term("nope")) == 0

    def test_degree_histogram_counts_every_vertex(self, tiny_graph):
        stats = collect_statistics(tiny_graph)
        assert sum(stats.degree_histogram.values()) == stats.num_vertices
        assert stats.average_degree() > 0

    def test_empty_graph(self):
        stats = collect_statistics(RDFGraph())
        assert stats.is_empty
        assert stats.num_vertices == 0
        assert stats.average_degree() == 0.0


class TestDegreeBucket:
    def test_log_buckets(self):
        assert degree_bucket(1) == 1
        assert degree_bucket(2) == 2
        assert degree_bucket(3) == 2
        assert degree_bucket(4) == 3
        assert degree_bucket(1000) == 10


class TestSerialization:
    def test_roundtrip(self, tiny_graph):
        stats = collect_statistics(tiny_graph)
        restored = GraphStatistics.from_dict(stats.as_dict())
        assert restored == stats

    def test_as_dict_is_jsonable(self, tiny_graph):
        import json

        encoded = json.dumps(collect_statistics(tiny_graph).as_dict())
        restored = GraphStatistics.from_dict(json.loads(encoded))
        assert restored.num_triples == 4


class TestMerge:
    def test_merge_totals(self, tiny_graph):
        stats = collect_statistics(tiny_graph)
        merged = merge_statistics([stats, stats])
        assert merged.num_triples == 2 * stats.num_triples
        knows = EX.term("knows")
        assert merged.predicate_count(knows) == 2 * stats.predicate_count(knows)
        assert merged.distinct_subjects(knows) == 2 * stats.distinct_subjects(knows)

    def test_merge_empty(self):
        assert merge_statistics([]).is_empty

    def test_cluster_aggregation_matches_fragment_sums(self, tiny_graph):
        cluster = build_cluster(HashPartitioner(2).partition(tiny_graph))
        merged = cluster.graph_statistics()
        per_site = [site.graph_statistics() for site in cluster]
        assert merged.num_triples == sum(s.num_triples for s in per_site)
        assert aggregate_graph_statistics(per_site).num_triples == merged.num_triples
        # Crossing edges are replicated, so fragments together hold at least
        # every triple of the original graph.
        assert merged.num_triples >= len(tiny_graph)
