"""Planner-through-the-stack tests: matcher, store, engine, statistics."""

from repro.core import EngineConfig, GStoreDEngine, STAGE_PLANNING
from repro.datasets import lubm
from repro.distributed import build_cluster
from repro.partition import HashPartitioner
from repro.planner import QueryPlanner
from repro.store import LocalMatcher, TripleStore
import pytest


@pytest.fixture(scope="module")
def lubm_setup():
    graph = lubm.generate(scale=1)
    cluster = build_cluster(HashPartitioner(4).partition(graph))
    return graph, cluster, lubm.queries()


class TestMatcherIntegration:
    def test_planned_matcher_returns_identical_solutions(self, lubm_setup):
        graph, _, queries = lubm_setup
        static = LocalMatcher(graph)
        planned = LocalMatcher(graph, planner=QueryPlanner.from_graph(graph))
        for query in queries.values():
            assert planned.evaluate(query).same_solutions(static.evaluate(query))

    def test_planner_reduces_search_steps_on_multi_join(self, lubm_setup):
        graph, _, queries = lubm_setup
        static = LocalMatcher(graph)
        planned = LocalMatcher(graph, planner=QueryPlanner.from_graph(graph))
        static.evaluate(queries["LQ6"])
        planned.evaluate(queries["LQ6"])
        assert planned.search_steps < static.search_steps

    def test_explicit_order_wins_over_planner(self, lubm_setup):
        graph, _, queries = lubm_setup
        from repro.sparql import QueryGraph, traversal_order

        planned = LocalMatcher(graph, planner=QueryPlanner.from_graph(graph))
        query_graph = QueryGraph(queries["LQ1"].bgp)
        seed_order = traversal_order(query_graph)
        forced = list(planned.find_matches(query_graph, order=seed_order))
        free = list(planned.find_matches(query_graph))
        assert {frozenset(m.items()) for m in forced} == {frozenset(m.items()) for m in free}


class TestTripleStoreIntegration:
    def test_planner_disabled_by_default(self, lubm_setup):
        graph, _, _ = lubm_setup
        store = TripleStore(graph)
        assert store.planner is None

    def test_enable_disable(self, lubm_setup):
        graph, _, _ = lubm_setup
        store = TripleStore(graph)
        planner = store.enable_planner(plan_cache_size=16)
        assert store.planner is planner
        assert store.matcher.planner is planner
        assert planner.cache.maxsize == 16
        store.disable_planner()
        assert store.planner is None
        assert store.matcher.planner is None

    def test_statistics_invalidated_on_mutation(self, tiny_graph):
        from repro.rdf import Namespace, Triple

        EX = Namespace("http://example.org/")
        store = TripleStore(tiny_graph.copy())
        before = store.statistics.num_triples
        store.add(Triple(EX.term("new1"), EX.term("knows"), EX.term("new2")))
        assert store.statistics.num_triples == before + 1


class TestEngineIntegration:
    def test_planner_on_and_off_agree(self, lubm_setup):
        _, cluster, queries = lubm_setup
        on = GStoreDEngine(cluster, EngineConfig.full())
        off = GStoreDEngine(cluster, EngineConfig.full().with_options(use_planner=False))
        for name in ("LQ1", "LQ2", "LQ6", "LQ7"):
            cluster.reset_network()
            expected = off.execute(queries[name]).results
            cluster.reset_network()
            actual = on.execute(queries[name]).results
            assert actual.same_solutions(expected)

    def test_planning_stage_recorded(self, lubm_setup):
        _, cluster, queries = lubm_setup
        cluster.reset_network()
        result = GStoreDEngine(cluster, EngineConfig.full()).execute(queries["LQ1"])
        stats = result.statistics
        assert stats.find_stage(STAGE_PLANNING) is not None
        assert stats.extra["plan_source"] in {"statistics", "cache"}
        assert "plan_cache_hit_rate" in stats.extra

    def test_planner_off_records_no_planning_stage(self, lubm_setup):
        _, cluster, queries = lubm_setup
        cluster.reset_network()
        config = EngineConfig.full().with_options(use_planner=False)
        result = GStoreDEngine(cluster, config).execute(queries["LQ1"])
        assert result.statistics.find_stage(STAGE_PLANNING) is None

    def test_repeated_queries_hit_plan_cache(self, lubm_setup):
        _, cluster, queries = lubm_setup
        engine = GStoreDEngine(cluster, EngineConfig.full())
        cluster.reset_network()
        engine.execute(queries["LQ7"])
        cluster.reset_network()
        result = engine.execute(queries["LQ7"])
        assert result.statistics.counter(STAGE_PLANNING, "plan_cache_hit") == 1

    def test_config_describe_has_planner_knobs(self):
        description = EngineConfig.full().describe()
        assert description["planner"] is True
        assert description["plan_cache_size"] > 0
