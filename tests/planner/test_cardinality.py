"""Unit tests for the cardinality estimator."""

from repro.planner import CardinalityEstimator, MIN_CARDINALITY, collect_statistics
from repro.rdf import Namespace, Variable
from repro.sparql import BasicGraphPattern, QueryGraph
from repro.rdf.triples import TriplePattern

EX = Namespace("http://example.org/")


def estimator_for(graph):
    return CardinalityEstimator(collect_statistics(graph))


def single_edge(subject, predicate, object_):
    return QueryGraph(BasicGraphPattern([TriplePattern(subject, predicate, object_)])).edge_at(0)


class TestPatternCardinality:
    def test_unbound_pattern_counts_predicate_triples(self, tiny_graph):
        estimator = estimator_for(tiny_graph)
        edge = single_edge(Variable("x"), EX.term("knows"), Variable("y"))
        assert estimator.pattern_cardinality(edge) == 2.0

    def test_constant_subject_divides_by_distinct_subjects(self, tiny_graph):
        estimator = estimator_for(tiny_graph)
        edge = single_edge(EX.term("a"), EX.term("knows"), Variable("y"))
        assert estimator.pattern_cardinality(edge) == 1.0  # 2 triples / 2 subjects

    def test_variable_predicate_uses_total_triples(self, tiny_graph):
        estimator = estimator_for(tiny_graph)
        edge = single_edge(Variable("x"), Variable("p"), Variable("y"))
        assert estimator.pattern_cardinality(edge) == 4.0

    def test_unknown_predicate_is_minimal(self, tiny_graph):
        estimator = estimator_for(tiny_graph)
        edge = single_edge(Variable("x"), EX.term("unseen"), Variable("y"))
        assert estimator.pattern_cardinality(edge) == MIN_CARDINALITY


class TestVertexCardinality:
    def test_constant_vertex_is_one(self, tiny_graph):
        estimator = estimator_for(tiny_graph)
        query = QueryGraph(
            BasicGraphPattern([TriplePattern(EX.term("a"), EX.term("knows"), Variable("y"))])
        )
        assert estimator.vertex_cardinality(query, EX.term("a")) == 1.0

    def test_selective_edge_tightens_the_bound(self, tiny_graph):
        estimator = estimator_for(tiny_graph)
        # ?x both knows someone and likes c: the "likes" edge (1 subject) is
        # tighter than the "knows" edge (2 subjects).
        query = QueryGraph(
            BasicGraphPattern(
                [
                    TriplePattern(Variable("x"), EX.term("knows"), Variable("y")),
                    TriplePattern(Variable("x"), EX.term("likes"), EX.term("c")),
                ]
            )
        )
        assert estimator.vertex_cardinality(query, Variable("x")) == 1.0

    def test_more_frequent_predicate_means_more_candidates(self, lubm_graph):
        estimator = CardinalityEstimator(collect_statistics(lubm_graph))
        ub = Namespace("http://example.org/univ-bench#")
        frequent = QueryGraph(
            BasicGraphPattern([TriplePattern(Variable("x"), ub.term("takesCourse"), Variable("y"))])
        )
        rare = QueryGraph(
            BasicGraphPattern([TriplePattern(Variable("x"), ub.term("headOf"), Variable("y"))])
        )
        assert estimator.vertex_cardinality(frequent, Variable("x")) > estimator.vertex_cardinality(
            rare, Variable("x")
        )


class TestExpansion:
    def test_expansion_factor_is_average_fanout(self, tiny_graph):
        estimator = estimator_for(tiny_graph)
        edge = single_edge(Variable("x"), EX.term("knows"), Variable("y"))
        # 2 "knows" triples over 2 distinct subjects: one edge per subject.
        assert estimator.expansion_factor(edge, Variable("x")) == 1.0

    def test_join_cardinality_scales_with_left_side(self, tiny_graph):
        estimator = estimator_for(tiny_graph)
        edge = single_edge(Variable("x"), EX.term("knows"), Variable("y"))
        assert estimator.join_cardinality(10.0, edge, Variable("x")) == 10.0
