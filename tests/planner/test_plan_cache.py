"""Unit tests for the shape-keyed plan cache."""

from repro.planner import PlanCache, QueryPlan, shape_key
from repro.rdf import Namespace, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql import BasicGraphPattern, QueryGraph

EX = Namespace("http://example.org/")


def query_of(*patterns):
    return QueryGraph(BasicGraphPattern(list(patterns)))


def plan_of(num_vertices):
    return QueryPlan(vertex_order=tuple(range(num_vertices)), edge_order=(0,))


class TestShapeKey:
    def test_same_query_same_key(self):
        a = query_of(TriplePattern(Variable("x"), EX.term("knows"), Variable("y")))
        b = query_of(TriplePattern(Variable("x"), EX.term("knows"), Variable("y")))
        assert shape_key(a) == shape_key(b)

    def test_variable_names_are_abstracted(self):
        a = query_of(TriplePattern(Variable("x"), EX.term("knows"), Variable("y")))
        b = query_of(TriplePattern(Variable("s"), EX.term("knows"), Variable("o")))
        assert shape_key(a) == shape_key(b)

    def test_subject_object_constants_are_abstracted(self):
        a = query_of(TriplePattern(EX.term("alice"), EX.term("knows"), Variable("y")))
        b = query_of(TriplePattern(EX.term("bob"), EX.term("knows"), Variable("y")))
        assert shape_key(a) == shape_key(b)

    def test_repeated_constants_keep_join_structure(self):
        # alice knows alice is a different shape from alice knows bob.
        a = query_of(TriplePattern(EX.term("alice"), EX.term("knows"), EX.term("alice")))
        b = query_of(TriplePattern(EX.term("alice"), EX.term("knows"), EX.term("bob")))
        assert shape_key(a) != shape_key(b)

    def test_predicates_are_not_abstracted(self):
        a = query_of(TriplePattern(Variable("x"), EX.term("knows"), Variable("y")))
        b = query_of(TriplePattern(Variable("x"), EX.term("likes"), Variable("y")))
        assert shape_key(a) != shape_key(b)

    def test_structure_differs(self):
        path = query_of(
            TriplePattern(Variable("x"), EX.term("p"), Variable("y")),
            TriplePattern(Variable("y"), EX.term("p"), Variable("z")),
        )
        star = query_of(
            TriplePattern(Variable("x"), EX.term("p"), Variable("y")),
            TriplePattern(Variable("x"), EX.term("p"), Variable("z")),
        )
        assert shape_key(path) != shape_key(star)


class TestPlanCache:
    def test_miss_then_hit(self):
        cache = PlanCache(maxsize=4)
        query = query_of(TriplePattern(Variable("x"), EX.term("knows"), Variable("y")))
        key = shape_key(query)
        assert cache.get(key) is None
        cache.put(key, plan_of(2))
        assert cache.get(key) is not None
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        keys = [
            shape_key(query_of(TriplePattern(Variable("x"), EX.term(f"p{i}"), Variable("y"))))
            for i in range(3)
        ]
        cache.put(keys[0], plan_of(2))
        cache.put(keys[1], plan_of(2))
        cache.get(keys[0])  # refresh key 0: key 1 is now least recently used
        cache.put(keys[2], plan_of(2))
        assert keys[0] in cache
        assert keys[1] not in cache
        assert keys[2] in cache
        assert len(cache) == 2

    def test_clear_resets_accounting(self):
        cache = PlanCache(maxsize=2)
        key = shape_key(query_of(TriplePattern(Variable("x"), EX.term("p"), Variable("y"))))
        cache.put(key, plan_of(2))
        cache.get(key)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0
        assert cache.hit_rate == 0.0

    def test_describe(self):
        cache = PlanCache(maxsize=3)
        description = cache.describe()
        assert description["maxsize"] == 3
        assert description["size"] == 0
