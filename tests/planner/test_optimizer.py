"""Unit tests for the greedy plan optimizer and the QueryPlanner facade."""

from repro.planner import (
    PlanOptimizer,
    QueryPlanner,
    SOURCE_CACHE,
    SOURCE_FALLBACK,
    SOURCE_STATISTICS,
    collect_statistics,
)
from repro.rdf import Namespace, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql import BasicGraphPattern, QueryGraph, parse_query, traversal_order

EX = Namespace("http://example.org/")


def query_of(*patterns):
    return QueryGraph(BasicGraphPattern(list(patterns)))


class TestFallback:
    def test_no_statistics_matches_seed_order(self, tiny_graph):
        query = query_of(
            TriplePattern(Variable("x"), EX.term("knows"), Variable("y")),
            TriplePattern(Variable("y"), EX.term("knows"), Variable("z")),
        )
        plan = PlanOptimizer(None).plan(query)
        assert plan.source == SOURCE_FALLBACK
        assert plan.order_for(query) == traversal_order(query)
        assert list(plan.edge_order) == [0, 1]

    def test_empty_statistics_fall_back(self, tiny_graph):
        from repro.planner import GraphStatistics

        query = query_of(TriplePattern(Variable("x"), EX.term("knows"), Variable("y")))
        plan = PlanOptimizer(GraphStatistics()).plan(query)
        assert plan.source == SOURCE_FALLBACK


class TestGreedyPlan:
    def plan(self, graph, query):
        return PlanOptimizer(collect_statistics(graph)).plan(query)

    def test_connectivity_preserved(self, lubm_graph):
        ub = Namespace("http://example.org/univ-bench#")
        query = query_of(
            TriplePattern(Variable("x"), ub.term("advisor"), Variable("y")),
            TriplePattern(Variable("y"), ub.term("teacherOf"), Variable("z")),
            TriplePattern(Variable("x"), ub.term("takesCourse"), Variable("z")),
        )
        plan = self.plan(lubm_graph, query)
        assert plan.source == SOURCE_STATISTICS
        order = plan.order_for(query)
        assert sorted(order, key=str) == sorted(query.vertices, key=str)
        placed = {order[0]}
        for vertex in order[1:]:
            assert query.neighbours(vertex) & placed
            placed.add(vertex)

    def test_constant_anchored_start(self, tiny_graph):
        query = query_of(
            TriplePattern(Variable("x"), EX.term("knows"), Variable("y")),
            TriplePattern(Variable("x"), EX.term("likes"), EX.term("c")),
        )
        plan = self.plan(tiny_graph, query)
        # The constant vertex has cardinality 1 and is picked first.
        assert plan.order_for(query)[0] == EX.term("c")

    def test_selective_edges_ranked_first(self, tiny_graph):
        query = query_of(
            TriplePattern(Variable("x"), EX.term("knows"), Variable("y")),  # 2 triples
            TriplePattern(Variable("x"), EX.term("likes"), Variable("z")),  # 1 triple
        )
        plan = self.plan(tiny_graph, query)
        assert list(plan.edge_order) == [1, 0]

    def test_plan_is_deterministic(self, lubm_graph):
        query = query_of(
            TriplePattern(Variable("a"), EX.term("p"), Variable("b")),
            TriplePattern(Variable("b"), EX.term("p"), Variable("c")),
        )
        plans = {self.plan(lubm_graph, query).vertex_order for _ in range(5)}
        assert len(plans) == 1

    def test_disconnected_query_covers_all_vertices(self, tiny_graph):
        query = query_of(
            TriplePattern(Variable("x"), EX.term("knows"), Variable("y")),
            TriplePattern(Variable("a"), EX.term("name"), Variable("n")),
        )
        plan = self.plan(tiny_graph, query)
        assert len(plan.order_for(query)) == 4

    def test_estimates_parallel_to_order(self, tiny_graph):
        query = query_of(
            TriplePattern(Variable("x"), EX.term("knows"), Variable("y")),
            TriplePattern(Variable("y"), EX.term("name"), Variable("n")),
        )
        plan = self.plan(tiny_graph, query)
        assert len(plan.estimates) == len(plan.vertex_order)
        assert plan.estimated_cost > 0


class TestQueryPlanner:
    def test_cache_hit_on_second_plan(self, tiny_graph):
        planner = QueryPlanner.from_graph(tiny_graph)
        query = query_of(TriplePattern(Variable("x"), EX.term("knows"), Variable("y")))
        first = planner.plan_for(query)
        second = planner.plan_for(query)
        assert first.source == SOURCE_STATISTICS
        assert second.source == SOURCE_CACHE
        assert second.vertex_order == first.vertex_order
        assert planner.cache.hits == 1

    def test_cache_shared_across_constant_instantiations(self, tiny_graph):
        planner = QueryPlanner.from_graph(tiny_graph)
        for_a = query_of(TriplePattern(EX.term("a"), EX.term("knows"), Variable("y")))
        for_b = query_of(TriplePattern(EX.term("b"), EX.term("knows"), Variable("y")))
        planner.plan_for(for_a)
        plan = planner.plan_for(for_b)
        assert plan.source == SOURCE_CACHE

    def test_explain_renders_order_and_estimates(self, tiny_graph):
        planner = QueryPlanner.from_graph(tiny_graph)
        query = query_of(
            TriplePattern(Variable("x"), EX.term("knows"), Variable("y")),
            TriplePattern(Variable("y"), EX.term("name"), Variable("n")),
        )
        text = planner.explain(query)
        assert "vertex order:" in text
        assert "?x" in text and "?y" in text
        assert "edge order:" in text
        assert "estimated cost" in text

    def test_order_for_is_a_permutation(self, lubm_graph):
        planner = QueryPlanner.from_graph(lubm_graph)
        query = parse_query(
            "PREFIX ub: <http://example.org/univ-bench#> "
            "SELECT ?x ?y WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?d . }"
        )
        query_graph = QueryGraph(query.bgp)
        order = planner.order_for(query_graph)
        assert sorted(order, key=str) == sorted(query_graph.vertices, key=str)
