"""Unit tests for sites and clusters."""

from repro.datasets import lubm
from repro.distributed import Cluster, StageTimer, build_cluster
from repro.partition import HashPartitioner
from repro.rdf import Variable
from repro.sparql import QueryGraph, parse_query


class TestSite:
    def test_site_graph_matches_fragment(self, example_cluster):
        for site in example_cluster:
            assert len(site.graph) == site.fragment.num_edges
            assert site.name == f"S{site.site_id}"

    def test_internal_and_extended_vertices(self, example_cluster):
        site = example_cluster.site(0)
        assert site.internal_vertices == site.fragment.internal_vertices
        assert site.extended_vertices == site.fragment.extended_vertices
        some_internal = next(iter(site.internal_vertices))
        assert site.is_internal(some_internal)

    def test_local_evaluate_star_query(self, lubm_cluster):
        query = parse_query(
            "PREFIX ub: <http://example.org/univ-bench#> "
            "SELECT ?x WHERE { ?x ub:name ?n . ?x ub:emailAddress ?e . }"
        )
        total = sum(len(site.local_evaluate(query)) for site in lubm_cluster)
        assert total > 0

    def test_internal_candidates_are_internal(self, lubm_cluster):
        query = parse_query(
            "PREFIX ub: <http://example.org/univ-bench#> "
            "SELECT ?x ?y WHERE { ?x ub:advisor ?y . }"
        )
        graph = QueryGraph(query.bgp)
        for site in lubm_cluster.sites[:2]:
            candidates = site.internal_candidates(graph)
            for values in candidates.values():
                assert values <= site.internal_vertices

    def test_site_stats(self, example_cluster):
        stats = example_cluster.site(0).stats()
        assert stats["crossing_edges"] == 3


class TestCluster:
    def test_one_site_per_fragment(self, example_partitioning, example_cluster):
        assert example_cluster.num_sites == example_partitioning.num_fragments
        assert len(example_cluster) == 3
        assert example_cluster.site_ids == [0, 1, 2]

    def test_site_of_vertex(self, example_cluster, example_partitioning):
        vertex = next(iter(example_partitioning.fragment(1).internal_vertices))
        assert example_cluster.site_of_vertex(vertex).site_id == 1

    def test_graph_accessor_returns_full_graph(self, example_cluster, example_graph):
        assert example_cluster.graph == example_graph

    def test_reset_network(self, example_cluster):
        example_cluster.bus.send(0, 1, "x", "payload")
        example_cluster.reset_network()
        assert example_cluster.bus.total_messages == 0

    def test_reset_network_clears_tracked_stage_timers(self):
        # Regression: back-to-back benchmark runs share a cluster, and a
        # reused timer must not accumulate the previous run's totals.
        graph = lubm.generate(scale=1)
        cluster = build_cluster(HashPartitioner(2).partition(graph))
        timer = StageTimer()
        cluster.track_timer(timer)
        with timer.measure("partial_evaluation", 0):
            pass
        assert timer.elapsed("partial_evaluation", 0) > 0.0
        cluster.reset_network()
        assert timer.elapsed("partial_evaluation", 0) == 0.0
        assert timer.site_times("partial_evaluation") == {}
        assert cluster.bus.total_messages == 0

    def test_engine_timers_are_tracked_and_reset(self):
        from repro.core import EngineConfig, GStoreDEngine

        graph = lubm.generate(scale=1)
        cluster = build_cluster(HashPartitioner(2).partition(graph))
        query = parse_query(
            "PREFIX ub: <http://example.org/univ-bench#> "
            "SELECT ?s ?d WHERE { ?s ub:memberOf ?d . ?d ub:subOrganizationOf ?u . }"
        )
        engine = GStoreDEngine(cluster, EngineConfig.full())
        engine.execute(query)
        assert engine.last_timer is not None
        assert engine.last_timer in cluster._timers
        assert engine.last_timer.site_times("partial_evaluation")
        cluster.reset_network()
        assert engine.last_timer.site_times("partial_evaluation") == {}
        assert len(cluster._timers) == 0

    def test_graph_statistics_with_threaded_backend(self, example_cluster):
        from repro.exec import ThreadPoolBackend

        serial_stats = example_cluster.graph_statistics()
        with ThreadPoolBackend(max_workers=3) as backend:
            threaded_stats = example_cluster.graph_statistics(backend)
        assert threaded_stats.summary() == serial_stats.summary()

    def test_stats_include_partitioning_info(self, example_cluster):
        stats = example_cluster.stats()
        assert stats["sites"] == 3
        assert stats["strategy"] == "figure1"

    def test_build_cluster_helper(self):
        graph = lubm.generate(scale=1)
        partitioned = HashPartitioner(3).partition(graph)
        cluster = build_cluster(partitioned)
        assert isinstance(cluster, Cluster)
        assert cluster.num_sites == 3
