"""Unit tests for the simulated network and size estimation."""

import time

from repro.core import CandidateBitVector, LECFeature, LocalPartialMatch
from repro.distributed import COORDINATOR, MessageBus, StageTimer, estimate_size
from repro.rdf import IRI, Literal, Triple


class TestEstimateSize:
    def test_terms_are_charged_their_text_length(self):
        iri = IRI("http://example.org/abc")
        assert estimate_size(iri) == len(iri.n3())

    def test_triples(self):
        triple = Triple(IRI("http://x/a"), IRI("http://x/p"), IRI("http://x/b"))
        assert estimate_size(triple) == len(triple.n3())

    def test_containers_add_framing(self):
        items = [IRI("http://x/a"), IRI("http://x/b")]
        assert estimate_size(items) == 4 + sum(estimate_size(i) for i in items)

    def test_dicts(self):
        payload = {"key": 7}
        assert estimate_size(payload) == 4 + estimate_size("key") + estimate_size(7)

    def test_scalars(self):
        assert estimate_size(None) == 1
        assert estimate_size(True) == 1
        assert estimate_size(12) == 8
        assert estimate_size(3.5) == 8
        assert estimate_size("abc") == 3
        assert estimate_size(b"abcd") == 4

    def test_objects_with_shipment_size_delegate(self):
        vector = CandidateBitVector(width=1024)
        assert estimate_size(vector) == vector.shipment_size()

    def test_empty_string_literal(self):
        assert estimate_size(Literal("")) == len('""')


class TestMessageBus:
    def test_send_records_message_and_returns_size(self):
        bus = MessageBus()
        size = bus.send(0, COORDINATOR, "test", [1, 2, 3], stage="stage-a")
        assert size == bus.total_bytes
        assert bus.total_messages == 1
        assert bus.messages[0].kind == "test"

    def test_broadcast_counts_every_destination(self):
        bus = MessageBus()
        total = bus.broadcast(COORDINATOR, [0, 1, 2], "bcast", "hello", stage="s")
        assert bus.total_messages == 3
        assert total == bus.total_bytes

    def test_bytes_for_stage(self):
        bus = MessageBus()
        bus.send(0, 1, "a", "xx", stage="first")
        bus.send(1, 0, "b", "yyyy", stage="second")
        assert bus.bytes_for_stage("first") == 2
        assert bus.bytes_for_stage("second") == 4
        assert bus.messages_for_stage("first") == 1

    def test_bytes_by_kind(self):
        bus = MessageBus()
        bus.send(0, 1, "a", "xx")
        bus.send(0, 1, "a", "x")
        bus.send(0, 1, "b", "zzz")
        assert bus.bytes_by_kind() == {"a": 3, "b": 3}

    def test_reset(self):
        bus = MessageBus()
        bus.send(0, 1, "a", "xx")
        bus.reset()
        assert bus.total_messages == 0
        assert bus.total_bytes == 0


class TestStageTimer:
    def test_measures_site_and_coordinator_time(self):
        timer = StageTimer()
        with timer.measure("stage", 0):
            time.sleep(0.002)
        with timer.measure("stage"):
            time.sleep(0.001)
        assert timer.elapsed("stage", 0) > 0
        assert timer.elapsed("stage") > 0
        assert set(timer.site_times("stage")) == {0}

    def test_accumulates_repeated_measurements(self):
        timer = StageTimer()
        with timer.measure("stage", 1):
            pass
        first = timer.elapsed("stage", 1)
        with timer.measure("stage", 1):
            pass
        assert timer.elapsed("stage", 1) >= first

    def test_unknown_stage_is_zero(self):
        assert StageTimer().elapsed("nothing", 3) == 0.0


class TestThreadSafety:
    def test_concurrent_sends_lose_no_messages(self):
        import threading

        bus = MessageBus()
        sends_per_thread = 200

        def sender(source):
            for i in range(sends_per_thread):
                bus.send(source, COORDINATOR, "k", i, "stage")

        threads = [threading.Thread(target=sender, args=(s,)) for s in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert bus.total_messages == 4 * sends_per_thread
        assert bus.messages_for_stage("stage") == 4 * sends_per_thread

    def test_concurrent_measures_lose_no_samples(self):
        import threading

        timer = StageTimer()

        def worker(site_id):
            for _ in range(50):
                with timer.measure("stage", site_id):
                    pass

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert set(timer.site_times("stage")) == {0, 1, 2, 3}

    def test_timer_reset(self):
        timer = StageTimer()
        with timer.measure("stage", 2):
            pass
        timer.reset()
        assert timer.elapsed("stage", 2) == 0.0
        assert timer.site_times("stage") == {}
