"""Concurrency and consistency of the accounting primitives.

The executor backends let several sites record times and send messages
concurrently; these tests pin that no sample is ever lost under the threads
backend, that ``reset()`` gives each run a clean slate, and that the
per-stage/per-kind byte breakdowns agree with each other and with the
shipment attributes the tracing layer stamps onto stage spans.
"""

import threading

import pytest

from repro.core import EngineConfig, GStoreDEngine
from repro.datasets import get_dataset
from repro.distributed.network import MessageBus, ShipmentSnapshot, StageTimer
from repro.obs import CATEGORY_STAGE, Trace


def run_in_threads(worker, thread_count=8):
    threads = [threading.Thread(target=worker, args=(index,)) for index in range(thread_count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestStageTimerConcurrency:
    def test_concurrent_records_lose_no_samples(self):
        timer = StageTimer()
        samples_per_thread = 500

        def worker(site_id):
            for _ in range(samples_per_thread):
                timer.record("partial_evaluation", site_id, 0.001)

        run_in_threads(worker)
        times = timer.site_times("partial_evaluation")
        assert sorted(times) == list(range(8))
        for seconds in times.values():
            assert seconds == pytest.approx(samples_per_thread * 0.001)

    def test_concurrent_records_to_the_same_site_accumulate(self):
        timer = StageTimer()

        def worker(_):
            for _ in range(250):
                timer.record("assembly", 0, 0.002)

        run_in_threads(worker)
        assert timer.elapsed("assembly", 0) == pytest.approx(8 * 250 * 0.002)

    def test_reset_between_runs_forgets_everything(self):
        timer = StageTimer()
        timer.record("assembly", 0, 1.0)
        with timer.measure("assembly"):
            pass
        timer.reset()
        assert timer.elapsed("assembly", 0) == 0.0
        assert timer.site_times("assembly") == {}


class TestMessageBusConcurrency:
    def test_concurrent_sends_lose_no_messages(self):
        bus = MessageBus()
        sends_per_thread = 400

        def worker(site_id):
            for _ in range(sends_per_thread):
                bus.send(site_id, -1, "local_matches", "xxxx", stage="partial_evaluation")

        run_in_threads(worker)
        assert bus.total_messages == 8 * sends_per_thread
        assert bus.total_bytes == 8 * sends_per_thread * 4  # "xxxx" is 4 bytes
        assert bus.messages_for_stage("partial_evaluation") == 8 * sends_per_thread

    def test_reset_between_runs_clears_the_log(self):
        bus = MessageBus()
        bus.send(0, 1, "k", "payload", stage="assembly")
        bus.reset()
        assert bus.total_messages == 0
        assert bus.total_bytes == 0
        assert bus.snapshot() == ShipmentSnapshot(0, 0, {}, {}, {})

    def test_stage_and_kind_breakdowns_are_consistent(self):
        bus = MessageBus()
        bus.send(0, 1, "candidate_vectors", "aa", stage="candidate_exchange")
        bus.send(1, -1, "local_matches", "bbbb", stage="partial_evaluation")
        bus.send(2, -1, "local_matches", "cc", stage="partial_evaluation")
        snapshot = bus.snapshot()
        assert snapshot.total_bytes == bus.total_bytes
        assert snapshot.total_messages == bus.total_messages
        assert sum(snapshot.bytes_by_stage.values()) == snapshot.total_bytes
        assert sum(snapshot.bytes_by_kind.values()) == snapshot.total_bytes
        assert sum(snapshot.messages_by_stage.values()) == snapshot.total_messages
        for stage, size in snapshot.bytes_by_stage.items():
            assert bus.bytes_for_stage(stage) == size
        assert snapshot.bytes_by_kind == bus.bytes_by_kind()


class TestSpanAttributesMatchTheBus:
    """The shipment attrs on stage spans are the same numbers the bus and
    the statistics report — one accounting, three views."""

    @pytest.mark.parametrize("workers", [None, 2])
    def test_stage_span_attrs_equal_bus_and_statistics(self, lubm_cluster, workers):
        query = get_dataset("LUBM").queries()["LQ1"]
        config = (
            EngineConfig.full().with_options(executor="serial")
            if workers is None
            else EngineConfig.full().with_workers(workers)
        )
        lubm_cluster.reset_network()
        trace = Trace("query")
        engine = GStoreDEngine(lubm_cluster, config)
        try:
            result = engine.execute(query, trace=trace)
        finally:
            engine.close()
        trace.finish()

        bus = lubm_cluster.bus
        stage_spans = trace.find_spans(category=CATEGORY_STAGE)
        assert stage_spans
        for span in stage_spans:
            stage_name = span.name.removeprefix("stage:")
            stage = result.statistics.find_stage(stage_name)
            assert stage is not None
            assert span.attrs["shipped_bytes"] == stage.shipped_bytes
            assert span.attrs["messages"] == stage.messages
            assert bus.bytes_for_stage(stage_name) == stage.shipped_bytes
            assert bus.messages_for_stage(stage_name) == stage.messages
        total_from_spans = sum(span.attrs["shipped_bytes"] for span in stage_spans)
        assert total_from_spans == result.statistics.total_shipment_bytes == bus.total_bytes
