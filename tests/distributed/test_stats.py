"""Unit tests for stage and query statistics."""

import pytest

from repro.distributed import QueryStatistics, StageStats


class TestStageStats:
    def test_parallel_time_is_max_site_plus_coordinator(self):
        stage = StageStats("partial_evaluation")
        stage.record_site_time(0, 0.2)
        stage.record_site_time(1, 0.5)
        stage.coordinator_time_s = 0.1
        assert stage.parallel_time_s == pytest.approx(0.6)
        assert stage.total_cpu_time_s == pytest.approx(0.8)

    def test_record_site_time_accumulates(self):
        stage = StageStats("x")
        stage.record_site_time(0, 0.1)
        stage.record_site_time(0, 0.2)
        assert stage.site_times_s[0] == pytest.approx(0.3)

    def test_counters(self):
        stage = StageStats("x")
        stage.add_counter("lpms", 5)
        stage.add_counter("lpms", 2)
        assert stage.counters["lpms"] == 7

    def test_shipment_conversion(self):
        stage = StageStats("x", shipped_bytes=2048)
        assert stage.shipped_kb == 2.0

    def test_as_dict_contains_counters(self):
        stage = StageStats("x")
        stage.add_counter("items", 3)
        row = stage.as_dict()
        assert row["stage"] == "x"
        assert row["items"] == 3


class TestQueryStatistics:
    def test_stage_creates_and_reuses(self):
        stats = QueryStatistics(query_name="Q")
        first = stats.stage("assembly")
        second = stats.stage("assembly")
        assert first is second
        assert stats.find_stage("assembly") is first
        assert stats.find_stage("missing") is None

    def test_total_time_sums_stages(self):
        stats = QueryStatistics()
        stats.stage("a").coordinator_time_s = 0.25
        stats.stage("b").record_site_time(0, 0.5)
        assert stats.total_time_s == 0.75
        assert stats.total_time_ms == 750.0

    def test_total_shipment(self):
        stats = QueryStatistics()
        stats.stage("a").shipped_bytes = 1024
        stats.stage("b").shipped_bytes = 1024
        assert stats.total_shipment_kb == 2.0

    def test_counter_lookup_with_default(self):
        stats = QueryStatistics()
        stats.stage("a").add_counter("found", 4)
        assert stats.counter("a", "found") == 4
        assert stats.counter("a", "missing", default=-1) == -1
        assert stats.counter("nope", "found", default=0) == 0

    def test_as_row_flattens_stages(self):
        stats = QueryStatistics(query_name="LQ1", engine="gStoreD", dataset="LUBM", partitioning="hash")
        stats.stage("assembly").add_counter("crossing_matches", 2)
        stats.num_results = 7
        row = stats.as_row()
        assert row["query"] == "LQ1"
        assert row["results"] == 7
        assert row["assembly_crossing_matches"] == 2
        assert "assembly_time_ms" in row
