"""Unit tests for the network and platform cost models."""

import pytest

from repro.core import EngineConfig, GStoreDEngine
from repro.datasets import lubm
from repro.distributed import (
    Cluster,
    GRAPH_BSP_PLATFORM,
    MAPREDUCE_PLATFORM,
    NATIVE_PLATFORM,
    NetworkModel,
    PlatformModel,
    SPARK_SQL_PLATFORM,
    StageStats,
)
from repro.partition import HashPartitioner


class TestNetworkModel:
    def test_zero_traffic_costs_nothing(self):
        assert NetworkModel().transfer_time(0, 0) == 0.0

    def test_latency_scales_with_messages(self):
        model = NetworkModel(latency_s=0.001, bandwidth_bytes_per_s=1e9)
        assert model.transfer_time(0, 5) == pytest.approx(0.005)

    def test_bandwidth_scales_with_bytes(self):
        model = NetworkModel(latency_s=0.0, bandwidth_bytes_per_s=1000.0)
        assert model.transfer_time(2000, 0) == pytest.approx(2.0)

    def test_combined_charge(self):
        model = NetworkModel(latency_s=0.01, bandwidth_bytes_per_s=100.0)
        assert model.transfer_time(50, 2) == pytest.approx(0.02 + 0.5)

    def test_default_parameters_are_sane(self):
        model = NetworkModel()
        # 1 MB over the default network takes milliseconds, not seconds.
        assert 0 < model.transfer_time(1_000_000, 1) < 0.1


class TestPlatformModel:
    def test_native_platform_is_free(self):
        assert NATIVE_PLATFORM.stage_cost(10) == 0.0

    def test_cloud_platforms_charge_per_stage(self):
        assert SPARK_SQL_PLATFORM.stage_cost(2) == pytest.approx(0.1)
        assert MAPREDUCE_PLATFORM.stage_cost(1) > SPARK_SQL_PLATFORM.stage_cost(1)
        assert GRAPH_BSP_PLATFORM.stage_cost(3) == pytest.approx(0.09)

    def test_negative_stage_count_is_clamped(self):
        assert PlatformModel(0.5).stage_cost(-1) == 0.0


class TestStageTimeComposition:
    def test_network_and_platform_time_add_to_parallel_time(self):
        stage = StageStats("assembly")
        stage.record_site_time(0, 0.2)
        stage.coordinator_time_s = 0.1
        stage.network_time_s = 0.05
        stage.platform_time_s = 0.3
        assert stage.parallel_time_s == pytest.approx(0.65)
        # CPU time excludes modelled overheads.
        assert stage.total_cpu_time_s == pytest.approx(0.3)


class TestClusterNetworkConfiguration:
    def test_cluster_uses_custom_network_model(self):
        graph = lubm.generate(scale=1)
        partitioned = HashPartitioner(3).partition(graph)
        slow_network = NetworkModel(latency_s=0.05, bandwidth_bytes_per_s=10_000.0)
        fast_cluster = Cluster(partitioned)
        slow_cluster = Cluster(partitioned, network=slow_network)
        query = lubm.queries()["LQ1"]

        fast_result = GStoreDEngine(fast_cluster, EngineConfig.lec_optimized()).execute(query)
        slow_result = GStoreDEngine(slow_cluster, EngineConfig.lec_optimized()).execute(query)

        # Same answers, but the slow network makes the same shipment cost more time.
        assert fast_result.results.same_solutions(slow_result.results)
        assert slow_result.statistics.total_time_s > fast_result.statistics.total_time_s

    def test_engine_charges_network_time_on_shipping_stages(self):
        graph = lubm.generate(scale=1)
        cluster = Cluster(HashPartitioner(3).partition(graph))
        result = GStoreDEngine(cluster, EngineConfig.full()).execute(lubm.queries()["LQ1"])
        pruning = result.statistics.find_stage("lec_pruning")
        assert pruning is not None
        assert pruning.network_time_s > 0
        assert pruning.platform_time_s == 0  # gStoreD is a native engine
