"""Unit tests for the report rendering helpers."""

from repro.bench import format_series, format_table, format_value


class TestFormatValue:
    def test_booleans(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_integers_use_thousands_separator(self):
        assert format_value(1234567) == "1,234,567"

    def test_small_floats_keep_precision(self):
        assert format_value(0.1234) == "0.123"

    def test_medium_floats(self):
        assert format_value(42.77) == "42.8"

    def test_large_floats_rounded(self):
        assert format_value(12345.6) == "12,346"

    def test_zero_float(self):
        assert format_value(0.0) == "0"

    def test_strings_pass_through(self):
        assert format_value("LQ1") == "LQ1"


class TestFormatTable:
    def test_empty_table(self):
        assert format_table([]) == "(no rows)"

    def test_header_and_alignment(self):
        rows = [{"query": "LQ1", "time": 10.0}, {"query": "LQ2", "time": 3.25}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert "LQ1" in lines[2]
        assert len(lines) == 4

    def test_explicit_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_cells_render_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table(rows, columns=["a", "b"])
        assert len(text.splitlines()) == 4


class TestFormatSeries:
    def test_series_layout(self):
        series = {
            "gStoreD": {"LQ1": 10.0, "LQ3": 5.0},
            "DREAM": {"LQ1": 20.0, "LQ3": 2.0},
        }
        text = format_series("Fig. X", series)
        lines = text.splitlines()
        assert lines[0] == "Fig. X"
        assert "gStoreD" in lines[1]
        assert "DREAM" in lines[1]
        assert any(line.startswith("LQ1") for line in lines)

    def test_series_with_disjoint_x_values(self):
        series = {"a": {"x1": 1.0}, "b": {"x2": 2.0}}
        text = format_series("t", series)
        assert "x1" in text and "x2" in text
