"""Tests for the experiment harness (table/figure regeneration functions)."""

import pytest

from repro.bench import (
    ablation_series,
    comparison_series,
    lec_feature_shipment_series,
    partitioning_cost_table,
    partitioning_performance_series,
    per_stage_table,
    prepare_workload,
    run_query,
    scalability_series,
)
from repro.core import EngineConfig


@pytest.fixture(scope="module")
def yago_workload():
    return prepare_workload("YAGO2", num_sites=3)


class TestPrepareWorkload:
    def test_workload_contains_cluster_and_queries(self, yago_workload):
        assert yago_workload.cluster.num_sites == 3
        assert set(yago_workload.queries) == {"YQ1", "YQ2", "YQ3", "YQ4"}
        assert yago_workload.partitioned.strategy == "hash"

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError):
            prepare_workload("YAGO2", strategy="round_robin")

    def test_run_query_resets_network(self, yago_workload):
        first = run_query(yago_workload, "YQ1")
        second = run_query(yago_workload, "YQ1", EngineConfig.basic())
        assert first.statistics.total_shipment_bytes >= 0
        assert len(first.results) == len(second.results)


class TestTables:
    def test_per_stage_table_one_row_per_query(self):
        rows = per_stage_table("YAGO2", num_sites=3)
        assert [row["query"] for row in rows] == ["YQ1", "YQ2", "YQ3", "YQ4"]
        for row in rows:
            assert row["total_time_ms"] >= row["assembly_time_ms"]
            assert row["local_partial_matches"] >= 0

    def test_per_stage_table_star_queries_have_zero_optimization_cost(self):
        rows = per_stage_table("LUBM", num_sites=3, query_names=["LQ2", "LQ4"])
        for row in rows:
            assert row["candidates_shipment_kb"] == 0
            assert row["lec_pruning_shipment_kb"] == 0
            assert row["local_partial_matches"] == 0

    def test_partitioning_cost_table_covers_both_datasets(self):
        rows = partitioning_cost_table(num_sites=3)
        assert [row["dataset"] for row in rows] == ["YAGO2", "LUBM"]
        for row in rows:
            assert set(row) == {"dataset", "hash", "semantic_hash", "metis"}
            assert all(row[strategy] > 0 for strategy in ("hash", "semantic_hash", "metis"))


class TestSeries:
    def test_ablation_series_has_four_engines(self):
        series = ablation_series("YAGO2", ["YQ1", "YQ4"], num_sites=3)
        assert set(series) == {"gStoreD-Basic", "gStoreD-LA", "gStoreD-LO", "gStoreD"}
        for points in series.values():
            assert set(points) == {"YQ1", "YQ4"}

    def test_partitioning_performance_series(self):
        series = partitioning_performance_series("YAGO2", ["YQ1"], num_sites=3)
        assert set(series) == {"hash", "semantic_hash", "metis"}

    def test_lec_feature_shipment_series(self):
        series = lec_feature_shipment_series("YAGO2", ["YQ1", "YQ3"], num_sites=3)
        for points in series.values():
            assert all(value >= 0 for value in points.values())

    def test_scalability_series_is_monotone_in_scale_labels(self):
        series = scalability_series(["LQ4"], scales={"S": 1, "L": 2}, num_sites=3)
        assert set(series) == {"LQ4"}
        assert set(series["LQ4"]) == {"S", "L"}

    def test_comparison_series_contains_baselines_and_gstored(self):
        series = comparison_series(
            "YAGO2",
            num_sites=3,
            query_names=["YQ1"],
            gstored_strategies=("hash",),
            baselines=("DREAM", "S2RDF"),
        )
        assert set(series) == {"DREAM", "S2RDF", "gStoreD-hash"}
