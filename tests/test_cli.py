"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.rdf import load as load_ntriples


@pytest.fixture()
def dataset_file(tmp_path):
    path = tmp_path / "lubm.nt"
    exit_code = main(["generate", "LUBM", "--scale", "1", "--output", str(path)])
    assert exit_code == 0
    return path


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(["generate", "YAGO2", "--output", "x.nt", "--scale", "2"])
        assert args.dataset == "YAGO2"
        assert args.scale == 2

    def test_query_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--query", "SELECT * WHERE { ?s ?p ?o }"])


class TestGenerate:
    def test_generate_writes_ntriples(self, dataset_file):
        graph = load_ntriples(dataset_file)
        assert len(graph) > 500

    def test_generate_respects_seed(self, tmp_path):
        a, b = tmp_path / "a.nt", tmp_path / "b.nt"
        main(["generate", "BTC", "--seed", "5", "--output", str(a)])
        main(["generate", "BTC", "--seed", "5", "--output", str(b)])
        assert a.read_text() == b.read_text()


class TestPartition:
    def test_partition_prints_cost(self, dataset_file, capsys):
        exit_code = main(["partition", str(dataset_file), "--strategy", "hash", "--sites", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "cost" in output
        assert "crossing_edges" in output

    def test_partition_saves_workspace(self, dataset_file, tmp_path, capsys):
        workspace = tmp_path / "ws"
        exit_code = main(
            ["partition", str(dataset_file), "--sites", "3", "--workspace", str(workspace)]
        )
        assert exit_code == 0
        assert (workspace / "graph.nt").exists()
        assert (workspace / "partitioning.json").exists()

    @pytest.mark.slow
    def test_partition_with_refinement(self, dataset_file, capsys):
        exit_code = main(["partition", str(dataset_file), "--sites", "3", "--refine"])
        assert exit_code == 0
        assert "refinement:" in capsys.readouterr().out

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        exit_code = main(["partition", str(tmp_path / "missing.nt")])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err


class TestQuery:
    QUERY = (
        "PREFIX ub: <http://example.org/univ-bench#> "
        "SELECT ?s ?d WHERE { ?s ub:memberOf ?d . ?d ub:subOrganizationOf ?u . }"
    )

    def test_query_over_adhoc_partitioning(self, dataset_file, capsys):
        exit_code = main(
            ["query", "--data", str(dataset_file), "--sites", "3", "--query", self.QUERY]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "solutions" in output

    def test_query_over_saved_workspace(self, dataset_file, tmp_path, capsys):
        workspace = tmp_path / "ws"
        main(["partition", str(dataset_file), "--sites", "3", "--workspace", str(workspace)])
        capsys.readouterr()
        exit_code = main(["query", "--workspace", str(workspace), "--query", self.QUERY, "--show-stats"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "solutions" in output
        assert "stage" in output

    def test_query_from_file_with_baseline_engine(self, dataset_file, tmp_path, capsys):
        query_file = tmp_path / "query.rq"
        query_file.write_text(self.QUERY, encoding="utf-8")
        exit_code = main(
            [
                "query",
                "--data",
                str(dataset_file),
                "--sites",
                "3",
                "--engine",
                "dream",
                "--query-file",
                str(query_file),
            ]
        )
        assert exit_code == 0
        assert "DREAM" in capsys.readouterr().out

    def test_all_engine_aliases_accepted(self, dataset_file, capsys):
        for engine in ("basic", "la", "lo"):
            exit_code = main(
                ["query", "--data", str(dataset_file), "--sites", "2", "--engine", engine, "--query", self.QUERY]
            )
            assert exit_code == 0


class TestQueryEngineRegistry:
    """`repro query --engine` accepts every repro.api registry entry."""

    QUERY = TestQuery.QUERY

    @pytest.mark.parametrize(
        "engine", ("gstored", "dream", "decomp", "cloud", "s2x", "centralized")
    )
    def test_every_registry_engine_runs(self, dataset_file, capsys, engine):
        exit_code = main(
            ["query", "--data", str(dataset_file), "--sites", "2", "--engine", engine, "--query", self.QUERY]
        )
        assert exit_code == 0
        assert "solutions" in capsys.readouterr().out

    @pytest.mark.parametrize("alias", ("s2rdf", "cliquesquare", "DREAM", "central", "gstore-d"))
    def test_legacy_report_names_still_work(self, dataset_file, capsys, alias):
        exit_code = main(
            ["query", "--data", str(dataset_file), "--sites", "2", "--engine", alias, "--query", self.QUERY]
        )
        assert exit_code == 0

    def test_registry_engines_agree_on_solutions(self, dataset_file, capsys):
        outputs = {}
        for engine in ("gstored", "centralized", "dream"):
            main(
                ["query", "--data", str(dataset_file), "--sites", "2", "--engine", engine,
                 "--query", self.QUERY, "--limit", "100"]
            )
            # Drop the banner line; solution lines must be identical.
            outputs[engine] = sorted(capsys.readouterr().out.splitlines()[1:])
        assert outputs["gstored"] == outputs["centralized"] == outputs["dream"]

    def test_newly_registered_engines_are_reachable(self, dataset_file, capsys):
        """The CLI reads the live registry, not an import-time snapshot."""
        from repro.api import EngineSpec, make_engine, register_engine
        from repro.api.engines import _ALIASES, _REGISTRY

        register_engine(
            EngineSpec(
                name="cli-custom",
                summary="test double",
                factory=lambda cluster, config, backend: make_engine("centralized", cluster),
            )
        )
        try:
            exit_code = main(
                ["query", "--data", str(dataset_file), "--sites", "2", "--engine", "cli-custom",
                 "--query", self.QUERY]
            )
            assert exit_code == 0
            assert "solutions" in capsys.readouterr().out
        finally:
            _REGISTRY.pop("cli-custom", None)
            _ALIASES.pop("cli-custom", None)

    def test_unknown_engine_names_every_choice(self, dataset_file, capsys):
        exit_code = main(
            ["query", "--data", str(dataset_file), "--engine", "sparkle", "--query", self.QUERY]
        )
        assert exit_code == 2
        message = capsys.readouterr().err
        assert "unknown engine 'sparkle'" in message
        for choice in ("gstored", "basic", "la", "lo", "dream", "decomp", "cloud", "s2x", "centralized"):
            assert choice in message


class TestQueryWorkers:
    QUERY = TestQuery.QUERY

    def test_query_with_workers_runs_threaded(self, dataset_file, capsys):
        exit_code = main(
            ["query", "--data", str(dataset_file), "--sites", "3", "--workers", "2", "--query", self.QUERY]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "solutions" in output
        assert "executor=threads x2" in output

    def test_threaded_and_serial_answers_match(self, dataset_file, capsys):
        main(["query", "--data", str(dataset_file), "--sites", "3", "--query", self.QUERY, "--limit", "100"])
        serial_output = capsys.readouterr().out
        main(
            ["query", "--data", str(dataset_file), "--sites", "3", "--workers", "4", "--query", self.QUERY, "--limit", "100"]
        )
        threaded_output = capsys.readouterr().out
        # Identical solution lines; only the engine banner differs.
        assert sorted(serial_output.splitlines()[1:]) == sorted(threaded_output.splitlines()[1:])

    @pytest.mark.parametrize("workers", ["0", "-2"])
    def test_invalid_worker_counts_are_rejected(self, dataset_file, capsys, workers):
        exit_code = main(
            ["query", "--data", str(dataset_file), "--sites", "2", "--workers", workers, "--query", self.QUERY]
        )
        assert exit_code == 2
        assert "--workers" in capsys.readouterr().err

    def test_workers_rejected_for_baseline_engines(self, dataset_file, capsys):
        exit_code = main(
            [
                "query",
                "--data",
                str(dataset_file),
                "--sites",
                "2",
                "--engine",
                "dream",
                "--workers",
                "2",
                "--query",
                self.QUERY,
            ]
        )
        assert exit_code == 2
        assert "gStoreD" in capsys.readouterr().err


class TestQueryExecutor:
    QUERY = TestQuery.QUERY

    def test_query_with_process_executor(self, dataset_file, capsys):
        exit_code = main(
            [
                "query",
                "--data",
                str(dataset_file),
                "--sites",
                "3",
                "--executor",
                "processes",
                "--workers",
                "2",
                "--query",
                self.QUERY,
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "solutions" in output
        assert "executor=processes x2" in output

    def test_process_and_serial_answers_match(self, dataset_file, capsys):
        main(["query", "--data", str(dataset_file), "--sites", "3", "--query", self.QUERY, "--limit", "100"])
        serial_output = capsys.readouterr().out
        main(
            [
                "query",
                "--data",
                str(dataset_file),
                "--sites",
                "3",
                "--executor",
                "processes",
                "--workers",
                "2",
                "--query",
                self.QUERY,
                "--limit",
                "100",
            ]
        )
        process_output = capsys.readouterr().out
        # Identical solution lines; only the engine banner differs.
        assert sorted(serial_output.splitlines()[1:]) == sorted(process_output.splitlines()[1:])

    def test_explicit_serial_executor_keeps_reference_banner(self, dataset_file, capsys):
        exit_code = main(
            [
                "query",
                "--data",
                str(dataset_file),
                "--sites",
                "3",
                "--executor",
                "serial",
                "--query",
                self.QUERY,
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "solutions" in output
        assert "executor=" not in output

    def test_serial_executor_with_workers_is_contradictory(self, dataset_file, capsys):
        exit_code = main(
            [
                "query",
                "--data",
                str(dataset_file),
                "--sites",
                "2",
                "--executor",
                "serial",
                "--workers",
                "8",
                "--query",
                self.QUERY,
            ]
        )
        assert exit_code == 2
        assert "--executor serial" in capsys.readouterr().err

    def test_unknown_executor_names_every_choice(self, dataset_file, capsys):
        exit_code = main(
            ["query", "--data", str(dataset_file), "--executor", "mpi", "--query", self.QUERY]
        )
        assert exit_code == 2
        message = capsys.readouterr().err
        assert "unknown executor 'mpi'" in message
        for choice in ("serial", "threads", "processes"):
            assert choice in message

    def test_executor_rejected_for_baseline_engines(self, dataset_file, capsys):
        exit_code = main(
            [
                "query",
                "--data",
                str(dataset_file),
                "--sites",
                "2",
                "--engine",
                "dream",
                "--executor",
                "processes",
                "--query",
                self.QUERY,
            ]
        )
        assert exit_code == 2
        assert "--executor" in capsys.readouterr().err


class TestQueryObservability:
    QUERY = TestQuery.QUERY

    def test_trace_writes_a_valid_chrome_trace(self, dataset_file, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        exit_code = main(
            ["query", "--data", str(dataset_file), "--sites", "3", "--query", self.QUERY,
             "--trace", str(trace_path)]
        )
        assert exit_code == 0
        assert f"trace: wrote" in capsys.readouterr().out
        payload = json.loads(trace_path.read_text(encoding="utf-8"))
        events = validate_chrome_trace(payload)
        assert any(event["name"].startswith("stage:") for event in events)

    @pytest.mark.parametrize("executor", ["threads", "processes"])
    def test_trace_works_under_every_parallel_backend(
        self, dataset_file, tmp_path, capsys, executor
    ):
        import json

        from repro.obs import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        exit_code = main(
            ["query", "--data", str(dataset_file), "--sites", "3", "--executor", executor,
             "--workers", "2", "--query", self.QUERY, "--trace", str(trace_path)]
        )
        assert exit_code == 0
        validate_chrome_trace(json.loads(trace_path.read_text(encoding="utf-8")))

    def test_trace_rejected_for_baseline_engines(self, dataset_file, tmp_path, capsys):
        exit_code = main(
            ["query", "--data", str(dataset_file), "--sites", "2", "--engine", "dream",
             "--query", self.QUERY, "--trace", str(tmp_path / "t.json")]
        )
        assert exit_code == 2
        message = capsys.readouterr().err
        assert "--trace" in message
        for choice in ("gstored", "basic", "la", "lo"):
            assert choice in message
        assert not (tmp_path / "t.json").exists()

    def test_metrics_prints_a_prometheus_exposition(self, dataset_file, capsys):
        exit_code = main(
            ["query", "--data", str(dataset_file), "--sites", "3", "--query", self.QUERY,
             "--metrics"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in output
        assert "# TYPE repro_stage_seconds histogram" in output
        assert "repro_stage_seconds_bucket" in output
        assert "repro_plan_cache_hits_total" in output

    def test_metrics_works_with_baseline_engines(self, dataset_file, capsys):
        exit_code = main(
            ["query", "--data", str(dataset_file), "--sites", "2", "--engine", "dream",
             "--query", self.QUERY, "--metrics"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert 'repro_queries_total{engine="DREAM"} 1' in output

    def test_tracing_does_not_change_the_solution_lines(self, dataset_file, tmp_path, capsys):
        main(["query", "--data", str(dataset_file), "--sites", "3", "--query", self.QUERY,
              "--limit", "100"])
        plain = capsys.readouterr().out.splitlines()
        main(["query", "--data", str(dataset_file), "--sites", "3", "--query", self.QUERY,
              "--limit", "100", "--trace", str(tmp_path / "t.json")])
        traced = capsys.readouterr().out.splitlines()
        # Identical banner + solutions; the traced run only appends its footer.
        assert traced[: len(plain)] == plain
        assert traced[len(plain)].startswith("trace: wrote")


class TestExplainObservability:
    QUERY = TestQuery.QUERY

    def test_explain_trace_covers_statistics_and_planning(self, dataset_file, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        trace_path = tmp_path / "explain.json"
        exit_code = main(
            ["explain", "--data", str(dataset_file), "--sites", "3", "--query", self.QUERY,
             "--trace", str(trace_path)]
        )
        assert exit_code == 0
        events = validate_chrome_trace(json.loads(trace_path.read_text(encoding="utf-8")))
        names = {event["name"] for event in events}
        assert "collect_statistics" in names
        assert "plan" in names

    def test_explain_metrics_reports_phase_timings(self, dataset_file, capsys):
        exit_code = main(
            ["explain", "--data", str(dataset_file), "--sites", "3", "--query", self.QUERY,
             "--metrics"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert 'repro_stage_seconds_bucket{stage="planning"' in output
        assert 'repro_stage_seconds_bucket{stage="statistics"' in output


class TestExplain:
    QUERY = (
        "PREFIX ub: <http://example.org/univ-bench#> "
        "SELECT ?s ?d WHERE { ?s ub:memberOf ?d . ?d ub:subOrganizationOf ?u . }"
    )

    def test_explain_prints_plan(self, dataset_file, capsys):
        exit_code = main(
            ["explain", "--data", str(dataset_file), "--sites", "3", "--query", self.QUERY]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "statistics:" in output
        assert "vertex order:" in output
        assert "plan source: statistics" in output
        assert "static (seed) order:" in output

    def test_explain_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "--query", "SELECT * WHERE { ?s ?p ?o }"])

    def test_explain_from_query_file(self, dataset_file, tmp_path, capsys):
        query_file = tmp_path / "query.rq"
        query_file.write_text(self.QUERY, encoding="utf-8")
        exit_code = main(
            ["explain", "--data", str(dataset_file), "--sites", "2", "--query-file", str(query_file)]
        )
        assert exit_code == 0
        assert "edge order:" in capsys.readouterr().out

    def test_explain_with_workers(self, dataset_file, capsys):
        exit_code = main(
            ["explain", "--data", str(dataset_file), "--sites", "3", "--workers", "2", "--query", self.QUERY]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "statistics:" in output
        assert "vertex order:" in output

    def test_explain_rejects_invalid_worker_count(self, dataset_file, capsys):
        exit_code = main(
            ["explain", "--data", str(dataset_file), "--sites", "3", "--workers", "0", "--query", self.QUERY]
        )
        assert exit_code == 2
        assert "--workers" in capsys.readouterr().err

    def test_explain_with_process_executor(self, dataset_file, capsys):
        exit_code = main(
            [
                "explain",
                "--data",
                str(dataset_file),
                "--sites",
                "3",
                "--executor",
                "processes",
                "--workers",
                "2",
                "--query",
                self.QUERY,
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "statistics:" in output
        assert "vertex order:" in output


class TestExperiment:
    def test_table4_experiment(self, capsys):
        exit_code = main(["experiment", "table4", "--sites", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "semantic_hash" in output

    def test_table2_experiment(self, capsys):
        exit_code = main(["experiment", "table2", "--sites", "3"])
        assert exit_code == 0
        assert "YQ3" in capsys.readouterr().out


class TestServe:
    def test_serve_argument_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.dataset == "paper"
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.max_inflight == 4
        assert args.max_queue == 16
        assert args.result_cache == 0

    def test_serve_accepts_the_full_option_set(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--dataset", "lubm",
                "--scale", "1",
                "--sites", "3",
                "--partitioner", "metis",
                "--engine", "gstored",
                "--executor", "threads",
                "--workers", "2",
                "--host", "0.0.0.0",
                "--port", "0",
                "--max-inflight", "2",
                "--max-queue", "1",
                "--result-cache", "8",
            ]
        )
        assert (args.dataset, args.scale, args.sites) == ("lubm", 1, 3)
        assert (args.max_inflight, args.max_queue, args.result_cache) == (2, 1, 8)

    def test_serve_rejects_a_negative_result_cache(self, capsys):
        exit_code = main(["serve", "--result-cache", "-1"])
        assert exit_code == 2
        assert "--result-cache" in capsys.readouterr().err

    def test_serve_rejects_contradictory_executor_flags(self, capsys):
        exit_code = main(["serve", "--executor", "serial", "--workers", "2"])
        assert exit_code == 2
        assert "--workers" in capsys.readouterr().err

    def test_serve_answers_http_queries(self, capsys):
        """End to end: bind port 0, query over HTTP, shut down cleanly."""
        import json
        import threading
        import time
        import urllib.request

        import repro.cli as cli_module
        from repro.api.serving import QueryServer

        started = {}
        hold = threading.Event()
        real_serve_forever = QueryServer.serve_forever

        def capturing_serve_forever(self):
            started["server"] = self
            hold.set()
            real_serve_forever(self)

        QueryServer.serve_forever = capturing_serve_forever
        try:
            thread = threading.Thread(
                target=cli_module.main,
                args=(["serve", "--port", "0", "--result-cache", "4"],),
                daemon=True,
            )
            thread.start()
            assert hold.wait(timeout=60)
            server = started["server"]
            host, port = server.address
            request = urllib.request.Request(
                f"http://{host}:{port}/query",
                data=json.dumps({"query": "example"}).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                body = json.loads(response.read())
            assert body["num_rows"] == 4
            server.shutdown()
            thread.join(timeout=30)
            assert not thread.is_alive()
        finally:
            QueryServer.serve_forever = real_serve_forever


class TestStore:
    def test_store_build_writes_a_store_file(self, tmp_path, capsys):
        path = tmp_path / "paper.store"
        exit_code = main(["store", "build", "--output", str(path)])
        assert exit_code == 0
        assert path.exists()
        output = capsys.readouterr().out
        assert "built" in output
        assert "file_bytes:" in output

    def test_store_build_refuses_to_clobber_without_force(self, tmp_path, capsys):
        path = tmp_path / "paper.store"
        assert main(["store", "build", "--output", str(path)]) == 0
        capsys.readouterr()
        exit_code = main(["store", "build", "--output", str(path)])
        assert exit_code == 2
        message = capsys.readouterr().err
        assert "error" in message
        assert "--force" in message

    def test_store_build_force_rebuilds(self, tmp_path, capsys):
        path = tmp_path / "paper.store"
        assert main(["store", "build", "--output", str(path)]) == 0
        assert main(["store", "build", "--output", str(path), "--force"]) == 0

    def test_store_info_prints_the_manifest(self, tmp_path, capsys):
        path = tmp_path / "paper.store"
        main(["store", "build", "--output", str(path)])
        capsys.readouterr()
        exit_code = main(["store", "info", str(path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "dataset: paper-example" in output
        assert "pending_deltas: 0" in output

    def test_store_info_missing_file_is_exit_two(self, tmp_path, capsys):
        exit_code = main(["store", "info", str(tmp_path / "missing.store")])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    def test_store_compact_folds_the_journal(self, tmp_path, capsys):
        from repro.persist import ClusterStore
        from repro.rdf import IRI, Triple

        path = tmp_path / "paper.store"
        main(["store", "build", "--output", str(path)])
        with ClusterStore.open(str(path)) as store:
            cluster = store.load_cluster()
            cluster.apply(add=[Triple(
                IRI("http://example.org/cli-s"),
                IRI("http://example.org/cli-p"),
                IRI("http://example.org/cli-o"),
            )])
            cluster.attach_store(None)
        capsys.readouterr()
        exit_code = main(["store", "compact", str(path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "folded 1 delta" in output

    def test_queries_over_a_built_store_match_the_example(self, tmp_path, capsys):
        import repro

        path = tmp_path / "paper.store"
        main(["store", "build", "--output", str(path)])
        with repro.open(dataset="paper") as baseline:
            expected = baseline.query("example")
            with repro.open(path=str(path)) as warm:
                observed = warm.query("example")
                assert observed.same_solutions(expected)
