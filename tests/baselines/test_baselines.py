"""Correctness and behaviour tests for the simulated comparison systems."""

import pytest

from repro.baselines import BASELINE_ENGINES, DreamEngine, S2RDFEngine, S2XEngine, make_baseline
from repro.datasets import btc, lubm, yago
from repro.distributed import build_cluster
from repro.partition import HashPartitioner
from repro.store import evaluate_centralized


@pytest.fixture(scope="module")
def lubm_env():
    graph = lubm.generate(scale=1)
    cluster = build_cluster(HashPartitioner(4).partition(graph))
    return graph, cluster, lubm.queries()


class TestRegistry:
    def test_all_fig12_systems_available(self):
        assert set(BASELINE_ENGINES) == {"DREAM", "S2RDF", "CliqueSquare", "S2X"}

    def test_make_baseline(self, lubm_env):
        _, cluster, _ = lubm_env
        assert isinstance(make_baseline("DREAM", cluster), DreamEngine)

    def test_unknown_baseline_raises(self, lubm_env):
        _, cluster, _ = lubm_env
        with pytest.raises(KeyError):
            make_baseline("nonexistent", cluster)


@pytest.mark.parametrize("baseline_name", sorted(BASELINE_ENGINES))
class TestBaselineCorrectness:
    @pytest.mark.parametrize("query_name", ["LQ1", "LQ2", "LQ6"])
    def test_lubm_queries_match_centralized(self, lubm_env, baseline_name, query_name):
        graph, cluster, queries = lubm_env
        query = queries[query_name]
        central = evaluate_centralized(graph, query).project(query.effective_projection, distinct=True)
        cluster.reset_network()
        engine = make_baseline(baseline_name, cluster)
        result = engine.execute(query, query_name=query_name, dataset="LUBM")
        assert result.results.same_solutions(central)

    def test_statistics_are_populated(self, lubm_env, baseline_name):
        graph, cluster, queries = lubm_env
        cluster.reset_network()
        engine = make_baseline(baseline_name, cluster)
        result = engine.execute(queries["LQ6"], query_name="LQ6", dataset="LUBM")
        stats = result.statistics
        assert stats.engine == baseline_name
        assert stats.query_name == "LQ6"
        assert stats.total_time_ms >= 0
        assert len(stats.stages) >= 2
        assert stats.num_results == len(result.results)


class TestDreamBehaviour:
    def test_replication_means_no_partial_matches_but_shipped_results(self, lubm_env):
        graph, cluster, queries = lubm_env
        cluster.reset_network()
        result = DreamEngine(cluster).execute(queries["LQ7"], query_name="LQ7")
        stats = result.statistics
        assert stats.counter("subquery_evaluation", "star_subqueries") >= 2
        assert stats.find_stage("subquery_evaluation").shipped_bytes > 0

    def test_star_query_is_single_subquery(self, lubm_env):
        graph, cluster, queries = lubm_env
        cluster.reset_network()
        result = DreamEngine(cluster).execute(queries["LQ2"], query_name="LQ2")
        assert result.statistics.counter("subquery_evaluation", "star_subqueries") == 1


class TestCloudBehaviour:
    def test_s2rdf_scans_every_pattern(self, lubm_env):
        graph, cluster, queries = lubm_env
        cluster.reset_network()
        result = S2RDFEngine(cluster).execute(queries["LQ7"], query_name="LQ7")
        stats = result.statistics
        assert stats.counter("pattern_scan", "patterns") == len(queries["LQ7"].bgp)
        assert stats.counter("pattern_scan", "scanned_rows") > 0
        assert stats.find_stage("pattern_scan").shipped_bytes > 0

    def test_s2x_runs_supersteps(self, lubm_env):
        graph, cluster, queries = lubm_env
        cluster.reset_network()
        result = S2XEngine(cluster).execute(queries["LQ1"], query_name="LQ1")
        stats = result.statistics
        assert stats.counter("supersteps", "supersteps") >= 1
        assert stats.counter("supersteps", "surviving_candidates") <= stats.counter(
            "pattern_scan", "initial_candidates"
        )

    @pytest.mark.parametrize("dataset_module, query_name", [(yago, "YQ4"), (btc, "BQ5")])
    def test_other_datasets(self, dataset_module, query_name):
        graph = dataset_module.generate(scale=1)
        cluster = build_cluster(HashPartitioner(3).partition(graph))
        query = dataset_module.queries()[query_name]
        central = evaluate_centralized(graph, query).project(query.effective_projection, distinct=True)
        for baseline_name in BASELINE_ENGINES:
            cluster.reset_network()
            result = make_baseline(baseline_name, cluster).execute(query, query_name=query_name)
            assert result.results.same_solutions(central)
