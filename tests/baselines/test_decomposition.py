"""Unit tests for query decomposition and the solution hash join."""

from repro.baselines import decompose_into_stars, hash_join, join_all, single_pattern_queries
from repro.baselines.decomposition import estimate_bindings_size, subquery
from repro.rdf import IRI, TriplePattern, Variable
from repro.sparql import BasicGraphPattern, Binding

P, Q, R = IRI("http://x/p"), IRI("http://x/q"), IRI("http://x/r")
X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")
A, B, C = IRI("http://x/a"), IRI("http://x/b"), IRI("http://x/c")


class TestStarDecomposition:
    def test_single_star_stays_whole(self):
        bgp = BasicGraphPattern([TriplePattern(X, P, Y), TriplePattern(X, Q, Z)])
        stars = decompose_into_stars(bgp)
        assert len(stars) == 1
        assert len(stars[0]) == 2

    def test_path_splits_into_two_stars(self):
        bgp = BasicGraphPattern([TriplePattern(X, P, Y), TriplePattern(Y, Q, Z)])
        stars = decompose_into_stars(bgp)
        assert len(stars) == 2

    def test_every_pattern_appears_exactly_once(self):
        bgp = BasicGraphPattern(
            [TriplePattern(X, P, Y), TriplePattern(Y, Q, Z), TriplePattern(X, R, W)]
        )
        stars = decompose_into_stars(bgp)
        flattened = [pattern for star in stars for pattern in star]
        assert sorted(flattened, key=repr) == sorted(bgp.patterns, key=repr)

    def test_constant_subject_attaches_to_variable_hub(self):
        bgp = BasicGraphPattern([TriplePattern(A, P, Y), TriplePattern(Y, Q, Z)])
        stars = decompose_into_stars(bgp)
        assert len(stars) == 1

    def test_single_pattern_queries(self):
        bgp = BasicGraphPattern([TriplePattern(X, P, Y), TriplePattern(Y, Q, Z)])
        singles = single_pattern_queries(bgp)
        assert len(singles) == 2
        assert all(len(single) == 1 for single in singles)

    def test_subquery_wraps_bgp(self):
        bgp = BasicGraphPattern([TriplePattern(X, P, Y)])
        query = subquery(bgp)
        assert query.bgp is bgp
        assert query.effective_projection == (X, Y)


class TestHashJoin:
    def test_join_on_shared_variable(self):
        left = [Binding({X: A, Y: B})]
        right = [Binding({Y: B, Z: C}), Binding({Y: C, Z: A})]
        joined = hash_join(left, right)
        assert joined == [Binding({X: A, Y: B, Z: C})]

    def test_join_without_shared_variables_is_cross_product(self):
        left = [Binding({X: A}), Binding({X: B})]
        right = [Binding({Y: C})]
        assert len(hash_join(left, right)) == 2

    def test_join_with_empty_side_is_empty(self):
        assert hash_join([], [Binding({X: A})]) == []
        assert hash_join([Binding({X: A})], []) == []

    def test_join_all_orders_by_size(self):
        sets = [
            [Binding({X: A, Y: B})],
            [Binding({Y: B, Z: C}), Binding({Y: B, Z: A})],
            [Binding({Z: C, W: A}), Binding({Z: A, W: B}), Binding({Z: B, W: C})],
        ]
        joined = join_all(sets)
        assert {binding[W] for binding in joined} == {A, B}

    def test_join_all_empty_input(self):
        assert join_all([]) == []

    def test_estimate_bindings_size(self):
        bindings = [Binding({X: A})]
        assert estimate_bindings_size(bindings) > estimate_bindings_size([])
