"""Unit tests for :mod:`repro.persist` — the durable cluster store file.

Covers the file-format contract (manifest, schema version, foreign-file
rejection), the write-ahead delta journal, full-cluster and per-site
loading, the v3 store-reference fragment payloads, and compaction.
"""

import json
import sqlite3

import pytest

from repro.datasets.paper_example import build_example_partitioning
from repro.distributed import build_cluster
from repro.partition import fragment_from_payload, fragment_to_store_payload
from repro.persist import SCHEMA_VERSION, ClusterStore, StoreError
from repro.rdf import IRI, Triple

EX = "http://example.org/persist/"


def _triple(tag: str) -> Triple:
    return Triple(IRI(EX + f"s-{tag}"), IRI(EX + "p"), IRI(EX + f"o-{tag}"))


@pytest.fixture()
def store_path(tmp_path):
    return tmp_path / "cluster.store"


@pytest.fixture()
def paper_store(store_path):
    store = ClusterStore.create(
        store_path, build_example_partitioning(), dataset="paper-example", scale=None
    )
    yield store
    store.close()


class TestFileFormat:
    def test_create_writes_a_versioned_manifest(self, paper_store):
        manifest = paper_store.manifest
        assert manifest["format"] == "repro-store"
        assert int(manifest["schema_version"]) == SCHEMA_VERSION
        assert manifest["dataset"] == "paper-example"
        assert int(manifest["num_fragments"]) == 3

    def test_info_reports_counts_and_sizes(self, paper_store):
        info = paper_store.info()
        partitioned = build_example_partitioning()
        assert info["base_triples"] == len(partitioned.graph)
        assert info["assigned_vertices"] == len(partitioned.assignment)
        assert info["pending_deltas"] == 0
        assert info["file_bytes"] > 0

    def test_create_refuses_to_clobber_without_overwrite(self, paper_store, store_path):
        with pytest.raises(StoreError, match="already exists"):
            ClusterStore.create(store_path, build_example_partitioning())

    def test_create_with_overwrite_replaces_the_file(self, paper_store, store_path):
        paper_store.close()
        with ClusterStore.create(
            store_path, build_example_partitioning(), overwrite=True
        ) as rebuilt:
            assert rebuilt.delta_head == 0

    def test_open_missing_file_is_a_store_error(self, tmp_path):
        with pytest.raises(StoreError, match="no store file"):
            ClusterStore.open(tmp_path / "nope.store")

    def test_open_rejects_a_foreign_sqlite_file(self, tmp_path):
        path = tmp_path / "foreign.db"
        connection = sqlite3.connect(str(path))
        connection.execute("CREATE TABLE t (x)")
        connection.commit()
        connection.close()
        with pytest.raises(StoreError, match="not a repro store"):
            ClusterStore.open(path)

    def test_open_rejects_a_non_sqlite_file(self, tmp_path):
        path = tmp_path / "garbage.store"
        path.write_text("not a database")
        with pytest.raises(StoreError, match="not a repro store"):
            ClusterStore.open(path)

    def test_open_refuses_newer_schema_versions(self, paper_store, store_path):
        paper_store._conn.execute(
            "UPDATE manifest SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
        paper_store._conn.commit()
        paper_store.close()
        with pytest.raises(StoreError, match="schema"):
            ClusterStore.open(store_path)


class TestDeltaJournal:
    def test_append_ops_advances_the_head_durably(self, paper_store, store_path):
        assert paper_store.delta_head == 0
        head = paper_store.append_ops([("+", _triple("a")), ("+", _triple("b"))])
        assert head == 2
        paper_store.close()
        with ClusterStore.open(store_path, read_only=True) as reopened:
            assert reopened.delta_head == 2
            ops = reopened.load_deltas()
            assert [op for op, _ in ops] == ["+", "+"]
            assert ops[0][1] == _triple("a")

    def test_empty_batches_are_free(self, paper_store):
        assert paper_store.append_ops([]) == 0
        assert paper_store.info()["pending_deltas"] == 0

    def test_removals_are_journaled_in_order(self, paper_store):
        paper_store.append_ops([("+", _triple("a")), ("-", _triple("a"))])
        ops = paper_store.load_deltas()
        assert [op for op, _ in ops] == ["+", "-"]

    def test_read_only_stores_reject_writes(self, paper_store, store_path):
        paper_store.close()
        with ClusterStore.open(store_path, read_only=True) as reopened:
            with pytest.raises(StoreError, match="read-only"):
                reopened.append_ops([("+", _triple("a"))])
            with pytest.raises(StoreError, match="read-only"):
                reopened.compact()

    def test_new_terms_get_appended_dictionary_ids(self, paper_store):
        base_terms = paper_store.info()["base_terms"]
        paper_store.append_ops([("+", _triple("fresh"))])
        rows = dict(paper_store._conn.execute("SELECT n3, id FROM terms"))
        # The three new terms continue the dense id sequence.
        assert paper_store.info()["base_terms"] == base_terms + 3
        assert rows[_triple("fresh").subject.n3()] >= base_terms

    def test_failed_append_leaves_head_and_journal_unchanged(self, paper_store, store_path):
        """A rolled-back journal transaction must not advance the in-memory head.

        Regression: the head used to be bumped while staging rows, so a
        failed commit left ``delta_head`` pointing past phantom sequence
        numbers and the next append journaled wrong seqs.
        """
        paper_store.append_ops([("+", _triple("a"))])
        base_terms = paper_store.info()["base_terms"]
        paper_store._conn.execute(
            "CREATE TEMP TRIGGER fail_deltas BEFORE INSERT ON deltas"
            " BEGIN SELECT RAISE(ABORT, 'injected failure'); END"
        )
        with pytest.raises(sqlite3.DatabaseError, match="injected"):
            paper_store.append_ops([("+", _triple("b"))])
        # Nothing moved: not the head, not the manifest, not the journal,
        # not the term dictionary the rolled-back batch had extended.
        assert paper_store.delta_head == 1
        assert paper_store.manifest["delta_head"] == "1"
        assert paper_store.info()["pending_deltas"] == 1
        assert paper_store.info()["base_terms"] == base_terms
        paper_store._conn.execute("DROP TRIGGER fail_deltas")
        # The next append reuses the sequence the failed batch never claimed.
        assert paper_store.append_ops([("+", _triple("c"))]) == 2
        ops = paper_store.load_deltas()
        assert [(op, triple) for op, triple in ops] == [
            ("+", _triple("a")),
            ("+", _triple("c")),
        ]
        paper_store.close()
        with ClusterStore.open(store_path, read_only=True) as reopened:
            assert reopened.delta_head == 2


class TestClusterLoading:
    def test_loaded_cluster_matches_the_source(self, paper_store):
        partitioned = build_example_partitioning()
        cluster = paper_store.load_cluster()
        assert set(cluster.graph) == set(partitioned.graph)
        assert cluster.partitioned_graph.assignment == partitioned.assignment
        for original, loaded in zip(partitioned, cluster.partitioned_graph):
            assert loaded.internal_vertices == original.internal_vertices
            assert loaded.internal_edges == original.internal_edges
            assert loaded.crossing_edges == original.crossing_edges
            assert loaded.extended_vertices == original.extended_vertices
        cluster.partitioned_graph.validate()

    def test_loaded_cluster_replays_the_delta_journal(self, paper_store, store_path):
        live = paper_store.load_cluster()
        live.apply(add=[_triple("x")], remove=[])
        assert paper_store.delta_head == 1
        paper_store.close()
        with ClusterStore.open(store_path) as reopened_store:
            reopened = reopened_store.load_cluster()
            assert _triple("x") in set(reopened.graph)
            assert set(reopened.graph) == set(live.graph)
            reopened.partitioned_graph.validate()

    def test_loaded_sites_reuse_the_stored_statistics(self, paper_store):
        cluster = paper_store.load_cluster()
        for site in cluster:
            stored = paper_store.load_statistics(site.site_id)
            assert stored is not None
            assert site.store.statistics.as_dict() == stored.as_dict()

    def test_store_attaches_after_replay(self, paper_store):
        cluster = paper_store.load_cluster()
        # Replayed ops must not have been re-journaled by the load itself.
        assert cluster.store is paper_store
        assert paper_store.delta_head == 0


class TestSiteBootstrap:
    def test_bootstrapped_site_matches_the_live_site(self, paper_store):
        cluster = paper_store.load_cluster()
        cluster.apply(add=[_triple("y")])
        for site in cluster:
            rebuilt = paper_store.bootstrap_site(site.site_id)
            assert rebuilt.fragment == site.fragment
            assert set(rebuilt.store.graph) == set(site.store.graph)

    def test_bootstrap_rejects_unknown_fragments(self, paper_store):
        with pytest.raises(StoreError, match="no fragment"):
            paper_store.bootstrap_site(99)

    def test_up_to_pins_the_replay_horizon(self, paper_store):
        cluster = paper_store.load_cluster()
        cluster.apply(add=[_triple("first")])
        head_before = paper_store.delta_head
        frozen = {
            site.site_id: paper_store.bootstrap_site(site.site_id, up_to=head_before)
            for site in cluster
        }
        cluster.apply(add=[_triple("second")])
        for site_id, site in frozen.items():
            pinned = paper_store.bootstrap_site(site_id, up_to=head_before)
            assert pinned.fragment == site.fragment

    def test_bootstrap_replay_never_decodes_the_full_dictionary(
        self, paper_store, monkeypatch
    ):
        """With deltas pending, bootstrap must stay O(|F_k|), not O(|V|).

        Regression: a single journaled delta used to trigger a full
        ``_load_terms`` decode of the whole dictionary.  The id-level
        routing must reproduce the live sites without it — including for
        ops introducing brand-new vertices (stable-hash fallback) and
        removals of base triples.
        """
        cluster = paper_store.load_cluster()
        cluster.apply(add=[_triple("lazy")], remove=[next(iter(cluster.graph))])
        monkeypatch.setattr(
            ClusterStore,
            "_load_terms",
            lambda self: pytest.fail("bootstrap_site decoded the full dictionary"),
        )
        for site in cluster:
            rebuilt = paper_store.bootstrap_site(site.site_id)
            assert rebuilt.fragment == site.fragment
            assert set(rebuilt.store.graph) == set(site.store.graph)

    def test_v3_payload_round_trips_through_the_store(self, paper_store):
        cluster = paper_store.load_cluster()
        cluster.apply(add=[_triple("z")])
        for site in cluster:
            payload = fragment_to_store_payload(site.site_id, paper_store)
            assert payload["format"] == "repro-fragment/3"
            assert payload["delta_seq"] == paper_store.delta_head
            # v3 payloads are plain data (JSON/pickle-safe) like v1/v2.
            rebuilt = fragment_from_payload(json.loads(json.dumps(payload)))
            assert rebuilt == site.fragment


class TestCompaction:
    def test_compact_folds_deltas_and_preserves_state(self, paper_store, store_path):
        cluster = paper_store.load_cluster()
        cluster.apply(add=[_triple("k")], remove=[next(iter(cluster.graph))])
        state_before = set(cluster.graph)
        cluster.attach_store(None)
        report = paper_store.compact()
        assert report["folded_deltas"] == 2
        assert paper_store.delta_head == 0
        assert paper_store.info()["pending_deltas"] == 0
        compacted = paper_store.load_cluster()
        assert set(compacted.graph) == state_before
        compacted.partitioned_graph.validate()

    def test_failed_compaction_rolls_back_to_the_previous_state(
        self, paper_store, store_path, monkeypatch
    ):
        """An error mid-snapshot must leave the store exactly as it was.

        Regression: the snapshot rewrite used to DROP and recreate the
        tables, and DDL autocommits eagerly under pysqlite — an error after
        the drops stranded the file with no manifest or data.  The rewrite
        now runs as DELETE + INSERT inside one explicit transaction, so the
        failure below rolls back to the pre-compaction store.
        """
        from repro.planner.statistics import GraphStatistics

        cluster = paper_store.load_cluster()
        cluster.apply(add=[_triple("k")], remove=[next(iter(cluster.graph))])
        state_before = set(cluster.graph)
        info_before = paper_store.info()
        cluster.attach_store(None)
        monkeypatch.setattr(
            GraphStatistics,
            "as_dict",
            lambda self: (_ for _ in ()).throw(RuntimeError("injected failure")),
        )
        with pytest.raises(RuntimeError, match="injected"):
            paper_store.compact()
        monkeypatch.undo()
        # Same head, same journal, same counts — and still loadable, both
        # through the live handle and from a fresh open of the file.
        assert paper_store.delta_head == info_before["delta_head"]
        after = paper_store.info()
        assert after["pending_deltas"] == info_before["pending_deltas"]
        assert after["base_triples"] == info_before["base_triples"]
        assert after["base_terms"] == info_before["base_terms"]
        assert set(paper_store.load_cluster().graph) == state_before
        paper_store.close()
        with ClusterStore.open(store_path) as reopened:
            recovered = reopened.load_cluster()
            assert set(recovered.graph) == state_before
            recovered.partitioned_graph.validate()
