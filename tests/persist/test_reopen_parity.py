"""The persistence determinism contract, end to end.

A cluster reopened from a store file must be observationally *bit-identical*
to the never-persisted cluster: same answers, same match sequences
(``search_steps``), same shipment fingerprints — under every executor
backend and worker count, and including after delta mutation sequences.
Appends must patch the dictionary encodings in place (``encoded_rebuilds``
stays flat), which is what makes warm restarts cheap.
"""

import pytest

from repro.bench import stage_shipment_snapshot as snapshot
from repro.core import EngineConfig, GStoreDEngine
from repro.datasets import get_dataset
from repro.datasets.paper_example import build_example_partitioning, example_query
from repro.distributed import build_cluster
from repro.partition import HashPartitioner
from repro.persist import ClusterStore
from repro.rdf import IRI, Triple
from repro.store.encoding import encoded_rebuilds

EX = "http://example.org/parity/"

#: Explicitly serial, so the reference stays the reference even when the
#: suite runs under REPRO_EXECUTOR=threads (the CI matrix leg).
SERIAL = EngineConfig.full().with_options(executor="serial")

WORKER_COUNTS = (1, 2, 8)


def _mutations():
    """A small add/remove sequence touching fresh and existing vertices."""
    paper = build_example_partitioning().graph
    existing = sorted(paper, key=lambda t: t.n3())[0]
    return (
        dict(add=[Triple(IRI(EX + "a"), IRI(EX + "p"), IRI(EX + "b"))]),
        dict(
            add=[
                Triple(IRI(EX + "b"), IRI(EX + "p"), IRI(EX + "c")),
                Triple(IRI(EX + "a"), IRI(EX + "q"), IRI(EX + "c")),
            ],
            remove=[existing],
        ),
        dict(remove=[Triple(IRI(EX + "a"), IRI(EX + "p"), IRI(EX + "b"))]),
    )


def run(cluster, query, config):
    cluster.reset_network()
    engine = GStoreDEngine(cluster, config)
    try:
        return engine.execute(query)
    finally:
        engine.close()


def fingerprint(cluster, query, config=SERIAL):
    result = run(cluster, query, config)
    rows = sorted(map(sorted, (row.items() for row in result.results.to_table())))
    return rows, dict(result.statistics.work), snapshot(result)


class TestPaperWorkloadParity:
    def test_reopened_cluster_is_bit_identical(self, tmp_path):
        query = example_query()
        live = build_cluster(build_example_partitioning())
        path = tmp_path / "paper.store"
        ClusterStore.create(path, build_example_partitioning()).close()
        with ClusterStore.open(path) as store:
            reopened = store.load_cluster()
            assert fingerprint(reopened, query) == fingerprint(live, query)

    def test_parity_survives_mutation_sequences(self, tmp_path):
        query = example_query()
        live = build_cluster(build_example_partitioning())
        path = tmp_path / "paper.store"
        ClusterStore.create(path, build_example_partitioning()).close()
        store = ClusterStore.open(path)
        mirrored = store.load_cluster()
        for delta in _mutations():
            live.apply(**delta)
            mirrored.apply(**delta)
            assert fingerprint(mirrored, query) == fingerprint(live, query)
        store.close()
        # A cold process reopening the file replays the journal to the same
        # observable state.
        with ClusterStore.open(path) as cold_store:
            cold = cold_store.load_cluster()
            assert fingerprint(cold, query) == fingerprint(live, query)
            cold.partitioned_graph.validate()

    @pytest.mark.parametrize("executor", ["threads", "processes"])
    def test_all_backends_agree_after_mutations(self, tmp_path, executor):
        query = example_query()
        path = tmp_path / "paper.store"
        ClusterStore.create(path, build_example_partitioning()).close()
        with ClusterStore.open(path) as store:
            cluster = store.load_cluster()
            for delta in _mutations():
                cluster.apply(**delta)
            reference = fingerprint(cluster, query)
            for workers in WORKER_COUNTS:
                config = EngineConfig.full().with_executor(executor, workers)
                assert fingerprint(cluster, query, config) == reference


class TestLubmWorkloadParity:
    @pytest.fixture(scope="class")
    def lubm_partitioned(self):
        return HashPartitioner(4).partition(get_dataset("LUBM").generate(scale=1))

    @pytest.mark.parametrize("query_name", ["LQ1", "LQ2", "LQ7"])
    def test_reopen_parity_on_benchmark_queries(
        self, tmp_path, lubm_partitioned, query_name
    ):
        query = get_dataset("LUBM").queries()[query_name]
        live = build_cluster(lubm_partitioned)
        path = tmp_path / "lubm.store"
        ClusterStore.create(path, lubm_partitioned, dataset="LUBM", scale=1).close()
        with ClusterStore.open(path) as store:
            reopened = store.load_cluster()
            assert fingerprint(reopened, query) == fingerprint(live, query)

    def test_mutated_lubm_cluster_reopens_identically(self, tmp_path, lubm_partitioned):
        query = get_dataset("LUBM").queries()["LQ2"]
        path = tmp_path / "lubm.store"
        ClusterStore.create(path, lubm_partitioned, dataset="LUBM", scale=1).close()
        store = ClusterStore.open(path)
        cluster = store.load_cluster()
        victim = sorted(cluster.graph, key=lambda t: t.n3())[3]
        cluster.apply(
            add=[Triple(IRI(EX + "lubm-s"), IRI(EX + "lubm-p"), IRI(EX + "lubm-o"))],
            remove=[victim],
        )
        reference = fingerprint(cluster, query)
        store.close()
        with ClusterStore.open(path) as cold_store:
            cold = cold_store.load_cluster()
            assert fingerprint(cold, query) == reference


class TestAppendsNeverRebuild:
    def test_applying_adds_does_not_rebuild_encodings(self):
        cluster = build_cluster(build_example_partitioning())
        query = example_query()
        # The first apply force-builds any encoding the query alone did not
        # touch (the master graph); after that, appends must be pure patches.
        cluster.apply(add=[Triple(IRI(EX + "w"), IRI(EX + "p"), IRI(EX + "x"))])
        fingerprint(cluster, query)
        before = encoded_rebuilds()
        cluster.apply(add=[Triple(IRI(EX + "r"), IRI(EX + "p"), IRI(EX + "s"))])
        fingerprint(cluster, query)
        assert encoded_rebuilds() == before

    def test_store_replay_does_not_rebuild_encodings(self, tmp_path):
        path = tmp_path / "paper.store"
        ClusterStore.create(path, build_example_partitioning()).close()
        with ClusterStore.open(path) as store:
            cluster = store.load_cluster()
            fingerprint(cluster, example_query())
            cluster.apply(add=[Triple(IRI(EX + "w"), IRI(EX + "p"), IRI(EX + "x"))])
            before = encoded_rebuilds()
            for delta in _mutations():
                if "remove" in delta:
                    continue  # removal windows legitimately rebuild signatures
                cluster.apply(**delta)
            assert encoded_rebuilds() == before
