"""Property-based determinism contract for :mod:`repro.persist`.

For random graphs, random partitionings and random mutation sequences, a
cluster saved to disk, mutated through the journal and reopened cold must be
observationally bit-identical to the never-persisted cluster: same answers,
same ``search_steps``, same shipment fingerprints — and the parity must hold
across executor backends and worker counts.
"""

import random
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import stage_shipment_snapshot as snapshot
from repro.core import EngineConfig, GStoreDEngine
from repro.datasets import random_assignment, random_connected_query, random_graph
from repro.distributed import build_cluster
from repro.partition import build_partitioned_graph
from repro.persist import ClusterStore
from repro.rdf import IRI, Triple

EX = "http://example.org/prop/"

SERIAL = EngineConfig.full().with_options(executor="serial")

seeds = st.integers(min_value=0, max_value=5_000)
fragment_counts = st.integers(min_value=1, max_value=4)
batch_counts = st.integers(min_value=1, max_value=3)


def build_environment(seed, num_fragments):
    graph = random_graph(seed, num_vertices=16, num_edges=32, num_predicates=3)
    query = random_connected_query(graph, seed + 101, num_edges=2, constant_probability=0.25)
    assignment = random_assignment(graph, seed + 7, num_fragments)
    partitioned = build_partitioned_graph(graph, assignment, num_fragments=num_fragments)
    return partitioned, query


def random_batches(rng, cluster, count):
    """Random add/remove batches drawn against the cluster's current state."""
    batches = []
    for tag in range(count):
        add = [
            Triple(
                IRI(EX + f"s-{tag}-{i}"),
                IRI(EX + f"p-{rng.randrange(3)}"),
                IRI(EX + f"o-{rng.randrange(6)}"),
            )
            for i in range(rng.randrange(1, 4))
        ]
        remove = []
        if rng.random() < 0.5:
            pool = sorted(cluster.graph, key=lambda t: t.n3())
            remove = [pool[rng.randrange(len(pool))]]
        batches.append({"add": add, "remove": remove})
    return batches


def fingerprint(cluster, query, config=SERIAL):
    cluster.reset_network()
    engine = GStoreDEngine(cluster, config)
    try:
        result = engine.execute(query)
    finally:
        engine.close()
    rows = sorted(map(sorted, (row.items() for row in result.results.to_table())))
    return rows, dict(result.statistics.work), snapshot(result)


class TestSaveReopenParity:
    @given(seeds, fragment_counts)
    @settings(max_examples=10, deadline=None)
    def test_reopened_equals_live(self, seed, num_fragments):
        partitioned, query = build_environment(seed, num_fragments)
        live = build_cluster(partitioned)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "random.store"
            ClusterStore.create(path, partitioned).close()
            with ClusterStore.open(path) as store:
                reopened = store.load_cluster()
                assert fingerprint(reopened, query) == fingerprint(live, query)

    @given(seeds, fragment_counts, batch_counts)
    @settings(max_examples=10, deadline=None)
    def test_mutated_store_replays_identically(self, seed, num_fragments, batches):
        partitioned, query = build_environment(seed, num_fragments)
        live = build_cluster(partitioned)
        rng = random.Random(seed + 13)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "random.store"
            ClusterStore.create(path, partitioned).close()
            store = ClusterStore.open(path)
            mirrored = store.load_cluster()
            for batch in random_batches(rng, live, batches):
                live.apply(**batch)
                mirrored.apply(**batch)
                assert fingerprint(mirrored, query) == fingerprint(live, query)
            store.close()
            with ClusterStore.open(path) as cold_store:
                cold = cold_store.load_cluster()
                assert fingerprint(cold, query) == fingerprint(live, query)
                cold.partitioned_graph.validate()

    @given(seeds, fragment_counts, batch_counts)
    @settings(max_examples=6, deadline=None)
    def test_thread_backends_agree_after_reopen(self, seed, num_fragments, batches):
        partitioned, query = build_environment(seed, num_fragments)
        rng = random.Random(seed + 29)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "random.store"
            ClusterStore.create(path, partitioned).close()
            store = ClusterStore.open(path)
            cluster = store.load_cluster()
            for batch in random_batches(rng, cluster, batches):
                cluster.apply(**batch)
            store.close()
            with ClusterStore.open(path) as cold_store:
                cold = cold_store.load_cluster()
                reference = fingerprint(cold, query)
                for workers in (1, 2, 8):
                    config = EngineConfig.full().with_executor("threads", workers)
                    assert fingerprint(cold, query, config) == reference

    @given(seeds)
    @settings(max_examples=3, deadline=None)
    def test_process_backend_agrees_after_reopen(self, seed):
        partitioned, query = build_environment(seed, 3)
        rng = random.Random(seed + 43)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "random.store"
            ClusterStore.create(path, partitioned).close()
            with ClusterStore.open(path) as store:
                cluster = store.load_cluster()
                for batch in random_batches(rng, cluster, 2):
                    cluster.apply(**batch)
                reference = fingerprint(cluster, query)
                config = EngineConfig.full().with_executor("processes", 2)
                assert fingerprint(cluster, query, config) == reference
