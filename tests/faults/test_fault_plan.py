"""Unit tests for :mod:`repro.faults`: grammar, firing rules, retry policy.

The chaos suite (``test_chaos.py``) proves recovery end to end; this module
pins the pieces it is built from — the textual plan grammar, the pure firing
rules consulted inside ``execute_site_task``, the literal stage/task mapping
the fault layer keeps to stay import-cycle free, and the deterministic
backoff schedule.
"""

import time

import pytest

from repro.core import engine as engine_module
from repro.core.site_tasks import PIPELINE_STAGE_TASKS
from repro.exec.tasks import SiteTask
from repro.faults import (
    DEFAULT_RETRY_POLICY,
    FLAKY,
    INJECTABLE_STAGES,
    KILL,
    SLOW,
    STAGE_ASSEMBLY,
    STAGE_CANDIDATES,
    STAGE_PARTIAL_EVAL,
    TASKS_BY_STAGE,
    FaultEntry,
    FaultPlan,
    RetryPolicy,
    ShipmentFaultInjector,
    SiteDownError,
    TransientTaskError,
)


# ----------------------------------------------------------------------
# The literal copies the fault layer keeps (import-cycle avoidance)
# ----------------------------------------------------------------------
def test_tasks_by_stage_matches_the_engine_pipeline():
    """``repro.faults`` keeps a literal copy of the stage→task mapping; this
    pin is what lets it avoid importing ``repro.core``."""
    assert TASKS_BY_STAGE == PIPELINE_STAGE_TASKS


def test_stage_constants_match_the_engine():
    assert STAGE_CANDIDATES == engine_module.STAGE_CANDIDATES
    assert STAGE_PARTIAL_EVAL == engine_module.STAGE_PARTIAL_EVAL
    assert STAGE_ASSEMBLY == engine_module.STAGE_ASSEMBLY
    assert "lec_pruning" in INJECTABLE_STAGES
    assert engine_module.STAGE_PRUNING in INJECTABLE_STAGES


# ----------------------------------------------------------------------
# Grammar
# ----------------------------------------------------------------------
def test_parse_round_trips_through_describe():
    text = (
        "kill:1@partial_evaluation;flaky:0@candidate_exchange:2;"
        "slow:2@lec_pruning:0.005;kill:0@assembly:unrecoverable"
    )
    plan = FaultPlan.parse(text)
    assert FaultPlan.parse(plan.describe()) == plan
    kinds = [entry.kind for entry in plan.entries]
    assert kinds == [KILL, FLAKY, SLOW, KILL]
    assert plan.entries[1].failures == 2
    assert plan.entries[2].delay_s == pytest.approx(0.005)
    assert plan.entries[3].unrecoverable


def test_parse_accepts_comma_separators_and_whitespace():
    plan = FaultPlan.parse(" kill:1@assembly , flaky:0@lec_filter ")
    assert len(plan.entries) == 2
    assert plan.entries[1].failures == 1


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "explode:1@assembly",
        "kill:one@assembly",
        "kill:1@no_such_stage",
        "kill:1@assembly:loudly",
        "flaky:1@assembly",  # assembly has no per-site compute task
        "slow:1@assembly:0.1",
        "flaky:1@partial_evaluation:zero",
        "slow:1@partial_evaluation",  # slow needs a delay
        "kill:1",  # no stage
        "kill:1@partial_evaluation:a:b",
    ],
)
def test_parse_rejects_malformed_plans(bad):
    with pytest.raises(ValueError):
        FaultPlan.parse(bad)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(kind="explode", site_id=0, stage=STAGE_PARTIAL_EVAL),
        dict(kind=KILL, site_id=-1, stage=STAGE_PARTIAL_EVAL),
        dict(kind=FLAKY, site_id=0, stage=STAGE_PARTIAL_EVAL, failures=0),
        dict(kind=SLOW, site_id=0, stage=STAGE_PARTIAL_EVAL, delay_s=0.0),
        dict(kind=FLAKY, site_id=0, stage=STAGE_ASSEMBLY),
    ],
)
def test_entry_validation(kwargs):
    with pytest.raises(ValueError):
        FaultEntry(**kwargs)


def test_random_plans_are_seeded_and_survivable():
    sites = [0, 1, 2, 3]
    plan = FaultPlan.random(7, sites)
    assert plan == FaultPlan.random(7, sites)
    seen = {FaultPlan.random(seed, sites).describe() for seed in range(20)}
    assert len(seen) > 1  # the seed actually varies the schedule
    for seed in range(20):
        for entry in FaultPlan.random(seed, sites).entries:
            assert entry.site_id in sites
            if entry.kind == KILL:
                assert not entry.unrecoverable
            if entry.kind == FLAKY:
                # within the default budget: every flaky task still succeeds
                assert entry.failures < DEFAULT_RETRY_POLICY.max_attempts


def test_random_plan_requires_site_ids():
    with pytest.raises(ValueError):
        FaultPlan.random(1, [])


# ----------------------------------------------------------------------
# Firing rules (pure functions of the task descriptor)
# ----------------------------------------------------------------------
def _task(name, site_id, attempt=1, recovery=False):
    return SiteTask(site_id, name, attempt=attempt, recovery=recovery)


def test_kill_fires_on_every_task_of_its_stage():
    plan = FaultPlan.parse("kill:1@partial_evaluation")
    for task_name in TASKS_BY_STAGE[STAGE_PARTIAL_EVAL]:
        with pytest.raises(SiteDownError) as info:
            plan.before_task(_task(task_name, 1))
        assert info.value.recoverable
    # other sites and other stages pass untouched
    plan.before_task(_task("engine.partial_eval", 0))
    plan.before_task(_task("engine.candidate_vectors", 1))


def test_recovery_reruns_skip_recoverable_faults_but_not_unrecoverable_kills():
    recoverable = FaultPlan.parse("kill:1@partial_evaluation;flaky:1@partial_evaluation:9")
    recoverable.before_task(_task("engine.partial_eval", 1, recovery=True))
    permanent = FaultPlan.parse("kill:1@partial_evaluation:unrecoverable")
    with pytest.raises(SiteDownError) as info:
        permanent.before_task(_task("engine.partial_eval", 1, recovery=True))
    assert not info.value.recoverable


def test_flaky_fires_until_its_failure_budget_is_spent():
    plan = FaultPlan.parse("flaky:0@candidate_exchange:2")
    for attempt in (1, 2):
        with pytest.raises(TransientTaskError):
            plan.before_task(_task("engine.candidate_vectors", 0, attempt=attempt))
    plan.before_task(_task("engine.candidate_vectors", 0, attempt=3))  # succeeds


def test_slow_sleeps_on_the_first_attempt_only():
    plan = FaultPlan.parse("slow:0@partial_evaluation:0.05")
    started = time.perf_counter()
    plan.before_task(_task("engine.local_eval", 0, attempt=1))
    assert time.perf_counter() - started >= 0.05
    started = time.perf_counter()
    plan.before_task(_task("engine.local_eval", 0, attempt=2))
    assert time.perf_counter() - started < 0.05


def test_kills_shipment_flags_assembly_entries_only():
    assert FaultPlan.parse("kill:1@assembly").kills_shipment()
    assert not FaultPlan.parse("kill:1@partial_evaluation").kills_shipment()


# ----------------------------------------------------------------------
# Shipment injector (assembly-stage kills)
# ----------------------------------------------------------------------
def test_shipment_injector_recoverable_kill_fires_once():
    injector = ShipmentFaultInjector(FaultPlan.parse("kill:2@assembly"))
    injector(0, -1, "assembly_results", "assembly")  # other site: clean
    injector(2, -1, "candidate_vectors", "candidate_exchange")  # other stage
    with pytest.raises(SiteDownError) as info:
        injector(2, -1, "assembly_results", "assembly")
    assert info.value.recoverable
    injector(2, -1, "assembly_results", "assembly")  # the re-send goes through


def test_shipment_injector_unrecoverable_kill_fires_every_time():
    injector = ShipmentFaultInjector(FaultPlan.parse("kill:2@assembly:unrecoverable"))
    for _ in range(3):
        with pytest.raises(SiteDownError) as info:
            injector(2, -1, "assembly_results", "assembly")
        assert not info.value.recoverable


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
def test_backoff_doubles_and_caps():
    policy = RetryPolicy(max_attempts=5, base_backoff_s=0.01, max_backoff_s=0.03)
    assert policy.backoff_for(1) == pytest.approx(0.01)
    assert policy.backoff_for(2) == pytest.approx(0.02)
    assert policy.backoff_for(3) == pytest.approx(0.03)  # capped
    assert policy.backoff_for(4) == pytest.approx(0.03)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(max_attempts=0),
        dict(base_backoff_s=-0.001),
        dict(max_backoff_s=-1.0),
    ],
)
def test_retry_policy_validation(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)
