"""The deterministic chaos suite: kill any site at any stage, get clean answers.

The contract under test (``docs/faults.md``): with a recoverable
:class:`~repro.faults.FaultPlan`, the engine's answers, per-stage shipment
fingerprint, and retry counters are **bit-identical** to the fault-free run —
under every executor backend and at every worker count.  Unrecoverable
losses instead degrade: the result names the lost site and returns exactly
what the surviving fragments can answer.

Everything runs over the paper's Fig. 1 example (3 sites, 4 solutions) on a
module-local cluster — recovery rebuilds sites in place, so the suite never
shares the session-scoped fixture clusters with other tests.
"""

import pytest

from repro.bench import stage_shipment_snapshot as snapshot
from repro.core import EngineConfig, GStoreDEngine
from repro.datasets.paper_example import build_example_partitioning, example_query
from repro.distributed import build_cluster
from repro.exec import make_backend
from repro.faults import INJECTABLE_STAGES, FaultPlan, RetryPolicy

#: Every site of the Fig. 1 partitioning × every injectable pipeline stage.
SITES = (0, 1, 2)
BACKENDS = ("serial", "threads", "processes")

#: No sleeping in the kill matrix: recovery re-runs never retry in place, so
#: a zero-backoff policy keeps the suite fast without changing coverage.
FAST_RETRY = RetryPolicy(max_attempts=3, base_backoff_s=0.0, max_backoff_s=0.0)


@pytest.fixture(scope="module")
def chaos_cluster():
    return build_cluster(build_example_partitioning())


@pytest.fixture(scope="module")
def backends():
    """One warm backend per executor, shared by every run in this module."""
    pool = {
        "serial": make_backend("serial", None),
        "threads": make_backend("threads", 2),
        "processes": make_backend("processes", 2),
    }
    yield pool
    for backend in pool.values():
        backend.close()


def run(cluster, backend, faults=None):
    cluster.reset_network()
    engine = GStoreDEngine(cluster, EngineConfig.full(), backend=backend, faults=faults)
    try:
        return engine.execute(example_query())
    finally:
        engine.close()


def rows_of(result):
    return sorted(map(sorted, (row.items() for row in result.results.to_table())))


@pytest.fixture(scope="module")
def clean(chaos_cluster, backends):
    """The fault-free reference: rows + shipment fingerprint per backend."""
    reference = {name: run(chaos_cluster, backend) for name, backend in backends.items()}
    first = next(iter(reference.values()))
    for result in reference.values():
        assert rows_of(result) == rows_of(first)
        assert snapshot(result) == snapshot(first)
    return {"rows": rows_of(first), "snapshot": snapshot(first)}


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("stage", INJECTABLE_STAGES)
@pytest.mark.parametrize("site", SITES)
def test_killing_any_site_at_any_stage_recovers_bit_for_bit(
    chaos_cluster, backends, clean, site, stage, backend_name
):
    plan = FaultPlan.parse(f"kill:{site}@{stage}", retry=FAST_RETRY)
    result = run(chaos_cluster, backends[backend_name], faults=plan)
    assert rows_of(result) == clean["rows"]
    assert snapshot(result) == clean["snapshot"]
    work = result.statistics.work
    assert work["site_failures"] == 1
    assert work["site_recoveries"] == 1
    assert not result.statistics.extra.get("degraded")


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("site", SITES)
def test_unrecoverable_loss_degrades_and_names_the_site(
    chaos_cluster, backends, clean, site, backend_name
):
    plan = FaultPlan.parse(f"kill:{site}@partial_evaluation:unrecoverable", retry=FAST_RETRY)
    result = run(chaos_cluster, backends[backend_name], faults=plan)
    extra = result.statistics.extra
    assert extra["degraded"] is True
    assert extra["missing_sites"] == [site]
    assert "partial results" in extra["warning"]
    assert result.statistics.work["site_recoveries"] == 0
    # Never a wrong answer: what survives is a subset of the clean rows.
    survivors = rows_of(result)
    assert all(row in clean["rows"] for row in survivors)
    assert len(survivors) < len(clean["rows"])


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_flaky_tasks_retry_in_place_without_changing_answers(
    chaos_cluster, backends, clean, backend_name
):
    plan = FaultPlan.parse(
        "flaky:0@candidate_exchange:2;flaky:2@partial_evaluation", retry=FAST_RETRY
    )
    result = run(chaos_cluster, backends[backend_name], faults=plan)
    assert rows_of(result) == clean["rows"]
    assert snapshot(result) == clean["snapshot"]
    work = result.statistics.work
    assert work["task_retries"] == 3  # 2 + 1, deterministic
    assert work["site_failures"] == 0


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_combined_plan_is_deterministic_across_backends(
    chaos_cluster, backends, clean, backend_name
):
    plan = FaultPlan.parse(
        "kill:1@partial_evaluation;flaky:0@candidate_exchange:2;kill:2@assembly",
        retry=FAST_RETRY,
    )
    result = run(chaos_cluster, backends[backend_name], faults=plan)
    assert rows_of(result) == clean["rows"]
    assert snapshot(result) == clean["snapshot"]
    work = result.statistics.work
    assert work["task_retries"] == 2
    assert work["site_failures"] == 2
    assert work["site_recoveries"] == 2


def test_worker_count_does_not_change_recovered_answers(chaos_cluster, clean):
    plan = FaultPlan.parse(
        "kill:1@partial_evaluation;flaky:0@candidate_exchange:2", retry=FAST_RETRY
    )
    for workers in (1, 2, 8):
        backend = make_backend("threads", workers)
        try:
            result = run(chaos_cluster, backend, faults=plan)
        finally:
            backend.close()
        assert rows_of(result) == clean["rows"]
        assert snapshot(result) == clean["snapshot"]
        assert result.statistics.work["task_retries"] == 2


def test_clean_runs_carry_no_fault_state(chaos_cluster, backends):
    """Without a plan the statistics stay byte-identical to the pre-fault era."""
    result = run(chaos_cluster, backends["serial"])
    assert "task_retries" not in result.statistics.work
    assert "degraded" not in result.statistics.extra


def test_slow_site_latency_shows_in_the_stage_timer(chaos_cluster, backends):
    plan = FaultPlan.parse("slow:0@partial_evaluation:0.2", retry=FAST_RETRY)
    result = run(chaos_cluster, backends["serial"], faults=plan)
    stage = next(s for s in result.statistics.stages if s.name == "partial_evaluation")
    assert max(stage.site_times_s.values()) >= 0.2


def test_retried_tasks_time_only_the_successful_attempt(chaos_cluster, backends, clean):
    """The PR's timing fix: a flaky first attempt (with injected straggler
    latency) must not leak its failed attempt's wall clock into the stage
    timer — ``slow`` only fires on attempt 1, which is exactly the attempt
    ``flaky`` makes fail, so the successful attempt is fast."""
    plan = FaultPlan.parse(
        "flaky:0@partial_evaluation:1;slow:0@partial_evaluation:0.2", retry=FAST_RETRY
    )
    result = run(chaos_cluster, backends["serial"], faults=plan)
    assert rows_of(result) == clean["rows"]
    assert result.statistics.work["task_retries"] >= 1
    stage = next(s for s in result.statistics.stages if s.name == "partial_evaluation")
    assert max(stage.site_times_s.values()) < 0.2
