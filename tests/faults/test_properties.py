"""Property-based chaos: random recoverable fault plans never change answers.

Hypothesis drives :class:`~repro.faults.FaultPlan` construction directly
(random kills, flaky bursts within the retry budget, small straggler
delays) and asserts the determinism contract as a *property*: recovered
answers and shipment fingerprints equal the fault-free run, and the three
executor backends agree with each other — for every generated plan.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import stage_shipment_snapshot as snapshot
from repro.core import EngineConfig, GStoreDEngine
from repro.datasets.paper_example import build_example_partitioning, example_query
from repro.distributed import build_cluster
from repro.exec import make_backend
from repro.faults import (
    FLAKY,
    INJECTABLE_STAGES,
    KILL,
    SLOW,
    TASK_STAGES,
    FaultEntry,
    FaultPlan,
    RetryPolicy,
)

SITES = (0, 1, 2)

#: Zero backoff — retries are instant, so generated plans cost microseconds.
FAST_RETRY = RetryPolicy(max_attempts=3, base_backoff_s=0.0, max_backoff_s=0.0)

#: Recoverable-only entries: kills heal, flaky bursts stay within the retry
#: budget, and slow delays are tiny (they must not dominate the suite).
kill_entries = st.builds(
    FaultEntry,
    kind=st.just(KILL),
    site_id=st.sampled_from(SITES),
    stage=st.sampled_from(INJECTABLE_STAGES),
)
flaky_entries = st.builds(
    FaultEntry,
    kind=st.just(FLAKY),
    site_id=st.sampled_from(SITES),
    stage=st.sampled_from(TASK_STAGES),
    failures=st.integers(min_value=1, max_value=FAST_RETRY.max_attempts - 1),
)
slow_entries = st.builds(
    FaultEntry,
    kind=st.just(SLOW),
    site_id=st.sampled_from(SITES),
    stage=st.sampled_from(TASK_STAGES),
    delay_s=st.sampled_from((0.0005, 0.001)),
)
plans = st.lists(
    st.one_of(kill_entries, flaky_entries, slow_entries), min_size=1, max_size=4
).map(lambda entries: FaultPlan(tuple(entries), retry=FAST_RETRY))


@pytest.fixture(scope="module")
def chaos_cluster():
    return build_cluster(build_example_partitioning())


@pytest.fixture(scope="module")
def backends():
    pool = {
        "serial": make_backend("serial", None),
        "threads": make_backend("threads", 2),
        "processes": make_backend("processes", 2),
    }
    yield pool
    for backend in pool.values():
        backend.close()


def run(cluster, backend, faults=None):
    cluster.reset_network()
    engine = GStoreDEngine(cluster, EngineConfig.full(), backend=backend, faults=faults)
    try:
        return engine.execute(example_query())
    finally:
        engine.close()


def rows_of(result):
    return sorted(map(sorted, (row.items() for row in result.results.to_table())))


@pytest.fixture(scope="module")
def clean(chaos_cluster, backends):
    result = run(chaos_cluster, backends["serial"])
    return {"rows": rows_of(result), "snapshot": snapshot(result)}


@settings(max_examples=15, deadline=None)
@given(plan=plans)
def test_recoverable_plans_preserve_answers_and_fingerprints(
    chaos_cluster, backends, clean, plan
):
    for backend in backends.values():
        result = run(chaos_cluster, backend, faults=plan)
        assert rows_of(result) == clean["rows"]
        assert snapshot(result) == clean["snapshot"]
        assert not result.statistics.extra.get("degraded")


@settings(max_examples=15, deadline=None)
@given(plan=plans)
def test_backends_agree_on_retry_and_failure_counters(chaos_cluster, backends, plan):
    counters = []
    for backend in backends.values():
        work = run(chaos_cluster, backend, faults=plan).statistics.work
        counters.append(
            (work["task_retries"], work["site_failures"], work["site_recoveries"])
        )
    assert counters[0] == counters[1] == counters[2]


@settings(max_examples=25, deadline=None)
@given(plan=plans)
def test_plans_round_trip_through_their_textual_form(plan):
    assert FaultPlan.parse(plan.describe(), retry=FAST_RETRY) == plan


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_random_seeded_plans_are_survivable(chaos_cluster, backends, clean, seed):
    plan = FaultPlan.random(seed, list(SITES), retry=FAST_RETRY)
    result = run(chaos_cluster, backends["serial"], faults=plan)
    assert rows_of(result) == clean["rows"]
    assert snapshot(result) == clean["snapshot"]
    assert not result.statistics.extra.get("degraded")
