"""Unit tests for the metrics registry and the query-to-metrics translation."""

import threading

import pytest

from repro.distributed.network import ShipmentSnapshot
from repro.distributed.stats import QueryStatistics, StageStats
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, record_query


class TestPrimitives:
    def test_counter_accumulates_and_rejects_negative_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_sets_and_adjusts_in_both_directions(self):
        gauge = Gauge()
        gauge.set(4)
        gauge.inc(-1.5)
        assert gauge.value == 2.5

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 2.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(3.05)
        assert histogram.cumulative_counts() == [(0.1, 1), (1.0, 3), (float("inf"), 4)]

    def test_histogram_boundary_observation_lands_in_its_bucket(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        histogram.observe(0.1)  # le="0.1" includes 0.1 itself
        assert histogram.cumulative_counts()[0] == (0.1, 1)

    def test_concurrent_counter_increments_lose_nothing(self):
        counter = Counter()
        threads = [
            threading.Thread(target=lambda: [counter.inc() for _ in range(1000)])
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestRegistry:
    def test_same_name_and_labels_return_the_same_series(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_messages_total", stage="assembly")
        b = registry.counter("repro_messages_total", stage="assembly")
        other = registry.counter("repro_messages_total", stage="planning")
        assert a is b
        assert a is not other

    def test_reusing_a_family_name_with_another_type_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("repro_queries_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("repro_queries_total")

    def test_snapshot_renders_label_strings_and_histogram_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c", "help me", stage="assembly").inc(3)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["c"]["type"] == "counter"
        assert snapshot["c"]["help"] == "help me"
        assert snapshot["c"]["series"] == {"stage=assembly": 3}
        series = snapshot["h"]["series"][""]
        assert series["count"] == 1
        assert series["sum"] == 0.5
        assert series["buckets"] == [[1.0, 1], [float("inf"), 1]]

    def test_prometheus_text_has_help_type_and_bucket_lines(self):
        registry = MetricsRegistry()
        registry.counter("repro_queries_total", "Queries.", engine="gstored").inc()
        registry.histogram("repro_stage_seconds", "Seconds.", stage="assembly").observe(0.02)
        text = registry.prometheus_text()
        assert "# HELP repro_queries_total Queries." in text
        assert "# TYPE repro_queries_total counter" in text
        assert 'repro_queries_total{engine="gstored"} 1' in text
        assert '# TYPE repro_stage_seconds histogram' in text
        assert 'repro_stage_seconds_bucket{stage="assembly",le="0.05"} 1' in text
        assert 'repro_stage_seconds_bucket{stage="assembly",le="+Inf"} 1' in text
        assert 'repro_stage_seconds_count{stage="assembly"} 1' in text
        assert text.endswith("\n")

    def test_reset_drops_every_family(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {}


def make_statistics():
    stats = QueryStatistics(query_name="LQ1", engine="gStoreD", dataset="LUBM")
    planning = StageStats(name="planning")
    planning.counters["plan_cache_hit"] = 1
    evaluation = StageStats(name="partial_evaluation", shipped_bytes=128, messages=4)
    evaluation.site_times_s.update({0: 0.01, 1: 0.02})
    stats.stages.extend([planning, evaluation])
    stats.work["search_steps"] = 42
    return stats


class TestRecordQuery:
    def test_record_query_feeds_the_documented_families(self):
        registry = MetricsRegistry()
        shipment = ShipmentSnapshot(
            total_bytes=128,
            total_messages=4,
            bytes_by_stage={"partial_evaluation": 128},
            messages_by_stage={"partial_evaluation": 4},
            bytes_by_kind={"local_matches": 128},
        )
        record_query(
            registry,
            make_statistics(),
            shipment=shipment,
            engine="gStoreD",
            backend="threads",
            pool_size=4,
            encoded_rebuilds=2,
        )
        snapshot = registry.snapshot()
        assert snapshot["repro_queries_total"]["series"] == {"engine=gStoreD": 1}
        assert snapshot["repro_plan_cache_hits_total"]["series"][""] == 1
        assert snapshot["repro_plan_cache_misses_total"]["series"][""] == 0
        assert snapshot["repro_search_steps_total"]["series"][""] == 42
        assert snapshot["repro_shipped_bytes_total"]["series"]["stage=partial_evaluation"] == 128
        assert snapshot["repro_messages_total"]["series"]["stage=partial_evaluation"] == 4
        assert snapshot["repro_site_tasks_total"]["series"]["stage=partial_evaluation"] == 2
        assert snapshot["repro_stage_seconds"]["series"]["stage=partial_evaluation"]["count"] == 1
        assert snapshot["repro_shipped_bytes_by_kind_total"]["series"]["kind=local_matches"] == 128
        assert snapshot["repro_executor_pool_size"]["series"]["backend=threads"] == 4
        assert snapshot["repro_encoded_graph_rebuilds"]["series"][""] == 2

    def test_plan_cache_and_search_step_families_exist_even_when_unplanned(self):
        """Star-shortcut queries never plan; scrapes must still see the families."""
        registry = MetricsRegistry()
        stats = QueryStatistics(query_name="LQ2", engine="gStoreD", dataset="LUBM")
        stats.stages.append(StageStats(name="partial_evaluation"))
        record_query(registry, stats, engine="gStoreD")
        snapshot = registry.snapshot()
        assert snapshot["repro_plan_cache_hits_total"]["series"][""] == 0
        assert snapshot["repro_plan_cache_misses_total"]["series"][""] == 0
        assert snapshot["repro_search_steps_total"]["series"][""] == 0

    def test_a_cache_miss_increments_the_miss_counter(self):
        registry = MetricsRegistry()
        stats = QueryStatistics(query_name="LQ1", engine="gStoreD", dataset="LUBM")
        planning = StageStats(name="planning")
        planning.counters["plan_cache_hit"] = 0
        stats.stages.append(planning)
        record_query(registry, stats, engine="gStoreD")
        snapshot = registry.snapshot()
        assert snapshot["repro_plan_cache_hits_total"]["series"][""] == 0
        assert snapshot["repro_plan_cache_misses_total"]["series"][""] == 1

    def test_accumulates_across_queries(self):
        registry = MetricsRegistry()
        record_query(registry, make_statistics(), engine="gStoreD")
        record_query(registry, make_statistics(), engine="gStoreD")
        snapshot = registry.snapshot()
        assert snapshot["repro_queries_total"]["series"] == {"engine=gStoreD": 2}
        assert snapshot["repro_search_steps_total"]["series"][""] == 84
        assert snapshot["repro_stage_seconds"]["series"]["stage=partial_evaluation"]["count"] == 2
