"""Chrome trace-event schema validation for real traced executions.

The CI ``obs-smoke`` job and ``repro query --trace`` both rely on
:func:`repro.obs.validate_chrome_trace`; this module pins (a) that the
validator accepts what every executor backend actually produces, and (b)
that it rejects documents Perfetto could not load.
"""

import json

import pytest

from repro.core import EngineConfig, GStoreDEngine
from repro.datasets import get_dataset
from repro.exec import ProcessPoolBackend
from repro.obs import CATEGORY_STAGE, CATEGORY_TASK, Trace, validate_chrome_trace

SERIAL = EngineConfig.full().with_options(executor="serial")


def traced_run(cluster, config, backend=None):
    query = get_dataset("LUBM").queries()["LQ1"]
    cluster.reset_network()
    trace = Trace("query", engine="gstored")
    engine = GStoreDEngine(cluster, config, backend=backend) if backend else GStoreDEngine(cluster, config)
    try:
        result = engine.execute(query, trace=trace)
    finally:
        engine.close()
    trace.finish(rows=len(result.results))
    return trace


class TestRealTracesValidate:
    def test_serial_backend_trace_round_trips_through_json(self, lubm_cluster, tmp_path):
        trace = traced_run(lubm_cluster, SERIAL)
        path = tmp_path / "trace.json"
        trace.save(str(path))
        payload = json.loads(path.read_text(encoding="utf-8"))
        events = validate_chrome_trace(payload)
        names = {event["name"] for event in events}
        assert "query" in names
        assert "plan" in names
        assert any(name.startswith("stage:") for name in names)
        assert any(name.startswith("site:") for name in names)
        # Site tasks render on their own named tracks.
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        track_names = {e["args"]["name"] for e in metadata}
        assert "coordinator" in track_names
        assert any(name.startswith("site ") for name in track_names)

    def test_threads_backend_trace_validates(self, lubm_cluster):
        trace = traced_run(lubm_cluster, EngineConfig.full().with_workers(2))
        events = validate_chrome_trace(trace.to_chrome())
        assert len([e for e in events if e["cat"] == CATEGORY_TASK]) >= lubm_cluster.num_sites

    def test_processes_backend_trace_validates(self, lubm_cluster):
        with ProcessPoolBackend(max_workers=2) as backend:
            trace = traced_run(
                lubm_cluster,
                EngineConfig.full().with_executor("processes", 2),
                backend=backend,
            )
        events = validate_chrome_trace(trace.to_chrome())
        task_events = [e for e in events if e["cat"] == CATEGORY_TASK]
        assert len(task_events) >= lubm_cluster.num_sites
        # Worker-process clocks were re-anchored: every ts is non-negative
        # and within the root span (validate_chrome_trace already checks >= 0).
        root = next(e for e in events if e["name"] == "query")
        for event in task_events:
            assert event["ts"] >= root["ts"]

    def test_stage_spans_carry_shipment_attrs(self, lubm_cluster):
        trace = traced_run(lubm_cluster, SERIAL)
        stage_spans = trace.find_spans(category=CATEGORY_STAGE)
        assert stage_spans
        for span in stage_spans:
            assert "shipped_bytes" in span.attrs
            assert "messages" in span.attrs


class TestValidatorRejections:
    def test_rejects_non_objects_and_missing_trace_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace([])
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})
        with pytest.raises(ValueError, match="non-empty"):
            validate_chrome_trace({"traceEvents": []})

    def test_rejects_unsupported_phases(self):
        with pytest.raises(ValueError, match="unsupported phase"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "B", "name": "x", "pid": 1, "tid": 0}]}
            )

    def test_rejects_missing_names_and_non_integer_ids(self):
        with pytest.raises(ValueError, match="'name'"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "", "pid": 1, "tid": 0}]}
            )
        with pytest.raises(ValueError, match="'pid'"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "x", "pid": "1", "tid": 0}]}
            )

    def test_rejects_negative_timestamps_and_missing_args(self):
        event = {"ph": "X", "name": "x", "cat": "stage", "pid": 1, "tid": 0, "ts": -1, "dur": 0, "args": {}}
        with pytest.raises(ValueError, match="'ts'"):
            validate_chrome_trace({"traceEvents": [event]})
        event = {"ph": "X", "name": "x", "cat": "stage", "pid": 1, "tid": 0, "ts": 0, "dur": 0}
        with pytest.raises(ValueError, match="'args'"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_rejects_metadata_only_documents(self):
        with pytest.raises(ValueError, match="no complete"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "M", "name": "thread_name", "pid": 1, "tid": 0}]}
            )
