"""Unit tests for the tracing core: spans, nesting, task-span reassembly."""

import os

import pytest

from repro.obs import (
    CATEGORY_PLANNING,
    CATEGORY_QUERY,
    CATEGORY_STAGE,
    CATEGORY_TASK,
    SpanContext,
    StageProfiler,
    TaskSpan,
    Trace,
    Tracer,
    stage_scope,
)
from repro.obs.trace import COORDINATOR_TRACK, SITE_TRACK_OFFSET


class TestSpanTree:
    def test_root_span_carries_the_trace_name_and_attrs(self):
        trace = Trace("query", engine="gstored")
        assert trace.root.name == "query"
        assert trace.root.category == CATEGORY_QUERY
        assert trace.root.attrs == {"engine": "gstored"}

    def test_spans_nest_under_the_innermost_open_span(self):
        trace = Trace("query")
        with trace.span("plan", CATEGORY_PLANNING) as plan:
            with trace.span("probe", CATEGORY_PLANNING) as probe:
                pass
        assert plan.parent_id == trace.root.span_id
        assert probe.parent_id == plan.span_id
        assert trace.children(plan) == [probe]

    def test_closing_a_span_records_a_duration(self):
        trace = Trace("query")
        with trace.span("stage:planning") as span:
            assert span.duration_s == 0.0
        assert span.duration_s >= 0.0
        assert span.start_s >= 0.0

    def test_event_is_a_zero_duration_marker_that_does_not_stay_open(self):
        trace = Trace("query")
        marker = trace.event("plan_cache", hit=True)
        assert marker.duration_s == 0.0
        assert marker.attrs == {"hit": True}
        # The next span is a sibling, not a child, of the marker.
        with trace.span("stage:assembly") as span:
            pass
        assert span.parent_id == trace.root.span_id

    def test_set_overwrites_and_extends_attrs(self):
        trace = Trace("query")
        with trace.span("stage:assembly", shipped_bytes=0) as span:
            span.set(shipped_bytes=12, messages=3)
        assert span.attrs == {"shipped_bytes": 12, "messages": 3}

    def test_find_spans_filters_by_category_and_name(self):
        trace = Trace("query")
        with trace.span("plan", CATEGORY_PLANNING):
            pass
        with trace.span("stage:assembly", CATEGORY_STAGE):
            pass
        assert [s.name for s in trace.find_spans(category=CATEGORY_PLANNING)] == ["plan"]
        assert [s.name for s in trace.find_spans(name="stage:assembly")] == ["stage:assembly"]
        assert len(trace.find_spans()) == 3  # root + the two above

    def test_finish_is_idempotent_and_closes_the_root(self):
        trace = Trace("query")
        trace.finish(rows=7)
        first_duration = trace.duration_s
        trace.finish(rows=7)
        assert trace.duration_s == first_duration
        assert trace.root.attrs["rows"] == 7

    def test_current_context_points_at_the_innermost_open_span(self):
        trace = Trace("query")
        assert trace.current_context() == SpanContext(trace.trace_id, trace.root.span_id)
        with trace.span("stage:partial_evaluation") as span:
            context = trace.current_context()
            assert context.span_id == span.span_id
            assert context.trace_id == trace.trace_id


class TestTaskSpanReassembly:
    def test_same_process_task_spans_keep_their_measured_offsets(self):
        trace = Trace("query")
        with trace.span("stage:partial_evaluation") as stage:
            context = trace.current_context()
        # A task measured on this process's own perf_counter clock.
        import time

        start = time.perf_counter()
        task = TaskSpan(
            site_id=2, stage="partial_evaluation", start_s=start, end_s=start + 0.5,
            pid=os.getpid(), context=context,
        )
        span = trace.add_task_span(task)
        assert span.parent_id == stage.span_id
        assert span.name == "site:2"
        assert span.category == CATEGORY_TASK
        assert span.track == SITE_TRACK_OFFSET + 2
        assert span.duration_s == pytest.approx(0.5)
        assert span.start_s >= 0.0

    def test_foreign_process_task_spans_are_reanchored_at_their_parent(self):
        trace = Trace("query")
        with trace.span("stage:partial_evaluation") as stage:
            context = trace.current_context()
        task = TaskSpan(
            site_id=0, stage="partial_evaluation", start_s=1234.0, end_s=1234.25,
            pid=-1, context=context,
        )
        span = trace.add_task_span(task)
        # Re-anchored: the foreign clock's absolute reading is discarded,
        # the measured duration is preserved.
        assert span.start_s == stage.start_s
        assert span.duration_s == pytest.approx(0.25)

    def test_unknown_context_falls_back_to_the_root(self):
        trace = Trace("query")
        task = TaskSpan(
            site_id=1, stage="assembly", start_s=0.0, end_s=0.1,
            pid=-1, context=SpanContext("trace-0", 9999),
        )
        span = trace.add_task_span(task)
        assert span.parent_id == trace.root.span_id

    def test_elapsed_s_is_end_minus_start(self):
        task = TaskSpan(0, "s", 1.0, 1.75, pid=-1, context=SpanContext("t", 1))
        assert task.elapsed_s == pytest.approx(0.75)


class TestSummaryAndTracer:
    def test_summary_renders_an_indented_tree_with_attrs(self):
        trace = Trace("query")
        with trace.span("stage:assembly", shipped_bytes=42):
            pass
        trace.finish()
        summary = trace.summary()
        lines = summary.splitlines()
        assert lines[0].startswith("query (")
        assert any(line.startswith("  stage:assembly") for line in lines)
        assert "[shipped_bytes=42]" in summary

    def test_tracer_retains_traces_in_start_order(self):
        tracer = Tracer()
        assert tracer.last is None
        first = tracer.start_trace("query")
        second = tracer.start_trace("query")
        assert tracer.traces == [first, second]
        assert tracer.last is second
        assert len(tracer) == 2
        tracer.clear()
        assert len(tracer) == 0

    def test_trace_ids_are_unique(self):
        assert Trace("a").trace_id != Trace("a").trace_id


class TestStageScope:
    def test_with_everything_off_it_yields_none(self):
        with stage_scope(None, None, "assembly") as span:
            assert span is None

    def test_with_tracing_on_it_yields_the_open_stage_span(self):
        trace = Trace("query")
        with stage_scope(trace, None, "assembly", messages=0) as span:
            span.set(messages=5)
        assert span.name == "stage:assembly"
        assert span.category == CATEGORY_STAGE
        assert span.attrs["messages"] == 5

    def test_with_profiling_on_it_captures_the_stage(self):
        profiler = StageProfiler()
        with stage_scope(None, profiler, "assembly") as span:
            assert span is None
            sum(range(100))
        assert profiler.stages == ["assembly"]
        assert "function calls" in profiler.report("assembly")


class TestStageProfiler:
    def test_disabled_profiler_captures_nothing(self):
        profiler = StageProfiler(enabled=False)
        with profiler.capture("planning"):
            pass
        assert profiler.stages == []
        assert "no profile captured" in profiler.report("planning")
        assert profiler.reports() == "(no profiles captured)"

    def test_from_env_explicit_flag_wins(self):
        assert StageProfiler.from_env(False) is None
        assert StageProfiler.from_env(True).enabled

    def test_from_env_reads_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert StageProfiler.from_env() is None
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert StageProfiler.from_env().enabled

    def test_profiles_accumulate_per_stage_across_captures(self):
        profiler = StageProfiler()
        for _ in range(2):
            with profiler.capture("assembly"):
                sorted(range(50))
        assert profiler.stages == ["assembly"]
        assert "=== stage: assembly ===" in profiler.reports()
