"""Session-level observability: ``repro.open(..., trace=True)``, metrics,
profiling, and the detached-statistics lifetime guarantee."""

import pytest

import repro
from repro.distributed import ShipmentSnapshot
from repro.obs import CATEGORY_STAGE, CATEGORY_TASK, validate_chrome_trace

QUERY = (
    "PREFIX ex: <http://example.org/> "
    "SELECT ?p2 ?l WHERE { ?t ex:label ?l . ?p1 ex:influencedBy ?p2 . "
    '?p2 ex:mainInterest ?t . ?p1 ex:name "Crispin Wright"@en . }'
)

#: Metric families record_query always feeds for a gStoreD query.
EXPECTED_FAMILIES = (
    "repro_queries_total",
    "repro_plan_cache_hits_total",
    "repro_plan_cache_misses_total",
    "repro_search_steps_total",
    "repro_shipped_bytes_total",
    "repro_messages_total",
    "repro_site_tasks_total",
    "repro_stage_seconds",
    "repro_executor_pool_size",
    "repro_encoded_graph_rebuilds",
    "repro_encoded_graph_patches",
)


class TestTracedSessions:
    def test_results_carry_a_validating_trace(self):
        with repro.open(dataset="paper", trace=True) as session:
            result = session.query(QUERY)
            assert result.trace is not None
            assert result.trace.root.attrs["rows"] == len(result)
            validate_chrome_trace(result.trace.to_chrome())
            names = {span.name for span in result.trace.spans}
            assert "parse" in names
            assert "plan" in names
            assert any(name.startswith("stage:") for name in names)
            assert session.tracer.last is result.trace

    def test_untraced_sessions_attach_no_trace(self):
        with repro.open(dataset="paper") as session:
            result = session.query(QUERY)
            assert result.trace is None
            assert session.tracer is None

    def test_each_query_gets_its_own_trace(self):
        with repro.open(dataset="paper", trace=True) as session:
            first = session.query(QUERY)
            second = session.query("example")
            assert first.trace is not second.trace
            assert len(session.tracer) == 2

    def test_baseline_engines_yield_synthesized_spans(self):
        with repro.open(dataset="paper", trace=True) as session:
            result = session.query(QUERY, engine="dream")
            stage_spans = result.trace.find_spans(category=CATEGORY_STAGE)
            assert stage_spans
            assert all(span.attrs.get("synthesized") for span in stage_spans)
            validate_chrome_trace(result.trace.to_chrome())

    def test_centralized_engine_traces_its_single_stage(self):
        with repro.open(dataset="paper", trace=True) as session:
            result = session.query(QUERY, engine="centralized")
            stage_names = [s.name for s in result.trace.find_spans(category=CATEGORY_STAGE)]
            assert stage_names == ["stage:centralized_evaluation"]

    def test_traced_and_untraced_answers_match(self):
        with repro.open(dataset="paper") as plain, repro.open(dataset="paper", trace=True) as traced:
            baseline = plain.query(QUERY)
            observed = traced.query(QUERY)
            assert observed.same_solutions(baseline)
            assert observed.statistics.total_shipment_bytes == baseline.statistics.total_shipment_bytes


class TestSessionMetrics:
    def test_metrics_registry_is_always_on(self):
        with repro.open(dataset="paper") as session:
            session.query(QUERY)
            snapshot = session.metrics.snapshot()
            for family in EXPECTED_FAMILIES:
                assert family in snapshot, family
            assert snapshot["repro_queries_total"]["series"] == {"engine=gStoreD": 1}

    def test_prometheus_exposition_is_scrapable(self):
        with repro.open(dataset="paper") as session:
            session.query(QUERY)
            text = session.metrics.prometheus_text()
            assert "# TYPE repro_stage_seconds histogram" in text
            assert "repro_stage_seconds_bucket" in text
            assert 'le="+Inf"' in text
            assert "# TYPE repro_queries_total counter" in text

    def test_metrics_accumulate_across_engines(self):
        with repro.open(dataset="paper") as session:
            session.query(QUERY)
            session.query(QUERY, engine="centralized")
            series = session.metrics.snapshot()["repro_queries_total"]["series"]
            assert series == {"engine=Centralized": 1, "engine=gStoreD": 1}


class TestSessionProfiling:
    def test_profile_true_captures_stage_profiles(self):
        with repro.open(dataset="paper", profile=True) as session:
            session.query(QUERY)
            assert session.profiler is not None
            assert session.profiler.stages
            assert "=== stage:" in session.profiler.reports()

    def test_profiling_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        with repro.open(dataset="paper") as session:
            assert session.profiler is None

    def test_profile_env_variable_enables_it(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        with repro.open(dataset="paper") as session:
            assert session.profiler is not None


class TestResultStatisticsLifetime:
    """A returned Result's numbers must survive the next query (regression:
    stage stats used to alias live engine/cluster state that ``query()``
    resets, zeroing a prior result's timings and shipment)."""

    def test_statistics_survive_a_later_query(self):
        with repro.open(dataset="paper") as session:
            first = session.query(QUERY)
            frozen_row = dict(first.statistics.as_row())
            frozen_stages = [dict(stage.as_dict()) for stage in first.statistics.stages]
            assert first.statistics.total_shipment_bytes > 0
            session.query("example")
            session.query(QUERY, engine="dream")
            assert first.statistics.as_row() == frozen_row
            assert [dict(stage.as_dict()) for stage in first.statistics.stages] == frozen_stages
            assert first.statistics.total_shipment_bytes > 0

    def test_shipment_snapshot_survives_network_reset(self):
        with repro.open(dataset="paper") as session:
            first = session.query(QUERY)
            assert isinstance(first.shipment, ShipmentSnapshot)
            total = first.shipment.total_bytes
            assert total == first.statistics.total_shipment_bytes
            session.query("example")  # resets the bus
            assert first.shipment.total_bytes == total

    def test_detach_statistics_returns_an_equal_deep_copy(self):
        with repro.open(dataset="paper") as session:
            result = session.query(QUERY)
            original_row = result.statistics.as_row()
            detached = result.detach_statistics()
            assert detached.as_row() == original_row
            assert detached is result.statistics


class TestTracedEquivalenceAcrossBackends:
    @pytest.mark.parametrize("executor,workers", [("serial", None), ("threads", 2), ("processes", 2)])
    def test_every_backend_traces_and_agrees(self, executor, workers):
        kwargs = {"executor": executor}
        if workers is not None:
            kwargs["workers"] = workers
        with repro.open(dataset="paper") as reference_session:
            reference = reference_session.query(QUERY)
        with repro.open(dataset="paper", trace=True, **kwargs) as session:
            result = session.query(QUERY)
            assert result.same_solutions(reference)
            assert result.statistics.total_shipment_bytes == reference.statistics.total_shipment_bytes
            assert result.trace.find_spans(category=CATEGORY_TASK)
            validate_chrome_trace(result.trace.to_chrome())
