"""Unit tests for the cost-guided partitioning refinement extension."""

import pytest

from repro.datasets import lubm, random_assignment, random_graph
from repro.partition import (
    HashPartitioner,
    build_partitioned_graph,
    partitioning_cost,
    refine_partitioning,
)


class TestRefinement:
    @pytest.mark.slow
    def test_never_increases_cost(self):
        partitioned = HashPartitioner(4).partition(lubm.generate(scale=1))
        refined, report = refine_partitioning(partitioned, max_passes=2)
        assert report.final_cost <= report.initial_cost
        assert partitioning_cost(refined).cost == pytest.approx(report.final_cost)

    def test_refined_partitioning_is_valid(self):
        partitioned = HashPartitioner(3).partition(lubm.generate(scale=1))
        refined, _ = refine_partitioning(partitioned, max_passes=1)
        refined.validate()
        assert refined.num_fragments == partitioned.num_fragments

    def test_original_partitioning_untouched(self):
        partitioned = HashPartitioner(3).partition(lubm.generate(scale=1))
        before = partitioned.assignment
        refine_partitioning(partitioned, max_passes=1)
        assert partitioned.assignment == before

    @pytest.mark.slow
    def test_strategy_name_marks_refinement(self):
        partitioned = HashPartitioner(4).partition(lubm.generate(scale=1))
        refined, report = refine_partitioning(partitioned)
        if report.moves:
            assert refined.strategy.endswith("+refined")
        else:
            assert refined.strategy == partitioned.strategy

    def test_single_fragment_is_a_noop(self):
        partitioned = HashPartitioner(1).partition(lubm.generate(scale=1))
        refined, report = refine_partitioning(partitioned)
        assert report.moves == 0
        assert refined.assignment == partitioned.assignment

    def test_random_partitionings_improve(self):
        graph = random_graph(3, num_vertices=30, num_edges=60)
        assignment = random_assignment(graph, seed=4, num_fragments=3)
        partitioned = build_partitioned_graph(graph, assignment, num_fragments=3, strategy="random")
        refined, report = refine_partitioning(partitioned, max_passes=3)
        # Random assignments are far from optimal, so the local search should
        # find at least one improving move.
        assert report.moves > 0
        assert report.final_cost < report.initial_cost
        assert 0 <= report.improvement <= 1

    @pytest.mark.slow
    def test_answers_unchanged_after_refinement(self):
        from repro.core import GStoreDEngine
        from repro.distributed import build_cluster

        graph = lubm.generate(scale=1)
        partitioned = HashPartitioner(4).partition(graph)
        refined, _ = refine_partitioning(partitioned)
        query = lubm.queries()["LQ1"]
        original = GStoreDEngine(build_cluster(partitioned)).execute(query)
        after = GStoreDEngine(build_cluster(refined)).execute(query)
        assert original.results.same_solutions(after.results)
