"""Unit tests for partitioning persistence (save/load assignments and workspaces)."""

import json

import pytest

from repro.datasets import lubm
from repro.partition import (
    HashPartitioner,
    load_assignment,
    load_partitioning,
    load_workspace,
    save_assignment,
    save_workspace,
)
from repro.partition.serialization import assignment_to_dict


@pytest.fixture(scope="module")
def partitioned():
    return HashPartitioner(4).partition(lubm.generate(scale=1))


class TestAssignmentRoundTrip:
    def test_dict_representation(self, partitioned):
        payload = assignment_to_dict(partitioned)
        assert payload["strategy"] == "hash"
        assert payload["num_fragments"] == 4
        assert len(payload["assignment"]) == len(partitioned.graph.vertices)

    def test_save_and_load_assignment(self, partitioned, tmp_path):
        path = tmp_path / "assignment.json"
        save_assignment(partitioned, path)
        loaded = load_assignment(path)
        assert loaded == partitioned.assignment

    def test_load_partitioning_rebuilds_fragments(self, partitioned, tmp_path):
        path = tmp_path / "assignment.json"
        save_assignment(partitioned, path)
        rebuilt = load_partitioning(partitioned.graph, path)
        rebuilt.validate()
        assert rebuilt.num_fragments == partitioned.num_fragments
        assert rebuilt.crossing_edges == partitioned.crossing_edges
        assert rebuilt.strategy == "hash"

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"something": "else"}), encoding="utf-8")
        with pytest.raises(ValueError):
            load_assignment(path)


class TestWorkspaceRoundTrip:
    def test_save_and_load_workspace(self, partitioned, tmp_path):
        paths = save_workspace(partitioned, tmp_path / "workspace")
        assert paths["graph"].exists()
        assert paths["assignment"].exists()
        restored = load_workspace(tmp_path / "workspace")
        restored.validate()
        assert restored.graph == partitioned.graph
        assert restored.assignment == partitioned.assignment

    def test_workspace_queries_identically(self, partitioned, tmp_path):
        from repro.core import GStoreDEngine
        from repro.distributed import build_cluster

        save_workspace(partitioned, tmp_path / "ws")
        restored = load_workspace(tmp_path / "ws")
        query = lubm.queries()["LQ6"]
        original = GStoreDEngine(build_cluster(partitioned)).execute(query)
        reloaded = GStoreDEngine(build_cluster(restored)).execute(query)
        assert original.results.same_solutions(reloaded.results)
