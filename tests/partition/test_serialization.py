"""Unit tests for partitioning persistence (save/load assignments and workspaces).

The process-pool execution backend rebuilds every site from serialized
fragment payloads, so these round trips are load-bearing runtime machinery
now, not just workspace persistence: every partitioner strategy must survive
``assignment_to_dict`` → load and ``fragment_to_payload`` → rebuild exactly.
"""

import json
import pickle

import pytest

from repro.datasets import lubm
from repro.partition import (
    HashPartitioner,
    fragment_from_payload,
    fragment_to_payload,
    fragments_to_payloads,
    load_assignment,
    load_partitioning,
    load_workspace,
    make_partitioner,
    save_assignment,
    save_workspace,
)
from repro.partition.serialization import assignment_to_dict

#: Every registered partitioner strategy (the CLI's --strategy choices).
ALL_STRATEGIES = ("hash", "semantic_hash", "metis")


@pytest.fixture(scope="module")
def partitioned():
    return HashPartitioner(4).partition(lubm.generate(scale=1))


@pytest.fixture(scope="module")
def lubm_graph_small():
    return lubm.generate(scale=1)


@pytest.fixture(scope="module", params=ALL_STRATEGIES)
def strategy_partitioned(request, lubm_graph_small):
    """One LUBM partitioning per registered strategy."""
    return make_partitioner(request.param, 4).partition(lubm_graph_small)


class TestEveryStrategyRoundTrips:
    def test_assignment_dict_round_trips(self, strategy_partitioned, tmp_path):
        path = tmp_path / "assignment.json"
        save_assignment(strategy_partitioned, path)
        assert load_assignment(path) == strategy_partitioned.assignment

    def test_rebuilt_partitioning_is_identical(self, strategy_partitioned, tmp_path):
        path = tmp_path / "assignment.json"
        save_assignment(strategy_partitioned, path)
        rebuilt = load_partitioning(strategy_partitioned.graph, path)
        rebuilt.validate()
        assert rebuilt.strategy == strategy_partitioned.strategy
        assert rebuilt.num_fragments == strategy_partitioned.num_fragments
        for original, restored in zip(strategy_partitioned, rebuilt):
            assert restored.internal_vertices == original.internal_vertices
            assert restored.internal_edges == original.internal_edges
            assert restored.crossing_edges == original.crossing_edges
            assert restored.extended_vertices == original.extended_vertices

    def test_fragment_payloads_round_trip(self, strategy_partitioned):
        for fragment in strategy_partitioned:
            payload = fragment_to_payload(fragment)
            assert fragment_from_payload(payload) == fragment
            # Payloads must survive both transports the runtime uses: JSON
            # (workspaces) and pickle (process-pool worker bootstrap).
            assert fragment_from_payload(json.loads(json.dumps(payload))) == fragment
            assert fragment_from_payload(pickle.loads(pickle.dumps(payload))) == fragment

    def test_payloads_are_deterministic(self, strategy_partitioned):
        first = fragments_to_payloads(strategy_partitioned)
        second = fragments_to_payloads(strategy_partitioned)
        assert first == second
        assert [p["fragment_id"] for p in first] == sorted(p["fragment_id"] for p in first)


def test_fragment_payload_rejects_foreign_dicts():
    with pytest.raises(ValueError, match="fragment payload"):
        fragment_from_payload({"format": "something/else"})


class TestAssignmentRoundTrip:
    def test_dict_representation(self, partitioned):
        payload = assignment_to_dict(partitioned)
        assert payload["strategy"] == "hash"
        assert payload["num_fragments"] == 4
        assert len(payload["assignment"]) == len(partitioned.graph.vertices)

    def test_save_and_load_assignment(self, partitioned, tmp_path):
        path = tmp_path / "assignment.json"
        save_assignment(partitioned, path)
        loaded = load_assignment(path)
        assert loaded == partitioned.assignment

    def test_load_partitioning_rebuilds_fragments(self, partitioned, tmp_path):
        path = tmp_path / "assignment.json"
        save_assignment(partitioned, path)
        rebuilt = load_partitioning(partitioned.graph, path)
        rebuilt.validate()
        assert rebuilt.num_fragments == partitioned.num_fragments
        assert rebuilt.crossing_edges == partitioned.crossing_edges
        assert rebuilt.strategy == "hash"

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"something": "else"}), encoding="utf-8")
        with pytest.raises(ValueError):
            load_assignment(path)


class TestWorkspaceRoundTrip:
    def test_save_and_load_workspace(self, partitioned, tmp_path):
        paths = save_workspace(partitioned, tmp_path / "workspace")
        assert paths["graph"].exists()
        assert paths["assignment"].exists()
        restored = load_workspace(tmp_path / "workspace")
        restored.validate()
        assert restored.graph == partitioned.graph
        assert restored.assignment == partitioned.assignment

    def test_workspace_queries_identically(self, partitioned, tmp_path):
        from repro.core import GStoreDEngine
        from repro.distributed import build_cluster

        save_workspace(partitioned, tmp_path / "ws")
        restored = load_workspace(tmp_path / "ws")
        query = lubm.queries()["LQ6"]
        original = GStoreDEngine(build_cluster(partitioned)).execute(query)
        reloaded = GStoreDEngine(build_cluster(restored)).execute(query)
        assert original.results.same_solutions(reloaded.results)
