"""Unit tests for the Section VII partitioning cost model."""

import math

import pytest

from repro.partition import (
    build_partitioned_graph,
    compare_partitionings,
    crossing_edge_distribution,
    crossing_edge_expectation,
    largest_fragment_size,
    partitioning_cost,
    select_best_partitioning,
    star_query_lec_feature_count,
)
from repro.rdf import Namespace, RDFGraph, Triple

EX = Namespace("http://example.org/")
P = EX.term("p")


def star_vs_scattered():
    """Two partitionings of the same 8-edge graph, mirroring Fig. 8.

    In the first, all four crossing edges meet in one hub vertex; in the
    second, the crossing edges are scattered over two boundary vertices.
    """
    hub = EX.term("hub")
    spokes = [EX.term(f"s{i}") for i in range(4)]
    others = [EX.term(f"o{i}") for i in range(4)]
    graph = RDFGraph()
    for spoke, other in zip(spokes, others):
        graph.add(Triple(hub, P, spoke))
        graph.add(Triple(spoke, P, other))
    concentrated = build_partitioned_graph(
        graph,
        {hub: 0, **{s: 1 for s in spokes}, **{o: 1 for o in others}},
        num_fragments=2,
        strategy="concentrated",
    )
    scattered_assignment = {hub: 0, spokes[0]: 0, spokes[1]: 0, others[0]: 1, others[1]: 1}
    scattered_assignment.update({spokes[2]: 1, spokes[3]: 1, others[2]: 0, others[3]: 0})
    scattered = build_partitioned_graph(
        graph, scattered_assignment, num_fragments=2, strategy="scattered"
    )
    return concentrated, scattered


class TestDistribution:
    def test_distribution_sums_to_one(self):
        concentrated, scattered = star_vs_scattered()
        for partitioned in (concentrated, scattered):
            distribution = crossing_edge_distribution(partitioned)
            assert distribution
            assert math.isclose(sum(distribution.values()), 1.0)

    def test_no_crossing_edges_gives_empty_distribution(self):
        graph = RDFGraph([Triple(EX.term("a"), P, EX.term("b"))])
        partitioned = build_partitioned_graph(graph, {EX.term("a"): 0, EX.term("b"): 0}, num_fragments=1)
        assert crossing_edge_distribution(partitioned) == {}
        assert crossing_edge_expectation(partitioned) == 0.0

    def test_concentrated_crossing_edges_have_higher_expectation(self):
        concentrated, scattered = star_vs_scattered()
        assert crossing_edge_expectation(concentrated) > crossing_edge_expectation(scattered)


class TestCost:
    def test_cost_combines_expectation_and_balance(self):
        concentrated, _ = star_vs_scattered()
        cost = partitioning_cost(concentrated)
        assert cost.cost == pytest.approx(cost.expectation * cost.largest_fragment_edges)
        assert cost.largest_fragment_edges == largest_fragment_size(concentrated)

    def test_select_best_partitioning_prefers_scattered(self):
        concentrated, scattered = star_vs_scattered()
        best, best_cost = select_best_partitioning([concentrated, scattered])
        assert best is scattered
        assert best_cost.strategy == "scattered"

    def test_compare_partitionings_returns_one_row_each(self):
        rows = compare_partitionings(list(star_vs_scattered()))
        assert len(rows) == 2
        assert {row.strategy for row in rows} == {"concentrated", "scattered"}

    def test_select_best_requires_candidates(self):
        with pytest.raises(ValueError):
            select_best_partitioning([])

    def test_as_row_keys(self):
        concentrated, _ = star_vs_scattered()
        row = partitioning_cost(concentrated).as_row()
        assert set(row) == {"strategy", "crossing_edges", "expectation", "largest_fragment_edges", "cost"}


class TestFig8Example:
    def test_fig8a_concentrated_boundary_counts_10_features(self):
        # One boundary vertex adjacent to all 4 crossing edges, 2-edge star query:
        # C(4,2) + C(4,1) = 10.
        assert star_query_lec_feature_count([4], star_edges=2) == 10

    def test_fig8b_scattered_boundary_counts_9_features(self):
        # Two boundary vertices with 3 and 2 crossing edges:
        # C(3,2)+C(3,1) + C(2,2)+C(2,1) = 9.
        assert star_query_lec_feature_count([3, 2], star_edges=2) == 9

    def test_scattering_reduces_feature_count_in_general(self):
        concentrated = star_query_lec_feature_count([6], star_edges=2)
        scattered = star_query_lec_feature_count([2, 2, 2], star_edges=2)
        assert scattered < concentrated
