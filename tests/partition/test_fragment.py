"""Unit tests for fragments and the distributed RDF graph (Definition 1)."""

import pytest

from repro.partition import PartitionedGraph, PartitioningError, build_partitioned_graph
from repro.rdf import Namespace, RDFGraph, Triple

EX = Namespace("http://example.org/")
A, B, C, D = EX.term("a"), EX.term("b"), EX.term("c"), EX.term("d")
P = EX.term("p")


def chain_graph() -> RDFGraph:
    """a -> b -> c -> d."""
    return RDFGraph([Triple(A, P, B), Triple(B, P, C), Triple(C, P, D)])


def two_fragment_partitioning() -> PartitionedGraph:
    """{a, b} on fragment 0, {c, d} on fragment 1."""
    return build_partitioned_graph(chain_graph(), {A: 0, B: 0, C: 1, D: 1}, num_fragments=2)


class TestFragmentConstruction:
    def test_internal_vertices_follow_assignment(self):
        partitioned = two_fragment_partitioning()
        assert partitioned.fragment(0).internal_vertices == {A, B}
        assert partitioned.fragment(1).internal_vertices == {C, D}

    def test_internal_edges(self):
        partitioned = two_fragment_partitioning()
        assert partitioned.fragment(0).internal_edges == {Triple(A, P, B)}
        assert partitioned.fragment(1).internal_edges == {Triple(C, P, D)}

    def test_crossing_edges_replicated_on_both_sides(self):
        partitioned = two_fragment_partitioning()
        crossing = Triple(B, P, C)
        assert crossing in partitioned.fragment(0).crossing_edges
        assert crossing in partitioned.fragment(1).crossing_edges

    def test_extended_vertices(self):
        partitioned = two_fragment_partitioning()
        assert partitioned.fragment(0).extended_vertices == {C}
        assert partitioned.fragment(1).extended_vertices == {B}

    def test_fragment_of(self):
        partitioned = two_fragment_partitioning()
        assert partitioned.fragment_of(A) == 0
        assert partitioned.fragment_of(D) == 1

    def test_is_internal_is_extended(self):
        fragment = two_fragment_partitioning().fragment(0)
        assert fragment.is_internal(A)
        assert not fragment.is_internal(C)
        assert fragment.is_extended(C)

    def test_to_graph_contains_internal_and_crossing_edges(self):
        fragment = two_fragment_partitioning().fragment(0)
        graph = fragment.to_graph()
        assert len(graph) == 2
        assert Triple(A, P, B) in graph
        assert Triple(B, P, C) in graph

    def test_crossing_edges_union(self):
        partitioned = two_fragment_partitioning()
        assert partitioned.crossing_edges == {Triple(B, P, C)}

    def test_edge_labels(self):
        assert two_fragment_partitioning().fragment(0).edge_labels() == {P}

    def test_fragment_stats(self):
        stats = two_fragment_partitioning().fragment(0).stats()
        assert stats == {
            "internal_vertices": 2,
            "extended_vertices": 1,
            "internal_edges": 1,
            "crossing_edges": 1,
        }

    def test_partitioned_stats(self):
        stats = two_fragment_partitioning().stats()
        assert stats["fragments"] == 2
        assert stats["crossing_edges"] == 1
        assert stats["triples"] == 3


class TestValidation:
    def test_valid_partitioning_passes(self):
        two_fragment_partitioning().validate()

    def test_missing_vertex_assignment_raises(self):
        with pytest.raises(PartitioningError):
            PartitionedGraph(chain_graph(), {A: 0, B: 0, C: 0})

    def test_out_of_range_fragment_id_raises(self):
        with pytest.raises(PartitioningError):
            PartitionedGraph(chain_graph(), {A: 0, B: 0, C: 0, D: 5}, num_fragments=2)

    def test_every_edge_covered_by_some_fragment(self):
        partitioned = two_fragment_partitioning()
        covered = set()
        for fragment in partitioned:
            covered |= fragment.all_edges
        assert covered == set(chain_graph())

    def test_definition1_invariants_on_paper_example(self, example_partitioning):
        example_partitioning.validate()
        # Fig. 1: F1 has two extended vertices (006 and 012) and three crossing edges.
        f1 = example_partitioning.fragment(0)
        assert len(f1.extended_vertices) == 2
        assert len(f1.crossing_edges) == 3

    def test_single_fragment_has_no_crossing_edges(self):
        graph = chain_graph()
        partitioned = build_partitioned_graph(graph, {v: 0 for v in graph.vertices}, num_fragments=1)
        assert partitioned.crossing_edges == set()
        assert partitioned.fragment(0).extended_vertices == set()
