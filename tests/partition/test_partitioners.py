"""Unit tests for the partitioning strategies."""

import pytest

from repro.datasets import lubm
from repro.partition import (
    HashPartitioner,
    MetisLikePartitioner,
    PARTITIONER_REGISTRY,
    SemanticHashPartitioner,
    make_partitioner,
)
from repro.rdf import Literal, Namespace, RDFGraph, Triple

EX = Namespace("http://example.org/")


@pytest.fixture(scope="module")
def lubm_small():
    return lubm.generate(scale=1)


class TestRegistry:
    def test_registry_contains_all_strategies(self):
        assert set(PARTITIONER_REGISTRY) == {"hash", "semantic_hash", "metis"}

    def test_make_partitioner(self):
        assert isinstance(make_partitioner("hash", 3), HashPartitioner)
        assert isinstance(make_partitioner("semantic_hash", 3), SemanticHashPartitioner)
        assert isinstance(make_partitioner("metis", 3), MetisLikePartitioner)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_partitioner("random", 3)

    def test_invalid_fragment_count_raises(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


@pytest.mark.parametrize("strategy", ["hash", "semantic_hash", "metis"])
class TestCommonProperties:
    def test_partitioning_is_valid(self, strategy, lubm_small):
        partitioned = make_partitioner(strategy, 4).partition(lubm_small)
        partitioned.validate()

    def test_every_vertex_assigned_to_declared_fragments(self, strategy, lubm_small):
        partitioned = make_partitioner(strategy, 4).partition(lubm_small)
        assert partitioned.num_fragments == 4
        for vertex in lubm_small.vertices:
            assert 0 <= partitioned.fragment_of(vertex) < 4

    def test_deterministic(self, strategy, lubm_small):
        first = make_partitioner(strategy, 4).assign(lubm_small)
        second = make_partitioner(strategy, 4).assign(lubm_small)
        assert first == second

    def test_strategy_name_recorded(self, strategy, lubm_small):
        partitioned = make_partitioner(strategy, 3).partition(lubm_small)
        assert partitioned.strategy == strategy


class TestHashPartitioner:
    def test_reasonably_balanced(self, lubm_small):
        partitioned = HashPartitioner(4).partition(lubm_small)
        sizes = [len(fragment.internal_vertices) for fragment in partitioned]
        assert max(sizes) < 2 * (len(lubm_small.vertices) / 4)

    def test_single_fragment(self, lubm_small):
        partitioned = HashPartitioner(1).partition(lubm_small)
        assert len(partitioned.crossing_edges) == 0


class TestSemanticHashPartitioner:
    def test_entities_with_same_prefix_grouped(self):
        graph = RDFGraph()
        p = EX.term("p")
        # Two "universities" with several entities each sharing a URI prefix.
        for u in range(2):
            for i in range(5):
                graph.add(Triple(EX.term(f"univ{u}/entity{i}"), p, EX.term(f"univ{u}/entity{(i+1)%5}")))
        partitioned = SemanticHashPartitioner(4).partition(graph)
        for u in range(2):
            fragments = {partitioned.fragment_of(EX.term(f"univ{u}/entity{i}")) for i in range(5)}
            assert len(fragments) == 1

    def test_literals_follow_their_subjects(self):
        graph = RDFGraph()
        subject = EX.term("univ0/prof1")
        graph.add(Triple(subject, EX.term("name"), Literal("Someone")))
        graph.add(Triple(subject, EX.term("knows"), EX.term("univ1/prof2")))
        partitioned = SemanticHashPartitioner(4).partition(graph)
        assert partitioned.fragment_of(Literal("Someone")) == partitioned.fragment_of(subject)

    def test_fewer_crossing_edges_than_hash_on_lubm(self, lubm_small):
        hash_crossing = len(HashPartitioner(4).partition(lubm_small).crossing_edges)
        semantic_crossing = len(SemanticHashPartitioner(4).partition(lubm_small).crossing_edges)
        assert semantic_crossing < hash_crossing


class TestMetisLikePartitioner:
    def test_fewer_crossing_edges_than_hash(self, lubm_small):
        hash_crossing = len(HashPartitioner(4).partition(lubm_small).crossing_edges)
        metis_crossing = len(MetisLikePartitioner(4).partition(lubm_small).crossing_edges)
        assert metis_crossing < hash_crossing

    def test_respects_num_fragments(self, lubm_small):
        partitioned = MetisLikePartitioner(3).partition(lubm_small)
        used = {partitioned.fragment_of(v) for v in lubm_small.vertices}
        assert used <= {0, 1, 2}
        assert len(used) > 1

    def test_empty_graph(self):
        partitioned = MetisLikePartitioner(2).partition(RDFGraph())
        assert partitioned.num_fragments == 2
        assert len(partitioned.crossing_edges) == 0

    def test_seed_changes_are_still_valid(self, lubm_small):
        partitioned = MetisLikePartitioner(4, seed=99).partition(lubm_small)
        partitioned.validate()
