"""Unit tests for N-Triples parsing and serialization."""

import io

import pytest

from repro.rdf import (
    IRI,
    BlankNode,
    Literal,
    NTriplesParseError,
    RDFGraph,
    Triple,
    dump,
    load,
    parse_line,
    parse_string,
    parse_term,
    serialize,
)

A = IRI("http://example.org/a")
B = IRI("http://example.org/b")
KNOWS = IRI("http://example.org/knows")


class TestParseTerm:
    def test_iri(self):
        assert parse_term("<http://example.org/a>") == A

    def test_blank_node(self):
        assert parse_term("_:b42") == BlankNode("b42")

    def test_plain_literal(self):
        assert parse_term('"hello"') == Literal("hello")

    def test_language_literal(self):
        assert parse_term('"hello"@en') == Literal("hello", language="en")

    def test_typed_literal(self):
        term = parse_term('"5"^^<http://www.w3.org/2001/XMLSchema#integer>')
        assert term == Literal("5", datatype=IRI("http://www.w3.org/2001/XMLSchema#integer"))

    def test_escaped_quote_inside_literal(self):
        assert parse_term('"say \\"hi\\""') == Literal('say "hi"')

    def test_invalid_term_raises(self):
        with pytest.raises(NTriplesParseError):
            parse_term("not-a-term")


class TestParseLine:
    def test_simple_statement(self):
        line = "<http://example.org/a> <http://example.org/knows> <http://example.org/b> ."
        assert parse_line(line) == Triple(A, KNOWS, B)

    def test_literal_object_with_spaces(self):
        line = '<http://example.org/a> <http://example.org/name> "Alice In Chains"@en .'
        triple = parse_line(line)
        assert triple.object == Literal("Alice In Chains", language="en")

    def test_missing_dot_raises(self):
        with pytest.raises(NTriplesParseError):
            parse_line("<http://x/a> <http://x/p> <http://x/b>")

    def test_two_terms_raises(self):
        with pytest.raises(NTriplesParseError):
            parse_line("<http://x/a> <http://x/p> .")

    def test_literal_subject_raises(self):
        with pytest.raises(NTriplesParseError):
            parse_line('"literal" <http://x/p> <http://x/b> .')

    def test_literal_predicate_raises(self):
        with pytest.raises(NTriplesParseError):
            parse_line('<http://x/a> "p" <http://x/b> .')


class TestDocumentRoundTrip:
    def test_parse_string_skips_comments_and_blank_lines(self):
        text = "\n".join(
            [
                "# a comment",
                "",
                "<http://example.org/a> <http://example.org/knows> <http://example.org/b> .",
            ]
        )
        graph = parse_string(text)
        assert len(graph) == 1

    def test_serialize_then_parse_roundtrip(self, example_graph):
        text = serialize(example_graph)
        reparsed = parse_string(text)
        assert reparsed == example_graph

    def test_serialize_is_sorted_and_deterministic(self, tiny_graph):
        assert serialize(tiny_graph) == serialize(tiny_graph.copy())

    def test_dump_and_load_file(self, tmp_path, tiny_graph):
        path = tmp_path / "data.nt"
        count = dump(tiny_graph, path)
        assert count == len(tiny_graph)
        assert load(path) == tiny_graph

    def test_dump_and_load_stream(self, tiny_graph):
        buffer = io.StringIO()
        dump(tiny_graph, buffer)
        buffer.seek(0)
        assert load(buffer) == tiny_graph

    def test_empty_serialization(self):
        assert serialize([]) == ""
        assert parse_string("") == RDFGraph()
