"""Unit tests for triples and triple patterns."""

from repro.rdf import IRI, Literal, Triple, TriplePattern, Variable

A = IRI("http://example.org/a")
B = IRI("http://example.org/b")
KNOWS = IRI("http://example.org/knows")
NAME = IRI("http://example.org/name")


class TestTriple:
    def test_n3_serialization(self):
        triple = Triple(A, KNOWS, B)
        assert triple.n3() == f"{A.n3()} {KNOWS.n3()} {B.n3()} ."

    def test_iteration_order(self):
        assert list(Triple(A, KNOWS, B)) == [A, KNOWS, B]

    def test_as_tuple(self):
        assert Triple(A, KNOWS, B).as_tuple() == (A, KNOWS, B)

    def test_hashable(self):
        assert len({Triple(A, KNOWS, B), Triple(A, KNOWS, B)}) == 1


class TestTriplePattern:
    def test_variables_in_order_without_duplicates(self):
        pattern = TriplePattern(Variable("x"), KNOWS, Variable("x"))
        assert pattern.variables == (Variable("x"),)

    def test_variables_include_predicate_variables(self):
        pattern = TriplePattern(Variable("x"), Variable("p"), Variable("y"))
        assert pattern.variables == (Variable("x"), Variable("p"), Variable("y"))

    def test_is_concrete(self):
        assert TriplePattern(A, KNOWS, B).is_concrete
        assert not TriplePattern(A, KNOWS, Variable("y")).is_concrete

    def test_matches_with_variables(self):
        pattern = TriplePattern(Variable("x"), KNOWS, Variable("y"))
        assert pattern.matches(Triple(A, KNOWS, B))
        assert not pattern.matches(Triple(A, NAME, Literal("Alice")))

    def test_matches_with_constants(self):
        pattern = TriplePattern(A, KNOWS, Variable("y"))
        assert pattern.matches(Triple(A, KNOWS, B))
        assert not pattern.matches(Triple(B, KNOWS, A))

    def test_bind_substitutes_known_variables(self):
        pattern = TriplePattern(Variable("x"), KNOWS, Variable("y"))
        bound = pattern.bind({Variable("x"): A})
        assert bound.subject == A
        assert bound.object == Variable("y")
