"""Unit tests for namespaces and the prefix manager."""

import pytest

from repro.rdf import IRI, Namespace, NamespaceManager, RDF_NS, RDF_TYPE


class TestNamespace:
    def test_term_concatenates(self):
        ns = Namespace("http://example.org/")
        assert ns.term("Person") == IRI("http://example.org/Person")

    def test_attribute_access(self):
        ns = Namespace("http://example.org/")
        assert ns.Person == IRI("http://example.org/Person")

    def test_item_access(self):
        ns = Namespace("http://example.org/")
        assert ns["has-part"] == IRI("http://example.org/has-part")

    def test_contains(self):
        ns = Namespace("http://example.org/")
        assert ns.term("x") in ns
        assert IRI("http://other.org/x") not in ns

    def test_rdf_type_constant(self):
        assert RDF_TYPE == RDF_NS.term("type")


class TestNamespaceManager:
    def test_resolve_prefixed_name(self):
        manager = NamespaceManager({"ex": "http://example.org/"})
        assert manager.resolve("ex:Person") == IRI("http://example.org/Person")

    def test_resolve_unknown_prefix_raises(self):
        with pytest.raises(KeyError):
            NamespaceManager().resolve("nope:Person")

    def test_resolve_requires_colon(self):
        with pytest.raises(ValueError):
            NamespaceManager().resolve("Person")

    def test_shrink_picks_longest_matching_base(self):
        manager = NamespaceManager(
            {"ex": "http://example.org/", "people": "http://example.org/people/"}
        )
        assert manager.shrink(IRI("http://example.org/people/alice")) == "people:alice"

    def test_shrink_falls_back_to_full_iri(self):
        manager = NamespaceManager({"ex": "http://example.org/"})
        assert manager.shrink(IRI("http://other.org/x")) == "<http://other.org/x>"

    def test_with_defaults_contains_well_known_prefixes(self):
        manager = NamespaceManager.with_defaults()
        assert "rdf" in manager
        assert "foaf" in manager
        assert manager.resolve("rdf:type") == RDF_TYPE

    def test_iteration_and_len(self):
        manager = NamespaceManager({"a": "http://a/", "b": "http://b/"})
        assert len(manager) == 2
        assert dict(manager) == {"a": "http://a/", "b": "http://b/"}
