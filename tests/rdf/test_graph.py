"""Unit tests for the indexed RDF graph."""

from repro.rdf import IRI, Literal, Namespace, RDFGraph, Triple

EX = Namespace("http://example.org/")
A, B, C = EX.term("a"), EX.term("b"), EX.term("c")
KNOWS, LIKES, NAME = EX.term("knows"), EX.term("likes"), EX.term("name")


def build_graph() -> RDFGraph:
    graph = RDFGraph()
    graph.add(Triple(A, KNOWS, B))
    graph.add(Triple(B, KNOWS, C))
    graph.add(Triple(A, LIKES, C))
    graph.add(Triple(C, NAME, Literal("Carol")))
    return graph


class TestMutation:
    def test_add_returns_true_for_new_triple(self):
        graph = RDFGraph()
        assert graph.add(Triple(A, KNOWS, B)) is True

    def test_add_is_idempotent(self):
        graph = RDFGraph()
        graph.add(Triple(A, KNOWS, B))
        assert graph.add(Triple(A, KNOWS, B)) is False
        assert len(graph) == 1

    def test_add_all_counts_new_triples(self):
        graph = RDFGraph()
        added = graph.add_all([Triple(A, KNOWS, B), Triple(A, KNOWS, B), Triple(B, KNOWS, C)])
        assert added == 2

    def test_discard_removes_from_every_index(self):
        graph = build_graph()
        assert graph.discard(Triple(A, KNOWS, B)) is True
        assert Triple(A, KNOWS, B) not in graph
        assert list(graph.triples(A, KNOWS, None)) == []
        assert B not in graph.neighbours(A)

    def test_discard_missing_returns_false(self):
        assert build_graph().discard(Triple(C, KNOWS, A)) is False


class TestTripleAccess:
    def test_len_and_contains(self):
        graph = build_graph()
        assert len(graph) == 4
        assert Triple(A, KNOWS, B) in graph

    def test_lookup_by_subject(self):
        graph = build_graph()
        assert {t.object for t in graph.triples(A, None, None)} == {B, C}

    def test_lookup_by_predicate(self):
        graph = build_graph()
        assert {t.subject for t in graph.triples(None, KNOWS, None)} == {A, B}

    def test_lookup_by_object(self):
        graph = build_graph()
        assert {t.subject for t in graph.triples(None, None, C)} == {B, A}

    def test_lookup_by_subject_and_predicate(self):
        graph = build_graph()
        assert [t.object for t in graph.triples(A, KNOWS, None)] == [B]

    def test_lookup_by_subject_and_object(self):
        graph = build_graph()
        assert {t.predicate for t in graph.triples(A, None, C)} == {LIKES}

    def test_lookup_by_predicate_and_object(self):
        graph = build_graph()
        assert {t.subject for t in graph.triples(None, KNOWS, C)} == {B}

    def test_fully_bound_lookup(self):
        graph = build_graph()
        assert list(graph.triples(A, KNOWS, B)) == [Triple(A, KNOWS, B)]
        assert list(graph.triples(A, KNOWS, C)) == []

    def test_count(self):
        graph = build_graph()
        assert graph.count(None, KNOWS, None) == 2
        assert graph.count() == 4


class TestGraphView:
    def test_vertices_and_predicates(self):
        graph = build_graph()
        assert graph.vertices == {A, B, C, Literal("Carol")}
        assert graph.predicates == {KNOWS, LIKES, NAME}

    def test_entities_exclude_literals(self):
        assert Literal("Carol") not in build_graph().entities

    def test_neighbours_are_undirected(self):
        graph = build_graph()
        assert graph.neighbours(C) == {B, A, Literal("Carol")}

    def test_degree_counts_both_directions(self):
        graph = build_graph()
        assert graph.degree(C) == 3
        assert graph.degree(A) == 2

    def test_out_and_in_edges(self):
        graph = build_graph()
        assert {t.object for t in graph.out_edges(A)} == {B, C}
        assert {t.subject for t in graph.in_edges(C)} == {A, B}

    def test_subjects_and_objects_helpers(self):
        graph = build_graph()
        assert graph.subjects(predicate=KNOWS) == {A, B}
        assert graph.objects(subject=A) == {B, C}


class TestWholeGraphHelpers:
    def test_copy_is_independent(self):
        graph = build_graph()
        clone = graph.copy()
        clone.add(Triple(C, KNOWS, A))
        assert len(graph) == 4
        assert len(clone) == 5

    def test_union_operator(self):
        left = RDFGraph([Triple(A, KNOWS, B)])
        right = RDFGraph([Triple(B, KNOWS, C)])
        assert len(left | right) == 2

    def test_equality_is_by_triple_set(self):
        assert build_graph() == build_graph()

    def test_connected_components_single(self):
        assert len(build_graph().connected_components()) == 1

    def test_connected_components_multiple(self):
        graph = build_graph()
        d, e = EX.term("d"), EX.term("e")
        graph.add(Triple(d, KNOWS, e))
        components = graph.connected_components()
        assert len(components) == 2
        assert {d, e} in components

    def test_induced_subgraph(self):
        graph = build_graph()
        sub = graph.induced_subgraph({A, B, C})
        assert len(sub) == 3  # the name-literal edge is dropped
        assert Triple(C, NAME, Literal("Carol")) not in sub

    def test_stats(self):
        stats = build_graph().stats()
        assert stats == {"triples": 4, "vertices": 4, "predicates": 3}


class TestCountUsesIndexes:
    def test_count_matches_iteration_for_every_shape(self):
        graph = build_graph()
        shapes = [
            (A, KNOWS, B),
            (A, KNOWS, None),
            (A, None, C),
            (None, KNOWS, C),
            (A, None, None),
            (None, None, C),
            (None, KNOWS, None),
            (None, None, None),
        ]
        for subject, predicate, object in shapes:
            expected = sum(1 for _ in graph.triples(subject, predicate, object))
            assert graph.count(subject, predicate, object) == expected

    def test_count_of_absent_combinations_is_zero(self):
        graph = build_graph()
        missing = EX.term("missing")
        assert graph.count(missing, KNOWS, B) == 0
        assert graph.count(missing, None, None) == 0
        assert graph.count(None, missing, None) == 0
        assert graph.count(None, None, missing) == 0
        assert graph.count(A, KNOWS, C) == 0


class TestIndexHygiene:
    def test_vertices_does_not_grow_the_adjacency_indexes(self):
        graph = build_graph()
        # Make the adjacency maps one-sided: A has no incoming edges and the
        # literal has no outgoing ones, so the old membership probes would
        # insert empty sets for them on every .vertices call.
        out_keys = set(graph._out.keys())
        in_keys = set(graph._in.keys())
        for _ in range(3):
            graph.vertices
        assert set(graph._out.keys()) == out_keys
        assert set(graph._in.keys()) == in_keys

    def test_version_moves_only_on_real_mutation(self):
        graph = build_graph()
        version = graph.version
        graph.add(Triple(A, KNOWS, B))  # duplicate: no change
        graph.discard(Triple(A, KNOWS, Literal("nope")))  # absent: no change
        assert graph.version == version
        graph.add(Triple(B, LIKES, A))
        assert graph.version == version + 1
        graph.discard(Triple(B, LIKES, A))
        assert graph.version == version + 2
