"""Unit tests for the RDF term model."""

import pytest

from repro.rdf import IRI, BlankNode, Literal, Variable, is_concrete
from repro.rdf.terms import escape_literal, unescape_literal


class TestIRI:
    def test_n3_wraps_in_angle_brackets(self):
        assert IRI("http://example.org/a").n3() == "<http://example.org/a>"

    def test_equality_is_by_value(self):
        assert IRI("http://example.org/a") == IRI("http://example.org/a")
        assert IRI("http://example.org/a") != IRI("http://example.org/b")

    def test_hashable_and_usable_in_sets(self):
        assert len({IRI("http://x/a"), IRI("http://x/a"), IRI("http://x/b")}) == 2

    def test_local_name_after_hash(self):
        assert IRI("http://example.org/onto#Person").local_name == "Person"

    def test_local_name_after_slash(self):
        assert IRI("http://example.org/people/alice").local_name == "alice"

    def test_namespace_complements_local_name(self):
        iri = IRI("http://example.org/onto#Person")
        assert iri.namespace + iri.local_name == iri.value

    def test_is_not_variable(self):
        assert not IRI("http://x/a").is_variable
        assert is_concrete(IRI("http://x/a"))


class TestLiteral:
    def test_plain_literal_n3(self):
        assert Literal("hello").n3() == '"hello"'

    def test_language_tagged_literal_n3(self):
        assert Literal("hello", language="en").n3() == '"hello"@en'

    def test_typed_literal_n3(self):
        xsd_int = IRI("http://www.w3.org/2001/XMLSchema#integer")
        assert Literal("42", datatype=xsd_int).n3() == '"42"^^<http://www.w3.org/2001/XMLSchema#integer>'

    def test_language_and_datatype_conflict(self):
        with pytest.raises(ValueError):
            Literal("x", language="en", datatype=IRI("http://x/dt"))

    def test_escaping_of_quotes_and_newlines(self):
        literal = Literal('say "hi"\nplease')
        assert '\\"' in literal.n3()
        assert "\\n" in literal.n3()

    def test_equality_considers_language(self):
        assert Literal("a", language="en") != Literal("a")
        assert Literal("a", language="en") == Literal("a", language="en")


class TestBlankNodeAndVariable:
    def test_blank_node_n3(self):
        assert BlankNode("b1").n3() == "_:b1"

    def test_variable_n3(self):
        assert Variable("person").n3() == "?person"

    def test_variable_is_variable(self):
        assert Variable("x").is_variable
        assert not is_concrete(Variable("x"))

    def test_variable_equality(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")


class TestEscaping:
    @pytest.mark.parametrize(
        "raw",
        ["plain", 'with "quotes"', "line\nbreak", "tab\tand\\backslash", ""],
    )
    def test_escape_roundtrip(self, raw):
        assert unescape_literal(escape_literal(raw)) == raw
