"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file only exists
so that legacy installation paths (``python setup.py develop`` or pip
versions without PEP 660 editable support / the ``wheel`` package) keep
working in offline environments.
"""

from setuptools import setup

setup()
