#!/usr/bin/env python3
"""Quickstart: open a session, run a SPARQL query, compare engines.

The script walks through the paper's running example (Fig. 1-3) on top of
the ``repro.open`` session API:

1. open a session over the philosophers graph with the exact three-fragment
   partitioning of Fig. 1,
2. peek at what each site computes during partial evaluation,
3. run the Fig. 2 query ("people influencing Crispin Wright and their
   interests") with the fully optimized gStoreD engine,
4. print the answers, the plan and the per-stage statistics, and
5. cross-check the distributed answer against the centralized engine from
   the same session.

Run it with::

    python examples/quickstart.py
"""

import repro
from repro.core.partial_eval import evaluate_fragment
from repro.sparql import QueryGraph, format_query


def main() -> None:
    # partitioner="paper" reproduces the exact Fig. 1 fragment assignment.
    with repro.open(dataset="paper", partitioner="paper") as session:
        print(f"Loaded the running-example RDF graph: {session.graph.stats()}")

        print("\nFragments (one per site, Fig. 1):")
        for fragment in session.partitioned:
            print(f"  {fragment.name}: {fragment.stats()}")

        query = session.queries["example"]
        print("\nQuery (Fig. 2):")
        print(format_query(query))

        # --- what each site computes during partial evaluation -------------
        query_graph = QueryGraph(query.bgp)
        print("\nLocal partial matches per fragment (Fig. 3):")
        for fragment in session.partitioned:
            outcome = evaluate_fragment(fragment, query_graph)
            print(f"  {fragment.name}: {outcome.count} local partial matches")
            for lpm in outcome.local_partial_matches:
                print(f"    {lpm.serialization(query_graph)}")

        # --- the distributed engine ----------------------------------------
        print("\nPlan (session.explain):")
        print(session.explain("example"))

        answer = session.query("example")
        print(f"\nDistributed answer ({len(answer)} solutions):")
        for row in answer.to_dicts():
            print(f"  {row}")

        print("\nPer-stage statistics:")
        for stage in answer.statistics.stages:
            print(f"  {stage.as_dict()}")
        print(f"  total time: {answer.statistics.total_time_ms:.2f} ms")
        print(f"  total data shipment: {answer.statistics.total_shipment_kb:.2f} KB")

        # --- sanity check against the centralized engine -------------------
        centralized = session.query("example", engine="centralized")
        same = answer.sorted_rows() == centralized.sorted_rows()
        print(f"\nDistributed answer equals centralized answer: {same}")


if __name__ == "__main__":
    main()
