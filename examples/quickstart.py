#!/usr/bin/env python3
"""Quickstart: partition an RDF graph, build a cluster, run a SPARQL query.

The script walks through the paper's running example (Fig. 1-3):

1. build the small philosophers RDF graph,
2. partition it over three simulated sites exactly as in Fig. 1,
3. run the Fig. 2 query ("people influencing Crispin Wright and their
   interests") with the fully optimized gStoreD engine,
4. print the answers, the per-stage statistics and the local partial matches
   each fragment produced, and
5. cross-check the distributed answer against a centralized evaluation.

Run it with::

    python examples/quickstart.py
"""

from repro.core import EngineConfig, GStoreDEngine
from repro.core.partial_eval import evaluate_fragment
from repro.datasets.paper_example import (
    build_example_graph,
    build_example_partitioning,
    example_query,
)
from repro.distributed import build_cluster
from repro.sparql import QueryGraph, format_query
from repro.store import evaluate_centralized


def main() -> None:
    graph = build_example_graph()
    print(f"Loaded the running-example RDF graph: {graph.stats()}")

    partitioned = build_example_partitioning()
    partitioned.validate()
    print("\nFragments (one per site, Fig. 1):")
    for fragment in partitioned:
        print(f"  {fragment.name}: {fragment.stats()}")

    query = example_query()
    print("\nQuery (Fig. 2):")
    print(format_query(query))

    # --- what each site computes during partial evaluation -----------------
    query_graph = QueryGraph(query.bgp)
    print("\nLocal partial matches per fragment (Fig. 3):")
    for fragment in partitioned:
        outcome = evaluate_fragment(fragment, query_graph)
        print(f"  {fragment.name}: {outcome.count} local partial matches")
        for lpm in outcome.local_partial_matches:
            print(f"    {lpm.serialization(query_graph)}")

    # --- the distributed engine --------------------------------------------
    cluster = build_cluster(partitioned)
    engine = GStoreDEngine(cluster, EngineConfig.full())
    answer = engine.execute(query, query_name="fig2-example", dataset="paper-example")

    print(f"\nDistributed answer ({len(answer.results)} solutions):")
    for row in answer.results.to_table():
        print(f"  {row}")

    print("\nPer-stage statistics:")
    for stage in answer.statistics.stages:
        print(f"  {stage.as_dict()}")
    print(f"  total time: {answer.statistics.total_time_ms:.2f} ms")
    print(f"  total data shipment: {answer.statistics.total_shipment_kb:.2f} KB")

    # --- sanity check against a centralized run ----------------------------
    centralized = evaluate_centralized(graph, query)
    same = answer.results.same_solutions(
        centralized.project(query.effective_projection, distinct=True)
    )
    print(f"\nDistributed answer equals centralized answer: {same}")


if __name__ == "__main__":
    main()
