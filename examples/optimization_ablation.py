#!/usr/bin/env python3
"""Optimization ablation: what each of the paper's three optimizations buys.

The paper's Fig. 9 compares four configurations of the same engine —
gStoreD-Basic (plain partial evaluation and assembly, as in the earlier
framework), gStoreD-LA (+ LEC-feature-based assembly), gStoreD-LO (+ LEC
feature-based pruning) and gStoreD (+ candidate bit-vector exchange).

This example runs the ablation on the YAGO2-like workload and prints, per
query and configuration: response time, data shipment, the number of local
partial matches that reached the coordinator, and the number of join
attempts the assembly performed.  The join-attempt and shipped-LPM columns
show *why* the optimizations help, not just that they do.

Run it with::

    python examples/optimization_ablation.py
"""

import repro
from repro.bench import format_table
from repro.core import ABLATION_CONFIGS

NUM_SITES = 6


def main() -> None:
    # One session prepares the workload; each ablation level is the same
    # registry engine under a different EngineConfig.
    with repro.open(dataset="YAGO2", sites=NUM_SITES) as session:
        print("Dataset:", session.graph.stats())
        print("Cluster:", session.cluster.stats())

        rows = []
        for query_name in session.queries:
            for config in ABLATION_CONFIGS:
                session.cluster.reset_network()
                with repro.make_engine("gstored", session.cluster, config=config) as engine:
                    result = engine.execute(
                        session.queries[query_name], query_name=query_name, dataset="YAGO2"
                    )
                stats = result.statistics
                rows.append(
                    {
                        "query": query_name,
                        "engine": config.label,
                        "time_ms": round(stats.total_time_ms, 2),
                        "shipment_kb": round(stats.total_shipment_kb, 2),
                        "lpms_found": stats.counter("partial_evaluation", "local_partial_matches"),
                        "lpms_assembled": stats.counter("assembly", "assembled_local_partial_matches"),
                        "join_attempts": stats.counter("assembly", "join_attempts"),
                        "results": stats.num_results,
                    }
                )
    print("\nAblation results (rows grouped by query):")
    print(format_table(rows))

    print(
        "\nReading guide: gStoreD-LA reduces 'join_attempts' without changing what is shipped;\n"
        "gStoreD-LO additionally shrinks 'lpms_assembled' (irrelevant partial matches are pruned\n"
        "before shipping); the full gStoreD also shrinks 'lpms_found' because extended candidates\n"
        "that are internal nowhere are never expanded in the first place."
    )


if __name__ == "__main__":
    main()
