#!/usr/bin/env python3
"""Federated querying over administratively partitioned data sources.

The paper motivates partitioning-tolerant SPARQL processing with platforms
such as the European Bioinformatics Institute, where several RDF datasets
(BioModels, ChEMBL, Ensembl, ...) are published by *different* organisations
and therefore partitioned by publisher, not by any query-friendly criterion.

This example builds a small federation of three "publishers":

* a **gene catalogue** (genes, their encoded proteins, chromosome locations),
* a **pathway database** (pathways and which proteins participate in them),
* a **disease registry** (diseases, associated genes, approved drugs).

Because the publisher decides where its triples live, cross-publisher queries
(e.g. "drugs targeting a pathway through some protein") always span several
sites.  The example shows that the engine answers them correctly over the
publisher-defined partitioning, and how much data moves per stage.

Run it with::

    python examples/federated_bioinformatics.py
"""

from repro import Session
from repro.partition import build_partitioned_graph, partitioning_cost
from repro.rdf import Namespace, RDFGraph, Triple
from repro.sparql import format_query, parse_query

GENE = Namespace("http://example.org/genes/")
PATH = Namespace("http://example.org/pathways/")
DISEASE = Namespace("http://example.org/diseases/")
ONT = Namespace("http://example.org/bio-ontology#")

ENCODES = ONT.term("encodes")
LOCATED_ON = ONT.term("locatedOn")
PARTICIPATES_IN = ONT.term("participatesIn")
PART_OF = ONT.term("partOf")
ASSOCIATED_WITH = ONT.term("associatedWith")
TREATED_BY = ONT.term("treatedBy")
TARGETS = ONT.term("targets")


def build_federation() -> tuple[RDFGraph, dict]:
    """Three publishers' datasets merged into one graph + publisher assignment."""
    graph = RDFGraph(name="bio-federation")
    assignment = {}

    def add(triple: Triple, publisher: int) -> None:
        graph.add(triple)
        # The *subject's* publisher owns the triple; objects keep whichever
        # publisher first mentioned them (administrative partitioning).
        assignment.setdefault(triple.subject, publisher)
        assignment.setdefault(triple.object, publisher)

    chromosomes = [GENE.term(f"chr{i}") for i in range(1, 4)]
    genes = [GENE.term(f"GENE{i}") for i in range(12)]
    proteins = [GENE.term(f"PROT{i}") for i in range(12)]
    for i, gene in enumerate(genes):
        add(Triple(gene, ENCODES, proteins[i]), publisher=0)
        add(Triple(gene, LOCATED_ON, chromosomes[i % len(chromosomes)]), publisher=0)

    pathways = [PATH.term(f"PW{i}") for i in range(4)]
    for i, protein in enumerate(proteins):
        add(Triple(protein, PARTICIPATES_IN, pathways[i % len(pathways)]), publisher=1)
    for i, pathway in enumerate(pathways[1:], start=1):
        add(Triple(pathway, PART_OF, pathways[0]), publisher=1)

    diseases = [DISEASE.term(f"DIS{i}") for i in range(5)]
    drugs = [DISEASE.term(f"DRUG{i}") for i in range(6)]
    for i, disease in enumerate(diseases):
        add(Triple(disease, ASSOCIATED_WITH, genes[2 * i]), publisher=2)
        add(Triple(disease, TREATED_BY, drugs[i]), publisher=2)
    for i, drug in enumerate(drugs):
        add(Triple(drug, TARGETS, proteins[(2 * i) % len(proteins)]), publisher=2)

    return graph, assignment


def main() -> None:
    graph, assignment = build_federation()
    partitioned = build_partitioned_graph(
        graph, assignment, num_fragments=3, strategy="by-publisher"
    )
    partitioned.validate()
    print("Federated RDF graph:", graph.stats())
    print("Publisher-defined partitioning:")
    for fragment in partitioned:
        print(f"  publisher {fragment.fragment_id}: {fragment.stats()}")
    print("  Section VII cost of this partitioning:", round(partitioning_cost(partitioned).cost, 2))

    queries = {
        "drugs reaching a pathway through their protein target": """
            PREFIX ont: <http://example.org/bio-ontology#>
            SELECT ?drug ?protein ?pathway WHERE {
                ?drug ont:targets ?protein .
                ?protein ont:participatesIn ?pathway .
            }
        """,
        "diseases whose associated gene encodes a protein in pathway PW0": """
            PREFIX ont: <http://example.org/bio-ontology#>
            PREFIX pw: <http://example.org/pathways/>
            SELECT ?disease ?gene ?protein WHERE {
                ?disease ont:associatedWith ?gene .
                ?gene ont:encodes ?protein .
                ?protein ont:participatesIn pw:PW0 .
            }
        """,
        "candidate repurposing: drugs treating a disease associated with a gene whose protein they also target": """
            PREFIX ont: <http://example.org/bio-ontology#>
            SELECT ?drug ?disease ?gene WHERE {
                ?disease ont:treatedBy ?drug .
                ?disease ont:associatedWith ?gene .
                ?gene ont:encodes ?protein .
                ?drug ont:targets ?protein .
            }
        """,
    }

    # The session owns the cluster built from the publisher partitioning,
    # the engines and their pools; the `with` block shuts everything down.
    with Session.from_partitioned(partitioned, dataset="bio-federation") as session:
        for title, text in queries.items():
            query = parse_query(text)
            print(f"\n=== {title} ===")
            print(format_query(query))
            answer = session.query(query, query_name=title)
            centralized = session.query(query, query_name=title, engine="centralized")
            agrees = answer.sorted_rows() == centralized.sorted_rows()
            print(f"solutions: {len(answer)} (centralized agrees: {agrees})")
            for row in answer.to_dicts()[:5]:
                print(f"  {row}")
            stats = answer.statistics
            print(f"  time: {stats.total_time_ms:.2f} ms, shipment: {stats.total_shipment_kb:.2f} KB, "
                  f"local partial matches: {stats.counter('partial_evaluation', 'local_partial_matches')}")


if __name__ == "__main__":
    main()
