#!/usr/bin/env python3
"""Compare gStoreD with the simulated DREAM / S2RDF / CliqueSquare / S2X baselines.

A small-scale rendition of the paper's Fig. 12: every system answers the
same benchmark queries over the same partitioned data, and the table reports
response time, data shipment and result counts.  All systems must agree on
the answers (the script checks this), so the interesting columns are the
costs.

Run it with::

    python examples/system_comparison.py [LUBM|YAGO2|BTC]
"""

import sys

from repro.baselines import BASELINE_ENGINES, make_baseline
from repro.bench import format_table
from repro.core import EngineConfig, GStoreDEngine
from repro.datasets import get_dataset
from repro.distributed import build_cluster
from repro.partition import HashPartitioner

NUM_SITES = 6


def main(dataset_name: str = "YAGO2") -> None:
    spec = get_dataset(dataset_name)
    graph = spec.generate(spec.default_scale)
    cluster = build_cluster(HashPartitioner(NUM_SITES).partition(graph))
    queries = spec.queries()
    print(f"Dataset {dataset_name}: {graph.stats()}")

    rows = []
    reference_answers = {}
    for query_name, query in queries.items():
        cluster.reset_network()
        gstored = GStoreDEngine(cluster, EngineConfig.full())
        result = gstored.execute(query, query_name=query_name, dataset=dataset_name)
        reference_answers[query_name] = result.results.as_set()
        rows.append(
            {
                "query": query_name,
                "system": "gStoreD",
                "time_ms": round(result.statistics.total_time_ms, 2),
                "shipment_kb": round(result.statistics.total_shipment_kb, 2),
                "results": len(result.results),
            }
        )
        for baseline_name in BASELINE_ENGINES:
            cluster.reset_network()
            baseline = make_baseline(baseline_name, cluster)
            baseline_result = baseline.execute(query, query_name=query_name, dataset=dataset_name)
            agrees = baseline_result.results.as_set() == reference_answers[query_name]
            rows.append(
                {
                    "query": query_name,
                    "system": baseline_name,
                    "time_ms": round(baseline_result.statistics.total_time_ms, 2),
                    "shipment_kb": round(baseline_result.statistics.total_shipment_kb, 2),
                    "results": len(baseline_result.results),
                    "agrees": agrees,
                }
            )

    print(format_table(rows))
    disagreements = [row for row in rows if row.get("agrees") is False]
    print(f"\nSystems disagreeing with gStoreD: {len(disagreements)} (expected 0)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "YAGO2")
