#!/usr/bin/env python3
"""Compare every registered evaluator on the same workload (Fig. 12, small).

A small-scale rendition of the paper's Fig. 12 driven entirely by the
``repro.api`` engine registry: one session prepares the workload, and every
registry engine — gStoreD, the DREAM / CliqueSquare / S2RDF / S2X
simulations and the centralized ground truth — answers the same benchmark
queries over it.  All engines must agree on the answers (the script checks
this via ``Result.sorted_rows()``), so the interesting columns are the
costs.

Run it with::

    python examples/system_comparison.py [LUBM|YAGO2|BTC]
"""

import sys

import repro
from repro.api import engine_names
from repro.bench import format_table


def main(dataset_name: str = "YAGO2") -> None:
    with repro.open(dataset=dataset_name, sites=6) as session:
        print(f"Dataset {dataset_name}: {session.graph.stats()}")

        rows = []
        disagreements = 0
        for query_name in session.queries:
            # One run per engine; the centralized run doubles as the reference.
            results = {name: session.query(query_name, engine=name) for name in engine_names()}
            reference = results["centralized"]
            for engine_name, result in results.items():
                agrees = result.sorted_rows() == reference.sorted_rows()
                disagreements += 0 if agrees else 1
                rows.append(
                    {
                        "query": query_name,
                        "system": result.statistics.engine,
                        "time_ms": round(result.statistics.total_time_ms, 2),
                        "shipment_kb": round(result.statistics.total_shipment_kb, 2),
                        "results": len(result),
                        "agrees": agrees,
                    }
                )

        print(format_table(rows))
        print(f"\nEngines disagreeing with the centralized answer: {disagreements} (expected 0)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "YAGO2")
