#!/usr/bin/env python3
"""Partitioning advisor: pick the best existing partitioning for a workload.

Section VII of the paper observes that the cost of the "partial evaluation
and assembly" framework does not depend simply on the number of crossing
edges: what matters is how the crossing edges are *distributed* over
boundary vertices, combined with how balanced the fragments are.  The paper
therefore defines CostPartitioning(F) and selects, among the partitionings
that already exist, the one with the smallest cost.

This example plays the role of that advisor on the LUBM-like dataset:

1. build the three candidate partitionings (hash, semantic hash, METIS-like),
2. score them with the Section VII cost model,
3. pick the best one, and
4. verify the prediction by actually running the non-star benchmark queries
   over every candidate and comparing response times and shipped bytes.

Run it with::

    python examples/partitioning_advisor.py
"""

from repro import Session
from repro.bench import format_table
from repro.datasets import lubm
from repro.partition import (
    HashPartitioner,
    MetisLikePartitioner,
    SemanticHashPartitioner,
    partitioning_cost,
    select_best_partitioning,
)

NUM_SITES = 6
QUERIES = ("LQ1", "LQ3", "LQ6", "LQ7")


def main() -> None:
    graph = lubm.generate(scale=1)
    print("Dataset:", graph.stats())

    candidates = [
        HashPartitioner(NUM_SITES).partition(graph),
        SemanticHashPartitioner(NUM_SITES).partition(graph),
        MetisLikePartitioner(NUM_SITES).partition(graph),
    ]

    print("\nSection VII cost of each candidate partitioning:")
    cost_rows = [partitioning_cost(candidate).as_row() for candidate in candidates]
    print(format_table(cost_rows))

    best, best_cost = select_best_partitioning(candidates)
    print(f"\nAdvisor's choice: {best.strategy!r} (cost {best_cost.cost:.2f})")

    print("\nVerification — running the non-star LUBM queries on every candidate:")
    verification_rows = []
    queries = lubm.queries()
    for candidate in candidates:
        # One session per candidate partitioning; session.query handles
        # engine construction, network resets and pool shutdown.
        with Session.from_partitioned(candidate, dataset="LUBM", queries=queries) as session:
            total_time = 0.0
            total_shipment = 0.0
            for name in QUERIES:
                result = session.query(name)
                total_time += result.statistics.total_time_ms
                total_shipment += result.statistics.total_shipment_kb
        verification_rows.append(
            {
                "partitioning": candidate.strategy,
                "predicted_cost": round(partitioning_cost(candidate).cost, 2),
                "workload_time_ms": round(total_time, 1),
                "workload_shipment_kb": round(total_shipment, 1),
            }
        )
    print(format_table(verification_rows))

    fastest = min(verification_rows, key=lambda row: row["workload_time_ms"])
    print(
        f"\nFastest partitioning in the measurement: {fastest['partitioning']!r}; "
        f"advisor predicted: {best.strategy!r}"
    )


if __name__ == "__main__":
    main()
