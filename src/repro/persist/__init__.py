"""Durable cluster persistence: the on-disk dictionary-encoded store.

``repro.persist`` makes the in-memory reproduction restartable: a
:class:`ClusterStore` is a single SQLite file holding one cluster's term
dictionary, integer triple table, vertex→fragment assignment, per-fragment
planner statistics and a write-ahead delta table, under a versioned
manifest.  ``repro.open(path=...)`` builds-and-saves or reopens a cluster
from it, :meth:`~repro.distributed.Cluster.apply` journals mutations into
it, and process-pool workers bootstrap their sites by opening the file
read-only instead of unpickling fragment payloads.

The determinism contract (see docs/persistence.md): a cluster reopened from
a store file replays the delta table through the exact code path the live
cluster mutated through, so answers, match sequences and shipment
fingerprints are bit-identical to the never-persisted cluster.
"""

from .store import SCHEMA_VERSION, ClusterStore, StoreError

__all__ = [
    "SCHEMA_VERSION",
    "ClusterStore",
    "StoreError",
]
