"""The SQLite-backed cluster store.

One store file holds one cluster, in five tables plus a manifest:

* ``manifest`` — key/value: format marker, schema version, dataset name and
  scale, graph name, partitioning strategy, fragment count, delta head.
* ``terms`` — the dictionary: dense integer id → N3 text.  Base ids are
  assigned in sorted-N3 order; terms first seen by a delta get appended ids
  in first-appearance order (mirroring the in-memory encoding's append
  discipline).
* ``triples`` — the *base* master graph as integer ``(s, p, o)`` rows.
* ``assignment`` — term id → fragment id, the Definition 1 vertex
  assignment (sticky entries included, so replayed routing is identical).
* ``stats`` — per-fragment planner statistics as JSON, collected at
  snapshot time so reopening skips the collection pass.
* ``deltas`` — the write-ahead delta table: ``(seq, op, s, p, o)`` rows,
  one per effective mutation, appended (and fsynced) by
  :meth:`~repro.distributed.Cluster.apply` before it returns.

Fragments are deliberately *not* stored: they are a pure function of
(base graph, assignment, delta sequence), and per-fragment SQL against the
indexed ``assignment`` table loads one site's edges in O(|F_k|), not O(|E|).

Crash safety: every write happens inside one SQLite transaction with
``synchronous=FULL``, so a crash mid-commit leaves the previous committed
state (SQLite's rollback journal restores it on the next open).  A torn
``apply`` therefore loses at most the op batch being journaled — never the
base snapshot, never previously committed deltas.  Snapshot rewrites
(:meth:`ClusterStore.compact`) deliberately avoid DDL: DDL autocommits
eagerly under pysqlite's legacy transaction handling, so tables are cleared
with ``DELETE FROM`` inside one explicit ``BEGIN IMMEDIATE`` transaction —
a crash mid-compaction rolls back to the pre-compaction store, never to an
empty file.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..planner.statistics import GraphStatistics, collect_statistics
from ..rdf.graph import RDFGraph
from ..rdf.ntriples import parse_term
from ..rdf.terms import Node, Term
from ..rdf.triples import Triple

PathLike = Union[str, Path]

#: Manifest format marker of a cluster store file.
STORE_FORMAT = "repro-store"
#: Bump on any incompatible schema change; open() refuses newer files.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE manifest (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE terms (id INTEGER PRIMARY KEY, n3 TEXT NOT NULL UNIQUE);
CREATE TABLE triples (
    s INTEGER NOT NULL, p INTEGER NOT NULL, o INTEGER NOT NULL,
    PRIMARY KEY (s, p, o)
) WITHOUT ROWID;
CREATE INDEX triples_by_o ON triples(o);
CREATE TABLE assignment (term INTEGER PRIMARY KEY, fragment_id INTEGER NOT NULL);
CREATE INDEX assignment_by_fragment ON assignment(fragment_id);
CREATE TABLE stats (fragment_id INTEGER PRIMARY KEY, payload TEXT NOT NULL);
CREATE TABLE deltas (
    seq INTEGER PRIMARY KEY, op TEXT NOT NULL,
    s INTEGER NOT NULL, p INTEGER NOT NULL, o INTEGER NOT NULL
);
"""

_TABLES = ("manifest", "terms", "triples", "assignment", "stats", "deltas")


class StoreError(ValueError):
    """Raised for malformed, missing or misused store files."""


class ClusterStore:
    """One cluster's durable home: a single SQLite file.

    Use the classmethods: :meth:`create` snapshots a
    :class:`~repro.partition.PartitionedGraph` into a fresh file,
    :meth:`open` attaches to an existing one (``read_only=True`` for worker
    processes).  :meth:`load_cluster` rebuilds the full
    :class:`~repro.distributed.Cluster`, replaying the delta table;
    :meth:`bootstrap_site` rebuilds a single site the same way (the
    process-pool worker path).
    """

    def __init__(self, path: Path, connection: sqlite3.Connection, read_only: bool) -> None:
        self._path = Path(path)
        self._conn = connection
        self._read_only = read_only
        self._lock = threading.Lock()
        self._manifest = self._read_manifest()
        self._head = int(self._manifest.get("delta_head", "0"))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: PathLike,
        partitioned,
        *,
        dataset: str = "",
        scale: Optional[int] = None,
        statistics: Optional[Mapping[int, GraphStatistics]] = None,
        overwrite: bool = False,
    ) -> "ClusterStore":
        """Snapshot ``partitioned`` into a brand-new store file at ``path``.

        ``statistics`` optionally supplies already-collected per-fragment
        summaries (keyed by fragment id); missing ones are collected here.
        Refuses to clobber an existing file unless ``overwrite`` is set.
        """
        path = Path(path)
        if path.exists():
            if not overwrite:
                raise StoreError(
                    f"store file already exists: {path} (pass overwrite/--force to replace it)"
                )
            path.unlink()
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(str(path), check_same_thread=False)
        connection.execute("PRAGMA synchronous=FULL")
        try:
            # DDL once, at creation time; snapshot rewrites never drop or
            # recreate tables (see _write_snapshot).
            connection.executescript(_SCHEMA)
            _write_snapshot(
                connection,
                partitioned,
                dataset=dataset,
                scale=scale,
                statistics=statistics,
            )
        except BaseException:
            connection.close()
            path.unlink(missing_ok=True)
            raise
        return cls(path, connection, read_only=False)

    @classmethod
    def open(cls, path: PathLike, *, read_only: bool = False) -> "ClusterStore":
        """Attach to an existing store file (``read_only`` for workers)."""
        path = Path(path)
        if not path.exists():
            raise StoreError(f"no store file at {path}")
        try:
            if read_only:
                connection = sqlite3.connect(
                    f"file:{path}?mode=ro", uri=True, check_same_thread=False
                )
            else:
                connection = sqlite3.connect(str(path), check_same_thread=False)
                connection.execute("PRAGMA synchronous=FULL")
            connection.execute("PRAGMA busy_timeout=5000")
        except sqlite3.DatabaseError as error:
            raise StoreError(f"{path} is not a repro store file: {error}") from None
        try:
            store = cls(path, connection, read_only=read_only)
        except BaseException:
            connection.close()
            raise
        return store

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ClusterStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def read_only(self) -> bool:
        return self._read_only

    @property
    def delta_head(self) -> int:
        """Sequence number of the newest journaled delta (0 = none)."""
        return self._head

    @property
    def manifest(self) -> Dict[str, str]:
        return dict(self._manifest)

    @property
    def num_fragments(self) -> int:
        return int(self._manifest["num_fragments"])

    @property
    def dataset(self) -> str:
        return self._manifest.get("dataset", "")

    @property
    def scale(self) -> Optional[int]:
        raw = self._manifest.get("scale", "null")
        value = json.loads(raw)
        return int(value) if value is not None else None

    def _read_manifest(self) -> Dict[str, str]:
        try:
            rows = self._conn.execute("SELECT key, value FROM manifest").fetchall()
        except sqlite3.DatabaseError as error:
            raise StoreError(f"{self._path} is not a repro store file: {error}") from None
        manifest = dict(rows)
        if manifest.get("format") != STORE_FORMAT:
            raise StoreError(f"{self._path} is not a repro store file")
        version = int(manifest.get("schema_version", "0"))
        if version > SCHEMA_VERSION:
            raise StoreError(
                f"{self._path} uses store schema v{version}; this build reads up to v{SCHEMA_VERSION}"
            )
        return manifest

    def info(self) -> Dict[str, object]:
        """Summary of the file for ``repro store info`` and tests."""
        counts = {
            name: self._conn.execute(f"SELECT COUNT(*) FROM {name}").fetchone()[0]
            for name in ("terms", "triples", "assignment", "deltas")
        }
        return {
            "path": str(self._path),
            "format": self._manifest.get("format", ""),
            "schema_version": int(self._manifest.get("schema_version", "0")),
            "dataset": self.dataset,
            "scale": self.scale,
            "graph_name": self._manifest.get("graph_name", ""),
            "strategy": self._manifest.get("strategy", ""),
            "num_fragments": self.num_fragments,
            "delta_head": self.delta_head,
            "base_terms": counts["terms"],
            "base_triples": counts["triples"],
            "assigned_vertices": counts["assignment"],
            "pending_deltas": counts["deltas"],
            "file_bytes": self._path.stat().st_size,
        }

    # ------------------------------------------------------------------
    # Write-ahead delta journal
    # ------------------------------------------------------------------
    def append_ops(self, ops: Iterable[Tuple[str, Triple]]) -> int:
        """Journal effective mutation ops; returns the new delta head.

        Terms never seen before get appended dictionary ids in
        first-appearance order — the same discipline the in-memory
        :class:`~repro.store.TermDictionary` uses, so replayed encodings
        agree with live ones.  The batch commits (and fsyncs) atomically;
        ``self`` is only mutated *after* the commit, so a failed transaction
        (disk full, busy timeout) leaves both the file and the in-memory
        head/manifest exactly as they were — the next append reuses the same
        sequence numbers instead of skipping past phantom ones.
        """
        if self._read_only:
            raise StoreError(f"store opened read-only: {self._path}")
        staged = list(ops)
        if not staged:
            return self._head
        with self._lock:
            head = self._head
            with self._conn:
                cursor = self._conn.cursor()
                next_id = cursor.execute(
                    "SELECT COALESCE(MAX(id), -1) + 1 FROM terms"
                ).fetchone()[0]
                rows = []
                for op, triple in staged:
                    ids = []
                    for term in (triple.subject, triple.predicate, triple.object):
                        text = term.n3()
                        found = cursor.execute(
                            "SELECT id FROM terms WHERE n3 = ?", (text,)
                        ).fetchone()
                        if found is None:
                            cursor.execute(
                                "INSERT INTO terms (id, n3) VALUES (?, ?)", (next_id, text)
                            )
                            ids.append(next_id)
                            next_id += 1
                        else:
                            ids.append(found[0])
                    head += 1
                    rows.append((head, op, ids[0], ids[1], ids[2]))
                cursor.executemany(
                    "INSERT INTO deltas (seq, op, s, p, o) VALUES (?, ?, ?, ?, ?)", rows
                )
                cursor.execute(
                    "UPDATE manifest SET value = ? WHERE key = 'delta_head'", (str(head),)
                )
            # Past this point the transaction is committed; only now may the
            # in-memory view advance.
            self._head = head
            self._manifest["delta_head"] = str(head)
        return self._head

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _load_terms(self) -> List[Term]:
        """Every term, as a dense id-indexed list (ids are dense by design)."""
        rows = self._conn.execute("SELECT id, n3 FROM terms ORDER BY id").fetchall()
        terms: List[Term] = [None] * len(rows)  # type: ignore[list-item]
        for term_id, text in rows:
            if term_id >= len(terms):  # pragma: no cover - defensive
                raise StoreError(f"non-dense term id {term_id} in {self._path}")
            terms[term_id] = parse_term(text)
        return terms

    def _decode_terms(self, ids: Iterable[int]) -> Dict[int, Term]:
        """Decode just ``ids`` (chunked SQL IN probes)."""
        wanted = sorted(set(ids))
        decoded: Dict[int, Term] = {}
        for start in range(0, len(wanted), 500):
            chunk = wanted[start : start + 500]
            marks = ",".join("?" * len(chunk))
            for term_id, text in self._conn.execute(
                f"SELECT id, n3 FROM terms WHERE id IN ({marks})", chunk
            ):
                decoded[term_id] = parse_term(text)
        missing = set(wanted) - set(decoded)
        if missing:  # pragma: no cover - defensive
            raise StoreError(f"unknown term ids {sorted(missing)[:5]} in {self._path}")
        return decoded

    def _assign_term_id(
        self,
        term_id: int,
        partner_id: int,
        assign_ids: Dict[int, int],
        num_fragments: int,
    ) -> int:
        """Sticky fragment of ``term_id``, mirroring ``DeltaRouter._assign``.

        Operates purely on integer ids against the stored assignment; only a
        vertex with no assignment *and* no assigned partner touches the terms
        table, and then only to FNV-hash its N3 text — no term is parsed.
        """
        from ..partition.delta import stable_fragment_of_n3

        fragment_id = assign_ids.get(term_id)
        if fragment_id is None:
            fragment_id = assign_ids.get(partner_id)
            if fragment_id is None:
                row = self._conn.execute(
                    "SELECT n3 FROM terms WHERE id = ?", (term_id,)
                ).fetchone()
                if row is None:  # pragma: no cover - defensive
                    raise StoreError(f"unknown term id {term_id} in {self._path}")
                fragment_id = stable_fragment_of_n3(row[0], num_fragments)
            assign_ids[term_id] = fragment_id
        return fragment_id

    def load_deltas(
        self, terms: Optional[Mapping[int, Term]] = None
    ) -> List[Tuple[str, Triple]]:
        """The journaled op sequence, oldest first, decoded to triples."""
        rows = self._conn.execute(
            "SELECT op, s, p, o FROM deltas ORDER BY seq"
        ).fetchall()
        if not rows:
            return []
        if terms is None:
            ids = set()
            for _, s, p, o in rows:
                ids.update((s, p, o))
            terms = self._decode_terms(ids)
        return [
            (op, Triple(terms[s], terms[p], terms[o])) for op, s, p, o in rows
        ]

    def load_graph(self) -> RDFGraph:
        """The *base* master graph (deltas not applied)."""
        terms = self._load_terms()
        graph = RDFGraph(name=self._manifest.get("graph_name", ""))
        for s, p, o in self._conn.execute("SELECT s, p, o FROM triples"):
            graph.add(Triple(terms[s], terms[p], terms[o]))
        return graph

    def load_statistics(self, fragment_id: int) -> Optional[GraphStatistics]:
        """The stored planner statistics of one fragment (base state)."""
        row = self._conn.execute(
            "SELECT payload FROM stats WHERE fragment_id = ?", (fragment_id,)
        ).fetchone()
        if row is None:
            return None
        return GraphStatistics.from_dict(json.loads(row[0]))

    def load_cluster(self, network=None):
        """Rebuild the full cluster: base snapshot + delta replay.

        The replay goes through :meth:`Cluster.apply_ops` — the exact code
        path live mutations took — from the exact base the live cluster
        mutated from, which is what makes the reopened cluster's encodings,
        fragments and statistics bit-identical to the live one's.  The store
        attaches to the cluster *after* replay so replayed ops are not
        re-journaled.
        """
        from ..distributed.cluster import Cluster
        from ..partition.fragment import build_partitioned_graph

        terms = self._load_terms()
        graph = RDFGraph(name=self._manifest.get("graph_name", ""))
        for s, p, o in self._conn.execute("SELECT s, p, o FROM triples"):
            graph.add(Triple(terms[s], terms[p], terms[o]))
        assignment = {
            terms[term_id]: fragment_id
            for term_id, fragment_id in self._conn.execute(
                "SELECT term, fragment_id FROM assignment"
            )
        }
        partitioned = build_partitioned_graph(
            graph,
            assignment,
            num_fragments=self.num_fragments,
            strategy=self._manifest.get("strategy", "loaded"),
            validate=False,
        )
        cluster = Cluster(partitioned, network=network)
        for site in cluster:
            statistics = self.load_statistics(site.site_id)
            if statistics is not None:
                site.store.preload_statistics(statistics)
        ops = self.load_deltas({i: term for i, term in enumerate(terms)})
        if ops:
            cluster.apply_ops(ops)
        cluster.attach_store(self)
        return cluster

    def load_fragment(self, fragment_id: int, *, up_to: Optional[int] = None):
        """Rebuild one :class:`~repro.partition.Fragment` (deltas applied).

        Backs the v3 store-reference fragment payloads of
        :mod:`repro.partition.serialization`: the payload carries
        ``(store_path, fragment_id, delta_seq)`` and this method materializes
        the fragment exactly as it stood at ``delta_seq``.
        """
        return self.bootstrap_site(fragment_id, use_planner=False, up_to=up_to).fragment

    def bootstrap_site(
        self,
        fragment_id: int,
        *,
        use_planner: bool = True,
        plan_cache_size: Optional[int] = None,
        up_to: Optional[int] = None,
    ):
        """Rebuild one site from the store: the process-pool worker path.

        Loads only this fragment's base edges — O(|F_k|) via the indexed
        assignment table, never a scan of the full triple table — then
        force-encodes the base state and replays the delta journal through
        the same router/patch discipline the coordinator used, so the
        worker's encoding matches the coordinator's bit for bit.  The
        journal is routed on integer term ids against the stored assignment
        (replicating :class:`~repro.partition.delta.DeltaRouter`'s sticky
        discipline, with the same FNV-1a fallback on the N3 text for terms
        first seen by a delta), so only the terms of this fragment's base
        edges and of the ops that actually touch it are ever decoded —
        bootstrap stays O(|F_k| + |deltas|), never O(|V|).

        ``up_to`` bounds the replay at a delta sequence number (inclusive),
        so a worker bootstrapped from a payload pinned at ``delta_seq = n``
        reproduces exactly the coordinator state that emitted the payload
        even if the file has grown since.
        """
        from ..distributed.site import Site
        from ..partition.delta import DeltaEffect, apply_delta_effect
        from ..partition.fragment import Fragment
        from ..planner.plan_cache import DEFAULT_PLAN_CACHE_SIZE
        from ..store.encoding import encoded_view, patch_encoded_view

        if plan_cache_size is None:
            plan_cache_size = DEFAULT_PLAN_CACHE_SIZE
        num_fragments = self.num_fragments
        if not (0 <= fragment_id < num_fragments):
            raise StoreError(
                f"store has no fragment {fragment_id} (fragments: 0..{num_fragments - 1})"
            )
        assign_ids: Dict[int, int] = dict(
            self._conn.execute("SELECT term, fragment_id FROM assignment")
        )
        edge_rows = self._conn.execute(
            "SELECT s, p, o FROM triples"
            " WHERE s IN (SELECT term FROM assignment WHERE fragment_id = ?)"
            " UNION "
            "SELECT s, p, o FROM triples"
            " WHERE o IN (SELECT term FROM assignment WHERE fragment_id = ?)",
            (fragment_id, fragment_id),
        ).fetchall()
        head = self._head if up_to is None else up_to
        delta_rows = self._conn.execute(
            "SELECT op, s, p, o FROM deltas WHERE seq <= ? ORDER BY seq", (head,)
        ).fetchall()
        # Route the whole journal on ids (the sticky assignment updates must
        # run in sequence order), keeping only the ops that touch this
        # fragment; DeltaRouter only ever *adds* assignments, so the base
        # edge-classification lookups below are unaffected.
        routed: List[Tuple[str, int, int, int, int, int]] = []
        for op, s, p, o in delta_rows:
            if op == "+":
                home_s = self._assign_term_id(s, o, assign_ids, num_fragments)
                home_o = self._assign_term_id(o, s, assign_ids, num_fragments)
            else:
                # A removed triple was present, so both endpoints are assigned.
                home_s = assign_ids[s]
                home_o = assign_ids[o]
            if fragment_id in (home_s, home_o):
                routed.append((op, s, p, o, home_s, home_o))
        ids = set()
        for s, p, o in edge_rows:
            ids.update((s, p, o))
        for _, s, p, o, _, _ in routed:
            ids.update((s, p, o))
        terms: Mapping[int, Term] = self._decode_terms(ids)
        fragment = Fragment(fragment_id)
        for s, p, o in edge_rows:
            triple = Triple(terms[s], terms[p], terms[o])
            home_s = assign_ids[s]
            home_o = assign_ids[o]
            if home_s == home_o:
                fragment.internal_edges.add(triple)
                fragment.internal_vertices.add(triple.subject)
                fragment.internal_vertices.add(triple.object)
            else:
                fragment.crossing_edges.add(triple)
                if home_s == fragment_id:
                    fragment.internal_vertices.add(triple.subject)
                    fragment.extended_vertices.add(triple.object)
                else:
                    fragment.internal_vertices.add(triple.object)
                    fragment.extended_vertices.add(triple.subject)
        site = Site(fragment_id, fragment)
        statistics = self.load_statistics(fragment_id)
        if statistics is not None:
            site.store.preload_statistics(statistics)
        if routed:
            site_graph = site.store.graph
            base_encoded = encoded_view(site_graph)
            ops_here: List[Tuple[str, Triple]] = []
            for op, s, p, o, home_s, home_o in routed:
                triple = Triple(terms[s], terms[p], terms[o])
                kind = "add" if op == "+" else "remove"
                # At most one of the routed effects lands here: the internal
                # effect when both endpoints are home, else the crossing
                # replica whose extended endpoint is the foreign one.
                if home_s == home_o:
                    effect = DeltaEffect(kind, fragment_id, triple, crossing=False)
                elif home_s == fragment_id:
                    effect = DeltaEffect(
                        kind, fragment_id, triple, crossing=True, extended=triple.object
                    )
                else:
                    effect = DeltaEffect(
                        kind, fragment_id, triple, crossing=True, extended=triple.subject
                    )
                if op == "+":
                    site.store.add(triple)
                else:
                    site.store.discard(triple)
                apply_delta_effect(fragment, effect, graph=site_graph)
                ops_here.append((op, triple))
            patch_encoded_view(site_graph, base_encoded, ops_here)
        if use_planner:
            site.enable_planner(plan_cache_size)
        else:
            site.disable_planner()
        return site

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def compact(self) -> Dict[str, object]:
        """Fold the delta journal into a fresh base snapshot, then VACUUM.

        Rebuilds the cluster (replaying all deltas), rewrites every table
        from the resulting state in one transaction, and resets the delta
        head to zero.  Observable results (answers, search steps, shipment
        fingerprints) are unchanged; the op-level replay history is
        intentionally discarded.
        """
        if self._read_only:
            raise StoreError(f"store opened read-only: {self._path}")
        folded = self._conn.execute("SELECT COUNT(*) FROM deltas").fetchone()[0]
        cluster = self.load_cluster()
        cluster.attach_store(None)
        with self._lock:
            _write_snapshot(
                self._conn,
                cluster.partitioned_graph,
                dataset=self.dataset,
                scale=self.scale,
                statistics={site.site_id: site.store.statistics for site in cluster},
            )
            self._conn.execute("VACUUM")
            self._manifest = self._read_manifest()
            self._head = 0
        return {"folded_deltas": folded, "file_bytes": self._path.stat().st_size}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<ClusterStore {str(self._path)!r} deltas={self._head}>"


def _write_snapshot(
    connection: sqlite3.Connection,
    partitioned,
    *,
    dataset: str,
    scale: Optional[int],
    statistics: Optional[Mapping[int, GraphStatistics]],
) -> None:
    """(Re)write every table from ``partitioned``'s current state, atomically.

    The schema already exists (created once by :meth:`ClusterStore.create`);
    tables are cleared with ``DELETE FROM`` and refilled inside one explicit
    ``BEGIN IMMEDIATE`` transaction.  DDL (``DROP``/``CREATE``/
    ``executescript``) is deliberately absent: under pysqlite's legacy
    transaction handling it autocommits eagerly, which would leave a window
    where a crash strands the file with its tables dropped — on an existing
    store (:meth:`ClusterStore.compact`) that would be permanent data loss.
    Here a crash or error at any point rolls back to the previous committed
    snapshot.
    """
    graph = partitioned.graph
    assignment: Dict[Node, int] = partitioned.assignment
    terms = set(assignment)
    for triple in graph:
        terms.add(triple.subject)
        terms.add(triple.predicate)
        terms.add(triple.object)
    ordered = sorted(term.n3() for term in terms)
    term_id = {text: position for position, text in enumerate(ordered)}
    if connection.in_transaction:  # pragma: no cover - defensive
        connection.commit()
    connection.execute("BEGIN IMMEDIATE")
    try:
        for table in _TABLES:
            connection.execute(f"DELETE FROM {table}")
        connection.executemany(
            "INSERT INTO terms (id, n3) VALUES (?, ?)",
            ((position, text) for text, position in term_id.items()),
        )
        connection.executemany(
            "INSERT INTO triples (s, p, o) VALUES (?, ?, ?)",
            (
                (
                    term_id[t.subject.n3()],
                    term_id[t.predicate.n3()],
                    term_id[t.object.n3()],
                )
                for t in graph
            ),
        )
        connection.executemany(
            "INSERT INTO assignment (term, fragment_id) VALUES (?, ?)",
            (
                (term_id[vertex.n3()], fragment_id)
                for vertex, fragment_id in assignment.items()
            ),
        )
        for fragment in partitioned:
            summary = None
            if statistics is not None:
                summary = statistics.get(fragment.fragment_id)
            if summary is None:
                summary = collect_statistics(fragment.to_graph())
            connection.execute(
                "INSERT INTO stats (fragment_id, payload) VALUES (?, ?)",
                (fragment.fragment_id, json.dumps(summary.as_dict())),
            )
        manifest = {
            "format": STORE_FORMAT,
            "schema_version": str(SCHEMA_VERSION),
            "dataset": dataset or "",
            "scale": json.dumps(scale),
            "graph_name": graph.name,
            "strategy": partitioned.strategy,
            "num_fragments": str(partitioned.num_fragments),
            "delta_head": "0",
        }
        connection.executemany(
            "INSERT INTO manifest (key, value) VALUES (?, ?)", manifest.items()
        )
    except BaseException:
        connection.rollback()
        raise
    connection.commit()
