"""The :class:`Session` facade — the package's front door.

A session owns everything one line of research code used to wire by hand:
workload preparation (dataset generation, partitioning, cluster
construction), the executor backend (including warm thread/process pools),
the engine instances, and the plan cache living on the cluster.  The
canonical entry point is :func:`open_session`, re-exported as
``repro.open``::

    import repro

    with repro.open(dataset="lubm", scale=1, sites=4, partitioner="metis",
                    executor="threads", engine="gstored") as session:
        result = session.query("LQ1")          # a named benchmark query...
        result = session.query("SELECT ?s WHERE { ?s ?p ?o }")  # ...or raw SPARQL
        print(result.sorted_rows(), result.statistics.total_time_ms)
        print(session.explain("LQ1"))          # the cost-based plan

Every evaluator of the paper's comparison is reachable from the same
session (``session.query(..., engine="dream")``); engines are created
lazily, cached, and share the session's executor backend.  Closing the
session (or leaving the ``with`` block) closes every engine it created and
shuts the backend's worker pools down.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..core.config import EngineConfig
from ..datasets.registry import DATASETS, get_dataset
from ..distributed.cluster import Cluster, build_cluster
from ..distributed.network import NetworkModel
from ..exec import ExecutorBackend, make_backend
from ..faults import FaultPlan
from ..obs import (
    CATEGORY_PLANNING,
    MetricsRegistry,
    StageProfiler,
    Trace,
    Tracer,
    record_query,
    record_query_failure,
    record_statistics_spans,
)
from ..partition.fragment import PartitionedGraph
from ..partition.partitioners import make_partitioner
from ..planner.optimizer import QueryPlanner
from ..store import KERNEL_ENV, resolve_kernel
from ..store.encoding import encoded_patches, encoded_rebuilds
from ..rdf.graph import RDFGraph
from ..sparql.algebra import SelectQuery
from ..sparql.parser import parse_query
from ..sparql.query_graph import QueryGraph
from .cache import ResultCache, result_cache_key
from .engines import QueryEngine, engine_spec, make_engine, resolve_engine_name
from .result import Result

#: Names accepted for the paper's running example (Figs. 1-3).
PAPER_EXAMPLE_NAMES = ("paper", "example", "paper_example")

#: ``partitioner=`` values reproducing the exact Fig. 1 fragment assignment.
FIGURE1_PARTITIONERS = ("paper", "figure1")


def _dataset_choices() -> Tuple[str, ...]:
    return tuple(sorted(DATASETS)) + ("paper",)


def _partitioner_choices() -> Tuple[str, ...]:
    from ..partition.partitioners import PARTITIONER_REGISTRY

    return tuple(sorted(PARTITIONER_REGISTRY)) + ("paper (dataset='paper' only)",)


def _partition(strategy: str, num_sites: int, graph: RDFGraph):
    """Partition ``graph``, turning an unknown strategy into a ValueError
    that enumerates the valid choices (like every other bad argument)."""
    try:
        return make_partitioner(strategy, num_sites).partition(graph)
    except KeyError:
        raise ValueError(
            f"unknown partitioner {strategy!r}; choose from: "
            f"{', '.join(_partitioner_choices())}"
        ) from None


class _ReadWriteGate:
    """Many concurrent readers (queries) or one exclusive writer (update).

    Writers are preferred: once one waits, new readers queue behind it, so
    a steady stream of queries cannot starve a mutation.  Neither side is
    reentrant — a query never issues another query or an update on the same
    thread, and ``update`` never queries.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._writing = False

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            while self._writing or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writing or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()


class QueryBatch:
    """What :meth:`Session.query_many` returns: results plus a batch report.

    ``results`` holds one :class:`Result` per input query, in input order
    (the batch iterates and indexes like that list); ``report`` holds one
    plain dict per query with the engine/backend the query ran on and its
    headline numbers (rows, total time, shipment, cache hit) — ready for a
    table or a JSON dump without touching the statistics objects.
    """

    def __init__(self, results: List[Result], report: List[Dict[str, object]]) -> None:
        self.results = list(results)
        self.report = list(report)

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> Result:
        return self.results[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<QueryBatch queries={len(self.results)}>"


class Session:
    """One prepared workload plus the engines and executor pool to query it.

    Construct through :func:`open_session` (datasets by name), or through
    :meth:`from_partitioned` / :meth:`from_cluster` for ad-hoc graphs the
    caller partitioned itself (federation scenarios).  Sessions are context
    managers; :meth:`close` is idempotent.

    Sessions are safe to share between threads: concurrent :meth:`query`
    calls each get their own shipment ledger on the cluster's message bus
    (see :class:`~repro.distributed.ShipmentLedger`), engine construction
    and lifecycle are lock-guarded, and the determinism contract holds —
    a query returns the same answers, statistics and shipment fingerprint
    whether it ran alone or next to others (``docs/serving.md``).
    :meth:`update` serializes against in-flight queries through an exclusive
    writer gate, so mutating a session that is also serving traffic is safe.
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        dataset: str = "",
        scale: Optional[int] = None,
        queries: Optional[Dict[str, SelectQuery]] = None,
        engine: str = "gstored",
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        config: Optional[EngineConfig] = None,
        trace: bool = False,
        profile: Optional[bool] = None,
        result_cache: int = 0,
        faults: Optional[FaultPlan] = None,
        store: Optional[object] = None,
        kernel: Optional[str] = None,
        **config_options,
    ) -> None:
        self.cluster = cluster
        #: Matching-kernel selection (``"vectorized"`` / ``"python"`` /
        #: ``"sets"``; see :mod:`repro.store.kernel`).  ``None`` — the default
        #: — keeps the process default ($REPRO_KERNEL, else vectorized when
        #: numpy is importable).  An explicit choice is validated here (so a
        #: typo or a vectorized request without numpy fails at open time) and
        #: exported through $REPRO_KERNEL *before* the executor backend is
        #: created below, because process-pool workers inherit the
        #: environment once, at pool creation.  The choice never changes
        #: answers — only which filtering substrate computes them.
        self.kernel: Optional[str] = resolve_kernel(kernel) if kernel is not None else None
        self._prior_kernel_env: Optional[str] = None
        self._kernel_env_set = False
        if self.kernel is not None:
            self._prior_kernel_env = os.environ.get(KERNEL_ENV)
            self._kernel_env_set = True
            os.environ[KERNEL_ENV] = self.kernel
        #: A :class:`~repro.persist.ClusterStore` this session *owns* (it was
        #: opened or created on the session's behalf by ``repro.open(path=…)``)
        #: and closes in :meth:`close`.  Independent of :attr:`store`, which
        #: reflects whatever store the cluster currently has attached.
        self._owned_store = store
        self.dataset = dataset
        self.scale = scale
        #: Fault-injection plan applied to every gStoreD-family query of the
        #: session (``None`` — the default — injects nothing; see
        #: :mod:`repro.faults` and ``docs/faults.md``).
        self.faults = faults
        #: Queries that returned *partial* answers after an unrecoverable
        #: site loss (``result.degraded``); surfaced by ``/healthz``.
        self.degraded_queries = 0
        #: Per-query tracer (see :mod:`repro.obs`), or ``None`` when the
        #: session was opened without ``trace=True``.  Each ``query()`` call
        #: starts one trace; the returned result carries it as ``.trace``.
        self.tracer: Optional[Tracer] = Tracer() if trace else None
        #: Session-wide metrics registry, always on (recording a finished
        #: query's statistics costs microseconds; the engines themselves
        #: never touch it).
        self.metrics = MetricsRegistry()
        #: Per-stage cProfile capture — enabled by ``profile=True`` or the
        #: ``REPRO_PROFILE`` environment variable; ``None`` when off.
        self.profiler: Optional[StageProfiler] = StageProfiler.from_env(profile)
        #: Named benchmark queries of the workload; ``query()`` accepts these
        #: names directly.
        self.queries: Dict[str, SelectQuery] = dict(queries or {})
        config = config if config is not None else EngineConfig.full()
        if config_options:
            config = config.with_options(**config_options)
        if executor is not None:
            config = config.with_executor(executor, workers)
        elif workers is not None:
            config = config.with_workers(workers)
        self.config = config
        #: The session-owned executor backend: every gStoreD-family engine
        #: the session creates shares this pool (warm across queries), and
        #: :meth:`close` shuts it down exactly once.
        self.backend: ExecutorBackend = make_backend(config.executor, config.max_workers)
        # resolve_engine_name validates eagerly, so an unknown default engine
        # fails at open() time; construction itself stays lazy.
        self.default_engine = resolve_engine_name(engine)
        self._engines: Dict[str, QueryEngine] = {}
        self._closed = False
        # Guards lazy engine construction and close(); per-query state never
        # takes it, so queries only contend here on an engine's first use.
        self._lock = threading.RLock()
        # Serializes update() against in-flight queries: every query holds
        # the read side for its whole execution, update() takes the write
        # side, so a mutation can never interleave with a query that would
        # observe half-patched encodings or fragments.
        self._mutation_gate = _ReadWriteGate()
        #: Opt-in result cache (``result_cache=N`` entries); ``None`` — the
        #: default — preserves the execute-every-call contract.
        self.result_cache: Optional[ResultCache] = (
            ResultCache(result_cache, self.metrics) if result_cache else None
        )
        # record_query reports encoded-graph rebuilds (and delta patches) as
        # deltas since open, so one session's metrics never absorb another
        # session's builds.
        self._rebuilds_at_open = encoded_rebuilds()
        self._patches_at_open = encoded_patches()

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_partitioned(
        cls,
        partitioned: PartitionedGraph,
        *,
        network: Optional[NetworkModel] = None,
        **options,
    ) -> "Session":
        """Open a session over a graph the caller already partitioned."""
        return cls(build_cluster(partitioned, network=network), **options)

    @classmethod
    def from_cluster(cls, cluster: Cluster, **options) -> "Session":
        """Open a session over an existing cluster (shared with the caller).

        The session still owns its backend and engines — but never the
        cluster, which the caller keeps and may pass to several sessions.
        """
        return cls(cluster, **options)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> RDFGraph:
        """The full (unpartitioned) RDF graph behind the cluster."""
        return self.cluster.graph

    @property
    def partitioned(self) -> PartitionedGraph:
        """The partitioned graph the cluster was built from."""
        return self.cluster.partitioned_graph

    @property
    def num_sites(self) -> int:
        """Number of simulated sites."""
        return self.cluster.num_sites

    @property
    def planner(self) -> QueryPlanner:
        """The coordinator's cost-based planner (plan cache included).

        The planner is owned by the cluster so its cache survives engine
        churn; the session exposes it for cache introspection
        (``session.planner.cache.hit_rate``) and explicit warm-up.
        """
        return self.cluster.coordinator_planner(
            self.config.plan_cache_size, backend=self.backend
        )

    @property
    def store(self):
        """The cluster's attached :class:`~repro.persist.ClusterStore`, or
        ``None`` for a purely in-memory session."""
        return self.cluster.store

    # ------------------------------------------------------------------
    # Engines
    # ------------------------------------------------------------------
    def engine(self, name: Optional[str] = None) -> QueryEngine:
        """The (cached) evaluator for ``name`` — default: the session's engine.

        gStoreD-family engines receive the session's :class:`EngineConfig`
        and share the session's executor backend; fixed-strategy engines
        (baselines, centralized) take neither.  Construction is lock-guarded:
        two threads asking for the same engine concurrently get the *same*
        instance, never a duplicate whose twin leaks unclosed.
        """
        self._ensure_open()
        canonical = resolve_engine_name(name) if name is not None else self.default_engine
        with self._lock:
            self._ensure_open()
            built = self._engines.get(canonical)
            if built is None:
                if engine_spec(canonical).accepts_config:
                    built = make_engine(
                        canonical,
                        self.cluster,
                        config=self.config,
                        backend=self.backend,
                        faults=self.faults,
                    )
                else:
                    built = make_engine(canonical, self.cluster)
                self._engines[canonical] = built
            return built

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def _resolve_query(self, query: Union[str, SelectQuery]) -> Tuple[SelectQuery, str]:
        """Accept a parsed query, a named benchmark query, or SPARQL text."""
        if isinstance(query, SelectQuery):
            return query, ""
        if query in self.queries:
            return self.queries[query], query
        return parse_query(query), ""

    def query(
        self,
        query: Union[str, SelectQuery],
        *,
        engine: Optional[str] = None,
        query_name: str = "",
    ) -> Result:
        """Parse, plan and execute ``query``; returns a :class:`Result`.

        ``query`` may be a parsed :class:`SelectQuery`, the name of one of
        the workload's benchmark queries (``session.queries``), or raw SPARQL
        text.  Execution runs under a per-query shipment ledger on the
        cluster's message bus, so each result's statistics describe exactly
        one execution — even with other queries in flight on other threads —
        and the result keeps its own detached copies of the statistics and
        the shipment breakdown, so a later ``query()`` cannot zero them
        retroactively.

        When the session traces (``repro.open(..., trace=True)``) the
        returned result additionally carries ``result.trace``; the session's
        :attr:`metrics` registry is updated after every query either way —
        including failures, which finish the trace with an ``error``
        attribute and count into ``repro_query_failures_total`` before the
        exception propagates.

        Queries hold the session's mutation gate (read side) while they run,
        so a concurrent :meth:`update` waits for them instead of mutating
        the cluster under their feet.
        """
        self._ensure_open()
        with self._mutation_gate.read():
            return self._execute(query, engine=engine, query_name=query_name)

    def _execute(
        self,
        query: Union[str, SelectQuery],
        *,
        engine: Optional[str],
        query_name: str,
    ) -> Result:
        chosen = self.engine(engine)
        engine_label = getattr(chosen, "name", str(engine or self.default_engine))
        trace: Optional[Trace] = None
        if self.tracer is not None:
            trace = self.tracer.start_trace(
                "query", engine=engine_label, dataset=self.dataset
            )
        try:
            if trace is not None:
                with trace.span("parse", CATEGORY_PLANNING) as span:
                    parsed, resolved_name = self._resolve_query(query)
                    span.set(query_name=query_name or resolved_name or "(inline)")
            else:
                parsed, resolved_name = self._resolve_query(query)
            cache_key = None
            if self.result_cache is not None:
                canonical = (
                    resolve_engine_name(engine) if engine is not None else self.default_engine
                )
                cache_key = result_cache_key(
                    parsed, engine=canonical, graph_version=self.graph.version
                )
                hit = self.result_cache.get(cache_key)
                if hit is not None:
                    if trace is not None:
                        trace.finish(rows=len(hit), cache_hit=True)
                        hit.trace = trace
                    return hit
            obs_kwargs = {}
            if getattr(chosen, "supports_tracing", False):
                if trace is not None:
                    obs_kwargs["trace"] = trace
                if self.profiler is not None:
                    obs_kwargs["profiler"] = self.profiler
            with self.cluster.bus.ledger() as ledger:
                result = chosen.execute(
                    parsed,
                    query_name=query_name or resolved_name,
                    dataset=self.dataset,
                    **obs_kwargs,
                )
        except BaseException as error:
            # Exception-safe finalization: the trace must not leak an open
            # span tree, and the failure must leave a metrics footprint.
            if trace is not None:
                trace.finish(error=f"{type(error).__name__}: {error}")
            record_query_failure(
                self.metrics, engine=engine_label, backend=self.backend.name
            )
            raise
        if trace is not None and not obs_kwargs:
            # Engines outside the tracing contract still yield a trace:
            # replay their statistics into synthesized spans.
            record_statistics_spans(trace, result.statistics)
        shipment = ledger.snapshot()
        result.detach_statistics()
        result.shipment = shipment
        if trace is not None:
            trace.finish(rows=len(result))
            result.trace = trace
        record_query(
            self.metrics,
            result.statistics,
            shipment=shipment,
            engine=getattr(chosen, "name", ""),
            backend=self.backend.name,
            pool_size=getattr(self.backend, "max_workers", 1) or 1,
            encoded_rebuilds=encoded_rebuilds() - self._rebuilds_at_open,
            encoded_patches=encoded_patches() - self._patches_at_open,
            kernel=self.kernel or resolve_kernel(None),
            shards_per_site=self.config.shards_per_site,
        )
        if result.degraded:
            with self._lock:
                self.degraded_queries += 1
        if cache_key is not None and not result.degraded:
            self.result_cache.put(cache_key, result)
        return result

    def query_many(
        self,
        queries: Iterable[Union[str, SelectQuery]],
        *,
        engine: Optional[str] = None,
    ) -> QueryBatch:
        """Execute a batch of queries and return results plus a per-query report.

        The batch amortizes what single calls pay per query: every input is
        parsed up front, and for planning engines the coordinator planner
        (graph statistics + plan cache) is warmed once before the first
        execution instead of on its critical path — so repeated templates in
        the batch plan from the shared cache.  Execution itself runs through
        :meth:`query`, keeping the per-query ledger/trace/metrics contract.
        """
        self._ensure_open()
        resolved = [self._resolve_query(item) for item in queries]
        canonical = resolve_engine_name(engine) if engine is not None else self.default_engine
        if engine_spec(canonical).accepts_config and self.config.use_planner:
            self.planner  # noqa: B018 — warm statistics + plan cache once
        results: List[Result] = []
        report: List[Dict[str, object]] = []
        for parsed, name in resolved:
            result = self.query(parsed, engine=engine, query_name=name)
            results.append(result)
            stats = result.statistics
            report.append(
                {
                    "query_name": name or stats.query_name or "(inline)",
                    "engine": stats.engine,
                    "backend": self.backend.name,
                    "rows": len(result),
                    "total_time_ms": round(stats.total_time_ms, 3),
                    "shipped_bytes": result.shipment.total_bytes if result.shipment else 0,
                    "messages": result.shipment.total_messages if result.shipment else 0,
                    "cache_hit": result.cache_hit,
                }
            )
        return QueryBatch(results, report)

    def update(self, add: Iterable = (), remove: Iterable = ()):
        """Apply a triple delta to the session's cluster, in place.

        Thin veneer over :meth:`~repro.distributed.Cluster.apply`: removals
        run first, then additions; no-ops are skipped; every index, fragment
        and statistic is *patched* rather than rebuilt; and with a
        store-backed session (``repro.open(path=…)``) the effective ops are
        journaled to the store's write-ahead delta table before this returns,
        so a reopened session resumes from the mutated state.

        Updates take the session's mutation gate exclusively: an update
        waits for every in-flight :meth:`query` (on any thread, including
        :class:`~repro.api.AsyncSession` and ``repro serve`` traffic) to
        drain, runs alone, and only then lets queued queries proceed — no
        caller discipline required, and no query ever observes half-patched
        encodings or fragments.  Returns the
        :class:`~repro.distributed.AppliedDelta` summary.
        """
        self._ensure_open()
        with self._mutation_gate.write():
            return self.cluster.apply(add=add, remove=remove)

    def explain(self, query: Union[str, SelectQuery]) -> str:
        """The cost-based plan for ``query`` (per connected component), as text."""
        self._ensure_open()
        parsed, _ = self._resolve_query(query)
        planner = self.planner
        lines = []
        components = parsed.bgp.connected_components()
        for position, component in enumerate(components):
            query_graph = QueryGraph(component)
            if len(components) > 1:
                lines.append(f"-- component {position + 1}/{len(components)} --")
            lines.append(f"query shape: {query_graph.classify_shape()}")
            lines.append(planner.explain(query_graph))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("this Session is closed; open a new one with repro.open(...)")

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (a closed session rejects queries)."""
        return self._closed

    def close(self) -> None:
        """Close every engine the session created and shut its pools down.

        Every engine gets its ``close()`` call and the backend is shut down
        even when an engine's close raises — the first such exception is
        re-raised after the cleanup completes, so a misbehaving engine can
        no longer leak the session's worker pools.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            engines = list(self._engines.values())
            self._engines.clear()
        # Undo the session's $REPRO_KERNEL export (last-wins between
        # overlapping sessions, but a closed session never keeps polluting
        # the process default).
        if self._kernel_env_set:
            self._kernel_env_set = False
            if os.environ.get(KERNEL_ENV) == self.kernel:
                if self._prior_kernel_env is None:
                    os.environ.pop(KERNEL_ENV, None)
                else:
                    os.environ[KERNEL_ENV] = self._prior_kernel_env
        first_error: Optional[BaseException] = None
        try:
            for engine in engines:
                try:
                    engine.close()
                except BaseException as error:
                    if first_error is None:
                        first_error = error
        finally:
            try:
                self.backend.close()
            finally:
                if self._owned_store is not None:
                    self._owned_store.close()
        if first_error is not None:
            raise first_error

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "closed" if self._closed else "open"
        return (
            f"<Session {state} dataset={self.dataset!r} sites={self.num_sites} "
            f"engine={self.default_engine!r} executor={self.backend.name!r}>"
        )


def _prepare_workload(
    name: str, strategy: str, scale: Optional[int], sites: Optional[int]
) -> Tuple[PartitionedGraph, str, Optional[int], Dict[str, SelectQuery]]:
    """Generate and partition one bundled workload.

    Returns ``(partitioned, dataset_name, scale, queries)`` — the pieces both
    the in-memory and the store-backed ``open_session`` paths assemble their
    session from.
    """
    if name.lower() in PAPER_EXAMPLE_NAMES:
        from ..datasets.paper_example import (
            build_example_graph,
            build_example_partitioning,
            example_query,
        )

        num_sites = sites if sites is not None else 3
        if strategy in FIGURE1_PARTITIONERS:
            if num_sites != 3:
                raise ValueError(
                    f"the Fig. 1 partitioning has exactly 3 fragments; got sites={num_sites}"
                )
            partitioned = build_example_partitioning()
        else:
            partitioned = _partition(strategy, num_sites, build_example_graph())
        return partitioned, "paper-example", None, {"example": example_query()}

    if strategy in FIGURE1_PARTITIONERS:
        raise ValueError(
            f"partitioner {strategy!r} reproduces the Fig. 1 example "
            f"partitioning and only applies to dataset='paper'; choose from: "
            f"{', '.join(_partitioner_choices())}"
        )
    try:
        spec = get_dataset(name.upper())
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from: {', '.join(_dataset_choices())}"
        ) from None
    chosen_scale = scale if scale is not None else spec.default_scale
    graph = spec.generate(chosen_scale)
    num_sites = sites if sites is not None else 6
    partitioned = _partition(strategy, num_sites, graph)
    return partitioned, spec.name, chosen_scale, spec.queries()


def _workload_queries(dataset_name: str) -> Dict[str, SelectQuery]:
    """The named benchmark queries for a store manifest's dataset name."""
    if not dataset_name or dataset_name.lower() in ("paper-example",) + PAPER_EXAMPLE_NAMES:
        from ..datasets.paper_example import example_query

        return {"example": example_query()}
    try:
        return get_dataset(dataset_name.upper()).queries()
    except KeyError:
        return {}


def open_session(
    dataset: str = "paper",
    *,
    path: Optional[str] = None,
    scale: Optional[int] = None,
    sites: Optional[int] = None,
    partitioner: str = "hash",
    engine: str = "gstored",
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    config: Optional[EngineConfig] = None,
    network: Optional[NetworkModel] = None,
    trace: bool = False,
    profile: Optional[bool] = None,
    result_cache: int = 0,
    faults: Optional[FaultPlan] = None,
    kernel: Optional[str] = None,
    **config_options,
) -> Session:
    """Open a :class:`Session` over one of the bundled workloads.

    ``dataset`` is ``"lubm"``, ``"yago2"``, ``"btc"`` (case-insensitive) or
    ``"paper"`` for the running example of Figs. 1-3 (whose
    ``partitioner="paper"`` reproduces the exact Fig. 1 fragment
    assignment).  ``engine`` is any :func:`~repro.api.make_engine` registry
    name; ``executor``/``workers`` select the per-site fan-out backend;
    ``trace=True`` turns on per-query tracing (results gain ``.trace``) and
    ``profile=True`` per-stage profiling (see :mod:`repro.obs`);
    ``result_cache=N`` enables the opt-in session result cache (N entries,
    see :mod:`repro.api.cache`); ``faults=FaultPlan.parse(...)`` injects
    deterministic site failures into every gStoreD-family query (see
    :mod:`repro.faults` and ``docs/faults.md``);
    ``kernel="vectorized"|"python"|"sets"`` pins the matching kernel
    (validated at open time and exported via ``$REPRO_KERNEL`` so worker
    processes agree; answers are identical for every choice — see
    ``docs/performance.md``); any extra keyword becomes an
    :class:`EngineConfig` option (``use_lec_pruning=False``,
    ``shards_per_site=4``, ...).  This
    function is re-exported as ``repro.open``.

    ``path`` makes the session durable (see :mod:`repro.persist` and
    ``docs/persistence.md``): an existing store file is opened and its
    cluster rebuilt from disk — the file's manifest, not the ``dataset`` /
    ``scale`` / ``partitioner`` arguments, decides the workload — while a
    missing file is built from those arguments once and saved, so the next
    ``repro.open(path=…)`` restarts warm.  Either way the session journals
    :meth:`Session.update` deltas into the file and closes it on exit.
    """
    name = dataset.strip()
    strategy = partitioner.strip().lower()
    session_options = dict(
        engine=engine,
        executor=executor,
        workers=workers,
        config=config,
        trace=trace,
        profile=profile,
        result_cache=result_cache,
        faults=faults,
        kernel=kernel,
        **config_options,
    )
    if path is not None:
        from pathlib import Path

        from ..persist import ClusterStore

        if Path(path).exists():
            store = ClusterStore.open(path)
            try:
                cluster = store.load_cluster(network=network)
            except BaseException:
                store.close()
                raise
            return Session.from_cluster(
                cluster,
                dataset=store.dataset,
                scale=store.scale,
                queries=_workload_queries(store.dataset),
                store=store,
                **session_options,
            )
        partitioned, dataset_name, chosen_scale, queries = _prepare_workload(
            name, strategy, scale, sites
        )
        cluster = build_cluster(partitioned, network=network)
        store = ClusterStore.create(
            path, partitioned, dataset=dataset_name, scale=chosen_scale
        )
        try:
            # The store collected per-fragment statistics while snapshotting;
            # hand them to the sites so nobody collects the same numbers twice.
            for site in cluster:
                statistics = store.load_statistics(site.site_id)
                if statistics is not None:
                    site.store.preload_statistics(statistics)
            cluster.attach_store(store)
            return Session.from_cluster(
                cluster,
                dataset=dataset_name,
                scale=chosen_scale,
                queries=queries,
                store=store,
                **session_options,
            )
        except BaseException:
            store.close()
            raise
    partitioned, dataset_name, chosen_scale, queries = _prepare_workload(
        name, strategy, scale, sites
    )
    return Session.from_partitioned(
        partitioned,
        network=network,
        dataset=dataset_name,
        scale=chosen_scale,
        queries=queries,
        **session_options,
    )
