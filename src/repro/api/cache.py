"""Session-level result cache: answers keyed by query template + bindings.

Production query streams are dominated by repeated *instantiations* of a
small number of templates, and the answers only change when the data does.
This cache therefore keys a finished :class:`~repro.api.Result` on

* the plan cache's canonical *shape key* (constants abstracted, join
  structure preserved — see :func:`repro.planner.plan_cache.shape_key`),
* the concrete constant *bindings* in edge order (two instantiations of one
  template are distinct entries),
* the evaluating engine, the projection/``DISTINCT``/``LIMIT`` modifiers, and
* the graph's :attr:`~repro.rdf.graph.RDFGraph.version` — a mutation bumps
  the version and naturally invalidates every entry for the old snapshot.

The cache is **opt-in** (``repro.open(..., result_cache=128)``): the default
session keeps the historical contract that every ``query()`` call executes
and yields fresh statistics.  Hits and misses feed the session's
:class:`~repro.obs.MetricsRegistry` (``repro_result_cache_hits_total`` /
``repro_result_cache_misses_total`` + a size gauge), pre-created at zero so
scrapes see the families before the first query.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from ..obs import MetricsRegistry
from ..planner.plan_cache import shape_key
from ..rdf.terms import Variable
from ..sparql.algebra import SelectQuery
from ..sparql.query_graph import QueryGraph
from .result import Result

#: Metric family names fed by the cache (documented in docs/observability.md).
HITS_FAMILY = "repro_result_cache_hits_total"
MISSES_FAMILY = "repro_result_cache_misses_total"
SIZE_FAMILY = "repro_result_cache_size"

#: Help strings, kept in one place so the pre-created and per-event series
#: register identically.
_HITS_HELP = "Session result-cache hits (answers served without executing)."
_MISSES_HELP = "Session result-cache misses (answers computed and stored)."
_SIZE_HELP = "Entries currently held by the session result cache."


def result_cache_key(
    query: SelectQuery, *, engine: str, graph_version: int
) -> Hashable:
    """The cache key of ``query`` as evaluated by ``engine`` at ``graph_version``.

    Reuses the plan cache's shape abstraction and re-attaches what the shape
    deliberately drops: the concrete constants (in edge order, so two
    constants that the shape maps to one ``$N`` token still distinguish the
    instantiations) and the solution modifiers.
    """
    graph = QueryGraph(query.bgp)
    shape = shape_key(graph)
    bindings: Tuple[str, ...] = tuple(
        term.n3()
        for edge in graph.edges
        for term in (edge.subject, edge.predicate, edge.object)
        if not isinstance(term, Variable)
    )
    projection = tuple(variable.name for variable in query.effective_projection)
    return (
        engine,
        graph_version,
        shape,
        bindings,
        projection,
        bool(query.distinct),
        query.limit,
        bool(query.is_ask),
    )


@dataclass(frozen=True)
class _Entry:
    """What a hit must reproduce: answers, statistics and shipment."""

    result_set: object
    statistics: object
    shipment: object

    def materialize(self) -> Result:
        """A fresh :class:`Result` — its own statistics copy, ``cache_hit=True``."""
        result = Result(self.result_set, self.statistics.snapshot())
        result.shipment = self.shipment
        result.cache_hit = True
        return result


class ResultCache:
    """A bounded, lock-guarded LRU of finished query results.

    Stores the *detached* statistics and shipment snapshot alongside the
    result set; :meth:`get` materializes a fresh :class:`Result` per hit (a
    deep statistics copy each time), so callers can never mutate the cached
    numbers through a returned result.
    """

    def __init__(self, maxsize: int, metrics: Optional[MetricsRegistry] = None) -> None:
        if maxsize < 1:
            raise ValueError(f"result cache size must be at least 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self._metrics = metrics
        self.hits = 0
        self.misses = 0
        if metrics is not None:
            metrics.counter(HITS_FAMILY, _HITS_HELP).inc(0)
            metrics.counter(MISSES_FAMILY, _MISSES_HELP).inc(0)
            metrics.gauge(SIZE_FAMILY, _SIZE_HELP).set(0)

    def get(self, key: Hashable) -> Optional[Result]:
        """The cached result for ``key`` (LRU-refreshed), or ``None`` on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        if self._metrics is not None:
            family = HITS_FAMILY if entry is not None else MISSES_FAMILY
            help_text = _HITS_HELP if entry is not None else _MISSES_HELP
            self._metrics.counter(family, help_text).inc()
        return entry.materialize() if entry is not None else None

    def put(self, key: Hashable, result: Result) -> None:
        """Store a finished (statistics-detached) result under ``key``.

        Degraded results (partial answers after an unrecoverable site loss,
        see :attr:`Result.degraded`) are refused: caching one would keep
        serving partial answers after the cluster healed.  Failed queries
        never reach this method at all — the session only stores results
        whose execution returned.
        """
        if getattr(result, "degraded", False):
            return
        entry = _Entry(result.results, result.statistics, result.shipment)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            size = len(self._entries)
        if self._metrics is not None:
            self._metrics.gauge(SIZE_FAMILY, _SIZE_HELP).set(size)

    def clear(self) -> None:
        """Drop every entry (the hit/miss counters keep accumulating)."""
        with self._lock:
            self._entries.clear()
        if self._metrics is not None:
            self._metrics.gauge(SIZE_FAMILY, _SIZE_HELP).set(0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def describe(self) -> dict:
        """Occupancy and hit accounting, mirroring ``PlanCache.describe()``."""
        with self._lock:
            size = len(self._entries)
        return {
            "size": size,
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 3),
        }
