"""One engine protocol and one registry for every evaluator in the repository.

The paper's evaluation pits gStoreD against DREAM, two relational cloud
systems, a graph-parallel cloud system and a centralized ground truth.  The
codebase historically exposed each through a different surface —
``GStoreDEngine(cluster, config, backend=...)``, hand-constructed
:class:`~repro.baselines.DistributedEngine` subclasses, and the bare
function :func:`~repro.store.evaluate_centralized`.  This module levels
them:

* :class:`QueryEngine` is the one contract every evaluator satisfies:
  ``execute(query, query_name=..., dataset=...)`` returning a
  :class:`~repro.api.Result`, plus ``close()`` and context-manager support;
* :func:`make_engine` instantiates any evaluator by registry name over a
  :class:`~repro.distributed.Cluster`;
* :class:`CentralizedEngine` adapts the centralized matcher into the same
  contract (with a single timed ``centralized_evaluation`` stage), so the
  ground truth is just another registry entry.

Registry names (see :func:`engine_names`):

========================  =====================================================
``gstored``               the paper's engine (LEC-accelerated partial
                          evaluation; honors ``EngineConfig`` and an injected
                          :class:`~repro.exec.ExecutorBackend`)
``dream``                 DREAM-like full replication + star decomposition
``decomp``                CliqueSquare-like clique/star decomposition over
                          MapReduce-style flat joins (alias ``cliquesquare``)
``cloud``                 S2RDF-like Spark-SQL vertical partitioning scans
                          (alias ``s2rdf``)
``s2x``                   S2X-like vertex-centric graph-parallel matching
``centralized``           single-store ground truth (alias ``central``)
========================  =====================================================
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Protocol, Tuple, runtime_checkable

from ..baselines.cloud import CliqueSquareEngine, S2RDFEngine, S2XEngine
from ..baselines.dream import DreamEngine
from ..core.config import EngineConfig
from ..core.engine import GStoreDEngine
from ..distributed.cluster import Cluster
from ..distributed.stats import QueryStatistics
from ..exec import ExecutorBackend
from ..obs import record_statistics_spans, stage_scope
from ..sparql.algebra import SelectQuery
from ..store.matcher import LocalMatcher
from .result import Result

#: Stage name under which :class:`CentralizedEngine` records its evaluation.
STAGE_CENTRALIZED = "centralized_evaluation"


@runtime_checkable
class QueryEngine(Protocol):
    """The single execution contract all five evaluators satisfy."""

    #: Name used in statistics and reports (``gStoreD``, ``DREAM``, ...).
    name: str

    def execute(self, query: SelectQuery, query_name: str = "", dataset: str = "") -> Result:
        """Evaluate ``query`` and return its solutions plus statistics."""
        ...

    def close(self) -> None:
        """Release any worker resources held by the engine."""
        ...


class EngineAdapter:
    """Wrap a legacy engine (``DistributedResult``-returning) into the contract.

    The adapter owns its inner engine: closing the adapter closes the inner
    engine (and with it any executor backend the inner engine owns).

    The adapter is also the tracing shim for legacy engines: inner engines
    that declare ``supports_tracing`` (the gStoreD family) receive the
    ``trace``/``profiler`` hooks natively; engines exposing
    ``execute_traced`` (the fixed-strategy baselines) go through that; for
    anything else the adapter runs the query untraced and synthesizes stage
    spans from the returned statistics, so every registry engine produces
    *some* trace when asked for one.
    """

    #: The adapter accepts ``trace``/``profiler`` kwargs for any inner engine.
    supports_tracing = True

    def __init__(self, inner) -> None:
        self.inner = inner
        self.name = inner.name

    def execute(
        self,
        query: SelectQuery,
        query_name: str = "",
        dataset: str = "",
        *,
        trace=None,
        profiler=None,
    ) -> Result:
        """Run the wrapped engine and lift its result into a :class:`Result`."""
        if (trace is not None or profiler is not None) and getattr(
            self.inner, "supports_tracing", False
        ):
            distributed = self.inner.execute(
                query, query_name=query_name, dataset=dataset, trace=trace, profiler=profiler
            )
        elif trace is not None and hasattr(self.inner, "execute_traced"):
            distributed = self.inner.execute_traced(
                query, query_name=query_name, dataset=dataset, trace=trace, profiler=profiler
            )
        else:
            distributed = self.inner.execute(query, query_name=query_name, dataset=dataset)
            if trace is not None:
                record_statistics_spans(trace, distributed.statistics)
        return Result.from_distributed(distributed)

    def close(self) -> None:
        """Close the wrapped engine (a no-op for engines without resources)."""
        close = getattr(self.inner, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "EngineAdapter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<EngineAdapter {self.name!r} around {type(self.inner).__name__}>"


class CentralizedEngine:
    """The centralized ground truth behind the standard engine contract.

    Wraps :class:`~repro.store.LocalMatcher` over the cluster's *full* graph
    (what :func:`~repro.store.evaluate_centralized` does per call), but keeps
    the matcher — and therefore its signature index and plan cache — warm
    across queries, the way a long-lived single-store deployment would.
    Nothing is shipped, so the statistics carry a single
    ``centralized_evaluation`` stage with pure coordinator time.
    """

    name = "Centralized"

    #: Accepts ``trace``/``profiler`` on :meth:`execute` (single-stage spans).
    supports_tracing = True

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._matcher: Optional[LocalMatcher] = None
        # One machine, one matcher: the matcher accumulates its
        # ``search_steps`` work counter on itself, so concurrent queries
        # serialize on this lock (which also guards the lazy build).
        self._lock = threading.Lock()

    def _ensure_matcher(self) -> LocalMatcher:
        if self._matcher is None:
            self._matcher = LocalMatcher(self.cluster.graph)
        return self._matcher

    def execute(
        self,
        query: SelectQuery,
        query_name: str = "",
        dataset: str = "",
        *,
        trace=None,
        profiler=None,
    ) -> Result:
        """Evaluate ``query`` over the full graph on one simulated machine."""
        stats = QueryStatistics(
            query_name=query_name,
            engine=self.name,
            dataset=dataset,
            partitioning=self.cluster.partitioned_graph.strategy,
        )
        stage = stats.stage(STAGE_CENTRALIZED)
        with stage_scope(trace, profiler, STAGE_CENTRALIZED) as span:
            with self._lock:
                matcher = self._ensure_matcher()
                started = time.perf_counter()
                results = matcher.evaluate(query)
                # The distributed engines all project with distinct=True (duplicate
                # solutions collapse when projection drops variables); normalize the
                # centralized answer to the same convention so every evaluator is
                # row-for-row comparable.
                results = results.project(query.effective_projection, distinct=True)
                stage.coordinator_time_s += time.perf_counter() - started
                search_steps = matcher.search_steps
            if span is not None:
                span.set(search_steps=search_steps, shipped_bytes=0, messages=0)
        stats.work["search_steps"] = search_steps
        stats.num_results = len(results)
        return Result(results, stats)

    def close(self) -> None:
        """Drop the cached matcher (indexes are rebuilt on next use)."""
        with self._lock:
            self._matcher = None

    def __enter__(self) -> "CentralizedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineSpec:
    """One registry entry: how to build an evaluator and what it accepts."""

    #: Canonical registry key (lower-case).
    name: str
    #: One-line description shown in docs and CLI help.
    summary: str
    #: ``factory(cluster, config, backend) -> QueryEngine``.
    factory: Callable[[Cluster, Optional[EngineConfig], Optional[ExecutorBackend]], QueryEngine]
    #: Alternative lookup names (legacy report names, spellings).
    aliases: Tuple[str, ...] = ()
    #: Whether the engine honors an :class:`EngineConfig` (and an injected
    #: executor backend).  Engines that don't raise on an explicit config.
    accepts_config: bool = False


def _gstored_factory(cluster, config, backend, faults=None):
    return EngineAdapter(GStoreDEngine(cluster, config, backend=backend, faults=faults))


def _baseline_factory(engine_class):
    def factory(cluster, config, backend):
        del config, backend  # baselines model fixed strategies; nothing to configure
        return EngineAdapter(engine_class(cluster))

    return factory


def _centralized_factory(cluster, config, backend):
    del config, backend  # a single store has no fan-out to schedule
    return CentralizedEngine(cluster)


_REGISTRY: Dict[str, EngineSpec] = {}
_ALIASES: Dict[str, str] = {}


def register_engine(spec: EngineSpec) -> None:
    """Add an evaluator to the registry (idempotent per canonical name)."""
    key = spec.name.lower()
    _REGISTRY[key] = spec
    for alias in spec.aliases:
        _ALIASES[alias.lower()] = key


register_engine(
    EngineSpec(
        name="gstored",
        summary="LEC-accelerated partial evaluation and assembly (the paper's engine)",
        factory=_gstored_factory,
        aliases=("gstore-d",),
        accepts_config=True,
    )
)
register_engine(
    EngineSpec(
        name="dream",
        summary="DREAM-like full replication + star decomposition",
        factory=_baseline_factory(DreamEngine),
        aliases=(DreamEngine.name,),
    )
)
register_engine(
    EngineSpec(
        name="decomp",
        summary="CliqueSquare-like clique decomposition with flat MapReduce joins",
        factory=_baseline_factory(CliqueSquareEngine),
        aliases=(CliqueSquareEngine.name,),
    )
)
register_engine(
    EngineSpec(
        name="cloud",
        summary="S2RDF-like Spark-SQL vertical-partitioning scans and hash joins",
        factory=_baseline_factory(S2RDFEngine),
        aliases=(S2RDFEngine.name,),
    )
)
register_engine(
    EngineSpec(
        name="s2x",
        summary="S2X-like vertex-centric graph-parallel matching",
        factory=_baseline_factory(S2XEngine),
        aliases=(S2XEngine.name,),
    )
)
register_engine(
    EngineSpec(
        name="centralized",
        summary="single-store centralized evaluation (the ground truth)",
        factory=_centralized_factory,
        aliases=("central",),
    )
)


def engine_names() -> Tuple[str, ...]:
    """The canonical registry names, sorted (the valid ``make_engine`` inputs)."""
    return tuple(sorted(_REGISTRY))


def engine_specs() -> Tuple[EngineSpec, ...]:
    """Every registered :class:`EngineSpec`, sorted by canonical name."""
    return tuple(_REGISTRY[name] for name in engine_names())


def engine_aliases() -> Dict[str, str]:
    """The alias table: lower-cased alias -> canonical registry name.

    The CLI derives its accepted ``--engine`` values from this, so a newly
    registered engine (or alias) is reachable everywhere without touching
    the CLI.
    """
    return dict(_ALIASES)


def engine_spec(name: str) -> EngineSpec:
    """The :class:`EngineSpec` behind a registry name or alias."""
    return _REGISTRY[resolve_engine_name(name)]


def resolve_engine_name(name: str) -> str:
    """Map a registry name or alias (case-insensitive) to its canonical name.

    Raises ``ValueError`` naming every valid choice when ``name`` is unknown.
    """
    key = name.strip().lower()
    if key in _REGISTRY:
        return key
    if key in _ALIASES:
        return _ALIASES[key]
    raise ValueError(
        f"unknown engine {name!r}; choose from: {', '.join(engine_names())}"
    )


def make_engine(
    name: str,
    cluster: Cluster,
    *,
    config: Optional[EngineConfig] = None,
    backend: Optional[ExecutorBackend] = None,
    faults=None,
) -> QueryEngine:
    """Instantiate any registered evaluator by name over ``cluster``.

    ``config`` and ``backend`` apply to engines that declare
    ``accepts_config`` (today the gStoreD family); passing an explicit
    ``config`` to a fixed-strategy engine is an error, while a ``backend`` is
    silently ignored there — sessions share one pool across whatever engines
    they create.  An injected ``backend`` stays owned by the caller.

    ``faults`` — an optional :class:`~repro.faults.FaultPlan` — arms
    deterministic fault injection and recovery; like ``config`` it is only
    meaningful for ``accepts_config`` engines and an error elsewhere.
    """
    spec = engine_spec(name)
    if config is not None and not spec.accepts_config:
        raise ValueError(
            f"engine {spec.name!r} models a fixed strategy and does not take an "
            f"EngineConfig; engines that do: "
            f"{', '.join(s.name for s in engine_specs() if s.accepts_config)}"
        )
    if faults is not None:
        if not spec.accepts_config:
            raise ValueError(
                f"engine {spec.name!r} does not support fault injection; "
                f"engines that do: "
                f"{', '.join(s.name for s in engine_specs() if s.accepts_config)}"
            )
        return spec.factory(cluster, config, backend, faults=faults)
    return spec.factory(cluster, config, backend)
