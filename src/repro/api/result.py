"""The unified query result type of the public API.

Before the :mod:`repro.api` layer existed, callers juggled two result
shapes: the gStoreD engine and the baselines returned
:class:`~repro.core.engine.DistributedResult` (solutions + statistics) while
:func:`~repro.store.evaluate_centralized` returned a bare
:class:`~repro.sparql.bindings.ResultSet`.  :class:`Result` unifies them:

* solutions are iterated lazily (``for binding in result``) and rendered on
  demand — ``rows()`` / ``sorted_rows()`` / ``to_dicts()`` are computed the
  first time they are asked for and cached;
* the :class:`~repro.distributed.QueryStatistics` of the producing engine is
  always attached (centralized evaluation gets a single-stage statistics
  object), so cost reporting works identically for all five evaluators;
* equality helpers (:meth:`same_solutions`, ``==`` over sorted rows) give
  the equivalence tests one canonical comparison regardless of which engine
  produced which side.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from ..distributed.stats import QueryStatistics
from ..sparql.bindings import Binding, ResultSet

#: What a :class:`Result` can be built from: an already-materialized result
#: set, or a zero-argument thunk evaluated on first access (lazy execution).
ResultSource = Union[ResultSet, Callable[[], ResultSet]]


class Result:
    """Solutions of one query plus the statistics of the run that produced them.

    The canonical row form is *sorted N3 text*: every binding becomes a tuple
    of ``variable=term`` strings sorted within the row, and
    :meth:`sorted_rows` sorts the rows themselves — two engines agree on a
    query exactly when their ``sorted_rows()`` are equal, independent of
    solution order, variable order, or which engine produced them.
    """

    def __init__(self, source: ResultSource, statistics: Optional[QueryStatistics] = None) -> None:
        self._source = source
        self._result_set: Optional[ResultSet] = None if callable(source) else source
        self._statistics = statistics if statistics is not None else QueryStatistics()
        self._rows: Optional[List[Tuple[str, ...]]] = None
        self._sorted_rows: Optional[List[Tuple[str, ...]]] = None
        self._dicts: Optional[List[Dict[str, str]]] = None
        #: The :class:`~repro.obs.Trace` of the producing run, when the
        #: session was opened with ``trace=True`` (``None`` otherwise).
        self.trace = None
        #: The :class:`~repro.distributed.ShipmentSnapshot` taken from the
        #: message bus right after the run, when produced through a
        #: :class:`~repro.api.Session` (``None`` otherwise).  Unlike the live
        #: bus, this survives the next query's ``reset_network()``.
        self.shipment = None
        #: ``True`` when the session served this result from its opt-in
        #: result cache (``repro.open(..., result_cache=N)``) instead of
        #: executing; the statistics then describe the run that populated
        #: the cache entry.
        self.cache_hit = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_distributed(cls, distributed) -> "Result":
        """Wrap a legacy :class:`~repro.core.engine.DistributedResult`."""
        return cls(distributed.results, distributed.statistics)

    # ------------------------------------------------------------------
    # Lazy materialization
    # ------------------------------------------------------------------
    @property
    def results(self) -> ResultSet:
        """The underlying :class:`~repro.sparql.bindings.ResultSet`.

        Evaluates the deferred query on first access when the result was
        constructed lazily; the name deliberately matches
        ``DistributedResult.results`` so pre-redesign call sites keep working.
        """
        if self._result_set is None:
            self._result_set = self._source()  # type: ignore[operator]
        return self._result_set

    @property
    def statistics(self) -> QueryStatistics:
        """Per-stage timing, shipment and counters of the producing engine."""
        return self._statistics

    def detach_statistics(self) -> QueryStatistics:
        """Replace :attr:`statistics` with an independent deep copy.

        Engines may hand the result a statistics object that shares stage
        records with engine- or cluster-held state; after detaching, nothing
        a later query does (``Cluster.reset_network()``, engine reuse) can
        mutate this result's numbers.  The session layer calls this on every
        result it returns; returns the detached copy.
        """
        self._statistics = self._statistics.snapshot()
        return self._statistics

    @property
    def degraded(self) -> bool:
        """``True`` when the answers are partial because a site was lost.

        Set by the fault-injection layer (:mod:`repro.faults`): a site the
        fault plan marks unrecoverable takes its fragment's matches with it,
        and instead of failing the query the engine returns what the
        surviving sites can answer and flags it here.  A degraded result
        names the lost sites in :attr:`missing_sites` and is never stored in
        the session result cache.
        """
        return bool(self._statistics.extra.get("degraded", False))

    @property
    def missing_sites(self) -> List[int]:
        """Site ids lost unrecoverably during the run (empty when healthy)."""
        return list(self._statistics.extra.get("missing_sites", ()))

    def __iter__(self) -> Iterator[Binding]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __bool__(self) -> bool:
        return bool(self.results)

    # ------------------------------------------------------------------
    # Row views
    # ------------------------------------------------------------------
    def rows(self) -> List[Tuple[str, ...]]:
        """Solutions as tuples of ``variable=N3`` strings (engine order).

        Each tuple is sorted by variable name, so a row is a canonical
        rendering of one solution mapping; the list preserves the engine's
        solution order.  Computed once and cached.
        """
        if self._rows is None:
            self._rows = [
                tuple(
                    f"{variable.name}={binding[variable].n3()}"
                    for variable in sorted(binding.variables, key=lambda v: v.name)
                )
                for binding in self.results
            ]
        return self._rows

    def sorted_rows(self) -> List[Tuple[str, ...]]:
        """The canonical order-insensitive row form used by the parity suite."""
        if self._sorted_rows is None:
            self._sorted_rows = sorted(self.rows())
        return self._sorted_rows

    def to_dicts(self) -> List[Dict[str, str]]:
        """Solutions as ``{variable name: N3 text}`` dictionaries (cached)."""
        if self._dicts is None:
            self._dicts = self.results.to_table()
        return self._dicts

    # ------------------------------------------------------------------
    # Equality helpers
    # ------------------------------------------------------------------
    def same_solutions(self, other: Union["Result", ResultSet]) -> bool:
        """Order-insensitive solution equality against another result."""
        other_set = other.results if isinstance(other, Result) else other
        return self.results.same_solutions(other_set)

    def __eq__(self, other: object) -> bool:
        """Multiset equality over :meth:`sorted_rows`, whether the other side
        is a :class:`Result` or a bare :class:`ResultSet` (use
        :meth:`same_solutions` for set semantics)."""
        if isinstance(other, Result):
            return self.sorted_rows() == other.sorted_rows()
        if isinstance(other, ResultSet):
            return self.sorted_rows() == Result(other).sorted_rows()
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - defined for protocol completeness
        return hash(tuple(self.sorted_rows()))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "pending" if self._result_set is None else f"solutions={len(self._result_set)}"
        return f"<Result {state} engine={self._statistics.engine!r}>"
