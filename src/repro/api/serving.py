"""Concurrent serving on top of :class:`~repro.api.Session`.

PR 7 made one session safe under parallel ``query()`` calls; this module is
everything that builds on that guarantee:

* :class:`AsyncSession` — an asyncio facade multiplexing queries over one
  warm session (and its shared executor backend) from a dedicated thread
  pool, so event-loop code can ``await session.query(...)`` without blocking
  the loop on a cold engine;
* :class:`AdmissionController` — a bounded admission queue: at most
  ``max_inflight`` queries execute at once, at most ``max_queue`` wait, and
  anything beyond that is rejected immediately with :class:`AdmissionError`
  (the HTTP layer maps it to ``429 Too Many Requests``), so overload sheds
  load instead of stacking requests until something times out;
* :class:`QueryServer` — the thin HTTP front end behind ``repro serve``:
  ``POST /query`` evaluates SPARQL, ``GET /metrics`` exposes the session's
  Prometheus text (admission depth and result-cache families included) and
  ``GET /healthz`` answers liveness probes.

Everything here is stdlib-only (``asyncio``, ``http.server``), matching the
repository's no-new-dependencies rule.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from functools import partial
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Iterable, Iterator, Optional, Tuple, Union

from ..obs import MetricsRegistry
from ..sparql.algebra import SelectQuery
from .result import Result
from .session import QueryBatch, Session, open_session

#: Metric families fed by the admission controller (docs/observability.md).
QUEUE_DEPTH_FAMILY = "repro_admission_queue_depth"
INFLIGHT_FAMILY = "repro_admission_inflight"
REJECTED_FAMILY = "repro_admission_rejected_total"

_QUEUE_DEPTH_HELP = "Queries waiting for an execution slot right now."
_INFLIGHT_HELP = "Queries executing right now (bounded by max_inflight)."
_REJECTED_HELP = "Queries rejected because the admission queue was full."


class AdmissionError(RuntimeError):
    """Raised when the admission queue is full; callers should retry later."""


class AdmissionController:
    """Bounded admission: ``max_inflight`` running, ``max_queue`` waiting.

    :meth:`admit` is a context manager wrapping one query execution.  When a
    slot is free it is taken immediately; otherwise the caller waits in the
    queue — unless ``max_queue`` callers already wait, in which case
    :class:`AdmissionError` is raised *without blocking*.  Rejecting beyond
    the bound (instead of queueing unboundedly) is what keeps an overloaded
    server's latency finite and its accounting honest.
    """

    def __init__(
        self,
        max_inflight: int = 4,
        max_queue: int = 16,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self._slots = threading.Semaphore(max_inflight)
        self._lock = threading.Lock()
        self._queued = 0
        self._inflight = 0
        self.rejected = 0
        self._metrics = metrics
        if metrics is not None:
            # Pre-create the families at zero so scrapes see them before the
            # first request (and before the first rejection).
            metrics.gauge(QUEUE_DEPTH_FAMILY, _QUEUE_DEPTH_HELP).set(0)
            metrics.gauge(INFLIGHT_FAMILY, _INFLIGHT_HELP).set(0)
            metrics.counter(REJECTED_FAMILY, _REJECTED_HELP).inc(0)

    @property
    def queued(self) -> int:
        with self._lock:
            return self._queued

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def _set_gauge(self, family: str, help_text: str, value: int) -> None:
        if self._metrics is not None:
            self._metrics.gauge(family, help_text).set(value)

    @contextmanager
    def admit(self) -> Iterator[None]:
        """Hold one execution slot for the duration of the ``with`` block."""
        if not self._slots.acquire(blocking=False):
            with self._lock:
                if self._queued >= self.max_queue:
                    self.rejected += 1
                    if self._metrics is not None:
                        self._metrics.counter(REJECTED_FAMILY, _REJECTED_HELP).inc()
                    raise AdmissionError(
                        f"admission queue full ({self._queued} waiting, "
                        f"{self.max_inflight} executing); retry later"
                    )
                self._queued += 1
                self._set_gauge(QUEUE_DEPTH_FAMILY, _QUEUE_DEPTH_HELP, self._queued)
            try:
                self._slots.acquire()
            finally:
                with self._lock:
                    self._queued -= 1
                    self._set_gauge(QUEUE_DEPTH_FAMILY, _QUEUE_DEPTH_HELP, self._queued)
        with self._lock:
            self._inflight += 1
            self._set_gauge(INFLIGHT_FAMILY, _INFLIGHT_HELP, self._inflight)
        try:
            yield
        finally:
            with self._lock:
                self._inflight -= 1
                self._set_gauge(INFLIGHT_FAMILY, _INFLIGHT_HELP, self._inflight)
            self._slots.release()


class AsyncSession:
    """Asyncio facade over one warm :class:`Session`.

    Queries submitted with ``await`` run on a dedicated thread pool
    (``repro-query`` threads) against the shared session, so several
    coroutines can have queries in flight at once — the session's per-query
    ledgers keep their statistics independent, and the underlying executor
    backend (thread or process pool) is shared warm across all of them.

    Lifecycle mirrors the synchronous session: ``async with`` or an explicit
    ``await close()``, which closes the wrapped session and retires the
    thread pool.  The wrapped session must not be closed behind the facade's
    back.

    ::

        async with repro.AsyncSession.open(dataset="lubm", scale=1) as session:
            results = await asyncio.gather(
                session.query("LQ1"), session.query("LQ2")
            )
    """

    def __init__(self, session: Session, *, max_concurrency: Optional[int] = None) -> None:
        workers = (
            max_concurrency
            if max_concurrency is not None
            else max(4, getattr(session.backend, "max_workers", 1) or 1)
        )
        if workers < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {workers}")
        self.session = session
        self.max_concurrency = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-query"
        )
        self._closed = False

    @classmethod
    def open(cls, *, max_concurrency: Optional[int] = None, **open_kwargs) -> "AsyncSession":
        """``repro.open(...)`` wrapped into an :class:`AsyncSession`.

        Synchronous on purpose: dataset generation and partitioning dominate
        the cost and callers typically open once at startup, before the
        event loop is busy.
        """
        return cls(open_session(**open_kwargs), max_concurrency=max_concurrency)

    async def _run(self, fn, *args, **kwargs):
        if self._closed:
            raise RuntimeError("this AsyncSession is closed")
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, partial(fn, *args, **kwargs))

    async def query(
        self,
        query: Union[str, SelectQuery],
        *,
        engine: Optional[str] = None,
        query_name: str = "",
    ) -> Result:
        """``Session.query`` off the event loop; safe to run concurrently."""
        return await self._run(
            self.session.query, query, engine=engine, query_name=query_name
        )

    async def query_many(
        self,
        queries: Iterable[Union[str, SelectQuery]],
        *,
        engine: Optional[str] = None,
    ) -> QueryBatch:
        """``Session.query_many`` off the event loop (amortized, in order).

        The batch itself executes sequentially with batch-level warmup; for
        concurrent execution, ``asyncio.gather`` over :meth:`query` calls.
        """
        return await self._run(self.session.query_many, list(queries), engine=engine)

    async def explain(self, query: Union[str, SelectQuery]) -> str:
        """``Session.explain`` off the event loop."""
        return await self._run(self.session.explain, query)

    @property
    def metrics(self) -> MetricsRegistry:
        return self.session.metrics

    @property
    def closed(self) -> bool:
        return self._closed

    async def close(self) -> None:
        """Close the wrapped session, then retire the submission pool."""
        if self._closed:
            return
        try:
            await self._run(self.session.close)
        finally:
            self._closed = True
            self._pool.shutdown(wait=False)

    async def __aenter__(self) -> "AsyncSession":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "closed" if self._closed else "open"
        return f"<AsyncSession {state} around {self.session!r}>"


class _Handler(BaseHTTPRequestHandler):
    """Request handler for :class:`QueryServer` (one instance per request)."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Quiet by default; the metrics endpoint is the observability story."""

    @property
    def _query_server(self) -> "QueryServer":
        return self.server.repro_server  # type: ignore[attr-defined]

    def _respond(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._respond(status, body, "application/json")

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        server = self._query_server
        if self.path == "/healthz":
            session = server.session
            degraded = getattr(session, "degraded_queries", 0)
            body: Dict[str, Any] = {
                # Still HTTP 200 — the server is alive and serving; degraded
                # means some answers were partial after a site loss.
                "status": "degraded" if degraded else "ok",
                "dataset": session.dataset,
                "engine": session.default_engine,
                "executor": session.backend.name,
            }
            if degraded:
                body["degraded_queries"] = degraded
            self._respond_json(200, body)
        elif self.path == "/metrics":
            text = server.session.metrics.prometheus_text()
            self._respond(200, text.encode("utf-8"), "text/plain; version=0.0.4")
        else:
            self._respond_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        if self.path != "/query":
            self._respond_json(404, {"error": f"unknown path {self.path!r}"})
            return
        server = self._query_server
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError):
            self._respond_json(400, {"error": "request body must be a JSON object"})
            return
        if not isinstance(payload, dict) or not isinstance(payload.get("query"), str):
            self._respond_json(
                400, {"error": 'expected {"query": "<SPARQL or benchmark name>", ...}'}
            )
            return
        try:
            with server.admission.admit():
                result = server.session.query(
                    payload["query"],
                    engine=payload.get("engine"),
                    query_name=payload.get("name", ""),
                )
        except AdmissionError as error:
            self._respond_json(429, {"error": str(error)})
            return
        except ValueError as error:
            self._respond_json(400, {"error": str(error)})
            return
        except Exception as error:  # pragma: no cover - engine-internal failures
            self._respond_json(500, {"error": f"{type(error).__name__}: {error}"})
            return
        statistics = result.statistics
        body = {
            "rows": result.to_dicts(),
            "num_rows": len(result),
            "engine": statistics.engine,
            "total_time_ms": round(statistics.total_time_ms, 3),
            "shipped_bytes": result.shipment.total_bytes if result.shipment else 0,
            "cache_hit": result.cache_hit,
            "degraded": result.degraded,
        }
        if result.degraded:
            body["missing_sites"] = result.missing_sites
        self._respond_json(200, body)


class QueryServer:
    """The HTTP front end of ``repro serve``: one session, bounded admission.

    Binds immediately (``port=0`` picks a free port — :attr:`address` has
    the real one); :meth:`serve_forever` blocks the calling thread while
    :meth:`start` serves from a daemon thread instead (tests, embedding).
    :meth:`shutdown` stops either and closes the listening socket, but never
    the session — the caller owns it, symmetrical with ``Session.from_cluster``.
    """

    def __init__(
        self,
        session: Session,
        *,
        host: str = "127.0.0.1",
        port: int = 8080,
        max_inflight: int = 4,
        max_queue: int = 16,
    ) -> None:
        self.session = session
        self.admission = AdmissionController(
            max_inflight=max_inflight, max_queue=max_queue, metrics=session.metrics
        )
        self._http = ThreadingHTTPServer((host, port), _Handler)
        self._http.daemon_threads = True
        self._http.repro_server = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — authoritative when opened with port 0."""
        host, port = self._http.server_address[:2]
        return str(host), int(port)

    def start(self) -> "QueryServer":
        """Serve from a background daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._http.serve_forever, name="repro-serve", daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (the CLI path)."""
        self._http.serve_forever()

    def shutdown(self) -> None:
        """Stop serving and close the socket (idempotent; keeps the session)."""
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        host, port = self.address
        return f"<QueryServer http://{host}:{port} session={self.session!r}>"
