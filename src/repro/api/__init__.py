"""``repro.api`` — the canonical public surface of the reproduction.

Three pieces make every evaluator in the repository interchangeable:

* :func:`open_session` (re-exported as ``repro.open``) returns a
  :class:`Session` owning workload preparation, the cluster, the executor
  backend (warm pools shut down on close) and the plan cache;
* :func:`make_engine` instantiates any registered evaluator —
  ``gstored``, ``dream``, ``decomp``, ``cloud``, ``s2x``, ``centralized`` —
  behind the one :class:`QueryEngine` contract;
* :class:`Result` is the single result type: lazy rows, attached
  :class:`~repro.distributed.QueryStatistics`, and canonical
  ``sorted_rows()`` for cross-engine comparison.

The concurrent serving layer builds on the same pieces: sessions are
thread-safe, :class:`AsyncSession` multiplexes queries over one warm
session from asyncio code, :class:`ResultCache` (opt-in via
``open(..., result_cache=N)``) serves repeated template instantiations
without re-executing, and :class:`QueryServer` /
:class:`AdmissionController` put a load-shedding HTTP front end on top
(``repro serve``).  See ``docs/serving.md``.

The CLI, the benchmark harness and the examples are all built on this
module; legacy entry points (``repro.quickstart_cluster``, direct
``GStoreDEngine`` construction) keep working but the new code path is this
one.  See ``docs/api.md`` for the full tour and the old→new migration table.
"""

from .engines import (
    STAGE_CENTRALIZED,
    CentralizedEngine,
    EngineAdapter,
    EngineSpec,
    QueryEngine,
    engine_aliases,
    engine_names,
    engine_spec,
    engine_specs,
    make_engine,
    register_engine,
    resolve_engine_name,
)
from .cache import ResultCache, result_cache_key
from .result import Result
from .serving import AdmissionController, AdmissionError, AsyncSession, QueryServer
from .session import QueryBatch, Session, open_session

#: ``repro.api.open`` mirrors the package-level ``repro.open`` alias.
open = open_session

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AsyncSession",
    "CentralizedEngine",
    "EngineAdapter",
    "EngineSpec",
    "QueryBatch",
    "QueryEngine",
    "QueryServer",
    "Result",
    "ResultCache",
    "STAGE_CENTRALIZED",
    "Session",
    "engine_aliases",
    "engine_names",
    "engine_spec",
    "engine_specs",
    "make_engine",
    "open",
    "open_session",
    "register_engine",
    "resolve_engine_name",
    "result_cache_key",
]
