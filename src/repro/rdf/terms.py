"""RDF term model.

The resource description framework (RDF) represents data as triples of
``(subject, predicate, object)``.  Subjects, predicates and objects are RDF
*terms*: IRIs, literals or blank nodes.  SPARQL additionally introduces query
*variables*, which this module also models so that the same term classes can
be used on both the data and the query side.

The classes here are deliberately small, immutable and hashable: the whole
engine (triple store indexes, partial matches, LEC features) relies on using
terms as dictionary keys and set members.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


class Term:
    """Base class of every RDF term.

    Terms are value objects: equality and hashing are defined purely by their
    textual content, never by identity.  Subclasses are frozen dataclasses.
    """

    __slots__ = ()

    def n3(self) -> str:
        """Return the N-Triples / SPARQL surface syntax of the term."""
        raise NotImplementedError

    @property
    def is_variable(self) -> bool:
        """``True`` for SPARQL variables, ``False`` for concrete RDF terms."""
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.n3()})"


@dataclass(frozen=True, slots=True)
class IRI(Term):
    """An IRI reference, e.g. ``<http://example.org/person/Alice>``."""

    value: str

    def n3(self) -> str:
        return f"<{self.value}>"

    def __str__(self) -> str:
        return self.value

    @property
    def local_name(self) -> str:
        """The part of the IRI after the last ``#`` or ``/``."""
        for separator in ("#", "/"):
            if separator in self.value:
                return self.value.rsplit(separator, 1)[1]
        return self.value

    @property
    def namespace(self) -> str:
        """The IRI up to and including the last ``#`` or ``/``."""
        local = self.local_name
        if local == self.value:
            return ""
        return self.value[: len(self.value) - len(local)]


@dataclass(frozen=True, slots=True)
class Literal(Term):
    """An RDF literal with optional language tag or datatype IRI.

    A literal has at most one of ``language`` and ``datatype``; plain literals
    have neither.
    """

    lexical: str
    language: Optional[str] = None
    datatype: Optional[IRI] = None

    def __post_init__(self) -> None:
        if self.language is not None and self.datatype is not None:
            raise ValueError("a literal cannot have both a language tag and a datatype")

    def n3(self) -> str:
        escaped = escape_literal(self.lexical)
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype:
            return f'"{escaped}"^^{self.datatype.n3()}'
        return f'"{escaped}"'

    def __str__(self) -> str:
        return self.lexical


@dataclass(frozen=True, slots=True)
class BlankNode(Term):
    """A blank node, identified by a local label, e.g. ``_:b42``."""

    label: str

    def n3(self) -> str:
        return f"_:{self.label}"

    def __str__(self) -> str:
        return f"_:{self.label}"


@dataclass(frozen=True, slots=True)
class Variable(Term):
    """A SPARQL variable, e.g. ``?person``.

    Variables only appear in query graphs, never in RDF data graphs.
    """

    name: str

    def n3(self) -> str:
        return f"?{self.name}"

    def __str__(self) -> str:
        return f"?{self.name}"

    @property
    def is_variable(self) -> bool:
        return True


#: Terms allowed in the subject/object position of a data triple.
Node = Union[IRI, Literal, BlankNode]
#: Terms allowed anywhere in a triple pattern.
PatternTerm = Union[IRI, Literal, BlankNode, Variable]

_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}

_UNESCAPES = {
    "\\\\": "\\",
    '\\"': '"',
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
}


def escape_literal(text: str) -> str:
    """Escape a literal's lexical form for N-Triples output."""
    out = []
    for char in text:
        out.append(_ESCAPES.get(char, char))
    return "".join(out)


def unescape_literal(text: str) -> str:
    """Reverse :func:`escape_literal` on N-Triples input."""
    out = []
    i = 0
    while i < len(text):
        if text[i] == "\\" and i + 1 < len(text):
            pair = text[i : i + 2]
            if pair in _UNESCAPES:
                out.append(_UNESCAPES[pair])
                i += 2
                continue
        out.append(text[i])
        i += 1
    return "".join(out)


def is_concrete(term: Term) -> bool:
    """Return ``True`` when ``term`` is a concrete RDF term (not a variable)."""
    return not term.is_variable
