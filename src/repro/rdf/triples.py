"""Triples and triple patterns.

A :class:`Triple` is a concrete RDF statement; a :class:`TriplePattern` is a
triple where any position may be a SPARQL variable.  Both are immutable and
hashable so they can live inside set-based indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from .terms import IRI, Node, PatternTerm, Term, Variable


@dataclass(frozen=True, slots=True)
class Triple:
    """A concrete RDF triple ``(subject, predicate, object)``."""

    subject: Node
    predicate: IRI
    object: Node

    def n3(self) -> str:
        """N-Triples serialization of the triple (without trailing newline)."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def __iter__(self) -> Iterator[Term]:
        yield self.subject
        yield self.predicate
        yield self.object

    def as_tuple(self) -> Tuple[Node, IRI, Node]:
        return (self.subject, self.predicate, self.object)


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """A triple pattern: any position may be a variable.

    Triple patterns are the building blocks of SPARQL basic graph patterns
    (BGPs).  The predicate may also be a variable (variable edge label in the
    query graph of Definition 2).
    """

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def __iter__(self) -> Iterator[PatternTerm]:
        yield self.subject
        yield self.predicate
        yield self.object

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """All distinct variables of the pattern, in subject/predicate/object order."""
        seen = []
        for term in self:
            if isinstance(term, Variable) and term not in seen:
                seen.append(term)
        return tuple(seen)

    @property
    def is_concrete(self) -> bool:
        """``True`` when no position is a variable."""
        return not any(isinstance(term, Variable) for term in self)

    def matches(self, triple: Triple) -> bool:
        """Check whether ``triple`` matches this pattern position-by-position.

        Variables match anything; concrete terms must be equal.
        """
        pairs = zip(self, triple)
        return all(isinstance(pattern, Variable) or pattern == data for pattern, data in pairs)

    def bind(self, bindings: dict) -> "TriplePattern":
        """Substitute variables that appear in ``bindings`` with their values."""

        def resolve(term: PatternTerm) -> PatternTerm:
            if isinstance(term, Variable) and term in bindings:
                return bindings[term]
            return term

        return TriplePattern(resolve(self.subject), resolve(self.predicate), resolve(self.object))
