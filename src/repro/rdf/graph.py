"""In-memory indexed RDF graph.

:class:`RDFGraph` is the data substrate of the whole reproduction: fragments,
local stores, partitioners and the centralized ground-truth matcher all
operate on it.  It keeps the classic three permutation indexes (SPO, POS,
OSP) plus per-vertex adjacency, so the pattern-matching code can answer
``triples(s, p, o)`` with any combination of bound positions efficiently.

The graph view of an RDF dataset (subjects/objects as vertices, triples as
labelled directed edges) is the one used throughout the paper; this class
exposes both the triple view and the graph view.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .terms import IRI, Literal, Node, Term
from .triples import Triple

#: How many of the most recent mutations each graph remembers.  Derived
#: structures (the encoded view, signature index, statistics) patch
#: themselves from this window; falling off the end of it simply degrades
#: to the pre-delta behaviour of a full rebuild, so the bound trades a
#: little memory for never penalising bulk loads.
JOURNAL_LIMIT = 4096


class RDFGraph:
    """A mutable, indexed, in-memory RDF graph.

    Parameters
    ----------
    triples:
        Optional iterable of :class:`Triple` to load at construction time.
    name:
        Optional human-readable name (used by datasets and fragments).
    """

    def __init__(self, triples: Optional[Iterable[Triple]] = None, name: str = "") -> None:
        self.name = name
        self._triples: Set[Triple] = set()
        # Mutation counter: bumped by every successful add/discard so derived
        # views (e.g. the dictionary-encoded kernel in repro.store.encoding)
        # can cache themselves against one graph state and rebuild lazily.
        self._version = 0
        # Bounded journal of the most recent mutations, each entry being
        # ``(version-after-the-op, "+"|"-", triple)``.  Consumers call
        # :meth:`journal_since` to patch incrementally instead of rebuilding.
        self._journal: Deque[Tuple[int, str, Triple]] = deque(maxlen=JOURNAL_LIMIT)
        # Permutation indexes.
        self._spo: Dict[Node, Dict[IRI, Set[Node]]] = defaultdict(lambda: defaultdict(set))
        self._pos: Dict[IRI, Dict[Node, Set[Node]]] = defaultdict(lambda: defaultdict(set))
        self._osp: Dict[Node, Dict[Node, Set[IRI]]] = defaultdict(lambda: defaultdict(set))
        # Graph-view adjacency: vertex -> outgoing / incoming triples.
        self._out: Dict[Node, Set[Triple]] = defaultdict(set)
        self._in: Dict[Node, Set[Triple]] = defaultdict(set)
        if triples is not None:
            for triple in triples:
                self.add(triple)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, triple: Triple) -> bool:
        """Add ``triple``; return ``True`` if it was not already present."""
        if triple in self._triples:
            return False
        self._triples.add(triple)
        s, p, o = triple.as_tuple()
        self._spo[s][p].add(o)
        self._pos[p][s].add(o)
        self._osp[o][s].add(p)
        self._out[s].add(triple)
        self._in[o].add(triple)
        self._version += 1
        self._journal.append((self._version, "+", triple))
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add every triple of ``triples``; return how many were new."""
        return sum(1 for triple in triples if self.add(triple))

    def discard(self, triple: Triple) -> bool:
        """Remove ``triple`` if present; return ``True`` if it was removed."""
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        s, p, o = triple.as_tuple()
        self._spo[s][p].discard(o)
        self._pos[p][s].discard(o)
        self._osp[o][s].discard(p)
        self._out[s].discard(triple)
        self._in[o].discard(triple)
        self._version += 1
        self._journal.append((self._version, "-", triple))
        return True

    def journal_since(self, version: int) -> Optional[List[Tuple[str, Triple]]]:
        """The ``("+"|"-", triple)`` ops that took the graph from ``version``
        to its current state, oldest first.

        Returns ``None`` when the window is unknowable — ``version`` is ahead
        of the graph, or the ops have already fallen out of the bounded
        journal — in which case callers must fall back to a full rebuild.
        """
        if version == self._version:
            return []
        if version > self._version:
            return None
        needed = self._version - version
        if needed > len(self._journal):
            return None
        entries = list(self._journal)[-needed:]
        if entries[0][0] != version + 1:  # pragma: no cover - defensive
            return None
        return [(op, triple) for _, op, triple in entries]

    # ------------------------------------------------------------------
    # Triple view
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def triples(
        self,
        subject: Optional[Node] = None,
        predicate: Optional[IRI] = None,
        object: Optional[Node] = None,
    ) -> Iterator[Triple]:
        """Iterate over triples matching the given bound positions.

        ``None`` means "any term".  The most selective available index is
        used for each combination of bound positions.
        """
        if subject is not None and predicate is not None and object is not None:
            candidate = Triple(subject, predicate, object)
            if candidate in self._triples:
                yield candidate
            return
        if subject is not None and predicate is not None:
            for obj in self._spo.get(subject, {}).get(predicate, ()):
                yield Triple(subject, predicate, obj)
            return
        if subject is not None and object is not None:
            for pred in self._osp.get(object, {}).get(subject, ()):
                yield Triple(subject, pred, object)
            return
        if predicate is not None and object is not None:
            for subj, objects in self._pos.get(predicate, {}).items():
                if object in objects:
                    yield Triple(subj, predicate, object)
            return
        if subject is not None:
            yield from self._out.get(subject, ())
            return
        if object is not None:
            yield from self._in.get(object, ())
            return
        if predicate is not None:
            for subj, objects in self._pos.get(predicate, {}).items():
                for obj in objects:
                    yield Triple(subj, predicate, obj)
            return
        yield from self._triples

    def count(
        self,
        subject: Optional[Node] = None,
        predicate: Optional[IRI] = None,
        object: Optional[Node] = None,
    ) -> int:
        """Number of triples matching the given bound positions.

        Answered from index lengths wherever an index covers the shape, so no
        :class:`Triple` objects are materialized just to be counted.
        """
        if subject is not None and predicate is not None and object is not None:
            return 1 if Triple(subject, predicate, object) in self._triples else 0
        if subject is not None and predicate is not None:
            return len(self._spo.get(subject, {}).get(predicate, ()))
        if subject is not None and object is not None:
            return len(self._osp.get(object, {}).get(subject, ()))
        if predicate is not None and object is not None:
            return sum(
                1 for objects in self._pos.get(predicate, {}).values() if object in objects
            )
        if subject is not None:
            return len(self._out.get(subject, ()))
        if object is not None:
            return len(self._in.get(object, ()))
        if predicate is not None:
            return sum(len(objects) for objects in self._pos.get(predicate, {}).values())
        return len(self._triples)

    # ------------------------------------------------------------------
    # Graph view
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by every add/discard).

        Derived structures cache against this value and rebuild lazily when
        it moves, instead of eagerly invalidating on every write.
        """
        return self._version

    @property
    def vertices(self) -> Set[Node]:
        """All subjects and objects of the graph."""
        found: Set[Node] = set()
        found.update(self._out.keys())
        found.update(self._in.keys())
        # .get() keeps the membership probe from inserting empty sets into
        # the adjacency defaultdicts (which would grow memory on every call).
        return {v for v in found if self._out.get(v) or self._in.get(v)}

    @property
    def predicates(self) -> Set[IRI]:
        """All predicates (edge labels) used in the graph."""
        return {p for p, index in self._pos.items() if index and any(index.values())}

    @property
    def entities(self) -> Set[Node]:
        """All vertices that are not literals (IRIs and blank nodes)."""
        return {v for v in self.vertices if not isinstance(v, Literal)}

    def out_edges(self, vertex: Node) -> Set[Triple]:
        """Triples whose subject is ``vertex``."""
        return set(self._out.get(vertex, ()))

    def in_edges(self, vertex: Node) -> Set[Triple]:
        """Triples whose object is ``vertex``."""
        return set(self._in.get(vertex, ()))

    def edges_of(self, vertex: Node) -> Set[Triple]:
        """All triples adjacent to ``vertex`` in either direction."""
        return self.out_edges(vertex) | self.in_edges(vertex)

    def degree(self, vertex: Node) -> int:
        """Number of adjacent triples of ``vertex``."""
        return len(self._out.get(vertex, ())) + len(self._in.get(vertex, ()))

    def neighbours(self, vertex: Node) -> Set[Node]:
        """All vertices adjacent to ``vertex`` in either direction."""
        result: Set[Node] = set()
        for triple in self._out.get(vertex, ()):
            result.add(triple.object)
        for triple in self._in.get(vertex, ()):
            result.add(triple.subject)
        result.discard(vertex)
        return result

    def subjects(self, predicate: Optional[IRI] = None, object: Optional[Node] = None) -> Set[Node]:
        """Distinct subjects of triples matching ``predicate``/``object``."""
        return {t.subject for t in self.triples(None, predicate, object)}

    def objects(self, subject: Optional[Node] = None, predicate: Optional[IRI] = None) -> Set[Node]:
        """Distinct objects of triples matching ``subject``/``predicate``."""
        return {t.object for t in self.triples(subject, predicate, None)}

    # ------------------------------------------------------------------
    # Whole-graph helpers
    # ------------------------------------------------------------------
    def copy(self, name: str = "") -> "RDFGraph":
        """Return a shallow copy (terms and triples are immutable anyway)."""
        return RDFGraph(self._triples, name=name or self.name)

    def __or__(self, other: "RDFGraph") -> "RDFGraph":
        merged = self.copy()
        merged.add_all(other)
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RDFGraph):
            return NotImplemented
        return self._triples == other._triples

    def __hash__(self) -> int:  # pragma: no cover - graphs rarely hashed
        return hash(frozenset(self._triples))

    def connected_components(self) -> List[Set[Node]]:
        """Weakly connected components of the graph view."""
        remaining = set(self.vertices)
        components: List[Set[Node]] = []
        while remaining:
            seed = next(iter(remaining))
            component = {seed}
            frontier = [seed]
            while frontier:
                vertex = frontier.pop()
                for neighbour in self.neighbours(vertex):
                    if neighbour not in component:
                        component.add(neighbour)
                        frontier.append(neighbour)
            components.append(component)
            remaining -= component
        return components

    def induced_subgraph(self, vertices: Iterable[Node], name: str = "") -> "RDFGraph":
        """Subgraph induced by ``vertices`` (both endpoints must be included)."""
        wanted = set(vertices)
        sub = RDFGraph(name=name)
        for vertex in wanted:
            for triple in self._out.get(vertex, ()):
                if triple.object in wanted:
                    sub.add(triple)
        return sub

    def stats(self) -> Dict[str, int]:
        """Summary statistics used by dataset generators and reports."""
        return {
            "triples": len(self),
            "vertices": len(self.vertices),
            "predicates": len(self.predicates),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        label = f" {self.name!r}" if self.name else ""
        return f"<RDFGraph{label} triples={len(self)} vertices={len(self.vertices)}>"
