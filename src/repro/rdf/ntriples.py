"""N-Triples parsing and serialization.

N-Triples is the simplest line-based RDF syntax: one triple per line, terms
written in full (``<iri>``, ``"literal"@lang``, ``"literal"^^<datatype>``,
``_:blank``).  The dataset generators serialize to N-Triples and the loaders
parse it back, which keeps round-trip tests simple and removes any dependency
on external RDF libraries.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, TextIO, Union

from .graph import RDFGraph
from .terms import IRI, BlankNode, Literal, Node, unescape_literal
from .triples import Triple


class NTriplesParseError(ValueError):
    """Raised when a line cannot be parsed as an N-Triples statement."""

    def __init__(self, message: str, line_number: int = 0, line: str = "") -> None:
        location = f" (line {line_number})" if line_number else ""
        super().__init__(f"{message}{location}: {line.strip()!r}")
        self.line_number = line_number
        self.line = line


def parse_term(text: str) -> Node:
    """Parse a single N-Triples term (IRI, literal or blank node)."""
    text = text.strip()
    if not text:
        raise NTriplesParseError("empty term")
    if text.startswith("<") and text.endswith(">"):
        return IRI(text[1:-1])
    if text.startswith("_:"):
        return BlankNode(text[2:])
    if text.startswith('"'):
        return _parse_literal(text)
    raise NTriplesParseError(f"unrecognised term {text!r}")


def _parse_literal(text: str) -> Literal:
    closing = _find_closing_quote(text)
    lexical = unescape_literal(text[1:closing])
    suffix = text[closing + 1 :]
    if not suffix:
        return Literal(lexical)
    if suffix.startswith("@"):
        return Literal(lexical, language=suffix[1:])
    if suffix.startswith("^^<") and suffix.endswith(">"):
        return Literal(lexical, datatype=IRI(suffix[3:-1]))
    raise NTriplesParseError(f"bad literal suffix {suffix!r}")


def _find_closing_quote(text: str) -> int:
    i = 1
    while i < len(text):
        if text[i] == "\\":
            i += 2
            continue
        if text[i] == '"':
            return i
        i += 1
    raise NTriplesParseError("unterminated literal")


def _split_statement(line: str) -> List[str]:
    """Split an N-Triples statement into its three term strings."""
    terms: List[str] = []
    i = 0
    length = len(line)
    while i < length and len(terms) < 3:
        while i < length and line[i] in " \t":
            i += 1
        if i >= length:
            break
        start = i
        if line[i] == "<":
            i = line.index(">", i) + 1
        elif line[i] == '"':
            i = start + _find_closing_quote(line[start:]) + 1
            # Consume language tag or datatype.
            if i < length and line[i] == "@":
                while i < length and line[i] not in " \t":
                    i += 1
            elif line.startswith("^^<", i):
                i = line.index(">", i) + 1
        else:
            while i < length and line[i] not in " \t":
                i += 1
        terms.append(line[start:i])
    return terms


def parse_line(line: str, line_number: int = 0) -> Triple:
    """Parse one N-Triples statement line into a :class:`Triple`."""
    stripped = line.strip()
    if not stripped.endswith("."):
        raise NTriplesParseError("statement does not end with '.'", line_number, line)
    body = stripped[:-1].rstrip()
    parts = _split_statement(body)
    if len(parts) != 3:
        raise NTriplesParseError("statement does not have three terms", line_number, line)
    subject = parse_term(parts[0])
    predicate = parse_term(parts[1])
    if not isinstance(predicate, IRI):
        raise NTriplesParseError("predicate must be an IRI", line_number, line)
    obj = parse_term(parts[2])
    if isinstance(subject, Literal):
        raise NTriplesParseError("subject must not be a literal", line_number, line)
    return Triple(subject, predicate, obj)


def parse_lines(lines: Iterable[str]) -> Iterator[Triple]:
    """Parse an iterable of text lines, skipping blanks and ``#`` comments."""
    for line_number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield parse_line(stripped, line_number)


def parse_string(text: str) -> RDFGraph:
    """Parse an N-Triples document given as a string into an :class:`RDFGraph`."""
    return RDFGraph(parse_lines(text.splitlines()))


def load(source: Union[str, Path, TextIO], name: str = "") -> RDFGraph:
    """Load an N-Triples file (path or open text handle) into a graph."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            graph = RDFGraph(parse_lines(handle), name=name or str(source))
        return graph
    return RDFGraph(parse_lines(source), name=name)


def serialize(triples: Iterable[Triple]) -> str:
    """Serialize triples into an N-Triples document (sorted for determinism)."""
    lines = sorted(triple.n3() for triple in triples)
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def dump(triples: Iterable[Triple], destination: Union[str, Path, TextIO]) -> int:
    """Write ``triples`` to ``destination`` in N-Triples; return the triple count."""
    text = serialize(triples)
    count = text.count("\n")
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        destination.write(text)
    return count
