"""RDF data model substrate: terms, triples, graphs, namespaces, N-Triples I/O."""

from .graph import RDFGraph
from .namespaces import (
    DBPEDIA_NS,
    DBPEDIA_ONT_NS,
    FOAF_NS,
    Namespace,
    NamespaceManager,
    RDF_NS,
    RDF_TYPE,
    RDFS_NS,
    UB_NS,
    XSD_NS,
    YAGO_NS,
)
from .ntriples import (
    NTriplesParseError,
    dump,
    load,
    parse_line,
    parse_string,
    parse_term,
    serialize,
)
from .terms import (
    BlankNode,
    IRI,
    Literal,
    Node,
    PatternTerm,
    Term,
    Variable,
    is_concrete,
)
from .triples import Triple, TriplePattern

__all__ = [
    "BlankNode",
    "DBPEDIA_NS",
    "DBPEDIA_ONT_NS",
    "FOAF_NS",
    "IRI",
    "Literal",
    "Namespace",
    "NamespaceManager",
    "Node",
    "NTriplesParseError",
    "PatternTerm",
    "RDFGraph",
    "RDF_NS",
    "RDF_TYPE",
    "RDFS_NS",
    "Term",
    "Triple",
    "TriplePattern",
    "UB_NS",
    "Variable",
    "XSD_NS",
    "YAGO_NS",
    "dump",
    "is_concrete",
    "load",
    "parse_line",
    "parse_string",
    "parse_term",
    "serialize",
]
