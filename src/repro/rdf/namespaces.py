"""Namespace helpers.

A :class:`Namespace` builds IRIs from local names (``UB.Professor`` →
``<http://.../univ-bench.owl#Professor>``), and a :class:`NamespaceManager`
keeps prefix → namespace bindings for parsing and pretty-printing.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .terms import IRI


class Namespace:
    """A factory of IRIs sharing a common prefix."""

    def __init__(self, base: str) -> None:
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def term(self, local_name: str) -> IRI:
        """Return the IRI ``<base + local_name>``."""
        return IRI(self._base + local_name)

    def __getattr__(self, local_name: str) -> IRI:
        if local_name.startswith("_"):
            raise AttributeError(local_name)
        return self.term(local_name)

    def __getitem__(self, local_name: str) -> IRI:
        return self.term(local_name)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self._base)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Namespace({self._base!r})"


#: Namespaces used by the bundled dataset generators and examples.
RDF_NS = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS_NS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD_NS = Namespace("http://www.w3.org/2001/XMLSchema#")
FOAF_NS = Namespace("http://xmlns.com/foaf/0.1/")
DBPEDIA_NS = Namespace("http://dbpedia.org/resource/")
DBPEDIA_ONT_NS = Namespace("http://dbpedia.org/ontology/")
UB_NS = Namespace("http://swat.cse.lehigh.edu/onto/univ-bench.owl#")
YAGO_NS = Namespace("http://yago-knowledge.org/resource/")

#: ``rdf:type``, used pervasively (and written ``a`` in SPARQL).
RDF_TYPE = RDF_NS.term("type")


class NamespaceManager:
    """Prefix registry used by the SPARQL parser and serializers."""

    def __init__(self, bindings: Optional[Dict[str, str]] = None) -> None:
        self._prefixes: Dict[str, str] = {}
        for prefix, base in (bindings or {}).items():
            self.bind(prefix, base)

    @classmethod
    def with_defaults(cls) -> "NamespaceManager":
        """A manager pre-loaded with the well-known prefixes of this repo."""
        return cls(
            {
                "rdf": RDF_NS.base,
                "rdfs": RDFS_NS.base,
                "xsd": XSD_NS.base,
                "foaf": FOAF_NS.base,
                "dbo": DBPEDIA_ONT_NS.base,
                "dbr": DBPEDIA_NS.base,
                "ub": UB_NS.base,
                "yago": YAGO_NS.base,
            }
        )

    def bind(self, prefix: str, base: str) -> None:
        """Register ``prefix`` → ``base`` (later bindings override earlier ones)."""
        self._prefixes[prefix] = base

    def resolve(self, prefixed_name: str) -> IRI:
        """Expand a prefixed name such as ``foaf:name`` into an IRI."""
        if ":" not in prefixed_name:
            raise ValueError(f"not a prefixed name: {prefixed_name!r}")
        prefix, local = prefixed_name.split(":", 1)
        if prefix not in self._prefixes:
            raise KeyError(f"unknown prefix: {prefix!r}")
        return IRI(self._prefixes[prefix] + local)

    def shrink(self, iri: IRI) -> str:
        """Return a prefixed name for ``iri`` if a binding covers it, else ``<iri>``."""
        best: Optional[Tuple[str, str]] = None
        for prefix, base in self._prefixes.items():
            if iri.value.startswith(base) and (best is None or len(base) > len(best[1])):
                best = (prefix, base)
        if best is None:
            return iri.n3()
        prefix, base = best
        return f"{prefix}:{iri.value[len(base):]}"

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._prefixes

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._prefixes.items())

    def __len__(self) -> int:
        return len(self._prefixes)
