"""Command-line interface for the reproduction.

The CLI covers the workflow a downstream user actually runs:

* ``repro generate``  — build one of the bundled synthetic datasets and write
  it as N-Triples;
* ``repro partition`` — partition a dataset with one of the strategies,
  report the Section VII cost, and optionally save the workspace;
* ``repro query``     — execute a SPARQL BGP query (inline or from a file)
  over a partitioned workspace or an ad-hoc partitioning, with any
  gStoreD configuration or any :mod:`repro.api` registry engine
  (``--engine gstored|dream|decomp|cloud|s2x|centralized``); ``--trace PATH``
  writes a Chrome trace-event JSON of the staged pipeline and ``--metrics``
  prints a Prometheus exposition of the run (:mod:`repro.obs`);
* ``repro explain``   — show the cost-based plan (statistics summary, chosen
  vertex order, per-step estimates) for a query without executing it;
* ``repro experiment`` — regenerate one of the paper's tables/figures;
* ``repro store``     — build, inspect and compact durable cluster store
  files (:mod:`repro.persist`); ``repro serve --store PATH`` and
  ``repro.open(path=...)`` restart warm from them;
* ``repro serve``     — keep one warm session open and answer SPARQL queries
  over HTTP (``POST /query``, ``GET /healthz``, ``GET /metrics``) with
  bounded admission and an optional result cache (:mod:`repro.api.serving`).

Every subcommand prints plain text so the tool composes with shell pipelines;
``main()`` returns the process exit code and never calls ``sys.exit`` itself,
which keeps it easy to test.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from contextlib import nullcontext
from pathlib import Path
from typing import List, Optional, Sequence

from .api import engine_aliases, engine_names, make_engine
from .bench import (
    ablation_series,
    comparison_series,
    format_series,
    format_table,
    partitioning_cost_table,
    per_stage_table,
    scalability_series,
)
from .core import EngineConfig, OptimizationLevel
from .datasets import get_dataset
from .distributed import build_cluster
from .exec import EXECUTOR_CHOICES, make_backend
from .obs import CATEGORY_PLANNING, MetricsRegistry, Trace, record_query
from .partition import (
    load_workspace,
    make_partitioner,
    partitioning_cost,
    refine_partitioning,
    save_workspace,
)
from .planner import QueryPlanner
from .rdf import dump as dump_ntriples
from .rdf import load as load_ntriples
from .sparql import QueryGraph, parse_query, traversal_order
from .store import KERNEL_CHOICES, KERNEL_ENV, resolve_kernel

_LEVELS = {
    "gstored": OptimizationLevel.FULL,
    "basic": OptimizationLevel.BASIC,
    "la": OptimizationLevel.LA,
    "lo": OptimizationLevel.LO,
}

def engine_choices() -> tuple:
    """Engine names accepted by ``repro query --engine``.

    The gStoreD optimization levels, every :mod:`repro.api` registry engine,
    and every registry alias (the legacy report names of the simulated
    systems among them).  Computed from the live registry on every call, so
    engines registered through :func:`repro.api.register_engine` are
    immediately reachable from the CLI too.
    """
    return tuple(
        dict.fromkeys(
            list(_LEVELS)
            + [name for name in engine_names() if name != "gstored"]
            + sorted(engine_aliases())
        )
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed SPARQL evaluation with LEC-feature-accelerated partial evaluation.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic benchmark dataset")
    generate.add_argument("dataset", choices=("LUBM", "YAGO2", "BTC"))
    generate.add_argument("--scale", type=int, default=1, help="scale factor (default 1)")
    generate.add_argument("--seed", type=int, default=None, help="override the generator seed")
    generate.add_argument("--output", required=True, help="output N-Triples file")

    partition = subparsers.add_parser("partition", help="partition an N-Triples dataset")
    partition.add_argument("input", help="N-Triples file to partition")
    partition.add_argument("--strategy", choices=("hash", "semantic_hash", "metis"), default="hash")
    partition.add_argument("--sites", type=int, default=6, help="number of fragments/sites")
    partition.add_argument("--refine", action="store_true", help="apply cost-guided refinement")
    partition.add_argument("--workspace", help="directory to save the partitioned workspace into")

    query = subparsers.add_parser("query", help="run a SPARQL BGP query over a partitioned dataset")
    source = query.add_mutually_exclusive_group(required=True)
    source.add_argument("--workspace", help="workspace directory written by 'repro partition'")
    source.add_argument("--data", help="N-Triples file to partition on the fly")
    query.add_argument("--strategy", choices=("hash", "semantic_hash", "metis"), default="hash")
    query.add_argument("--sites", type=int, default=6)
    query.add_argument(
        "--engine",
        default="gstored",
        help=f"evaluator to run the query with; one of: {', '.join(engine_choices())}",
    )
    query_text = query.add_mutually_exclusive_group(required=True)
    query_text.add_argument("--query", help="SPARQL query text")
    query_text.add_argument("--query-file", help="file containing the SPARQL query")
    query.add_argument("--show-stats", action="store_true", help="print per-stage statistics")
    query.add_argument("--limit", type=int, default=20, help="maximum solutions to print")
    query.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run per-site stage work on a worker pool with N workers (default: serial)",
    )
    query.add_argument(
        "--executor",
        default=None,
        help="execution backend for the per-site fan-out, one of: "
        f"{', '.join(EXECUTOR_CHOICES)} (threads is implied by --workers alone; "
        "processes sidesteps the GIL for real multi-core speedup)",
    )
    query.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace-event JSON of the staged pipeline to PATH "
        "(gStoreD engine family only; open it in Perfetto or chrome://tracing)",
    )
    query.add_argument(
        "--metrics",
        action="store_true",
        help="print the run's metrics in Prometheus text exposition format after the results",
    )
    query.add_argument(
        "--inject-faults",
        metavar="PLAN",
        default=None,
        help="deterministic fault plan, e.g. 'kill:1@partial_evaluation;"
        "flaky:0@candidate_exchange:2' or 'random:SEED' (gStoreD engine "
        "family only; see docs/faults.md for the grammar)",
    )
    query.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default=None,
        help="matching kernel for local evaluation (default: $REPRO_KERNEL, "
        "else vectorized when numpy is importable; answers are identical "
        "for every choice — see docs/performance.md)",
    )

    explain = subparsers.add_parser("explain", help="show the cost-based query plan without executing")
    explain_source = explain.add_mutually_exclusive_group(required=True)
    explain_source.add_argument("--workspace", help="workspace directory written by 'repro partition'")
    explain_source.add_argument("--data", help="N-Triples file to partition on the fly")
    explain.add_argument("--strategy", choices=("hash", "semantic_hash", "metis"), default="hash")
    explain.add_argument("--sites", type=int, default=6)
    explain_text = explain.add_mutually_exclusive_group(required=True)
    explain_text.add_argument("--query", help="SPARQL query text")
    explain_text.add_argument("--query-file", help="file containing the SPARQL query")
    explain.add_argument(
        "--workers",
        type=int,
        default=None,
        help="collect per-site planner statistics on a worker pool with N workers",
    )
    explain.add_argument(
        "--executor",
        default=None,
        help="execution backend for the statistics fan-out, one of: "
        f"{', '.join(EXECUTOR_CHOICES)} (threads is implied by --workers alone)",
    )
    explain.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace-event JSON of the statistics collection "
        "and planning phases to PATH",
    )
    explain.add_argument(
        "--metrics",
        action="store_true",
        help="print planning-phase timings in Prometheus text exposition format",
    )

    experiment = subparsers.add_parser("experiment", help="regenerate one of the paper's experiments")
    experiment.add_argument(
        "name",
        choices=("table1", "table2", "table3", "table4", "fig9", "fig10", "fig11", "fig12"),
    )
    experiment.add_argument("--sites", type=int, default=6)

    store = subparsers.add_parser(
        "store", help="build and maintain durable cluster store files (repro.persist)"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_build = store_sub.add_parser(
        "build", help="build a store file from a bundled workload"
    )
    store_build.add_argument(
        "--dataset", default="paper", help="bundled workload to snapshot (default: paper)"
    )
    store_build.add_argument("--scale", type=int, default=None, help="dataset scale factor")
    store_build.add_argument("--sites", type=int, default=None, help="number of fragments/sites")
    store_build.add_argument(
        "--partitioner",
        default="hash",
        help="partitioning strategy (default: hash; 'paper' reproduces Fig. 1)",
    )
    store_build.add_argument("--output", required=True, help="store file to write")
    store_build.add_argument(
        "--force", action="store_true", help="replace an existing store file"
    )
    store_info = store_sub.add_parser("info", help="print a store file's manifest and sizes")
    store_info.add_argument("path", help="store file to inspect")
    store_compact = store_sub.add_parser(
        "compact", help="fold the delta journal into a fresh base snapshot"
    )
    store_compact.add_argument("path", help="store file to compact in place")

    serve = subparsers.add_parser(
        "serve", help="serve SPARQL queries over HTTP from one warm session"
    )
    serve.add_argument("--dataset", default="paper", help="bundled workload to open (default: paper)")
    serve.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="durable store file to serve from: an existing file restarts the "
        "session warm from disk (its manifest wins over --dataset/--scale), a "
        "missing one is built once and saved (see docs/persistence.md)",
    )
    serve.add_argument("--scale", type=int, default=None, help="dataset scale factor")
    serve.add_argument("--sites", type=int, default=None, help="number of fragments/sites")
    serve.add_argument(
        "--partitioner",
        choices=("hash", "semantic_hash", "metis", "paper"),
        default="hash",
    )
    serve.add_argument(
        "--engine",
        default="gstored",
        help="default evaluator for requests that do not name one",
    )
    serve.add_argument(
        "--executor",
        default=None,
        help=f"execution backend for the per-site fan-out, one of: {', '.join(EXECUTOR_CHOICES)}",
    )
    serve.add_argument("--workers", type=int, default=None, help="worker pool size for the fan-out")
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080, help="TCP port to bind (0 picks a free one)")
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        help="queries allowed to execute concurrently (default: 4)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="queries allowed to wait for a slot before new ones are rejected "
        "with HTTP 429 (default: 16)",
    )
    serve.add_argument(
        "--result-cache",
        type=int,
        default=0,
        help="enable the session result cache with N entries (default: off)",
    )

    return parser


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_generate(args: argparse.Namespace) -> int:
    spec = get_dataset(args.dataset)
    kwargs = {"scale": args.scale}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    graph = spec.generate(**kwargs)
    count = dump_ntriples(graph, args.output)
    print(f"wrote {count} triples to {args.output} ({args.dataset}, scale {args.scale})")
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    graph = load_ntriples(args.input)
    partitioner = make_partitioner(args.strategy, args.sites)
    partitioned = partitioner.partition(graph)
    if args.refine:
        partitioned, report = refine_partitioning(partitioned)
        print(
            f"refinement: {report.moves} moves over {report.passes} passes, "
            f"cost {report.initial_cost:.2f} -> {report.final_cost:.2f}"
        )
    cost = partitioning_cost(partitioned)
    print(format_table([{**partitioned.stats(), "cost": round(cost.cost, 2)}]))
    if args.workspace:
        paths = save_workspace(partitioned, args.workspace)
        print(f"workspace saved: {paths['graph']} + {paths['assignment']}")
    return 0


def _load_cluster(args: argparse.Namespace):
    if args.workspace:
        partitioned = load_workspace(args.workspace)
    else:
        graph = load_ntriples(args.data)
        partitioned = make_partitioner(args.strategy, args.sites).partition(graph)
    return build_cluster(partitioned)


def _validated_workers(args: argparse.Namespace) -> Optional[int]:
    """The validated ``--workers`` value, or ``None`` when not given."""
    workers = getattr(args, "workers", None)
    if workers is not None and workers < 1:
        raise ValueError(f"--workers must be a positive worker count, got {workers}")
    return workers


def _requested_executor(args: argparse.Namespace, workers: Optional[int]) -> Optional[str]:
    """The backend to use, or ``None`` for the serial default.

    ``--workers N`` alone keeps its original meaning (a thread pool of N);
    ``--executor`` overrides the backend and works with or without
    ``--workers`` (processes then size themselves from $REPRO_MAX_WORKERS or
    the CPU count).
    """
    executor = getattr(args, "executor", None)
    if executor is not None and executor not in EXECUTOR_CHOICES:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of {', '.join(EXECUTOR_CHOICES)}"
        )
    if executor == "serial" and workers is not None:
        parallel = [name for name in EXECUTOR_CHOICES if name != "serial"]
        raise ValueError(
            "--workers is meaningless with --executor serial; drop --workers or "
            f"pick --executor from: {', '.join(parallel)}"
        )
    if executor is not None:
        return executor
    return "threads" if workers is not None else None


def _cmd_query(args: argparse.Namespace) -> int:
    workers = _validated_workers(args)
    executor = _requested_executor(args, workers)
    engine_name = args.engine.lower()
    if engine_name not in engine_choices():
        raise ValueError(
            f"unknown engine {args.engine!r}; choose from: {', '.join(engine_choices())}"
        )
    is_gstored = engine_name in _LEVELS or engine_aliases().get(engine_name) == "gstored"
    if args.trace and not is_gstored:
        raise ValueError(
            "--trace follows the staged gStoreD pipeline and only applies to the "
            f"gStoreD engine family ({', '.join(_LEVELS)}); engine {engine_name!r} "
            "bypasses it (drop --trace, or keep --metrics which works with every engine)"
        )
    if args.inject_faults and not is_gstored:
        raise ValueError(
            "--inject-faults hooks the staged gStoreD pipeline and only applies "
            f"to the gStoreD engine family ({', '.join(_LEVELS)}); engine "
            f"{engine_name!r} has no per-site stages to fail"
        )
    if args.kernel is not None:
        # Validate (a vectorized request without numpy fails here, before any
        # work) and export, so in-process matchers and process-pool workers
        # alike resolve the requested kernel.
        os.environ[KERNEL_ENV] = resolve_kernel(args.kernel)
    cluster = _load_cluster(args)
    query = parse_query(_read_query_text(args))
    faults = _resolve_fault_plan(args.inject_faults, cluster) if args.inject_faults else None

    if is_gstored:
        config = EngineConfig.for_level(_LEVELS.get(engine_name, OptimizationLevel.FULL))
        if executor is not None:
            config = config.with_executor(executor, workers)
        engine = make_engine("gstored", cluster, config=config, faults=faults)
    else:
        gstored_family = ", ".join(_LEVELS)
        if workers is not None:
            raise ValueError(
                f"--workers only applies to the gStoreD engine family ({gstored_family}); "
                f"engine {engine_name!r} runs its fixed strategy without a fan-out pool"
            )
        if executor is not None:
            raise ValueError(
                f"--executor only applies to the gStoreD engine family ({gstored_family}); "
                f"engine {engine_name!r} runs its fixed strategy without a fan-out pool"
            )
        engine = make_engine(engine_name, cluster)
    trace = Trace("query", engine=engine_name) if args.trace else None
    with engine:
        if trace is not None:
            result = engine.execute(query, query_name="cli", trace=trace)
        else:
            result = engine.execute(query, query_name="cli")

    executor = result.statistics.extra.get("executor")
    runtime = ""
    if executor and executor != "serial":
        runtime = f", executor={executor} x{result.statistics.extra.get('max_workers')}"
    print(f"{len(result.results)} solutions ({result.statistics.engine}{runtime})")
    for row in result.results.to_table()[: args.limit]:
        print("  " + ", ".join(f"{key}={value}" for key, value in sorted(row.items())))
    if faults is not None:
        work = result.statistics.work
        print(
            f"faults: plan [{faults.describe()}] -> "
            f"retries={int(work.get('task_retries', 0))}, "
            f"site_failures={int(work.get('site_failures', 0))}, "
            f"recoveries={int(work.get('site_recoveries', 0))}"
        )
        extra = result.statistics.extra
        if extra.get("degraded"):
            missing = ", ".join(str(sid) for sid in extra.get("missing_sites", ()))
            print(f"WARNING: partial results — site(s) {missing} lost unrecoverably")
    if args.show_stats:
        print(format_table([stage.as_dict() for stage in result.statistics.stages]))
        print(
            f"total: {result.statistics.total_time_ms:.2f} ms, "
            f"{result.statistics.total_shipment_kb:.2f} KB shipped"
        )
    if trace is not None:
        trace.finish(rows=len(result.results))
        trace.save(args.trace)
        print(f"trace: wrote {len(trace.spans)} spans to {args.trace}")
    if args.metrics:
        registry = MetricsRegistry()
        record_query(
            registry,
            result.statistics,
            shipment=cluster.bus.snapshot(),
            engine=result.statistics.engine,
            backend=executor or "serial",
            pool_size=result.statistics.extra.get("max_workers") or workers or 1,
            encoded_rebuilds=_encoded_rebuilds(),
            kernel=resolve_kernel(args.kernel),
        )
        print(registry.prometheus_text(), end="")
    return 0


def _resolve_fault_plan(spec: str, cluster):
    """Parse ``--inject-faults`` into a :class:`~repro.faults.FaultPlan`.

    ``random:SEED`` draws a survivable random plan over the cluster's actual
    site ids (which is why resolution waits until the cluster is loaded);
    anything else goes through the ``KIND:SITE@STAGE`` grammar.
    """
    from .faults import FaultPlan

    text = spec.strip()
    if text.lower().startswith("random:"):
        seed_text = text.split(":", 1)[1].strip()
        try:
            seed = int(seed_text)
        except ValueError:
            raise ValueError(
                f"--inject-faults random:SEED needs an integer seed, got {seed_text!r}"
            ) from None
        return FaultPlan.random(seed, sorted(cluster.site_ids))
    return FaultPlan.parse(text)


def _encoded_rebuilds() -> int:
    """The process-wide :class:`EncodedGraph` rebuild count (lazy import so
    the store layer is only touched when ``--metrics`` asks for it)."""
    from .store.encoding import encoded_rebuilds

    return encoded_rebuilds()


def _read_query_text(args: argparse.Namespace) -> str:
    if args.query_file:
        return Path(args.query_file).read_text(encoding="utf-8")
    return args.query


def _cmd_explain(args: argparse.Namespace) -> int:
    workers = _validated_workers(args)
    executor = _requested_executor(args, workers)
    trace = Trace("explain") if args.trace else None
    backend = make_backend(executor, workers) if executor is not None else None
    try:
        cluster = _load_cluster(args)
        query = parse_query(_read_query_text(args))

        stats_started = time.perf_counter()
        stats_cm = (
            trace.span("collect_statistics", CATEGORY_PLANNING)
            if trace is not None
            else nullcontext()
        )
        with stats_cm:
            statistics = cluster.graph_statistics(backend)
        stats_seconds = time.perf_counter() - stats_started
        planner = cluster.coordinator_planner(backend=backend)
    finally:
        if backend is not None:
            backend.close()
    print(f"statistics: {statistics.summary()} (aggregated over {cluster.num_sites} sites)")
    components = query.bgp.connected_components()
    plan_started = time.perf_counter()
    for position, component in enumerate(components):
        query_graph = QueryGraph(component)
        if len(components) > 1:
            print(f"-- component {position + 1}/{len(components)} --")
        print(f"query shape: {query_graph.classify_shape()}")
        plan_cm = (
            trace.span("plan", CATEGORY_PLANNING, component=position)
            if trace is not None
            else nullcontext()
        )
        with plan_cm:
            explained = planner.explain(query_graph)
        print(explained)
        static = " -> ".join(term.n3() for term in traversal_order(query_graph))
        print(f"static (seed) order: {static}")
    plan_seconds = time.perf_counter() - plan_started
    if trace is not None:
        trace.finish(components=len(components))
        trace.save(args.trace)
        print(f"trace: wrote {len(trace.spans)} spans to {args.trace}")
    if args.metrics:
        registry = MetricsRegistry()
        help_text = "Wall-clock seconds spent in each planning-side phase."
        registry.histogram("repro_stage_seconds", help_text, stage="statistics").observe(
            stats_seconds
        )
        registry.histogram("repro_stage_seconds", help_text, stage="planning").observe(
            plan_seconds
        )
        print(registry.prometheus_text(), end="")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    sites = args.sites
    if args.name == "table1":
        print(format_table(per_stage_table("LUBM", num_sites=sites)))
    elif args.name == "table2":
        print(format_table(per_stage_table("YAGO2", num_sites=sites)))
    elif args.name == "table3":
        print(format_table(per_stage_table("BTC", num_sites=sites)))
    elif args.name == "table4":
        print(format_table(partitioning_cost_table(num_sites=sites)))
    elif args.name == "fig9":
        print(format_series("Fig. 9(a) LUBM", ablation_series("LUBM", ("LQ1", "LQ3", "LQ6", "LQ7"), num_sites=sites)))
        print(format_series("Fig. 9(b) YAGO2", ablation_series("YAGO2", ("YQ1", "YQ2", "YQ3", "YQ4"), num_sites=sites)))
    elif args.name == "fig10":
        from .bench import lec_feature_shipment_series, partitioning_performance_series

        print(
            format_series(
                "Fig. 10(a) LUBM times",
                partitioning_performance_series("LUBM", ("LQ1", "LQ3", "LQ6", "LQ7"), num_sites=sites),
            )
        )
        print(
            format_series(
                "Fig. 10(b) YAGO2 LEC shipment",
                lec_feature_shipment_series("YAGO2", ("YQ1", "YQ2", "YQ3", "YQ4"), num_sites=sites),
            )
        )
    elif args.name == "fig11":
        print(format_series("Fig. 11(a) stars", scalability_series(("LQ2", "LQ4", "LQ5"), num_sites=sites)))
        print(format_series("Fig. 11(b) others", scalability_series(("LQ1", "LQ3", "LQ6", "LQ7"), num_sites=sites)))
    elif args.name == "fig12":
        for dataset in ("YAGO2", "LUBM", "BTC"):
            print(format_series(f"Fig. 12 {dataset}", comparison_series(dataset, num_sites=sites)))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from .persist import ClusterStore

    if args.store_command == "build":
        output = Path(args.output)
        if output.exists() and not args.force:
            raise ValueError(
                f"store file already exists: {output} (pass --force to rebuild it)"
            )
        if output.exists():
            output.unlink()
        from .api import open_session

        started = time.perf_counter()
        # open_session(path=...) validates dataset/partitioner (enumerating
        # the choices on error), builds the workload and snapshots it.
        session = open_session(
            args.dataset,
            path=str(output),
            scale=args.scale,
            sites=args.sites,
            partitioner=args.partitioner,
        )
        try:
            info = session.store.info()
        finally:
            session.close()
        elapsed = time.perf_counter() - started
        print(f"built {output} in {elapsed:.2f} s")
        for key in ("dataset", "scale", "num_fragments", "base_triples", "base_terms", "file_bytes"):
            print(f"  {key}: {info[key]}")
        return 0
    if args.store_command == "info":
        with ClusterStore.open(args.path, read_only=True) as store:
            info = store.info()
        for key, value in info.items():
            print(f"{key}: {value}")
        return 0
    # compact
    with ClusterStore.open(args.path) as store:
        before = store.info()["file_bytes"]
        report = store.compact()
    print(
        f"compacted {args.path}: folded {report['folded_deltas']} deltas, "
        f"{before} -> {report['file_bytes']} bytes"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    workers = _validated_workers(args)
    executor = _requested_executor(args, workers)
    if args.result_cache < 0:
        raise ValueError(f"--result-cache must be >= 0, got {args.result_cache}")
    from .api import QueryServer, open_session

    open_kwargs = dict(
        partitioner=args.partitioner,
        engine=args.engine,
        executor=executor,
        workers=workers,
        result_cache=args.result_cache,
    )
    if args.store is not None:
        open_kwargs["path"] = args.store
    if args.scale is not None:
        open_kwargs["scale"] = args.scale
    if args.sites is not None:
        open_kwargs["sites"] = args.sites
    session = open_session(args.dataset, **open_kwargs)
    try:
        # No context manager here: ``with`` would start the background
        # serving thread and serve_forever() would run a second accept loop
        # on the same socket — the CLI serves on this thread alone.
        server = QueryServer(
            session,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
        )
        host, port = server.address
        print(
            f"serving {session.dataset} on http://{host}:{port} "
            f"(engine={session.default_engine}, executor={session.backend.name}, "
            f"max_inflight={args.max_inflight}, max_queue={args.max_queue}, "
            f"result_cache={args.result_cache})",
            flush=True,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down", flush=True)
        finally:
            server.shutdown()
    finally:
        session.close()
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "partition": _cmd_partition,
    "query": _cmd_query,
    "explain": _cmd_explain,
    "experiment": _cmd_experiment,
    "store": _cmd_store,
    "serve": _cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by both the console script and the tests."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return _COMMANDS[args.command](args)
    except (FileNotFoundError, KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - direct invocation
    sys.exit(main())
