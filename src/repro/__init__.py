"""repro — reproduction of "Accelerating Partial Evaluation in Distributed SPARQL Query Evaluation" (ICDE 2019).

The package provides, end to end:

* an RDF data model and N-Triples I/O (:mod:`repro.rdf`),
* a SPARQL BGP parser and query-graph model (:mod:`repro.sparql`),
* a centralized indexed triple store and matcher (:mod:`repro.store`),
* vertex-disjoint graph partitioning with the paper's cost model
  (:mod:`repro.partition`),
* a simulated distributed runtime with data-shipment accounting
  (:mod:`repro.distributed`),
* a pluggable execution runtime (serial / thread pool / process pool) for
  the per-site fan-out (:mod:`repro.exec`),
* the paper's contribution — LEC-feature-accelerated partial evaluation and
  assembly (:mod:`repro.core`),
* simulated comparison systems (:mod:`repro.baselines`),
* scaled-down LUBM/YAGO2/BTC-like workloads (:mod:`repro.datasets`),
* the experiment harness regenerating every table and figure
  (:mod:`repro.bench`),
* the unified session/engine/result facade tying them together
  (:mod:`repro.api`), and
* per-query tracing, a metrics registry and profiling hooks
  (:mod:`repro.obs`).

Quickstart
----------

``repro.open`` is the front door: it prepares a workload, owns the cluster
and the executor pools, and hands every evaluator out behind one contract.

>>> import repro
>>> with repro.open(dataset="paper") as session:
...     result = session.query(
...         'PREFIX ex: <http://example.org/> '
...         'SELECT ?p2 ?l WHERE { ?t ex:label ?l . ?p1 ex:influencedBy ?p2 . '
...         '?p2 ex:mainInterest ?t . ?p1 ex:name "Crispin Wright"@en . }'
...     )
...     len(result) > 0
...     result.same_solutions(session.query("example", engine="centralized"))
True
True
"""

import warnings as _warnings

from .api import (
    AsyncSession,
    CentralizedEngine,
    QueryEngine,
    QueryServer,
    Result,
    Session,
    engine_names,
    make_engine,
    open_session,
)
from .api import open_session as open  # noqa: A001 - ``repro.open`` is the public name
from .core import (
    ABLATION_CONFIGS,
    DistributedResult,
    EngineConfig,
    GStoreDEngine,
    LECFeature,
    LocalPartialMatch,
    OptimizationLevel,
)
from .distributed import AppliedDelta, Cluster, QueryStatistics, ShipmentSnapshot, build_cluster
from .exec import ExecutorBackend, SerialBackend, ThreadPoolBackend, make_backend, run_per_site
from .faults import FaultPlan, RetryPolicy
from .obs import MetricsRegistry, StageProfiler, Trace, Tracer
from .persist import ClusterStore, StoreError
from .partition import (
    HashPartitioner,
    MetisLikePartitioner,
    PartitionedGraph,
    SemanticHashPartitioner,
    make_partitioner,
    partitioning_cost,
    select_best_partitioning,
)
from .planner import GraphStatistics, QueryPlan, QueryPlanner, collect_statistics
from .rdf import IRI, Literal, Namespace, NamespaceManager, RDFGraph, Triple, Variable
from .sparql import Binding, ResultSet, SelectQuery, parse_query
from .store import LocalMatcher, TripleStore, evaluate_centralized

__version__ = "1.1.0"


def quickstart_cluster(num_fragments: int = 3, strategy: str = "hash"):
    """Build a tiny ready-to-query cluster over the paper's running example.

    .. deprecated:: 1.1
        Use ``repro.open(dataset="paper", sites=num_fragments,
        partitioner=strategy)`` — the session additionally owns the engines,
        the executor pools and the plan cache.  This shim returns the same
        ``(cluster, namespace_manager)`` pair as before.
    """
    _warnings.warn(
        "quickstart_cluster() is deprecated; use repro.open(dataset='paper', "
        f"sites={num_fragments}, partitioner={strategy!r}) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from .datasets.paper_example import EXAMPLE_NAMESPACES, build_example_graph

    graph = build_example_graph()
    partitioner = make_partitioner(strategy, num_fragments)
    partitioned = partitioner.partition(graph)
    return build_cluster(partitioned), EXAMPLE_NAMESPACES


__all__ = [
    "ABLATION_CONFIGS",
    "AppliedDelta",
    "AsyncSession",
    "Binding",
    "CentralizedEngine",
    "Cluster",
    "ClusterStore",
    "DistributedResult",
    "EngineConfig",
    "ExecutorBackend",
    "FaultPlan",
    "GStoreDEngine",
    "GraphStatistics",
    "HashPartitioner",
    "IRI",
    "LECFeature",
    "Literal",
    "LocalMatcher",
    "LocalPartialMatch",
    "MetisLikePartitioner",
    "MetricsRegistry",
    "Namespace",
    "NamespaceManager",
    "OptimizationLevel",
    "PartitionedGraph",
    "QueryEngine",
    "QueryPlan",
    "QueryPlanner",
    "QueryServer",
    "QueryStatistics",
    "RDFGraph",
    "Result",
    "ResultSet",
    "RetryPolicy",
    "SelectQuery",
    "SemanticHashPartitioner",
    "SerialBackend",
    "Session",
    "ShipmentSnapshot",
    "StageProfiler",
    "StoreError",
    "ThreadPoolBackend",
    "Trace",
    "Tracer",
    "Triple",
    "TripleStore",
    "Variable",
    "build_cluster",
    "collect_statistics",
    "engine_names",
    "evaluate_centralized",
    "make_backend",
    "make_engine",
    "make_partitioner",
    "open",
    "open_session",
    "parse_query",
    "partitioning_cost",
    "quickstart_cluster",
    "run_per_site",
    "select_best_partitioning",
    "__version__",
]
