"""Cloud-based baselines: S2RDF-, CliqueSquare- and S2X-like engines.

The paper's comparison set includes three systems that run on general
cloud data-processing stacks rather than on a native RDF store per site:

* **S2RDF** (Spark SQL): the dataset is stored in vertical-partitioning
  tables (one two-column table per predicate); a SPARQL query becomes a
  sequence of relational scans and joins.  Every triple-pattern scan reads a
  whole predicate table spread over the cluster and shuffles the survivors.
* **CliqueSquare** (Hadoop): queries are decomposed into *cliques* (star
  subqueries) that are evaluated with flat n-ary equality joins, aiming at
  the smallest number of MapReduce-style stages; every stage writes and
  shuffles its intermediate results.
* **S2X** (GraphX): a vertex-centric graph-parallel evaluation: triple
  patterns are matched by every vertex in parallel, and candidate bindings
  are iteratively validated/pruned through message exchanges along edges
  (supersteps) before the surviving partial bindings are collected and
  merged.

All three share the trait the paper highlights: a per-query overhead of
scanning and shuffling that does not pay off unless the query is unselective
and the dataset very large.  The simulations below reproduce that behaviour:
they scan whole predicate partitions, ship intermediate relations between
sites and the coordinator, and use generic hash joins rather than any
RDF-specific pruning.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Set, Tuple

from ..distributed.cluster import Cluster
from ..distributed.network import (
    COORDINATOR,
    GRAPH_BSP_PLATFORM,
    MAPREDUCE_PLATFORM,
    SPARK_SQL_PLATFORM,
    StageTimer,
)
from ..core.engine import DistributedResult
from ..rdf.terms import IRI, Literal, Node, Variable
from ..rdf.triples import Triple, TriplePattern
from ..sparql.algebra import SelectQuery
from ..sparql.bindings import Binding
from .base import DistributedEngine
from .decomposition import decompose_into_stars, hash_join, join_all

STAGE_SCAN = "pattern_scan"
STAGE_SHUFFLE = "shuffle_join"
STAGE_SUPERSTEPS = "supersteps"


def _pattern_bindings(triples, pattern: TriplePattern) -> List[Binding]:
    """Solutions of a single triple pattern over an iterable of triples."""
    solutions: List[Binding] = []
    for triple in triples:
        binding = _match_triple(pattern, triple)
        if binding is not None:
            solutions.append(binding)
    return solutions


def _match_triple(pattern: TriplePattern, triple: Triple) -> Binding | None:
    mapping: Dict[Variable, Node] = {}
    for pattern_term, data_term in zip(pattern, triple):
        if isinstance(pattern_term, Variable):
            if pattern_term in mapping and mapping[pattern_term] != data_term:
                return None
            mapping[pattern_term] = data_term
        elif pattern_term != data_term:
            return None
    return Binding(mapping)


class RelationalScanEngine(DistributedEngine):
    """Shared machinery for the S2RDF- and CliqueSquare-like baselines."""

    #: How triple patterns are grouped into join stages.
    flat_star_joins = False

    def execute(self, query: SelectQuery, query_name: str = "", dataset: str = "") -> DistributedResult:
        stats = self._new_statistics(query_name, dataset)
        timer = StageTimer()
        scan_stage = stats.stage(STAGE_SCAN)

        # Phase 1: every site scans its fragment for every triple pattern
        # (the vertical-partitioning table scan) and ships the matching rows.
        pattern_solutions: List[List[Binding]] = [[] for _ in query.bgp]
        for site in self.cluster:
            fragment_triples = site.fragment.internal_edges | site.fragment.crossing_edges
            by_predicate: Dict[IRI, List[Triple]] = defaultdict(list)
            for triple in fragment_triples:
                by_predicate[triple.predicate].append(triple)
            for index, pattern in enumerate(query.bgp):
                with timer.measure(STAGE_SCAN, site.site_id):
                    if isinstance(pattern.predicate, Variable):
                        local_rows = _pattern_bindings(fragment_triples, pattern)
                    else:
                        local_rows = _pattern_bindings(by_predicate.get(pattern.predicate, ()), pattern)
                    # Crossing edges are replicated on two sites; keep only the
                    # copy owned by the subject's site to avoid duplicate rows.
                    local_rows = self._deduplicate_replicas(local_rows, pattern, site.site_id)
                pattern_solutions[index].extend(local_rows)
                shipped = self.cluster.bus.send(
                    site.site_id, COORDINATOR, "scan_rows", local_rows, STAGE_SCAN
                )
                scan_stage.shipped_bytes += shipped
                scan_stage.messages += 1
        scan_stage.site_times_s.update(timer.site_times(STAGE_SCAN))
        self._charge_stage(scan_stage, platform_stages=1)
        scan_stage.add_counter("scanned_rows", sum(len(rows) for rows in pattern_solutions))
        scan_stage.add_counter("patterns", len(query.bgp.patterns))

        # Phase 2: join the scanned relations (at the coordinator, standing in
        # for the cluster-wide shuffle).
        join_stage = stats.stage(STAGE_SHUFFLE)
        with timer.measure(STAGE_SHUFFLE, COORDINATOR):
            if self.flat_star_joins:
                joined = self._flat_star_join(query, pattern_solutions)
            else:
                joined = join_all(pattern_solutions)
        join_stage.coordinator_time_s += timer.elapsed(STAGE_SHUFFLE, COORDINATOR)
        # Every binary (or star) join is one shuffle stage of the underlying
        # cloud platform.
        join_stages = max(len(query.bgp.patterns) - 1, 1)
        self._charge_stage(join_stage, platform_stages=join_stages)
        join_stage.add_counter("joined_results", len(joined))
        return self._finalize(query, joined, stats)

    def _deduplicate_replicas(
        self, rows: List[Binding], pattern: TriplePattern, site_id: int
    ) -> List[Binding]:
        """Drop rows whose matched triple is a replica owned by another site."""
        partitioned = self.cluster.partitioned_graph
        kept: List[Binding] = []
        for binding in rows:
            subject = binding.get(pattern.subject) if isinstance(pattern.subject, Variable) else pattern.subject
            if subject is None or partitioned.fragment_of(subject) == site_id:
                kept.append(binding)
        return kept

    def _flat_star_join(
        self, query: SelectQuery, pattern_solutions: Sequence[List[Binding]]
    ) -> List[Binding]:
        """CliqueSquare-style plan: n-ary star joins first, then join the stars."""
        stars = decompose_into_stars(query.bgp)
        pattern_index = {pattern: index for index, pattern in enumerate(query.bgp)}
        star_relations: List[List[Binding]] = []
        for star in stars:
            member_solutions = [pattern_solutions[pattern_index[pattern]] for pattern in star]
            star_relations.append(join_all(member_solutions))
        return join_all(star_relations)


class S2RDFEngine(RelationalScanEngine):
    """S2RDF-like baseline: vertical partitioning scans + left-deep hash joins."""

    name = "S2RDF"
    flat_star_joins = False
    platform = SPARK_SQL_PLATFORM


class CliqueSquareEngine(RelationalScanEngine):
    """CliqueSquare-like baseline: flat n-ary star joins over the scanned tables."""

    name = "CliqueSquare"
    flat_star_joins = True
    platform = MAPREDUCE_PLATFORM


class S2XEngine(DistributedEngine):
    """S2X-like baseline: graph-parallel (vertex-centric) BGP matching.

    The simulation follows S2X's three logical phases:

    1. *Distribution*: every triple pattern is matched by every site against
       its local edges (a vertex-centric "does my adjacency satisfy this
       pattern" check), producing per-pattern candidate bindings.
    2. *Validation supersteps*: iteratively, candidate bindings for a pattern
       are kept only if every join variable they bind is also bound by some
       candidate of every other pattern sharing that variable.  Each round
       corresponds to one message-passing superstep and ships the candidate
       summaries between sites.
    3. *Collection*: the surviving candidates are shipped to the coordinator
       and merged into final results with hash joins.
    """

    name = "S2X"
    platform = GRAPH_BSP_PLATFORM
    max_supersteps = 6

    def execute(self, query: SelectQuery, query_name: str = "", dataset: str = "") -> DistributedResult:
        stats = self._new_statistics(query_name, dataset)
        timer = StageTimer()
        scan_stage = stats.stage(STAGE_SCAN)

        patterns = list(query.bgp)
        candidates: List[List[Binding]] = [[] for _ in patterns]
        for site in self.cluster:
            triples = site.fragment.internal_edges | site.fragment.crossing_edges
            for index, pattern in enumerate(patterns):
                with timer.measure(STAGE_SCAN, site.site_id):
                    rows = _pattern_bindings(triples, pattern)
                    rows = self._owned_rows(rows, pattern, site.site_id)
                candidates[index].extend(rows)
        scan_stage.site_times_s.update(timer.site_times(STAGE_SCAN))
        self._charge_stage(scan_stage, platform_stages=1)
        scan_stage.add_counter("initial_candidates", sum(len(rows) for rows in candidates))

        superstep_stage = stats.stage(STAGE_SUPERSTEPS)
        rounds = 0
        changed = True
        while changed and rounds < self.max_supersteps:
            rounds += 1
            changed = False
            with timer.measure(STAGE_SUPERSTEPS, COORDINATOR):
                bound_values = self._bound_values_per_variable(patterns, candidates)
                for index, pattern in enumerate(patterns):
                    survivors = [
                        binding
                        for binding in candidates[index]
                        if self._validated(binding, index, patterns, bound_values)
                    ]
                    if len(survivors) != len(candidates[index]):
                        changed = True
                        candidates[index] = survivors
            # Each superstep exchanges the candidate summaries along edges.
            shipped = self.cluster.bus.broadcast(
                COORDINATOR,
                self.cluster.site_ids,
                "superstep_candidates",
                [len(rows) for rows in candidates],
                STAGE_SUPERSTEPS,
            )
            superstep_stage.shipped_bytes += shipped
            superstep_stage.messages += self.cluster.num_sites
        superstep_stage.coordinator_time_s += timer.elapsed(STAGE_SUPERSTEPS, COORDINATOR)
        self._charge_stage(superstep_stage, platform_stages=rounds)
        superstep_stage.add_counter("supersteps", rounds)
        superstep_stage.add_counter(
            "surviving_candidates", sum(len(rows) for rows in candidates)
        )

        join_stage = stats.stage(STAGE_SHUFFLE)
        for index, rows in enumerate(candidates):
            shipped = self.cluster.bus.send(
                index % max(1, self.cluster.num_sites), COORDINATOR, "candidates", rows, STAGE_SHUFFLE
            )
            join_stage.shipped_bytes += shipped
            join_stage.messages += 1
        with timer.measure(STAGE_SHUFFLE, COORDINATOR):
            joined = join_all(candidates)
        join_stage.coordinator_time_s += timer.elapsed(STAGE_SHUFFLE, COORDINATOR)
        self._charge_stage(join_stage, platform_stages=1)
        join_stage.add_counter("joined_results", len(joined))
        return self._finalize(query, joined, stats)

    def _owned_rows(self, rows: List[Binding], pattern: TriplePattern, site_id: int) -> List[Binding]:
        partitioned = self.cluster.partitioned_graph
        kept = []
        for binding in rows:
            subject = binding.get(pattern.subject) if isinstance(pattern.subject, Variable) else pattern.subject
            if subject is None or partitioned.fragment_of(subject) == site_id:
                kept.append(binding)
        return kept

    @staticmethod
    def _bound_values_per_variable(
        patterns: Sequence[TriplePattern], candidates: Sequence[List[Binding]]
    ) -> Dict[Variable, List[Set[Node]]]:
        """For every variable, the per-pattern sets of values candidates bind it to."""
        values: Dict[Variable, List[Set[Node]]] = defaultdict(lambda: [set() for _ in patterns])
        for index, rows in enumerate(candidates):
            for binding in rows:
                for variable in binding.variables:
                    values[variable][index].add(binding[variable])
        return values

    @staticmethod
    def _validated(
        binding: Binding,
        index: int,
        patterns: Sequence[TriplePattern],
        bound_values: Dict[Variable, List[Set[Node]]],
    ) -> bool:
        """A candidate survives when each of its variables is supported by every
        other pattern that also uses that variable."""
        for variable in binding.variables:
            per_pattern = bound_values[variable]
            for other_index, pattern in enumerate(patterns):
                if other_index == index or variable not in pattern.variables:
                    continue
                if binding[variable] not in per_pattern[other_index]:
                    return False
        return True
