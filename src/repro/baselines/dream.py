"""DREAM-like baseline: full replication plus star decomposition.

DREAM (Hammoud et al., PVLDB 2015) takes the opposite trade-off from
partitioning systems: every site stores a copy of the *entire* dataset, so
no intermediate data ever needs to be recomputed remotely; only the results
of subqueries travel.  Its planner decomposes the input query into star
subqueries, assigns each star to one site, evaluates each star over that
site's full local copy, and joins the star results at the coordinator.

This captures the behaviour the paper observes in Fig. 12:

* on selective queries and small datasets DREAM is very fast (each star is
  answered by a single machine with full data locality), but
* complex queries decompose into large, unselective stars whose intermediate
  results are huge, making the final join and its data shipment expensive.

The simulation gives each site a full-graph store (mirroring the replication)
and reuses the shared star decomposition and hash-join helpers.
"""

from __future__ import annotations

from typing import Dict, List

from ..distributed.cluster import Cluster
from ..distributed.network import COORDINATOR, StageTimer
from ..core.engine import DistributedResult
from ..sparql.algebra import SelectQuery
from ..sparql.bindings import Binding
from ..store.triple_store import TripleStore
from .base import DistributedEngine
from .decomposition import (
    decompose_into_stars,
    estimate_bindings_size,
    join_all,
    subquery,
)

STAGE_SUBQUERIES = "subquery_evaluation"
STAGE_JOIN = "result_join"


class DreamEngine(DistributedEngine):
    """Simulated DREAM: replicate everything, ship only subquery results."""

    name = "DREAM"

    def __init__(self, cluster: Cluster) -> None:
        super().__init__(cluster)
        # Every site holds the entire RDF graph; build the replicated store
        # once and share the (immutable) indexes between the simulated sites.
        self._replicated_store = TripleStore(cluster.graph.copy(), name="dream-replica")

    def execute(self, query: SelectQuery, query_name: str = "", dataset: str = "") -> DistributedResult:
        stats = self._new_statistics(query_name, dataset)
        timer = StageTimer()
        stage = stats.stage(STAGE_SUBQUERIES)

        stars = decompose_into_stars(query.bgp)
        stage.add_counter("star_subqueries", len(stars))

        star_results: List[List[Binding]] = []
        for index, star in enumerate(stars):
            site_id = index % max(1, self.cluster.num_sites)
            with timer.measure(STAGE_SUBQUERIES, site_id):
                solutions = list(self._replicated_store.evaluate(subquery(star)))
            star_results.append(solutions)
            shipped = self.cluster.bus.send(
                site_id, COORDINATOR, "star_results", solutions, STAGE_SUBQUERIES
            )
            stage.shipped_bytes += shipped
            stage.messages += 1
            stage.add_counter("intermediate_results", len(solutions))
        stage.site_times_s.update(timer.site_times(STAGE_SUBQUERIES))
        self._charge_stage(stage)

        join_stage = stats.stage(STAGE_JOIN)
        with timer.measure(STAGE_JOIN, COORDINATOR):
            joined = join_all(star_results)
        join_stage.coordinator_time_s += timer.elapsed(STAGE_JOIN, COORDINATOR)
        self._charge_stage(join_stage)
        join_stage.add_counter("joined_results", len(joined))
        return self._finalize(query, joined, stats)
