"""Simulated comparison systems for the online-performance experiment (Fig. 12)."""

from .base import DistributedEngine
from .cloud import CliqueSquareEngine, S2RDFEngine, S2XEngine
from .decomposition import decompose_into_stars, hash_join, join_all, single_pattern_queries
from .dream import DreamEngine

#: The comparison systems of Fig. 12 keyed by their report name.
BASELINE_ENGINES = {
    DreamEngine.name: DreamEngine,
    S2RDFEngine.name: S2RDFEngine,
    CliqueSquareEngine.name: CliqueSquareEngine,
    S2XEngine.name: S2XEngine,
}


def make_baseline(name: str, cluster) -> DistributedEngine:
    """Instantiate a comparison system by name (``DREAM``, ``S2RDF``, ``CliqueSquare``, ``S2X``)."""
    if name not in BASELINE_ENGINES:
        raise KeyError(f"unknown baseline {name!r}; available: {sorted(BASELINE_ENGINES)}")
    return BASELINE_ENGINES[name](cluster)


__all__ = [
    "BASELINE_ENGINES",
    "CliqueSquareEngine",
    "DistributedEngine",
    "DreamEngine",
    "S2RDFEngine",
    "S2XEngine",
    "decompose_into_stars",
    "hash_join",
    "join_all",
    "make_baseline",
    "single_pattern_queries",
]
