"""Query decomposition and solution-join helpers shared by the baselines.

DREAM and the cloud-based systems all decompose a BGP query into smaller
units (star subqueries or individual triple patterns), evaluate the units
somewhere, and join the unit results on their shared variables.  This module
provides both steps so each baseline only encodes *where* the units run and
*what* gets shipped.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..rdf.terms import PatternTerm, Variable
from ..rdf.triples import TriplePattern
from ..sparql.algebra import BasicGraphPattern, SelectQuery
from ..sparql.bindings import Binding


def decompose_into_stars(bgp: BasicGraphPattern) -> List[BasicGraphPattern]:
    """Split a BGP into star subqueries grouped by subject/object hub.

    This is the decomposition DREAM (and Stylus) use: every triple pattern is
    attached to a hub term — preferably its subject — and all patterns
    sharing a hub form one star subquery.  Patterns whose subject is a
    constant but whose object is a shared variable hub are attached to the
    object's star instead, which keeps the number of stars small.
    """
    hubs: Dict[PatternTerm, List[TriplePattern]] = {}
    subject_counts: Dict[PatternTerm, int] = {}
    for pattern in bgp:
        subject_counts[pattern.subject] = subject_counts.get(pattern.subject, 0) + 1
    for pattern in bgp:
        hub = pattern.subject
        if not isinstance(hub, Variable) and isinstance(pattern.object, Variable):
            # Prefer a variable hub when the subject is a constant.
            hub = pattern.object
        hubs.setdefault(hub, []).append(pattern)
    return [BasicGraphPattern(patterns) for patterns in hubs.values()]


def single_pattern_queries(bgp: BasicGraphPattern) -> List[BasicGraphPattern]:
    """The finest decomposition: one subquery per triple pattern."""
    return [BasicGraphPattern([pattern]) for pattern in bgp]


def subquery(patterns: BasicGraphPattern) -> SelectQuery:
    """Wrap a BGP into a ``SELECT *`` query for a local evaluator."""
    return SelectQuery(bgp=patterns, projection=())


def hash_join(left: Sequence[Binding], right: Sequence[Binding]) -> List[Binding]:
    """Join two sets of solution mappings on their shared variables.

    A classic hash join: the smaller side is hashed on the shared variables,
    the larger side probes.  With no shared variables this degenerates into a
    cross product, exactly as SPARQL semantics require.
    """
    if not left or not right:
        return []
    build, probe = (left, right) if len(left) <= len(right) else (right, left)
    build_vars: Set[Variable] = set()
    for binding in build:
        build_vars |= binding.variables
    probe_vars: Set[Variable] = set()
    for binding in probe:
        probe_vars |= binding.variables
    shared = tuple(sorted(build_vars & probe_vars, key=lambda v: v.name))

    table: Dict[Tuple, List[Binding]] = {}
    for binding in build:
        key = tuple(binding.get(variable) for variable in shared)
        table.setdefault(key, []).append(binding)

    joined: List[Binding] = []
    for binding in probe:
        key = tuple(binding.get(variable) for variable in shared)
        for partner in table.get(key, ()):  # compatible on shared variables
            if binding.compatible_with(partner):
                joined.append(binding.merge(partner))
    return joined


def join_all(solution_sets: Iterable[Sequence[Binding]]) -> List[Binding]:
    """Left-deep join of several solution sets, smallest first."""
    ordered = sorted((list(solutions) for solutions in solution_sets), key=len)
    if not ordered:
        return []
    current = ordered[0]
    for solutions in ordered[1:]:
        current = hash_join(current, solutions)
        if not current:
            return []
    return current


def estimate_bindings_size(bindings: Sequence[Binding]) -> int:
    """Approximate serialized size of a set of solution mappings (bytes)."""
    total = 4
    for binding in bindings:
        for variable in binding.variables:
            total += len(variable.name) + len(binding[variable].n3())
    return total
