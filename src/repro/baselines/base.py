"""Common interface of every comparison system.

The online-performance experiment (Fig. 12) compares gStoreD against four
publicly available distributed RDF systems.  Those systems are JVM / Spark /
MPI codebases; what the comparison needs from them is their *query-processing
strategy* — how they decompose queries, where intermediate results are
produced and how much data moves — so each baseline here re-implements that
strategy over the same simulated :class:`~repro.distributed.Cluster` the
gStoreD engine runs on.  Every baseline returns the standard
:class:`~repro.core.engine.DistributedResult`, so correctness can be checked
against the centralized matcher and costs can be tabulated uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional

from ..distributed.cluster import Cluster
from ..distributed.network import NATIVE_PLATFORM, PlatformModel
from ..distributed.stats import QueryStatistics, StageStats
from ..core.engine import DistributedResult
from ..sparql.algebra import SelectQuery
from ..sparql.bindings import ResultSet


class DistributedEngine(ABC):
    """Abstract base class of gStoreD's comparison systems."""

    #: Name used in reports and figures.
    name: str = "abstract"
    #: Execution-platform overhead model: native engines (DREAM) pay nothing,
    #: cloud engines (Spark/Hadoop/GraphX) pay a per-distributed-stage cost.
    platform: PlatformModel = NATIVE_PLATFORM

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster

    def _charge_stage(self, stage: StageStats, platform_stages: int = 0) -> None:
        """Add the modelled network-transfer and platform overheads to a stage."""
        stage.network_time_s = self.cluster.network.transfer_time(stage.shipped_bytes, stage.messages)
        stage.platform_time_s += self.platform.stage_cost(platform_stages)

    @abstractmethod
    def execute(self, query: SelectQuery, query_name: str = "", dataset: str = "") -> DistributedResult:
        """Evaluate ``query`` and return its solutions plus statistics."""

    def execute_traced(
        self,
        query: SelectQuery,
        query_name: str = "",
        dataset: str = "",
        *,
        trace=None,
        profiler=None,
    ) -> DistributedResult:
        """Run :meth:`execute` and synthesize trace spans from its statistics.

        The baselines model fixed strategies without per-stage coordinator
        hooks, so they cannot measure spans inline the way the gStoreD
        pipeline does; instead the finished :class:`QueryStatistics` (which
        every baseline does produce, per stage and per site) is replayed into
        the trace as ``synthesized=True`` spans.  ``profiler`` is accepted
        for interface symmetry and ignored.
        """
        del profiler
        result = self.execute(query, query_name=query_name, dataset=dataset)
        if trace is not None:
            from ..obs import record_statistics_spans

            record_statistics_spans(trace, result.statistics)
        return result

    def close(self) -> None:
        """Release engine resources (baselines hold none; kept for the
        uniform :class:`~repro.api.QueryEngine` lifecycle)."""

    def __enter__(self) -> "DistributedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _new_statistics(self, query_name: str, dataset: str) -> QueryStatistics:
        return QueryStatistics(
            query_name=query_name,
            engine=self.name,
            dataset=dataset,
            partitioning=self.cluster.partitioned_graph.strategy,
        )

    def _finalize(
        self,
        query: SelectQuery,
        bindings,
        stats: QueryStatistics,
    ) -> DistributedResult:
        results = ResultSet(bindings, query.variables)
        projected = results.project(query.effective_projection, distinct=True)
        limited = projected.limit(query.limit)
        stats.num_results = len(limited)
        return DistributedResult(limited, stats)
