"""Assembling variables' internal candidates (Section VI, Algorithm 4).

Before partial evaluation, every site computes the *internal* candidates of
each query variable (vertices of its own fragment that locally satisfy the
variable's incident triple patterns), compresses each candidate set into a
fixed-length bit vector, and ships the vectors to the coordinator.  The
coordinator ORs the vectors per variable — a candidate that can appear in a
complete match must be an internal candidate of the site that owns it, so
the union covers every useful candidate — and broadcasts the result.

During partial evaluation each site then refuses to bind an *extended*
vertex to a variable when the global bit vector says that vertex is an
internal candidate nowhere: such a binding could never survive the assembly.
Because the vectors have fixed length, the communication cost of this stage
is independent of the data size.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, Mapping, Optional, Set

from ..rdf.terms import Node, PatternTerm, Variable

#: Default bit-vector width (bits).  Fixed length per the paper; wide enough
#: to keep the false-positive rate low on the bundled datasets.
DEFAULT_BIT_VECTOR_BITS = 4096


@lru_cache(maxsize=1 << 16)
def _candidate_hash(term: Node, width: int) -> int:
    # Memoized: the same vertices are hashed by every query's vector build
    # and by every extended-candidate filter probe during partial evaluation.
    digest = hashlib.sha1(term.n3().encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % width


@dataclass
class CandidateBitVector:
    """A fixed-length bit vector summarising one variable's candidate set."""

    width: int = DEFAULT_BIT_VECTOR_BITS
    bits: int = 0

    def add(self, candidate: Node) -> None:
        self.bits |= 1 << _candidate_hash(candidate, self.width)

    def add_all(self, candidates: Iterable[Node]) -> None:
        for candidate in candidates:
            self.add(candidate)

    def might_contain(self, candidate: Node) -> bool:
        """Membership test: no false negatives, possible false positives."""
        return bool(self.bits >> _candidate_hash(candidate, self.width) & 1)

    def union(self, other: "CandidateBitVector") -> "CandidateBitVector":
        if self.width != other.width:
            raise ValueError("cannot union bit vectors of different widths")
        return CandidateBitVector(self.width, self.bits | other.bits)

    def popcount(self) -> int:
        return bin(self.bits).count("1")

    def shipment_size(self) -> int:
        """Fixed size on the wire: the vector itself plus small framing."""
        return self.width // 8 + 4

    @classmethod
    def from_candidates(cls, candidates: Iterable[Node], width: int = DEFAULT_BIT_VECTOR_BITS) -> "CandidateBitVector":
        vector = cls(width)
        vector.add_all(candidates)
        return vector


@dataclass
class GlobalCandidateFilter:
    """The coordinator's per-variable union bit vectors, as used by the sites."""

    vectors: Dict[Variable, CandidateBitVector] = field(default_factory=dict)

    def allows(self, variable: Variable, candidate: Node) -> bool:
        """May ``candidate`` be bound to ``variable``?

        Unknown variables are never restricted (the filter is only ever a
        sound over-approximation).
        """
        vector = self.vectors.get(variable)
        if vector is None:
            return True
        return vector.might_contain(candidate)

    def shipment_size(self) -> int:
        return sum(vector.shipment_size() for vector in self.vectors.values()) + 4

    def __len__(self) -> int:
        return len(self.vectors)


def build_site_vectors(
    internal_candidates: Mapping[PatternTerm, Set[Node]],
    width: int = DEFAULT_BIT_VECTOR_BITS,
) -> Dict[Variable, CandidateBitVector]:
    """One site's step of Algorithm 4: compress its internal candidate sets.

    Only variables get vectors; constant query vertices need no filtering.
    """
    vectors: Dict[Variable, CandidateBitVector] = {}
    for vertex, candidates in internal_candidates.items():
        if isinstance(vertex, Variable):
            vectors[vertex] = CandidateBitVector.from_candidates(candidates, width)
    return vectors


def union_site_vectors(
    per_site_vectors: Iterable[Mapping[Variable, CandidateBitVector]],
    width: int = DEFAULT_BIT_VECTOR_BITS,
) -> GlobalCandidateFilter:
    """The coordinator's step of Algorithm 4: OR the vectors per variable."""
    merged: Dict[Variable, CandidateBitVector] = {}
    for site_vectors in per_site_vectors:
        for variable, vector in site_vectors.items():
            if variable in merged:
                merged[variable] = merged[variable].union(vector)
            else:
                merged[variable] = CandidateBitVector(vector.width, vector.bits)
    for variable, vector in merged.items():
        if vector.width != width:
            # Widths are homogeneous in practice; keep whatever the sites used.
            pass
    return GlobalCandidateFilter(merged)
