"""Partial evaluation: enumerating local partial matches inside one fragment.

Each site receives the full query graph and enumerates, against only its own
fragment, every local partial match of Definition 5.  The algorithm is the
one from the original "partial evaluation and assembly" framework [18]
(which this paper re-uses unchanged — its contributions start *after* the
LPMs exist), implemented as a crossing-edge-seeded expansion:

1. every LPM contains at least one crossing edge, so each (crossing data
   edge, compatible query edge) pair seeds one search branch;
2. a query vertex mapped to an *internal* vertex must have all of its query
   edges matched (condition 5), so the search repeatedly picks an
   internally-mapped query vertex with an unmatched incident query edge and
   branches over the fragment data edges that can extend it;
3. when no internal vertex has unmatched edges left, the branch has produced
   a candidate LPM; the remaining query vertices stay NULL, and the
   Definition 5 side conditions are verified.

Seeding from every crossing edge makes the enumeration complete (every LPM's
internally-matched region touches at least one crossing edge); a final
dedup by assignment removes the copies found from different seeds.

The optional ``candidate_filter`` implements the Section VI optimization: an
extended vertex may only be used when the coordinator's global bit vector
says it is an internal candidate of *some* site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..partition.fragment import Fragment
from ..rdf.graph import RDFGraph
from ..rdf.terms import IRI, Literal, Node, PatternTerm, Variable
from ..rdf.triples import Triple
from ..sparql.query_graph import QueryEdge, QueryGraph
from .candidate_exchange import GlobalCandidateFilter
from .partial_match import LocalPartialMatch, check_local_partial_match


@dataclass
class PartialEvaluationResult:
    """Output of one site's partial evaluation."""

    fragment_id: int
    local_partial_matches: List[LocalPartialMatch] = field(default_factory=list)
    seeds_explored: int = 0
    branches_pruned_by_filter: int = 0

    @property
    def count(self) -> int:
        return len(self.local_partial_matches)


class PartialEvaluator:
    """Enumerates the local partial matches of a query over one fragment."""

    def __init__(
        self,
        fragment: Fragment,
        graph: Optional[RDFGraph] = None,
        paranoid: bool = False,
        edge_order: Optional[Sequence[int]] = None,
    ) -> None:
        self._fragment = fragment
        self._graph = graph if graph is not None else fragment.to_graph()
        #: ``V_i ∪ Ve_i`` snapshotted once — ``Fragment.all_vertices`` builds
        #: a fresh union set per call, far too expensive for the per-branch
        #: assignment check in :meth:`_try_assign`.
        self._local_vertices = fragment.all_vertices
        #: When True, every produced LPM is re-checked against Definition 5
        #: (slower; used by tests).
        self._paranoid = paranoid
        #: Planner-supplied ranking of query-edge indexes (most selective
        #: first).  Changes which forced edge each branch matches next —
        #: never which LPMs exist — so selective edges fail branches early.
        self._edge_priority: Optional[Dict[int, int]] = (
            {index: rank for rank, index in enumerate(edge_order)} if edge_order is not None else None
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(
        self,
        query: QueryGraph,
        candidate_filter: Optional[GlobalCandidateFilter] = None,
    ) -> PartialEvaluationResult:
        """Enumerate every local partial match of ``query`` in this fragment."""
        result = PartialEvaluationResult(fragment_id=self._fragment.fragment_id)
        seen: Set[Tuple[frozenset, frozenset]] = set()
        for query_edge in self._seed_edges(query):
            for data_edge in self._compatible_crossing_edges(query_edge):
                result.seeds_explored += 1
                self._expand_seed(query, query_edge, data_edge, candidate_filter, seen, result)
        return result

    # ------------------------------------------------------------------
    # Seeding
    # ------------------------------------------------------------------
    def _edge_rank(self, edge_index: int) -> int:
        """The planner rank of a query edge (its own index when unplanned)."""
        if self._edge_priority is None:
            return edge_index
        return self._edge_priority.get(edge_index, edge_index)

    def _seed_edges(self, query: QueryGraph) -> List[QueryEdge]:
        """Query edges in seeding order (planner-ranked when available)."""
        if self._edge_priority is None:
            return list(query.edges)
        return sorted(query.edges, key=lambda edge: (self._edge_rank(edge.index), edge.index))

    def _compatible_crossing_edges(self, query_edge: QueryEdge) -> Iterable[Triple]:
        """Crossing edges of the fragment that can match ``query_edge``."""
        for triple in self._fragment.crossing_edges:
            if self._edge_label_matches(query_edge, triple) and self._endpoints_compatible(
                query_edge, triple
            ):
                yield triple

    @staticmethod
    def _edge_label_matches(query_edge: QueryEdge, triple: Triple) -> bool:
        if isinstance(query_edge.predicate, Variable):
            return True
        return query_edge.predicate == triple.predicate

    @staticmethod
    def _endpoints_compatible(query_edge: QueryEdge, triple: Triple) -> bool:
        if isinstance(query_edge.subject, (IRI, Literal)) and query_edge.subject != triple.subject:
            return False
        if isinstance(query_edge.object, (IRI, Literal)) and query_edge.object != triple.object:
            return False
        return True

    def _expand_seed(
        self,
        query: QueryGraph,
        query_edge: QueryEdge,
        data_edge: Triple,
        candidate_filter: Optional[GlobalCandidateFilter],
        seen: Set[Tuple[frozenset, frozenset]],
        result: PartialEvaluationResult,
    ) -> None:
        mapping: Dict[PatternTerm, Node] = {}
        edge_mapping: Dict[int, Triple] = {}
        if not self._try_assign(query_edge.subject, data_edge.subject, mapping, candidate_filter, result):
            return
        if not self._try_assign(query_edge.object, data_edge.object, mapping, candidate_filter, result):
            return
        edge_mapping[query_edge.index] = data_edge
        self._expand(query, mapping, edge_mapping, candidate_filter, seen, result)

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def _expand(
        self,
        query: QueryGraph,
        mapping: Dict[PatternTerm, Node],
        edge_mapping: Dict[int, Triple],
        candidate_filter: Optional[GlobalCandidateFilter],
        seen: Set[Tuple[frozenset, frozenset]],
        result: PartialEvaluationResult,
    ) -> None:
        pending = self._next_forced_edge(query, mapping, edge_mapping)
        if pending is None:
            self._emit(query, mapping, edge_mapping, seen, result)
            return
        query_edge, anchor_vertex = pending
        for data_edge in self._extension_edges(query_edge, anchor_vertex, mapping):
            new_vertex, new_value = self._new_assignment(query_edge, anchor_vertex, data_edge)
            added_vertex = False
            if new_vertex is not None:
                existing = mapping.get(new_vertex)
                if existing is not None:
                    if existing != new_value:
                        continue
                else:
                    if not self._try_assign(new_vertex, new_value, mapping, candidate_filter, result):
                        continue
                    added_vertex = True
            edge_mapping[query_edge.index] = data_edge
            self._expand(query, mapping, edge_mapping, candidate_filter, seen, result)
            del edge_mapping[query_edge.index]
            if added_vertex and new_vertex is not None:
                del mapping[new_vertex]

    def _next_forced_edge(
        self,
        query: QueryGraph,
        mapping: Dict[PatternTerm, Node],
        edge_mapping: Dict[int, Triple],
    ) -> Optional[Tuple[QueryEdge, PatternTerm]]:
        """The next (query edge, internally-mapped anchor) that condition 5 forces us to match.

        All forced edges must be matched eventually, so any pick is correct;
        with a planner-supplied edge order the most selective forced edge is
        matched first so doomed branches die with the least work.
        """
        best: Optional[Tuple[QueryEdge, PatternTerm]] = None
        best_rank: Optional[int] = None
        for vertex, value in mapping.items():
            if not self._fragment.is_internal(value):
                continue
            for edge in query.edges_of(vertex):
                if edge.index in edge_mapping:
                    continue
                if self._edge_priority is None:
                    return edge, vertex
                rank = self._edge_rank(edge.index)
                if best_rank is None or rank < best_rank:
                    best = (edge, vertex)
                    best_rank = rank
        return best

    def _extension_edges(
        self,
        query_edge: QueryEdge,
        anchor_vertex: PatternTerm,
        mapping: Dict[PatternTerm, Node],
    ) -> Iterable[Triple]:
        """Fragment data edges that can match ``query_edge`` from the anchor's value."""
        anchor_value = mapping[anchor_vertex]
        predicate = None if isinstance(query_edge.predicate, Variable) else query_edge.predicate
        if query_edge.subject == anchor_vertex:
            other_vertex = query_edge.object
            other_value = mapping.get(other_vertex)
            if other_value is None and isinstance(other_vertex, (IRI, Literal)):
                other_value = other_vertex
            candidates = self._graph.triples(anchor_value, predicate, other_value)
        else:
            other_vertex = query_edge.subject
            other_value = mapping.get(other_vertex)
            if other_value is None and isinstance(other_vertex, (IRI, Literal)):
                other_value = other_vertex
            candidates = self._graph.triples(other_value, predicate, anchor_value)
        yield from candidates

    @staticmethod
    def _new_assignment(
        query_edge: QueryEdge,
        anchor_vertex: PatternTerm,
        data_edge: Triple,
    ) -> Tuple[Optional[PatternTerm], Optional[Node]]:
        """The (query vertex, data vertex) pair the extension would newly assign."""
        if query_edge.subject == anchor_vertex:
            return query_edge.object, data_edge.object
        return query_edge.subject, data_edge.subject

    def _try_assign(
        self,
        vertex: PatternTerm,
        value: Node,
        mapping: Dict[PatternTerm, Node],
        candidate_filter: Optional[GlobalCandidateFilter],
        result: PartialEvaluationResult,
    ) -> bool:
        """Assign ``vertex -> value`` if the Definition 5 local conditions allow it."""
        if isinstance(vertex, (IRI, Literal)):
            if vertex != value:
                return False
        if value not in self._local_vertices:
            return False
        if (
            candidate_filter is not None
            and isinstance(vertex, Variable)
            and self._fragment.is_extended(value)
            and not candidate_filter.allows(vertex, value)
        ):
            result.branches_pruned_by_filter += 1
            return False
        mapping[vertex] = value
        return True

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _emit(
        self,
        query: QueryGraph,
        mapping: Dict[PatternTerm, Node],
        edge_mapping: Dict[int, Triple],
        seen: Set[Tuple[frozenset, frozenset]],
        result: PartialEvaluationResult,
    ) -> None:
        key = (frozenset(mapping.items()), frozenset(edge_mapping.items()))
        if key in seen:
            return
        seen.add(key)
        crossing_indexes = {
            index for index, triple in edge_mapping.items() if triple in self._fragment.crossing_edges
        }
        if not crossing_indexes:
            return
        lpm = LocalPartialMatch.build(
            fragment_id=self._fragment.fragment_id,
            mapping=mapping,
            edge_mapping=edge_mapping,
            crossing_edge_indexes=crossing_indexes,
            query=query,
            fragment=self._fragment,
        )
        if self._paranoid and check_local_partial_match(lpm, query, self._fragment):
            return
        result.local_partial_matches.append(lpm)


def evaluate_fragment(
    fragment: Fragment,
    query: QueryGraph,
    graph: Optional[RDFGraph] = None,
    candidate_filter: Optional[GlobalCandidateFilter] = None,
    paranoid: bool = False,
    edge_order: Optional[Sequence[int]] = None,
) -> PartialEvaluationResult:
    """Convenience wrapper: enumerate the LPMs of ``query`` over ``fragment``."""
    evaluator = PartialEvaluator(fragment, graph=graph, paranoid=paranoid, edge_order=edge_order)
    return evaluator.evaluate(query, candidate_filter=candidate_filter)
