"""The paper's core contribution: LEC-feature-accelerated partial evaluation.

This package contains everything Sections IV-VI of the paper describe:

* :mod:`partial_match` — local partial matches (Definition 5),
* :mod:`partial_eval` — per-fragment enumeration of local partial matches,
* :mod:`lec` — LEC features (Definition 8, Algorithm 1) and joinability
  (Definition 9),
* :mod:`pruning` — LEC feature-based pruning (Algorithm 2),
* :mod:`assembly` — LEC feature-based assembly (Algorithm 3) and the
  ungrouped baseline join,
* :mod:`candidate_exchange` — assembling variables' internal candidates
  (Algorithm 4), and
* :mod:`engine` — the gStoreD engine orchestrating all stages over a
  simulated cluster.
"""

from .assembly import AssemblyOutcome, BasicAssembler, LECAssembler, assemble_matches
from .candidate_exchange import (
    CandidateBitVector,
    DEFAULT_BIT_VECTOR_BITS,
    GlobalCandidateFilter,
    build_site_vectors,
    union_site_vectors,
)
from .config import ABLATION_CONFIGS, EngineConfig, OptimizationLevel
from .engine import (
    DistributedResult,
    GStoreDEngine,
    STAGE_ASSEMBLY,
    STAGE_CANDIDATES,
    STAGE_PARTIAL_EVAL,
    STAGE_PLANNING,
    STAGE_PRUNING,
    execute_ablation,
)
from .lec import (
    JoinedLECFeature,
    LECFeature,
    build_join_graph,
    compute_lec_features,
    features_joinable,
    group_features_by_sign,
    lec_feature_of,
)
from .partial_eval import PartialEvaluationResult, PartialEvaluator, evaluate_fragment
from .partial_match import LocalPartialMatch, check_local_partial_match
from .pruning import LECFeaturePruner, PruningOutcome, prune_features

__all__ = [
    "ABLATION_CONFIGS",
    "AssemblyOutcome",
    "BasicAssembler",
    "CandidateBitVector",
    "DEFAULT_BIT_VECTOR_BITS",
    "DistributedResult",
    "EngineConfig",
    "GStoreDEngine",
    "GlobalCandidateFilter",
    "JoinedLECFeature",
    "LECAssembler",
    "LECFeature",
    "LECFeaturePruner",
    "LocalPartialMatch",
    "OptimizationLevel",
    "PartialEvaluationResult",
    "PartialEvaluator",
    "PruningOutcome",
    "STAGE_ASSEMBLY",
    "STAGE_CANDIDATES",
    "STAGE_PARTIAL_EVAL",
    "STAGE_PLANNING",
    "STAGE_PRUNING",
    "assemble_matches",
    "build_join_graph",
    "build_site_vectors",
    "check_local_partial_match",
    "compute_lec_features",
    "evaluate_fragment",
    "execute_ablation",
    "features_joinable",
    "group_features_by_sign",
    "lec_feature_of",
    "prune_features",
    "union_site_vectors",
]
