"""Assembly of local partial matches into complete matches (Section V).

After pruning, the coordinator joins the surviving local partial matches
(LPMs) from all sites into complete crossing matches.  Two strategies are
implemented:

* :class:`BasicAssembler` — the join of the original framework [18]: the
  join graph is built over *individual* LPMs and explored with a DFS.  It is
  correct but its join space grows with the number of LPMs; the paper uses
  it as the gStoreD-Basic baseline.
* :class:`LECAssembler` — Algorithm 3: LPMs are first grouped by the
  LECSign of their LEC feature (Theorem 5: same sign ⇒ never joinable), a
  join graph is built over the *groups*, and the DFS explores group
  combinations, joining members pairwise only when the group-level structure
  allows it.  This prunes whole families of join attempts at once.

Both assemblers return the same set of complete matches (asserted by the
test-suite); they differ only in how much work they do to find them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..sparql.bindings import Binding
from ..sparql.query_graph import QueryGraph
from .lec import LECFeature, features_joinable, lec_feature_of
from .partial_match import LocalPartialMatch


@dataclass
class AssemblyOutcome:
    """Result and work counters of one assembly run."""

    matches: List[LocalPartialMatch] = field(default_factory=list)
    join_attempts: int = 0
    successful_joins: int = 0
    groups: int = 0

    def bindings(self) -> List[Binding]:
        return [match.to_binding() for match in self.matches]

    @property
    def num_matches(self) -> int:
        return len(self.matches)


class BaseAssembler:
    """Shared DFS machinery of both assembly strategies."""

    def __init__(self, query: QueryGraph) -> None:
        self._query = query
        self._full_mask = (1 << query.num_vertices) - 1
        self._max_depth = query.num_vertices

    def assemble(self, lpms: Sequence[LocalPartialMatch]) -> AssemblyOutcome:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _emit_if_complete(self, candidate: LocalPartialMatch, outcome: AssemblyOutcome, seen: Set[FrozenSet]) -> bool:
        if candidate.internal_mask != self._full_mask:
            return False
        key = candidate.assignment
        if key not in seen:
            seen.add(key)
            outcome.matches.append(candidate)
        return True


class BasicAssembler(BaseAssembler):
    """The ungrouped join of [18]: DFS over individual local partial matches.

    Every LPM is a seed; each partial result is extended by any joinable LPM.
    A visited-set over partial results keeps the search from re-expanding the
    same intermediate state reached through different join orders, but unlike
    the LEC-based assembler no structural grouping narrows the set of join
    partners that get *attempted* — which is exactly the cost the paper's
    ablation (Fig. 9) measures.
    """

    def assemble(self, lpms: Sequence[LocalPartialMatch]) -> AssemblyOutcome:
        outcome = AssemblyOutcome()
        seen_matches: Set[FrozenSet] = set()
        visited_partials: Set[LocalPartialMatch] = set()
        items = list(lpms)
        outcome.groups = len(items)
        for lpm in items:
            self._emit_if_complete(lpm, outcome, seen_matches)
        for seed in items:
            self._extend(seed, items, outcome, seen_matches, visited_partials)
        return outcome

    def _extend(
        self,
        partial: LocalPartialMatch,
        items: Sequence[LocalPartialMatch],
        outcome: AssemblyOutcome,
        seen_matches: Set[FrozenSet],
        visited_partials: Set[LocalPartialMatch],
    ) -> None:
        # Every join adds at least one internally-matched query vertex, so a
        # partial covering all vertices is already complete and never needs
        # further extension.
        if bin(partial.internal_mask).count("1") >= self._query.num_vertices:
            return
        for other in items:
            outcome.join_attempts += 1
            if not partial.can_join(other):
                continue
            outcome.successful_joins += 1
            joined = partial.join(other)
            if self._emit_if_complete(joined, outcome, seen_matches):
                continue
            # The state key must capture everything future joins depend on:
            # the same vertex/edge assignment can be reached through different
            # constituent sets with different crossing edges or internal masks.
            key = joined
            if key in visited_partials:
                continue
            visited_partials.add(key)
            self._extend(joined, items, outcome, seen_matches, visited_partials)


class LECAssembler(BaseAssembler):
    """Algorithm 3: LEC feature-based assembly."""

    def assemble(self, lpms: Sequence[LocalPartialMatch]) -> AssemblyOutcome:
        outcome = AssemblyOutcome()
        seen_matches: Set[FrozenSet] = set()
        for lpm in lpms:
            self._emit_if_complete(lpm, outcome, seen_matches)

        groups = self._group_by_sign(lpms)
        outcome.groups = len(groups)
        if not groups:
            return outcome
        features_per_group = {
            sign: {lec_feature_of(lpm) for lpm in members} for sign, members in groups.items()
        }
        join_graph = self._build_group_join_graph(features_per_group)

        remaining = set(groups)
        while remaining:
            sign_min = min(remaining, key=lambda sign: (len(groups[sign]), sign))
            self._explore({sign_min}, list(groups[sign_min]), groups, join_graph, remaining, outcome, seen_matches)
            remaining.discard(sign_min)
            for sign in list(remaining):
                if not (join_graph.get(sign, set()) & remaining):
                    remaining.discard(sign)
        return outcome

    # ------------------------------------------------------------------
    # Grouping (Definition 11) and the group join graph
    # ------------------------------------------------------------------
    @staticmethod
    def _group_by_sign(lpms: Sequence[LocalPartialMatch]) -> Dict[int, List[LocalPartialMatch]]:
        groups: Dict[int, List[LocalPartialMatch]] = defaultdict(list)
        for lpm in lpms:
            groups[lpm.internal_mask].append(lpm)
        return dict(groups)

    def _build_group_join_graph(
        self, features_per_group: Mapping[int, Set[LECFeature]]
    ) -> Dict[int, Set[int]]:
        signs = list(features_per_group)
        adjacency: Dict[int, Set[int]] = {sign: set() for sign in signs}
        for i, sign_a in enumerate(signs):
            for sign_b in signs[i + 1 :]:
                if any(
                    features_joinable(fa, fb, self._query)
                    for fa in features_per_group[sign_a]
                    for fb in features_per_group[sign_b]
                ):
                    adjacency[sign_a].add(sign_b)
                    adjacency[sign_b].add(sign_a)
        return adjacency

    # ------------------------------------------------------------------
    # DFS over the group join graph (function ComParJoin of the paper)
    # ------------------------------------------------------------------
    def _explore(
        self,
        used_signs: Set[int],
        partials: Sequence[LocalPartialMatch],
        groups: Mapping[int, Sequence[LocalPartialMatch]],
        join_graph: Mapping[int, Set[int]],
        active_signs: Set[int],
        outcome: AssemblyOutcome,
        seen_matches: Set[FrozenSet],
    ) -> None:
        if not partials or len(used_signs) >= self._max_depth:
            return
        neighbour_signs: Set[int] = set()
        for sign in used_signs:
            neighbour_signs |= join_graph.get(sign, set())
        neighbour_signs &= active_signs
        neighbour_signs -= used_signs
        for sign in sorted(neighbour_signs):
            extended: List[LocalPartialMatch] = []
            for partial in partials:
                for other in groups[sign]:
                    outcome.join_attempts += 1
                    if not partial.can_join(other):
                        continue
                    outcome.successful_joins += 1
                    joined = partial.join(other)
                    if not self._emit_if_complete(joined, outcome, seen_matches):
                        extended.append(joined)
            if extended:
                self._explore(used_signs | {sign}, extended, groups, join_graph, active_signs, outcome, seen_matches)


def assemble_matches(
    query: QueryGraph,
    lpms: Sequence[LocalPartialMatch],
    use_lec_grouping: bool = True,
) -> AssemblyOutcome:
    """Assemble ``lpms`` into complete matches with the chosen strategy."""
    assembler: BaseAssembler
    if use_lec_grouping:
        assembler = LECAssembler(query)
    else:
        assembler = BasicAssembler(query)
    return assembler.assemble(lpms)
