"""Local partial matches (Definition 5 of the paper).

A *local partial match* (LPM) is the overlap between a (possible) crossing
match of the query and one fragment: a partial assignment of query vertices
to fragment vertices (unassigned vertices stand for the paper's NULL), where

1. constants must map to themselves (or NULL),
2. every query edge between two assigned vertices must be matched by a data
   edge of the fragment — except when both endpoints map to extended
   vertices, whose connecting edge (if any) lives in another fragment,
3. the LPM contains at least one crossing edge,
4. query vertices mapped to *internal* vertices are fully expanded: every one
   of their query edges is matched, and
5. internally-mapped query vertices are weakly connected through
   internally-mapped paths (so one fragment may contribute several LPMs to
   the same crossing match).

The class below is an immutable value object; the enumeration algorithm
lives in :mod:`repro.core.partial_eval` and the validity checker (used by
tests and by the enumerator's final filter) in :func:`check_local_partial_match`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..partition.fragment import Fragment
from ..rdf.terms import IRI, Literal, Node, PatternTerm, Variable
from ..rdf.triples import Triple
from ..sparql.bindings import Binding
from ..sparql.query_graph import QueryGraph


@dataclass(frozen=True)
class LocalPartialMatch:
    """An immutable local partial match produced by one fragment.

    Attributes
    ----------
    fragments:
        The ids of the fragments that contributed to this (possibly joined)
        partial match.  Freshly enumerated LPMs have exactly one.
    assignment:
        The non-NULL part of the mapping ``f``: pairs of (query vertex, data
        vertex).
    edge_assignment:
        Pairs of (query edge index, data triple) for every matched query edge.
    crossing_assignment:
        The subset of ``edge_assignment`` whose data triple is a crossing
        edge of the producing fragment — the only part other fragments can
        share.
    internal_mask:
        Bitmask over query-vertex indices: bit ``i`` is set when query vertex
        ``i`` is mapped to an internal vertex of the producing fragment
        (exactly the LECSign of Definition 8).
    """

    fragments: FrozenSet[int]
    assignment: FrozenSet[Tuple[PatternTerm, Node]]
    edge_assignment: FrozenSet[Tuple[int, Triple]]
    crossing_assignment: FrozenSet[Tuple[int, Triple]]
    internal_mask: int

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        fragment_id: int,
        mapping: Mapping[PatternTerm, Node],
        edge_mapping: Mapping[int, Triple],
        crossing_edge_indexes: Set[int],
        query: QueryGraph,
        fragment: Fragment,
    ) -> "LocalPartialMatch":
        """Build an LPM from the enumerator's mutable working state."""
        internal_mask = 0
        for vertex, value in mapping.items():
            if fragment.is_internal(value):
                internal_mask |= 1 << query.vertex_index(vertex)
        crossing = frozenset(
            (index, triple) for index, triple in edge_mapping.items() if index in crossing_edge_indexes
        )
        return cls(
            fragments=frozenset({fragment_id}),
            assignment=frozenset(mapping.items()),
            edge_assignment=frozenset(edge_mapping.items()),
            crossing_assignment=crossing,
            internal_mask=internal_mask,
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def fragment_id(self) -> int:
        """The producing fragment id (smallest id for joined matches)."""
        return min(self.fragments)

    def mapping(self) -> Dict[PatternTerm, Node]:
        return dict(self.assignment)

    def edge_mapping(self) -> Dict[int, Triple]:
        return dict(self.edge_assignment)

    def matched_vertices(self) -> Set[PatternTerm]:
        return {vertex for vertex, _ in self.assignment}

    def value_of(self, vertex: PatternTerm) -> Optional[Node]:
        for assigned_vertex, value in self.assignment:
            if assigned_vertex == vertex:
                return value
        return None

    @property
    def num_matched(self) -> int:
        return len(self.assignment)

    def internal_vertex_indexes(self) -> Set[int]:
        """Indices of query vertices mapped to internal vertices."""
        return {i for i in range(self.internal_mask.bit_length()) if self.internal_mask >> i & 1}

    def serialization(self, query: QueryGraph) -> Tuple[Optional[str], ...]:
        """The paper's serialization vector ``[f(v1), ..., f(vn)]`` (NULL → ``None``)."""
        mapping = self.mapping()
        return tuple(
            mapping[vertex].n3() if vertex in mapping else None for vertex in query.vertices
        )

    def to_binding(self) -> Binding:
        """The variable bindings of this (complete) match."""
        return Binding(
            {vertex: value for vertex, value in self.assignment if isinstance(vertex, Variable)}
        )

    def is_complete(self, query: QueryGraph) -> bool:
        """All query vertices internally matched somewhere (Theorem 4, condition 3)."""
        full_mask = (1 << query.num_vertices) - 1
        return self.internal_mask == full_mask

    # ------------------------------------------------------------------
    # Joining (used by the assembly stage)
    # ------------------------------------------------------------------
    def can_join(self, other: "LocalPartialMatch") -> bool:
        """Join conditions of [18] / Definition 9, applied at the LPM level.

        Two (possibly already joined) partial matches can join when they
        share at least one common crossing edge mapped to the same query
        edge, assign no query edge to different data edges, assign no query
        vertex to different data vertices, and their internally-matched
        vertex sets are disjoint.

        Note that fragment-set disjointness is *not* required: one crossing
        match may overlap a single fragment in several disconnected internal
        regions (condition 6 of Definition 5 splits them into separate local
        partial matches), so an accumulated join legitimately combines two
        partial matches of the same fragment.  Two LPMs of the same fragment
        can never share a crossing edge mapped to the same query edge, so
        the pairwise condition of Definition 9 is unaffected.
        """
        if self.internal_mask & other.internal_mask:
            return False
        if not (self.crossing_assignment & other.crossing_assignment):
            return False
        mine_edges = dict(self.edge_assignment)
        for index, triple in other.edge_assignment:
            if index in mine_edges and mine_edges[index] != triple:
                return False
        mine_vertices = dict(self.assignment)
        for vertex, value in other.assignment:
            if vertex in mine_vertices and mine_vertices[vertex] != value:
                return False
        return True

    def join(self, other: "LocalPartialMatch") -> "LocalPartialMatch":
        """Merge two joinable partial matches into one larger partial match."""
        return LocalPartialMatch(
            fragments=self.fragments | other.fragments,
            assignment=self.assignment | other.assignment,
            edge_assignment=self.edge_assignment | other.edge_assignment,
            crossing_assignment=self.crossing_assignment | other.crossing_assignment,
            internal_mask=self.internal_mask | other.internal_mask,
        )

    # ------------------------------------------------------------------
    # Network accounting
    # ------------------------------------------------------------------
    def shipment_size(self) -> int:
        """Approximate serialized size in bytes (used for shipment accounting)."""
        size = 8  # fragment id + mask framing
        for vertex, value in self.assignment:
            size += len(vertex.n3()) + len(value.n3())
        for _, triple in self.edge_assignment:
            size += 4 + len(triple.predicate.n3())
        return size

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        pairs = ", ".join(
            f"{vertex.n3()}->{value.n3()}" for vertex, value in sorted(self.assignment, key=lambda p: p[0].n3())
        )
        return f"<LPM F={sorted(self.fragments)} {{{pairs}}}>"


def check_local_partial_match(
    lpm: LocalPartialMatch,
    query: QueryGraph,
    fragment: Fragment,
) -> List[str]:
    """Check every Definition 5 condition; return a list of violations (empty = valid).

    Used by the test-suite as an oracle over the enumerator's output, and by
    the enumerator itself in paranoid mode.
    """
    violations: List[str] = []
    mapping = lpm.mapping()
    edge_mapping = lpm.edge_mapping()
    fragment_graph_edges = fragment.all_edges

    # Condition 1/2: constants map to themselves; every image is a fragment vertex.
    for vertex, value in mapping.items():
        if isinstance(vertex, (IRI, Literal)) and vertex != value:
            violations.append(f"constant {vertex.n3()} mapped to different term {value.n3()}")
        if value not in fragment.all_vertices:
            violations.append(f"{value.n3()} is not a vertex of fragment {fragment.name}")

    # Condition 3: edges between assigned vertices.
    for edge in query.edges:
        subject_value = mapping.get(edge.subject)
        object_value = mapping.get(edge.object)
        if subject_value is None or object_value is None:
            continue
        both_extended = fragment.is_extended(subject_value) and fragment.is_extended(object_value)
        matched_triple = edge_mapping.get(edge.index)
        if matched_triple is None:
            if not both_extended:
                violations.append(f"query edge #{edge.index} has both endpoints assigned but no data edge")
            continue
        if matched_triple not in fragment_graph_edges:
            violations.append(f"data edge {matched_triple.n3()} is not stored in fragment {fragment.name}")
        if matched_triple.subject != subject_value or matched_triple.object != object_value:
            violations.append(f"data edge {matched_triple.n3()} does not connect the assigned endpoints")
        if not isinstance(edge.predicate, Variable) and matched_triple.predicate != edge.predicate:
            violations.append(f"data edge {matched_triple.n3()} has the wrong property for edge #{edge.index}")

    # Condition 4: at least one crossing edge.
    if not any(triple in fragment.crossing_edges for _, triple in lpm.edge_assignment):
        violations.append("local partial match contains no crossing edge")

    # Condition 5: internally matched vertices are fully expanded.
    for vertex, value in mapping.items():
        if not fragment.is_internal(value):
            continue
        for edge in query.edges_of(vertex):
            if edge.index not in edge_mapping:
                violations.append(
                    f"internal vertex {value.n3()} (query {vertex.n3()}) misses query edge #{edge.index}"
                )

    # Condition 6: internally matched query vertices weakly connected through
    # internally matched vertices.
    internal_query_vertices = {
        vertex for vertex, value in mapping.items() if fragment.is_internal(value)
    }
    if len(internal_query_vertices) > 1:
        anchor = next(iter(internal_query_vertices))
        for vertex in internal_query_vertices:
            if not query.weakly_connected_via(anchor, vertex, internal_query_vertices):
                violations.append(
                    f"internally matched vertices {anchor.n3()} and {vertex.n3()} are not connected internally"
                )

    # The matched part must be connected through matched data edges.
    if len(mapping) > 1 and not _matched_part_connected(lpm, query):
        violations.append("the matched subgraph is not connected")
    return violations


def _matched_part_connected(lpm: LocalPartialMatch, query: QueryGraph) -> bool:
    matched_vertices = lpm.matched_vertices()
    edge_mapping = lpm.edge_mapping()
    adjacency: Dict[PatternTerm, Set[PatternTerm]] = {vertex: set() for vertex in matched_vertices}
    for index in edge_mapping:
        edge = query.edge_at(index)
        adjacency[edge.subject].add(edge.object)
        adjacency[edge.object].add(edge.subject)
    start = next(iter(matched_vertices))
    seen = {start}
    frontier = [start]
    while frontier:
        vertex = frontier.pop()
        for neighbour in adjacency[vertex]:
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return seen == matched_vertices


def complete_match_bindings(
    matches: Sequence[LocalPartialMatch],
    query: QueryGraph,
) -> List[Binding]:
    """Bindings of every complete match in ``matches`` (helper for the engine)."""
    return [match.to_binding() for match in matches if match.is_complete(query)]
