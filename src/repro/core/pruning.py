"""LEC feature-based pruning (Section IV-C, Algorithm 2).

The coordinator receives every site's LEC features, groups them by LECSign
(Theorem 5: features with equal LECSign can never join), builds the join
graph over the groups, and explores joinable combinations with a DFS.  A
combination whose ORed LECSign covers every query vertex witnesses that its
constituent features can contribute to a complete match; every feature that
appears in no such combination is pruned, and with it every local partial
match of its equivalence class.

The implementation tracks constituents at the level of individual features
(slightly finer than the group-level bookkeeping in the paper's pseudo-code),
which only prunes *more* irrelevant partial matches and never a relevant
one: a feature is kept if and only if it participates in at least one
complete combination, which is exactly the condition of Theorem 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..sparql.query_graph import QueryGraph
from .lec import (
    JoinedLECFeature,
    LECFeature,
    build_join_graph,
    group_features_by_sign,
)


@dataclass
class PruningOutcome:
    """Result of running Algorithm 2 at the coordinator."""

    surviving: Set[LECFeature] = field(default_factory=set)
    total_features: int = 0
    groups: int = 0
    join_attempts: int = 0
    complete_combinations: int = 0

    @property
    def pruned_count(self) -> int:
        return self.total_features - len(self.surviving)

    def survives(self, feature: LECFeature) -> bool:
        return feature in self.surviving


class LECFeaturePruner:
    """Runs the LEC feature-based pruning algorithm for one query."""

    def __init__(self, query: QueryGraph, max_combination_size: Optional[int] = None) -> None:
        self._query = query
        # A complete match uses at most |V_Q| partial matches (each must
        # contribute at least one internally matched vertex).
        self._max_size = max_combination_size or query.num_vertices

    def prune(self, features: Iterable[LECFeature]) -> PruningOutcome:
        """Algorithm 2: return the features that can contribute to a match."""
        all_features = list(dict.fromkeys(features))
        outcome = PruningOutcome(total_features=len(all_features))
        if not all_features:
            return outcome
        full_mask = (1 << self._query.num_vertices) - 1

        # Single-feature completeness: a feature whose LECSign already covers
        # the query can stand alone (its LPMs span the whole query inside one
        # fragment through crossing edges).
        for feature in all_features:
            if feature.lec_sign == full_mask:
                outcome.surviving.add(feature)
                outcome.complete_combinations += 1

        groups = group_features_by_sign(all_features)
        outcome.groups = len(groups)
        join_graph = build_join_graph(groups, self._query)
        remaining_signs = set(groups)

        while remaining_signs:
            sign_min = min(remaining_signs, key=lambda sign: (len(groups[sign]), sign))
            seeds = [JoinedLECFeature.from_feature(feature) for feature in groups[sign_min]]
            self._explore({sign_min}, seeds, groups, join_graph, remaining_signs, outcome)
            remaining_signs.discard(sign_min)
            # Drop groups that no longer neighbour anything still active.
            for sign in list(remaining_signs):
                if not (join_graph.get(sign, set()) & remaining_signs):
                    remaining_signs.discard(sign)
        return outcome

    # ------------------------------------------------------------------
    # DFS over the join graph (function ComLECFJoin of the paper)
    # ------------------------------------------------------------------
    def _explore(
        self,
        used_signs: Set[int],
        partials: Sequence[JoinedLECFeature],
        groups: Mapping[int, Sequence[LECFeature]],
        join_graph: Mapping[int, Set[int]],
        active_signs: Set[int],
        outcome: PruningOutcome,
    ) -> None:
        if not partials or len(used_signs) >= self._max_size:
            return
        neighbour_signs: Set[int] = set()
        for sign in used_signs:
            neighbour_signs |= join_graph.get(sign, set())
        neighbour_signs &= active_signs
        neighbour_signs -= used_signs
        for sign in sorted(neighbour_signs):
            extended: List[JoinedLECFeature] = []
            for partial in partials:
                for feature in groups[sign]:
                    outcome.join_attempts += 1
                    if not partial.joinable_with(feature, self._query):
                        continue
                    joined = partial.join(feature)
                    if joined.is_complete(self._query):
                        outcome.complete_combinations += 1
                        outcome.surviving.update(joined.constituents)
                    else:
                        extended.append(joined)
            if extended:
                self._explore(used_signs | {sign}, extended, groups, join_graph, active_signs, outcome)


def prune_features(
    query: QueryGraph,
    features_by_site: Mapping[int, Sequence[LECFeature]],
) -> Tuple[PruningOutcome, Dict[int, Set[LECFeature]]]:
    """Run the pruner over all sites' features; return per-site survivors.

    The per-site result is what the coordinator ships back so each site can
    discard the local partial matches of its pruned equivalence classes.
    """
    pruner = LECFeaturePruner(query)
    every_feature = [feature for features in features_by_site.values() for feature in features]
    outcome = pruner.prune(every_feature)
    per_site: Dict[int, Set[LECFeature]] = {}
    for site_id, features in features_by_site.items():
        per_site[site_id] = {feature for feature in features if outcome.survives(feature)}
    return outcome, per_site
