"""LEC features: compressing local partial matches (Section IV).

Local partial matches that come from the same fragment, contain the same
crossing edges, and map those crossing edges to the same query edges are
structurally interchangeable (Theorem 1): whatever one of them can join
with, all of them can (Theorem 2).  They form a *local partial match
equivalence class* (LEC), and the whole class is summarised by a *LEC
feature* (Definition 8):

* the fragment identifier,
* the mapping ``g`` from its crossing edges to query edges, and
* ``LECSign`` — a bitstring over the query vertices whose ``i``-th bit is set
  when query vertex ``v_i`` maps to an internal vertex of the fragment.

Only LEC features travel over the network during the pruning stage, which is
what makes the optimization *partition bounded*: the number of features
depends on the query size and the crossing edges, never on the data size.

This module implements the feature itself, Algorithm 1 (computing features
from a stream of local partial matches), the joinability test of Definition
9, the feature join, and the LECSign-based grouping of Theorem 5.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..rdf.triples import Triple
from ..sparql.query_graph import QueryGraph
from .partial_match import LocalPartialMatch


@dataclass(frozen=True)
class LECFeature:
    """The compact summary of one local partial match equivalence class.

    ``crossing_map`` is the function ``g`` of Definition 8 as a frozenset of
    (query edge index, data crossing edge) pairs; ``lec_sign`` is the
    LECSign bitmask over query-vertex indices.
    """

    fragment_id: int
    crossing_map: FrozenSet[Tuple[int, Triple]]
    lec_sign: int

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def crossing_edges(self) -> Set[Triple]:
        return {triple for _, triple in self.crossing_map}

    def query_edges(self) -> Set[int]:
        return {index for index, _ in self.crossing_map}

    def sign_bits(self, num_vertices: int) -> str:
        """LECSign rendered as a bitstring (mostly for logs and tests)."""
        return "".join("1" if self.lec_sign >> i & 1 else "0" for i in range(num_vertices))

    def shipment_size(self) -> int:
        """Approximate serialized size: fragment id + g + LECSign.

        Matches the paper's cost analysis: O(|E_Q|) for ``g`` plus O(|V_Q|)
        for the bitstring plus a constant for the fragment identifier.
        """
        size = 8 + 4  # fragment id + bitmask
        for _, triple in self.crossing_map:
            size += 4 + len(triple.subject.n3()) + len(triple.predicate.n3()) + len(triple.object.n3())
        return size

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        edges = ", ".join(f"#{index}" for index, _ in sorted(self.crossing_map, key=lambda p: p[0]))
        return f"<LECFeature F{self.fragment_id} edges=[{edges}] sign={bin(self.lec_sign)}>"


def lec_feature_of(lpm: LocalPartialMatch) -> LECFeature:
    """The LEC feature of a single local partial match (Definition 8)."""
    return LECFeature(
        fragment_id=lpm.fragment_id,
        crossing_map=lpm.crossing_assignment,
        lec_sign=lpm.internal_mask,
    )


def compute_lec_features(lpms: Iterable[LocalPartialMatch]) -> Dict[LECFeature, List[LocalPartialMatch]]:
    """Algorithm 1: one linear scan over the local partial matches.

    Returns the mapping from each distinct LEC feature to the equivalence
    class (the list of LPMs it summarises); the key set alone is what gets
    shipped to the coordinator.
    """
    classes: Dict[LECFeature, List[LocalPartialMatch]] = defaultdict(list)
    for lpm in lpms:
        classes[lec_feature_of(lpm)].append(lpm)
    return dict(classes)


# ----------------------------------------------------------------------
# Joinability (Definition 9) and feature joins
# ----------------------------------------------------------------------
def _crossing_maps_conflict(
    left: FrozenSet[Tuple[int, Triple]],
    right: FrozenSet[Tuple[int, Triple]],
    query: QueryGraph,
) -> bool:
    """Detect conflicting crossing-edge mappings between two features.

    A conflict arises when the same query edge is mapped to two different
    data edges (condition 3 of Definition 9) or when a shared query *vertex*
    would have to map to two different data vertices — the vertex-level
    consequence of the paper's requirement that joined partial matches agree
    on every common query vertex.
    """
    left_edges = dict(left)
    for index, triple in right:
        if index in left_edges and left_edges[index] != triple:
            return True
    vertex_values: Dict[object, object] = {}
    for index, triple in list(left) + list(right):
        edge = query.edge_at(index)
        for query_vertex, data_vertex in ((edge.subject, triple.subject), (edge.object, triple.object)):
            existing = vertex_values.get(query_vertex)
            if existing is not None and existing != data_vertex:
                return True
            vertex_values[query_vertex] = data_vertex
    return False


def features_joinable(left: LECFeature, right: LECFeature, query: QueryGraph) -> bool:
    """Definition 9: can the LPMs of these two classes join pairwise?"""
    if left.fragment_id == right.fragment_id:
        return False
    if left.lec_sign & right.lec_sign:
        return False
    if not (left.crossing_map & right.crossing_map):
        return False
    return not _crossing_maps_conflict(left.crossing_map, right.crossing_map, query)


@dataclass(frozen=True)
class JoinedLECFeature:
    """A partial join of several LEC features (used by Algorithm 2).

    Tracks which original features were combined so that the pruning stage
    can report exactly which features participate in a complete combination.
    """

    fragment_ids: FrozenSet[int]
    crossing_map: FrozenSet[Tuple[int, Triple]]
    lec_sign: int
    constituents: FrozenSet[LECFeature]

    @classmethod
    def from_feature(cls, feature: LECFeature) -> "JoinedLECFeature":
        return cls(
            fragment_ids=frozenset({feature.fragment_id}),
            crossing_map=feature.crossing_map,
            lec_sign=feature.lec_sign,
            constituents=frozenset({feature}),
        )

    def joinable_with(self, feature: LECFeature, query: QueryGraph) -> bool:
        """Extend Definition 9 to a partial join.

        The new feature must share a crossing edge with the accumulated
        combination, contribute disjoint internally-matched vertices and not
        conflict on any crossing-edge mapping.  Fragment-set disjointness is
        deliberately *not* required: one crossing match may overlap a single
        fragment in several disconnected internal regions, each contributing
        its own feature to the combination (see Theorem 4, whose conditions
        are per-pair joinability plus sign disjointness — not one feature per
        fragment).
        """
        if self.lec_sign & feature.lec_sign:
            return False
        if not (self.crossing_map & feature.crossing_map):
            return False
        return not _crossing_maps_conflict(self.crossing_map, feature.crossing_map, query)

    def join(self, feature: LECFeature) -> "JoinedLECFeature":
        return JoinedLECFeature(
            fragment_ids=self.fragment_ids | {feature.fragment_id},
            crossing_map=self.crossing_map | feature.crossing_map,
            lec_sign=self.lec_sign | feature.lec_sign,
            constituents=self.constituents | {feature},
        )

    def is_complete(self, query: QueryGraph) -> bool:
        """Theorem 4, condition 3: every query vertex is internally matched."""
        return self.lec_sign == (1 << query.num_vertices) - 1


# ----------------------------------------------------------------------
# LECSign-based grouping (Theorem 5 / Definition 10)
# ----------------------------------------------------------------------
def group_features_by_sign(features: Iterable[LECFeature]) -> Dict[int, List[LECFeature]]:
    """Group LEC features by LECSign.

    Theorem 5: two features with the same LECSign can never be joinable, so
    each group is join-free and the join graph only needs edges *between*
    groups.
    """
    groups: Dict[int, List[LECFeature]] = defaultdict(list)
    for feature in features:
        groups[feature.lec_sign].append(feature)
    return dict(groups)


def groups_joinable(
    left: Sequence[LECFeature],
    right: Sequence[LECFeature],
    query: QueryGraph,
) -> bool:
    """Whether *some* pair of features across the two groups is joinable."""
    return any(features_joinable(a, b, query) for a in left for b in right)


def build_join_graph(
    groups: Mapping[int, Sequence[LECFeature]],
    query: QueryGraph,
) -> Dict[int, Set[int]]:
    """The join graph over LECSign groups (vertices = signs, edges = joinable pairs)."""
    signs = list(groups)
    adjacency: Dict[int, Set[int]] = {sign: set() for sign in signs}
    for i, sign_a in enumerate(signs):
        for sign_b in signs[i + 1 :]:
            if groups_joinable(groups[sign_a], groups[sign_b], query):
                adjacency[sign_a].add(sign_b)
                adjacency[sign_b].add(sign_a)
    return adjacency
