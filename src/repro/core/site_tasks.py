"""The gStoreD engine's per-site stage bodies as picklable site tasks.

PR 2 extracted the four per-site stage bodies of :class:`~repro.core.engine.GStoreDEngine`
into closures; this module completes the refactor the process-pool backend
forces: every stage body is now a *module-level* handler registered with
:mod:`repro.exec.tasks`, taking exactly ``(site, payload)`` and returning a
plain picklable value.  No handler touches the cluster, the message bus, the
stage timers or the statistics — those live in the coordinator, which builds
the :class:`~repro.exec.tasks.SiteTask` descriptors (via the ``*_tasks``
helpers below) and folds the returned values into shared state in its
deterministic ``site_id``-ordered merge.

Payload and result types are deliberately explicit: what a stage needs goes
*in* through the payload (query, query graph, planner edge order, candidate
filter, config knobs), and what the coordinator accounts for comes *out*
through small result dataclasses — the same objects whose shipment the
message bus then charges, so ``shipped_bytes``/``messages`` cannot depend on
which process produced them.

The stage bodies themselves run on the site store's dictionary-encoded
matching kernel (:mod:`repro.store.encoding`): local evaluation and internal
candidate computation work on integer ids inside the store and decode to
:class:`~repro.rdf.terms.Node` objects only at this task boundary, so the
payloads and results — and therefore the shipment accounting — are identical
to the pre-encoding object path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..exec.tasks import SiteTask, register_site_task
from ..sparql.algebra import SelectQuery
from ..sparql.bindings import Binding
from ..sparql.query_graph import QueryGraph
from .candidate_exchange import CandidateBitVector, GlobalCandidateFilter, build_site_vectors
from .lec import LECFeature, compute_lec_features
from .partial_eval import PartialEvaluator
from .partial_match import LocalPartialMatch

#: Task names of the engine's per-site stage bodies.
TASK_LOCAL_EVAL = "engine.local_eval"
TASK_CANDIDATE_VECTORS = "engine.candidate_vectors"
TASK_PARTIAL_EVAL = "engine.partial_eval"
TASK_LEC_FEATURES = "engine.lec_features"
TASK_LEC_FILTER = "engine.lec_filter"

#: Which of these tasks each pipeline stage fans out (assembly ships results
#: over the bus instead of running a per-site task).  The authoritative
#: mapping behind ``repro.faults.TASKS_BY_STAGE`` — the fault layer keeps a
#: literal copy because importing this module from there would be circular,
#: and ``tests/faults`` pins the two against each other.  The stage-name keys
#: are literal for the same reason: :mod:`repro.core.engine` (which defines
#: the ``STAGE_*`` constants) imports this module.
PIPELINE_STAGE_TASKS: Dict[str, Tuple[str, ...]] = {
    "candidate_exchange": (TASK_CANDIDATE_VECTORS,),
    "partial_evaluation": (TASK_LOCAL_EVAL, TASK_PARTIAL_EVAL),
    "lec_pruning": (TASK_LEC_FEATURES,),
    "lec_filter": (TASK_LEC_FILTER,),
    "assembly": (),
}


# ----------------------------------------------------------------------
# Result payloads (explicit stage outputs)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CandidateVectorsOutput:
    """One site's Algorithm 4 step: candidate count + compressed vectors."""

    #: Total internal candidates over all query vertices (a stage counter;
    #: the raw candidate sets themselves never leave the site).
    internal_candidates: int
    #: Per-variable fixed-width bit vectors, the only thing shipped.
    vectors: Dict[object, CandidateBitVector]


@dataclass(frozen=True)
class LocalEvalOutput:
    """One site's star-shortcut step: local matches plus the work they cost.

    Only ``matches`` is shipped to the coordinator (the engine charges the
    bus with the list itself, exactly as before this wrapper existed);
    ``search_steps`` is a work counter folded into
    :attr:`~repro.distributed.QueryStatistics.work` in the serial merge.

    With intra-site sharding (``shard`` set) this is *one shard's* slice:
    ``matches`` then holds the shard's raw, unprojected bindings — the
    coordinator concatenates a site's shards in shard order and finalizes
    (projection/DISTINCT/LIMIT) once, reproducing the unsharded site result
    bit for bit before anything touches the bus.
    """

    #: The site's fragment-local matches (the shipped payload), or one
    #: shard's raw bindings when ``shard`` is set.
    matches: List[Binding]
    #: Matcher search steps the local evaluation cost (never shipped).
    search_steps: int = 0
    #: Matching kernel the evaluation actually ran with (observability).
    kernel: str = ""
    #: Candidate-column intersections the kernel performed (observability).
    kernel_intersections: int = 0
    #: ``(shard_index, num_shards)`` when this output is one shard's slice.
    shard: Optional[Tuple[int, int]] = None


@dataclass(frozen=True)
class PartialEvalOutput:
    """One site's partial-evaluation step: complete + partial local matches."""

    #: Fragment-local complete matches (shipped to the coordinator as-is).
    local_matches: List[Binding]
    #: The site's local partial matches (Definition 5), kept for pruning.
    local_partial_matches: List[LocalPartialMatch]
    #: Extended-candidate branches cut by the stage-1 bit-vector filter.
    branches_pruned_by_filter: int
    #: Matcher search steps of the fragment-local complete evaluation
    #: (the same deterministic work counter the kernel benchmarks report).
    search_steps: int = 0
    #: Matching kernel the local evaluation actually ran with (observability).
    kernel: str = ""
    #: Candidate-column intersections the kernel performed (observability).
    kernel_intersections: int = 0


# ----------------------------------------------------------------------
# Stage handlers (module-level, picklable by reference)
# ----------------------------------------------------------------------
@register_site_task(TASK_LOCAL_EVAL)
def run_local_eval(site, payload: Mapping[str, object]) -> LocalEvalOutput:
    """Evaluate the query entirely inside the site's fragment.

    The star-query shortcut: every match of a star query is contained in a
    single fragment because crossing edges are replicated.

    A ``"shard"`` payload entry (absent for unsharded runs, so the pickled
    payload is byte-identical to before sharding existed) turns this into one
    slice of the site's search: the matcher partitions the depth-0 candidate
    frontier and this shard returns its raw, unprojected bindings for the
    coordinator to reassemble (see :class:`LocalEvalOutput`).
    """
    query: SelectQuery = payload["query"]
    shard: Optional[Tuple[int, int]] = payload.get("shard")
    matcher = site.store.matcher
    if shard is None:
        matches = list(site.local_evaluate(query))
    else:
        matches = site.local_evaluate_shard(query, shard[0], shard[1])
    return LocalEvalOutput(
        matches=matches,
        search_steps=matcher.search_steps,
        kernel=matcher.last_kernel,
        kernel_intersections=matcher.kernel_intersections,
        shard=shard,
    )


@register_site_task(TASK_CANDIDATE_VECTORS)
def run_candidate_vectors(site, payload: Mapping[str, object]) -> CandidateVectorsOutput:
    """Compute the site's internal candidates and compress them to bit vectors."""
    query_graph: QueryGraph = payload["query_graph"]
    candidates = site.internal_candidates(query_graph)
    vectors = build_site_vectors(candidates, payload["bit_vector_bits"])
    total = sum(len(values) for values in candidates.values())
    return CandidateVectorsOutput(internal_candidates=total, vectors=vectors)


@register_site_task(TASK_PARTIAL_EVAL)
def run_partial_eval(site, payload: Mapping[str, object]) -> PartialEvalOutput:
    """Enumerate the site's complete local matches and local partial matches."""
    query: SelectQuery = payload["query"]
    query_graph: QueryGraph = payload["query_graph"]
    candidate_filter: Optional[GlobalCandidateFilter] = payload["candidate_filter"]
    local_results = list(site.local_evaluate(query))
    matcher = site.store.matcher
    search_steps = matcher.search_steps
    kernel = matcher.last_kernel
    kernel_intersections = matcher.kernel_intersections
    evaluator = PartialEvaluator(
        site.fragment,
        graph=site.graph,
        paranoid=payload["paranoid"],
        edge_order=payload["edge_order"],
    )
    outcome = evaluator.evaluate(query_graph, candidate_filter=candidate_filter)
    return PartialEvalOutput(
        local_matches=local_results,
        local_partial_matches=outcome.local_partial_matches,
        branches_pruned_by_filter=outcome.branches_pruned_by_filter,
        search_steps=search_steps,
        kernel=kernel,
        kernel_intersections=kernel_intersections,
    )


@register_site_task(TASK_LEC_FEATURES, payload_bound=True)
def run_lec_features(site, payload: Mapping[str, object]) -> Dict[LECFeature, List[LocalPartialMatch]]:
    """Group the site's local partial matches into LEC equivalence classes.

    The LPMs arrive through the payload (the coordinator collected them in
    the partial-evaluation merge), so this handler is site-resident only for
    scheduling symmetry — it reads nothing from the fragment.  Marked
    payload-bound: grouping is a dictionary pass over data that would have to
    be pickled twice to ship, so process pools keep it in the coordinator.
    """
    del site
    return compute_lec_features(payload["lpms"])


@register_site_task(TASK_LEC_FILTER, payload_bound=True)
def run_lec_filter(site, payload: Mapping[str, object]) -> List[LocalPartialMatch]:
    """Drop the site's LPMs whose LEC feature the coordinator pruned.

    Payload-bound for the same reason as :func:`run_lec_features`: a set
    membership scan is far cheaper than round-tripping the LPM classes
    through a worker process.
    """
    del site
    surviving = payload["surviving"]
    kept: List[LocalPartialMatch] = []
    for feature, members in payload["classes"].items():
        if feature in surviving:
            kept.extend(members)
    return kept


# ----------------------------------------------------------------------
# Descriptor builders (what the engine's stages submit)
# ----------------------------------------------------------------------
def local_eval_tasks(
    site_ids: Sequence[int], query: SelectQuery, shards_per_site: int = 1
) -> List[SiteTask]:
    """Star-shortcut fan-out: evaluate ``query`` locally at every site.

    With ``shards_per_site > 1`` each site's search is split into that many
    depth-0 frontier shards — ``K`` tasks per site under the same
    ``TASK_LOCAL_EVAL`` name, emitted in ``(site_id, shard_index)`` order so
    the coordinator's submission-order merge can reassemble each site's
    shards contiguously and in order.  Unsharded payloads carry no
    ``"shard"`` key at all, keeping them byte-identical to the pre-sharding
    engine.
    """
    if shards_per_site <= 1:
        return [
            SiteTask(site_id, TASK_LOCAL_EVAL, {"query": query}) for site_id in site_ids
        ]
    return [
        SiteTask(site_id, TASK_LOCAL_EVAL, {"query": query, "shard": (shard, shards_per_site)})
        for site_id in site_ids
        for shard in range(shards_per_site)
    ]


def candidate_vector_tasks(
    site_ids: Sequence[int], query_graph: QueryGraph, bit_vector_bits: int
) -> List[SiteTask]:
    """Algorithm 4 fan-out: per-site candidate bit-vector compression."""
    payload = {"query_graph": query_graph, "bit_vector_bits": bit_vector_bits}
    return [SiteTask(site_id, TASK_CANDIDATE_VECTORS, payload) for site_id in site_ids]


def partial_eval_tasks(
    site_ids: Sequence[int],
    query: SelectQuery,
    query_graph: QueryGraph,
    edge_order: Optional[Sequence[int]],
    candidate_filter: Optional[GlobalCandidateFilter],
    paranoid: bool,
) -> List[SiteTask]:
    """Partial-evaluation fan-out with every input made explicit."""
    payload = {
        "query": query,
        "query_graph": query_graph,
        "edge_order": tuple(edge_order) if edge_order is not None else None,
        "candidate_filter": candidate_filter,
        "paranoid": paranoid,
    }
    return [SiteTask(site_id, TASK_PARTIAL_EVAL, payload) for site_id in site_ids]


def lec_feature_tasks(
    lpms_by_site: Mapping[int, List[LocalPartialMatch]]
) -> List[SiteTask]:
    """LEC compression fan-out, one task per site in ``site_id`` order."""
    return [
        SiteTask(site_id, TASK_LEC_FEATURES, {"lpms": lpms_by_site[site_id]})
        for site_id in sorted(lpms_by_site)
    ]


def lec_filter_tasks(
    classes_by_site: Mapping[int, Dict[LECFeature, List[LocalPartialMatch]]],
    surviving_by_site: Mapping[int, object],
) -> List[SiteTask]:
    """LEC filtering fan-out: keep only the surviving classes' members."""
    return [
        SiteTask(
            site_id,
            TASK_LEC_FILTER,
            {"classes": classes_by_site[site_id], "surviving": surviving_by_site[site_id]},
        )
        for site_id in sorted(classes_by_site)
    ]
