"""The gStoreD engine: partial evaluation and assembly over a simulated cluster.

:class:`GStoreDEngine` orchestrates the full pipeline of the paper on top of
one :class:`~repro.distributed.Cluster`:

1. *Initialization / candidate exchange* (optional, Algorithm 4): sites
   compress their internal candidate sets into bit vectors, the coordinator
   ORs them and broadcasts the union.
2. *Partial evaluation*: every site enumerates (a) its fragment-local
   complete matches and (b) its local partial matches (Definition 5),
   filtering extended candidates with the stage-1 bit vectors.
3. *LEC feature-based pruning* (optional, Algorithms 1-2): sites compress
   LPMs into LEC features, the coordinator joins the features and reports
   which ones can contribute to a complete match; the sites drop the rest.
4. *Assembly* (Algorithm 3 or the ungrouped join of [18]): the surviving
   LPMs are shipped to the coordinator and joined into crossing matches,
   which are merged with the fragment-local matches.

Star queries are answered purely locally when ``star_shortcut`` is enabled —
every match of a star query is contained in a single fragment because
crossing edges are replicated — which reproduces the zero-cost optimization
rows of the paper's Tables I-III.

Every stage's wall-clock time (per site and for the coordinator) and every
inter-site message is recorded in a :class:`~repro.distributed.QueryStatistics`,
from which the benchmark harness rebuilds the paper's tables.

Execution model: each stage expresses its per-site body as a picklable
:class:`~repro.exec.SiteTask` descriptor (``(site_id, stage, payload)``; the
module-level handlers live in :mod:`repro.core.site_tasks`) and fans the
batch out through an :class:`~repro.exec.ExecutorBackend` —
``EngineConfig.executor`` selects serial, threaded or process execution.
Handlers only touch their own site and their explicit payload; all
shared-state mutation — message-bus sends, statistics accumulation, stage
timing — happens afterwards in a serial merge over the results in
``site_id`` order, so answers and shipment accounting are bit-identical
whatever the backend or worker count.  (Process workers bootstrap their own
copy of every site from serialized fragments; see :mod:`repro.exec.worker`.)
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..distributed.cluster import Cluster
from ..distributed.network import COORDINATOR, StageTimer
from ..distributed.stats import QueryStatistics
from ..exec import ExecutorBackend, SiteTask, SiteTaskResult, make_backend, run_site_task
from ..faults import FaultPlan, RetryPolicy, ShipmentFaultInjector, SiteDownError
from ..obs import CATEGORY_PLANNING, StageProfiler, Trace, stage_scope
from ..planner.plan import QueryPlan
from ..sparql.algebra import SelectQuery
from ..sparql.bindings import Binding, ResultSet
from ..sparql.query_graph import QueryGraph
from ..store import finalize_matches
from .assembly import AssemblyOutcome, assemble_matches
from .candidate_exchange import GlobalCandidateFilter, union_site_vectors
from .config import EngineConfig
from .lec import LECFeature
from .partial_match import LocalPartialMatch
from .pruning import prune_features
from .site_tasks import (
    candidate_vector_tasks,
    lec_feature_tasks,
    lec_filter_tasks,
    local_eval_tasks,
    partial_eval_tasks,
)

#: Stage names used consistently in statistics, tables and tests.
STAGE_PLANNING = "planning"
STAGE_CANDIDATES = "candidate_exchange"
STAGE_PARTIAL_EVAL = "partial_evaluation"
STAGE_PRUNING = "lec_pruning"
STAGE_ASSEMBLY = "assembly"


@dataclass
class _FaultContext:
    """Per-``execute()`` fault bookkeeping (never shared across queries).

    The engine object is shared by concurrent queries, so everything the
    fault layer accumulates during one execution — which sites were lost,
    how many retries and recoveries happened — lives here and is folded
    into that execution's :class:`~repro.distributed.QueryStatistics` at
    the end.  ``plan is None`` for fault-free runs, in which case every
    counter stays zero and the context is inert.
    """

    plan: Optional[FaultPlan] = None
    lost_sites: Set[int] = field(default_factory=set)
    task_retries: int = 0
    site_failures: int = 0
    site_recoveries: int = 0


@dataclass
class DistributedResult:
    """A query's solutions plus the execution statistics that produced them."""

    results: ResultSet
    statistics: QueryStatistics

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


class GStoreDEngine:
    """Partial-evaluation-and-assembly SPARQL engine over a simulated cluster."""

    #: This engine natively accepts ``trace``/``profiler`` keyword arguments
    #: on :meth:`execute` (the session layer checks this attribute instead of
    #: guessing from signatures; see :mod:`repro.obs`).
    supports_tracing = True

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[EngineConfig] = None,
        name: Optional[str] = None,
        backend: Optional[ExecutorBackend] = None,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.cluster = cluster
        self.config = config or EngineConfig.full()
        self.name = name or self.config.label
        #: Optional fault-injection schedule (see :mod:`repro.faults`): when
        #: set, every site task carries the plan, transient failures retry
        #: with ``retry`` (default: the plan's own policy), dead sites are
        #: rebuilt from their fragment payloads, and unrecoverable losses
        #: degrade the result instead of aborting the query.  ``None`` — the
        #: default — leaves the execution path byte-identical to before the
        #: fault layer existed.
        self.faults = faults
        self.retry = retry if retry is not None else (faults.retry if faults else None)
        #: How per-site stage bodies are scheduled (see :mod:`repro.exec`).
        #: An explicitly injected backend is *shared*: the caller keeps
        #: ownership and :meth:`close` leaves it running (benchmarks reuse
        #: one warm process pool across many engines this way).
        self._owns_backend = backend is None
        self.backend = backend if backend is not None else make_backend(
            self.config.executor, self.config.max_workers
        )
        #: The most recent execution's stage timer (kept for introspection
        #: and so the cluster's weak timer registry has something to clear).
        self.last_timer: Optional[StageTimer] = None
        # Sites plan their local evaluations from their own fragment's
        # statistics; the statistics and plan caches live on the stores, so
        # repeated queries (and repeated engines over the same cluster)
        # reuse them.  A planner-off engine must actively disable them —
        # stores keep planners across engine instances, and an A/B
        # comparison with a planner-on engine would otherwise be
        # contaminated.
        for site in self.cluster:
            if self.config.use_planner:
                site.enable_planner(self.config.plan_cache_size)
            else:
                site.disable_planner()


    def _charge_network(self, stage) -> None:
        """Convert the stage's shipped bytes/messages into modelled transfer time."""
        stage.network_time_s = self.cluster.network.transfer_time(stage.shipped_bytes, stage.messages)

    def _site_ids(self) -> List[int]:
        """The cluster's site ids in ascending order (the fan-out order)."""
        return sorted(self.cluster.site_ids)

    def _live_site_ids(self, ctx: Optional[_FaultContext]) -> List[int]:
        """The fan-out order minus the sites this execution has lost."""
        ids = self._site_ids()
        if ctx is None or not ctx.lost_sites:
            return ids
        return [site_id for site_id in ids if site_id not in ctx.lost_sites]

    def _site_options(self) -> Dict[str, object]:
        """Worker-side knobs for process pools (mirrors the sites' planner setup)."""
        return {
            "use_planner": self.config.use_planner,
            "plan_cache_size": self.config.plan_cache_size,
        }

    def _run_site_tasks(
        self,
        tasks: Sequence[SiteTask],
        timer: StageTimer,
        stage_name: str,
        trace: Optional[Trace] = None,
        ctx: Optional[_FaultContext] = None,
    ) -> List[SiteTaskResult]:
        """Fan the task batch out and record each site's measured time.

        Results come back in submission order (the builders emit tasks in
        ascending ``site_id`` order), so the callers' merges stay
        deterministic; the handler-measured wall-clock of each task is folded
        into the shared timer here, in the serial merge, never by the tasks
        themselves.  When tracing, the current (stage) span's context is
        stamped onto every task before the fan-out, and the worker-measured
        task spans are folded back into the trace — also here, serially.

        With an active fault plan (``ctx.plan``) the plan and retry policy
        are stamped onto every task, and failed results are resolved here —
        still in the serial, ``site_id``-ordered merge, which is what keeps
        recovery deterministic across backends: a dead-but-recoverable site
        is rebuilt from its fragment payload and its task re-executed
        inline, an unrecoverable site is marked lost and its result dropped.
        Only results that survive (including recovered ones) reach the stage
        timers — and a retried task contributes the successful attempt's
        time alone.
        """
        if trace is not None:
            context = trace.current_context()
            tasks = [replace(task, trace=context) for task in tasks]
        plan = ctx.plan if ctx is not None else None
        if plan is not None:
            retry = self.retry if self.retry is not None else plan.retry
            tasks = [replace(task, faults=plan, retry=retry) for task in tasks]
        results = self.backend.map_site_tasks(tasks, self.cluster, self._site_options())
        merged: List[SiteTaskResult] = []
        for task, result in zip(tasks, results):
            result = self._resolve_failure(task, result, ctx)
            if result is None:
                continue
            if ctx is not None and result.attempts > 1:
                ctx.task_retries += result.attempts - 1
            timer.record(stage_name, result.site_id, result.elapsed_s)
            if trace is not None and result.span is not None:
                span = trace.add_task_span(result.span)
                # Stage outputs that know which matching kernel produced them
                # (local/partial evaluation) annotate their task span, so the
                # trace shows the kernel variant and its intersection count
                # per site task.
                kernel = getattr(result.value, "kernel", "")
                if kernel:
                    span.set(
                        kernel=kernel,
                        kernel_intersections=getattr(
                            result.value, "kernel_intersections", 0
                        ),
                    )
            merged.append(result)
        return merged

    def _resolve_failure(
        self,
        task: SiteTask,
        result: SiteTaskResult,
        ctx: Optional[_FaultContext],
    ) -> Optional[SiteTaskResult]:
        """Turn a failed task result into recovery or degradation.

        Returns the surviving result — the original on success, the
        recovery re-run's on a recoverable site death — or ``None`` when the
        site is unrecoverable, in which case it is recorded in
        ``ctx.lost_sites`` and the caller drops it from the merge.
        """
        failure = result.failure
        if failure is None:
            return result
        assert ctx is not None, "task failures only occur under a fault plan"
        ctx.site_failures += 1
        ctx.task_retries += result.attempts - 1
        if not failure.recoverable:
            ctx.lost_sites.add(result.site_id)
            return None
        site = self._rebuild_site(result.site_id)
        rerun = run_site_task(replace(task, attempt=1, recovery=True), site)
        if rerun.failure is not None:
            ctx.lost_sites.add(result.site_id)
            return None
        ctx.site_recoveries += 1
        return rerun

    def _rebuild_site(self, site_id: int):
        """Re-bootstrap a dead site from its fragment payload, in place."""
        return self.cluster.rebuild_site(
            site_id,
            use_planner=self.config.use_planner,
            plan_cache_size=self.config.plan_cache_size,
        )

    def close(self) -> None:
        """Release the execution backend's worker resources (owned backends only)."""
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "GStoreDEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(
        self,
        query: SelectQuery,
        query_name: str = "",
        dataset: str = "",
        *,
        trace: Optional[Trace] = None,
        profiler: Optional[StageProfiler] = None,
    ) -> DistributedResult:
        """Run ``query`` through the full distributed pipeline.

        ``trace``/``profiler`` are optional observability hooks (see
        :mod:`repro.obs`): when set, every stage opens a span (with per-site
        task spans reassembled from the backend fan-out) and/or a per-stage
        ``cProfile`` capture.  Both default to off and change nothing about
        evaluation — answers, ``search_steps`` and shipment accounting are
        bit-identical with or without them.
        """
        stats = QueryStatistics(
            query_name=query_name,
            engine=self.name,
            dataset=dataset,
            partitioning=self.cluster.partitioned_graph.strategy,
        )
        query_graph = QueryGraph(query.bgp)
        timer = StageTimer()
        # The engine keeps its most recent timer alive and registers it with
        # the cluster (weakly) so `Cluster.reset_network()` can clear stale
        # totals between back-to-back benchmark runs.
        self.last_timer = timer
        self.cluster.track_timer(timer)
        if self.backend.name != "serial":
            # Only non-default backends annotate the statistics — the serial
            # reference must reproduce the paper's table layouts unchanged
            # (extra keys become columns via QueryStatistics.as_row()).
            stats.extra["executor"] = self.backend.name
            stats.extra["max_workers"] = self.backend.max_workers
        if self.config.use_planner:
            # Keep the stage present (and first) even on the star path,
            # where the coordinator never plans — its zero-cost row mirrors
            # how the star shortcut zeroes the other optimization stages.
            stats.stage(STAGE_PLANNING)

        ctx = _FaultContext(plan=self.faults)
        fault_cm = (
            self.cluster.bus.fault_scope(ShipmentFaultInjector(self.faults))
            if self.faults is not None
            else nullcontext()
        )
        with fault_cm:
            if self.config.star_shortcut and query_graph.is_star():
                bindings = self._evaluate_star(query, timer, stats, ctx, trace, profiler)
            else:
                plan = self._plan_query(query_graph, timer, stats, trace, profiler)
                bindings = self._evaluate_general(
                    query, query_graph, plan, timer, stats, ctx, trace, profiler
                )
        self._finalize_faults(ctx, stats)

        results = ResultSet(bindings, query.variables)
        projected = results.project(query.effective_projection, distinct=True)
        limited = projected.limit(query.limit)
        stats.num_results = len(limited)
        stats.extra["query_shape"] = query_graph.classify_shape()
        stats.extra["selective"] = query_graph.has_selective_pattern()
        return DistributedResult(limited, stats)

    def _finalize_faults(self, ctx: _FaultContext, stats: QueryStatistics) -> None:
        """Fold one execution's fault bookkeeping into its statistics.

        Keys are only written when fault injection was active, so a clean
        run's work counters and table columns stay byte-identical to the
        pre-fault-layer engine.  ``work`` carries the recovery counters (not
        table columns); ``extra`` carries the degradation verdict, which
        surfaces as ``Result.degraded`` / ``Result.missing_sites`` at the
        API layer.
        """
        if ctx.plan is None:
            return
        stats.work["task_retries"] = ctx.task_retries
        stats.work["site_failures"] = ctx.site_failures
        stats.work["site_recoveries"] = ctx.site_recoveries
        if ctx.lost_sites:
            missing = sorted(ctx.lost_sites)
            stats.extra["degraded"] = True
            stats.extra["missing_sites"] = missing
            stats.extra["warning"] = (
                "partial results: site(s) "
                + ", ".join(str(site_id) for site_id in missing)
                + " lost and unrecoverable; matches needing their fragments are missing"
            )

    # ------------------------------------------------------------------
    # Stage 0: cost-based planning
    # ------------------------------------------------------------------
    def _plan_query(
        self,
        query_graph: QueryGraph,
        timer: StageTimer,
        stats: QueryStatistics,
        trace: Optional[Trace] = None,
        profiler: Optional[StageProfiler] = None,
    ) -> Optional[QueryPlan]:
        """Plan the query on the coordinator and record the planning stage.

        The coordinator plans over the cluster-wide aggregated statistics;
        its plan drives the partial-evaluation edge order.  The sites'
        matchers additionally plan their fragment-local work with their own
        (already enabled) planners.
        """
        if not self.config.use_planner:
            return None
        stage = stats.stage(STAGE_PLANNING)
        planner = self.cluster.coordinator_planner(self.config.plan_cache_size)
        hits_before = planner.cache.hits
        span_cm = (
            trace.span("plan", CATEGORY_PLANNING) if trace is not None else nullcontext()
        )
        profile_cm = (
            profiler.capture(STAGE_PLANNING) if profiler is not None else nullcontext()
        )
        with profile_cm, span_cm as span:
            with timer.measure(STAGE_PLANNING, COORDINATOR):
                plan = planner.plan_for(query_graph)
            cache_hit = planner.cache.hits > hits_before
            if span is not None:
                trace.event("plan_cache", CATEGORY_PLANNING, hit=cache_hit)
                span.set(
                    source=plan.source,
                    estimated_cost=round(plan.estimated_cost, 1),
                    cache_hit=cache_hit,
                )
        stage.coordinator_time_s += timer.elapsed(STAGE_PLANNING, COORDINATOR)
        stage.add_counter("plan_cache_hit", 1 if cache_hit else 0)
        stage.add_counter("planned_vertices", len(plan))
        stats.extra["plan_source"] = plan.source
        stats.extra["plan_estimated_cost"] = round(plan.estimated_cost, 1)
        stats.extra["plan_cache_hit_rate"] = round(planner.cache.hit_rate, 3)
        return plan

    # ------------------------------------------------------------------
    # Star shortcut
    # ------------------------------------------------------------------
    def _evaluate_star(
        self,
        query: SelectQuery,
        timer: StageTimer,
        stats: QueryStatistics,
        ctx: Optional[_FaultContext] = None,
        trace: Optional[Trace] = None,
        profiler: Optional[StageProfiler] = None,
    ) -> List[Binding]:
        """Evaluate a star query purely locally at every site.

        With ``config.shards_per_site > 1`` each site's search is fanned out
        as that many depth-0 frontier shards (independent site tasks over the
        same store).  The merge below reassembles each site: shard bindings
        are concatenated in shard order and finalized once, reproducing the
        unsharded site result bit for bit, and only then does *one* message
        per site hit the bus — so answers, ``search_steps`` and shipment
        accounting are identical for every shard count.
        """
        stage = stats.stage(STAGE_PARTIAL_EVAL)
        shards = max(1, self.config.shards_per_site)
        tasks = local_eval_tasks(self._live_site_ids(ctx), query, shards)
        all_bindings: List[Binding] = []
        with stage_scope(trace, profiler, STAGE_PARTIAL_EVAL, star_shortcut=True) as span:
            # Group the results by site first: tasks come back in submission
            # order (site ascending, then shard ascending), and a site whose
            # shard died unrecoverably mid-stage must not ship the shards
            # that did succeed.
            outcomes_by_site: Dict[int, List[object]] = {}
            site_order: List[int] = []
            for result in self._run_site_tasks(tasks, timer, STAGE_PARTIAL_EVAL, trace, ctx):
                if result.site_id not in outcomes_by_site:
                    outcomes_by_site[result.site_id] = []
                    site_order.append(result.site_id)
                outcomes_by_site[result.site_id].append(result.value)
            for site_id in site_order:
                if ctx is not None and site_id in ctx.lost_sites:
                    continue
                outcomes = outcomes_by_site[site_id]
                if shards == 1:
                    matches = outcomes[0].matches
                else:
                    raw = [
                        binding for outcome in outcomes for binding in outcome.matches
                    ]
                    matches = list(finalize_matches(query, raw))
                shipped = self.cluster.bus.send(
                    site_id,
                    COORDINATOR,
                    "local_matches",
                    matches,
                    STAGE_PARTIAL_EVAL,
                )
                stage.shipped_bytes += shipped
                stage.messages += 1
                all_bindings.extend(matches)
                stats.work["search_steps"] = stats.work.get("search_steps", 0) + sum(
                    outcome.search_steps for outcome in outcomes
                )
                stats.work["kernel_intersections"] = stats.work.get(
                    "kernel_intersections", 0
                ) + sum(outcome.kernel_intersections for outcome in outcomes)
            if span is not None:
                span.set(shipped_bytes=stage.shipped_bytes, messages=stage.messages)
        stage.site_times_s.update(timer.site_times(STAGE_PARTIAL_EVAL))
        self._charge_network(stage)
        stage.add_counter("local_matches", len(all_bindings))
        stage.add_counter("local_partial_matches", 0)
        # Keep the optimization stages present (at zero cost) so the table
        # rows show the same zeros as the paper does for star queries.
        stats.stage(STAGE_CANDIDATES)
        stats.stage(STAGE_PRUNING)
        stats.stage(STAGE_ASSEMBLY).add_counter("crossing_matches", 0)
        return all_bindings

    # ------------------------------------------------------------------
    # General pipeline
    # ------------------------------------------------------------------
    def _evaluate_general(
        self,
        query: SelectQuery,
        query_graph: QueryGraph,
        plan: Optional[QueryPlan],
        timer: StageTimer,
        stats: QueryStatistics,
        ctx: Optional[_FaultContext] = None,
        trace: Optional[Trace] = None,
        profiler: Optional[StageProfiler] = None,
    ) -> List[Binding]:
        candidate_filter = self._candidate_exchange(
            query_graph, timer, stats, ctx, trace, profiler
        )
        local_bindings, lpms_by_site = self._partial_evaluation(
            query, query_graph, plan, candidate_filter, timer, stats, ctx, trace, profiler
        )
        surviving_by_site = self._lec_pruning(
            query_graph, lpms_by_site, timer, stats, ctx, trace, profiler
        )
        crossing_bindings = self._assembly(
            query_graph, surviving_by_site, timer, stats, ctx, trace, profiler
        )
        return local_bindings + crossing_bindings

    # -- Stage 1: Algorithm 4 -------------------------------------------------
    def _candidate_exchange(
        self,
        query_graph: QueryGraph,
        timer: StageTimer,
        stats: QueryStatistics,
        ctx: Optional[_FaultContext] = None,
        trace: Optional[Trace] = None,
        profiler: Optional[StageProfiler] = None,
    ) -> Optional[GlobalCandidateFilter]:
        stage = stats.stage(STAGE_CANDIDATES)
        if not self.config.use_candidate_exchange:
            return None
        tasks = candidate_vector_tasks(
            self._live_site_ids(ctx), query_graph, self.config.bit_vector_bits
        )
        per_site_vectors = []
        internal_candidate_total = 0
        with stage_scope(trace, profiler, STAGE_CANDIDATES) as span:
            for result in self._run_site_tasks(tasks, timer, STAGE_CANDIDATES, trace, ctx):
                internal_candidate_total += result.value.internal_candidates
                vectors = result.value.vectors
                per_site_vectors.append(vectors)
                shipped = self.cluster.bus.send(
                    result.site_id, COORDINATOR, "candidate_vectors", list(vectors.values()), STAGE_CANDIDATES
                )
                stage.shipped_bytes += shipped
                stage.messages += 1
            with timer.measure(STAGE_CANDIDATES, COORDINATOR):
                global_filter = union_site_vectors(per_site_vectors, self.config.bit_vector_bits)
            # Broadcast to the sites still alive at this point — identical to
            # the full cluster on a clean run, and a lost site must neither
            # receive the filter nor be charged for it.
            destinations = self._live_site_ids(ctx)
            shipped = self.cluster.bus.broadcast(
                COORDINATOR, destinations, "global_candidate_filter", global_filter, STAGE_CANDIDATES
            )
            stage.shipped_bytes += shipped
            stage.messages += len(destinations)
            if span is not None:
                span.set(shipped_bytes=stage.shipped_bytes, messages=stage.messages)
        stage.site_times_s.update(timer.site_times(STAGE_CANDIDATES))
        stage.coordinator_time_s += timer.elapsed(STAGE_CANDIDATES, COORDINATOR)
        self._charge_network(stage)
        stage.add_counter("internal_candidates", internal_candidate_total)
        stage.add_counter("variables", len(global_filter))
        return global_filter

    # -- Stage 2: partial evaluation -------------------------------------------
    def _partial_evaluation(
        self,
        query: SelectQuery,
        query_graph: QueryGraph,
        plan: Optional[QueryPlan],
        candidate_filter: Optional[GlobalCandidateFilter],
        timer: StageTimer,
        stats: QueryStatistics,
        ctx: Optional[_FaultContext] = None,
        trace: Optional[Trace] = None,
        profiler: Optional[StageProfiler] = None,
    ) -> Tuple[List[Binding], Dict[int, List[LocalPartialMatch]]]:
        stage = stats.stage(STAGE_PARTIAL_EVAL)
        edge_order = plan.edge_order if plan is not None else None
        tasks = partial_eval_tasks(
            self._live_site_ids(ctx),
            query,
            query_graph,
            edge_order,
            candidate_filter,
            self.config.paranoid_validation,
        )
        local_bindings: List[Binding] = []
        lpms_by_site: Dict[int, List[LocalPartialMatch]] = {}
        filtered_branches = 0
        with stage_scope(trace, profiler, STAGE_PARTIAL_EVAL) as span:
            for result in self._run_site_tasks(tasks, timer, STAGE_PARTIAL_EVAL, trace, ctx):
                outcome = result.value
                local_bindings.extend(outcome.local_matches)
                lpms_by_site[result.site_id] = outcome.local_partial_matches
                filtered_branches += outcome.branches_pruned_by_filter
                stats.work["search_steps"] = (
                    stats.work.get("search_steps", 0) + outcome.search_steps
                )
                stats.work["kernel_intersections"] = (
                    stats.work.get("kernel_intersections", 0)
                    + outcome.kernel_intersections
                )
                shipped = self.cluster.bus.send(
                    result.site_id, COORDINATOR, "local_matches", outcome.local_matches, STAGE_PARTIAL_EVAL
                )
                stage.shipped_bytes += shipped
                stage.messages += 1
            if span is not None:
                span.set(shipped_bytes=stage.shipped_bytes, messages=stage.messages)
        stage.site_times_s.update(timer.site_times(STAGE_PARTIAL_EVAL))
        self._charge_network(stage)
        stage.add_counter("local_matches", len(local_bindings))
        stage.add_counter(
            "local_partial_matches", sum(len(lpms) for lpms in lpms_by_site.values())
        )
        stage.add_counter("filtered_extended_candidates", filtered_branches)
        return local_bindings, lpms_by_site

    # -- Stage 3: Algorithms 1-2 ------------------------------------------------
    def _lec_pruning(
        self,
        query_graph: QueryGraph,
        lpms_by_site: Dict[int, List[LocalPartialMatch]],
        timer: StageTimer,
        stats: QueryStatistics,
        ctx: Optional[_FaultContext] = None,
        trace: Optional[Trace] = None,
        profiler: Optional[StageProfiler] = None,
    ) -> Dict[int, List[LocalPartialMatch]]:
        stage = stats.stage(STAGE_PRUNING)
        if not self.config.use_lec_pruning:
            return lpms_by_site

        classes_by_site: Dict[int, Dict[LECFeature, List[LocalPartialMatch]]] = {}
        features_by_site: Dict[int, List[LECFeature]] = {}
        surviving_by_site: Dict[int, List[LocalPartialMatch]] = {}
        with stage_scope(trace, profiler, STAGE_PRUNING) as span:
            for result in self._run_site_tasks(
                lec_feature_tasks(lpms_by_site), timer, STAGE_PRUNING, trace, ctx
            ):
                classes = result.value
                classes_by_site[result.site_id] = classes
                features_by_site[result.site_id] = list(classes)
                shipped = self.cluster.bus.send(
                    result.site_id, COORDINATOR, "lec_features", list(classes), STAGE_PRUNING
                )
                stage.shipped_bytes += shipped
                stage.messages += 1
            with timer.measure(STAGE_PRUNING, COORDINATOR):
                outcome, surviving_features = prune_features(query_graph, features_by_site)
            # Iterate the sites that actually reported features: identical to
            # lpms_by_site on a clean run, but a site lost during the feature
            # fan-out has no surviving_features entry to ship back.
            for site_id in sorted(classes_by_site):
                shipped = self.cluster.bus.send(
                    COORDINATOR, site_id, "surviving_features", list(surviving_features[site_id]), STAGE_PRUNING
                )
                stage.shipped_bytes += shipped
                stage.messages += 1

            filter_tasks = lec_filter_tasks(classes_by_site, surviving_features)
            for result in self._run_site_tasks(filter_tasks, timer, STAGE_PRUNING, trace, ctx):
                surviving_by_site[result.site_id] = result.value
            if span is not None:
                span.set(shipped_bytes=stage.shipped_bytes, messages=stage.messages)
        stage.site_times_s.update(timer.site_times(STAGE_PRUNING))
        stage.coordinator_time_s += timer.elapsed(STAGE_PRUNING, COORDINATOR)
        self._charge_network(stage)
        stage.add_counter("lec_features", outcome.total_features)
        stage.add_counter("lec_feature_groups", outcome.groups)
        stage.add_counter("surviving_features", len(outcome.surviving))
        stage.add_counter(
            "pruned_local_partial_matches",
            sum(len(lpms) for lpms in lpms_by_site.values())
            - sum(len(lpms) for lpms in surviving_by_site.values()),
        )
        return surviving_by_site

    # -- Stage 4: assembly --------------------------------------------------------
    def _assembly(
        self,
        query_graph: QueryGraph,
        lpms_by_site: Dict[int, List[LocalPartialMatch]],
        timer: StageTimer,
        stats: QueryStatistics,
        ctx: Optional[_FaultContext] = None,
        trace: Optional[Trace] = None,
        profiler: Optional[StageProfiler] = None,
    ) -> List[Binding]:
        stage = stats.stage(STAGE_ASSEMBLY)
        all_lpms: List[LocalPartialMatch] = []
        with stage_scope(trace, profiler, STAGE_ASSEMBLY) as span:
            for site_id, lpms in lpms_by_site.items():
                shipped = self._ship_assembly_lpms(site_id, lpms, ctx)
                if shipped is None:
                    continue  # site died unrecoverably mid-shipment
                stage.shipped_bytes += shipped
                stage.messages += 1
                all_lpms.extend(lpms)
            with timer.measure(STAGE_ASSEMBLY, COORDINATOR):
                outcome = assemble_matches(query_graph, all_lpms, use_lec_grouping=self.config.use_lec_assembly)
            if span is not None:
                span.set(shipped_bytes=stage.shipped_bytes, messages=stage.messages)
        stage.coordinator_time_s += timer.elapsed(STAGE_ASSEMBLY, COORDINATOR)
        self._charge_network(stage)
        stage.add_counter("assembled_local_partial_matches", len(all_lpms))
        stage.add_counter("crossing_matches", outcome.num_matches)
        stage.add_counter("join_attempts", outcome.join_attempts)
        stage.add_counter("lpm_groups", outcome.groups)
        return outcome.bindings()

    def _ship_assembly_lpms(
        self,
        site_id: int,
        lpms: List[LocalPartialMatch],
        ctx: Optional[_FaultContext],
    ) -> Optional[int]:
        """Ship one site's surviving LPMs to the coordinator, surviving faults.

        A site can die *while shipping* (the bus-level kill of
        :class:`~repro.faults.ShipmentFaultInjector` fires before any byte is
        recorded).  Recoverable: rebuild the site and re-send — the retried
        shipment carries identical bytes, so the ledger matches a clean run;
        the loop survives a plan scheduling several deaths of the same site
        (each recoverable entry fires once, so it terminates).  Unrecoverable:
        mark the site lost and return ``None``; its LPMs never reach the
        join, exactly as if the machine vanished mid-transfer.
        """
        while True:
            try:
                return self.cluster.bus.send(
                    site_id, COORDINATOR, "local_partial_matches", lpms, STAGE_ASSEMBLY
                )
            except SiteDownError as error:
                assert ctx is not None, "shipment faults only occur under a fault plan"
                ctx.site_failures += 1
                if not error.recoverable:
                    ctx.lost_sites.add(site_id)
                    return None
                self._rebuild_site(site_id)
                ctx.site_recoveries += 1


def execute_ablation(
    cluster: Cluster,
    query: SelectQuery,
    query_name: str = "",
    dataset: str = "",
    configs: Optional[List[EngineConfig]] = None,
) -> List[DistributedResult]:
    """Run the same query under several engine configurations (Fig. 9 helper)."""
    from .config import ABLATION_CONFIGS

    chosen = configs if configs is not None else list(ABLATION_CONFIGS)
    results = []
    for config in chosen:
        cluster.reset_network()
        engine = GStoreDEngine(cluster, config)
        try:
            results.append(engine.execute(query, query_name=query_name, dataset=dataset))
        finally:
            engine.close()
    return results
