"""The gStoreD engine: partial evaluation and assembly over a simulated cluster.

:class:`GStoreDEngine` orchestrates the full pipeline of the paper on top of
one :class:`~repro.distributed.Cluster`:

1. *Initialization / candidate exchange* (optional, Algorithm 4): sites
   compress their internal candidate sets into bit vectors, the coordinator
   ORs them and broadcasts the union.
2. *Partial evaluation*: every site enumerates (a) its fragment-local
   complete matches and (b) its local partial matches (Definition 5),
   filtering extended candidates with the stage-1 bit vectors.
3. *LEC feature-based pruning* (optional, Algorithms 1-2): sites compress
   LPMs into LEC features, the coordinator joins the features and reports
   which ones can contribute to a complete match; the sites drop the rest.
4. *Assembly* (Algorithm 3 or the ungrouped join of [18]): the surviving
   LPMs are shipped to the coordinator and joined into crossing matches,
   which are merged with the fragment-local matches.

Star queries are answered purely locally when ``star_shortcut`` is enabled —
every match of a star query is contained in a single fragment because
crossing edges are replicated — which reproduces the zero-cost optimization
rows of the paper's Tables I-III.

Every stage's wall-clock time (per site and for the coordinator) and every
inter-site message is recorded in a :class:`~repro.distributed.QueryStatistics`,
from which the benchmark harness rebuilds the paper's tables.

Execution model: each stage expresses its per-site body as a picklable
:class:`~repro.exec.SiteTask` descriptor (``(site_id, stage, payload)``; the
module-level handlers live in :mod:`repro.core.site_tasks`) and fans the
batch out through an :class:`~repro.exec.ExecutorBackend` —
``EngineConfig.executor`` selects serial, threaded or process execution.
Handlers only touch their own site and their explicit payload; all
shared-state mutation — message-bus sends, statistics accumulation, stage
timing — happens afterwards in a serial merge over the results in
``site_id`` order, so answers and shipment accounting are bit-identical
whatever the backend or worker count.  (Process workers bootstrap their own
copy of every site from serialized fragments; see :mod:`repro.exec.worker`.)
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..distributed.cluster import Cluster
from ..distributed.network import COORDINATOR, StageTimer
from ..distributed.stats import QueryStatistics
from ..exec import ExecutorBackend, SiteTask, SiteTaskResult, make_backend
from ..obs import CATEGORY_PLANNING, StageProfiler, Trace, stage_scope
from ..planner.plan import QueryPlan
from ..sparql.algebra import SelectQuery
from ..sparql.bindings import Binding, ResultSet
from ..sparql.query_graph import QueryGraph
from .assembly import AssemblyOutcome, assemble_matches
from .candidate_exchange import GlobalCandidateFilter, union_site_vectors
from .config import EngineConfig
from .lec import LECFeature
from .partial_match import LocalPartialMatch
from .pruning import prune_features
from .site_tasks import (
    candidate_vector_tasks,
    lec_feature_tasks,
    lec_filter_tasks,
    local_eval_tasks,
    partial_eval_tasks,
)

#: Stage names used consistently in statistics, tables and tests.
STAGE_PLANNING = "planning"
STAGE_CANDIDATES = "candidate_exchange"
STAGE_PARTIAL_EVAL = "partial_evaluation"
STAGE_PRUNING = "lec_pruning"
STAGE_ASSEMBLY = "assembly"


@dataclass
class DistributedResult:
    """A query's solutions plus the execution statistics that produced them."""

    results: ResultSet
    statistics: QueryStatistics

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


class GStoreDEngine:
    """Partial-evaluation-and-assembly SPARQL engine over a simulated cluster."""

    #: This engine natively accepts ``trace``/``profiler`` keyword arguments
    #: on :meth:`execute` (the session layer checks this attribute instead of
    #: guessing from signatures; see :mod:`repro.obs`).
    supports_tracing = True

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[EngineConfig] = None,
        name: Optional[str] = None,
        backend: Optional[ExecutorBackend] = None,
    ) -> None:
        self.cluster = cluster
        self.config = config or EngineConfig.full()
        self.name = name or self.config.label
        #: How per-site stage bodies are scheduled (see :mod:`repro.exec`).
        #: An explicitly injected backend is *shared*: the caller keeps
        #: ownership and :meth:`close` leaves it running (benchmarks reuse
        #: one warm process pool across many engines this way).
        self._owns_backend = backend is None
        self.backend = backend if backend is not None else make_backend(
            self.config.executor, self.config.max_workers
        )
        #: The most recent execution's stage timer (kept for introspection
        #: and so the cluster's weak timer registry has something to clear).
        self.last_timer: Optional[StageTimer] = None
        # Sites plan their local evaluations from their own fragment's
        # statistics; the statistics and plan caches live on the stores, so
        # repeated queries (and repeated engines over the same cluster)
        # reuse them.  A planner-off engine must actively disable them —
        # stores keep planners across engine instances, and an A/B
        # comparison with a planner-on engine would otherwise be
        # contaminated.
        for site in self.cluster:
            if self.config.use_planner:
                site.enable_planner(self.config.plan_cache_size)
            else:
                site.disable_planner()


    def _charge_network(self, stage) -> None:
        """Convert the stage's shipped bytes/messages into modelled transfer time."""
        stage.network_time_s = self.cluster.network.transfer_time(stage.shipped_bytes, stage.messages)

    def _site_ids(self) -> List[int]:
        """The cluster's site ids in ascending order (the fan-out order)."""
        return sorted(self.cluster.site_ids)

    def _site_options(self) -> Dict[str, object]:
        """Worker-side knobs for process pools (mirrors the sites' planner setup)."""
        return {
            "use_planner": self.config.use_planner,
            "plan_cache_size": self.config.plan_cache_size,
        }

    def _run_site_tasks(
        self,
        tasks: Sequence[SiteTask],
        timer: StageTimer,
        stage_name: str,
        trace: Optional[Trace] = None,
    ) -> List[SiteTaskResult]:
        """Fan the task batch out and record each site's measured time.

        Results come back in submission order (the builders emit tasks in
        ascending ``site_id`` order), so the callers' merges stay
        deterministic; the handler-measured wall-clock of each task is folded
        into the shared timer here, in the serial merge, never by the tasks
        themselves.  When tracing, the current (stage) span's context is
        stamped onto every task before the fan-out, and the worker-measured
        task spans are folded back into the trace — also here, serially.
        """
        if trace is not None:
            context = trace.current_context()
            tasks = [replace(task, trace=context) for task in tasks]
        results = self.backend.map_site_tasks(tasks, self.cluster, self._site_options())
        for result in results:
            timer.record(stage_name, result.site_id, result.elapsed_s)
            if trace is not None and result.span is not None:
                trace.add_task_span(result.span)
        return results

    def close(self) -> None:
        """Release the execution backend's worker resources (owned backends only)."""
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "GStoreDEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(
        self,
        query: SelectQuery,
        query_name: str = "",
        dataset: str = "",
        *,
        trace: Optional[Trace] = None,
        profiler: Optional[StageProfiler] = None,
    ) -> DistributedResult:
        """Run ``query`` through the full distributed pipeline.

        ``trace``/``profiler`` are optional observability hooks (see
        :mod:`repro.obs`): when set, every stage opens a span (with per-site
        task spans reassembled from the backend fan-out) and/or a per-stage
        ``cProfile`` capture.  Both default to off and change nothing about
        evaluation — answers, ``search_steps`` and shipment accounting are
        bit-identical with or without them.
        """
        stats = QueryStatistics(
            query_name=query_name,
            engine=self.name,
            dataset=dataset,
            partitioning=self.cluster.partitioned_graph.strategy,
        )
        query_graph = QueryGraph(query.bgp)
        timer = StageTimer()
        # The engine keeps its most recent timer alive and registers it with
        # the cluster (weakly) so `Cluster.reset_network()` can clear stale
        # totals between back-to-back benchmark runs.
        self.last_timer = timer
        self.cluster.track_timer(timer)
        if self.backend.name != "serial":
            # Only non-default backends annotate the statistics — the serial
            # reference must reproduce the paper's table layouts unchanged
            # (extra keys become columns via QueryStatistics.as_row()).
            stats.extra["executor"] = self.backend.name
            stats.extra["max_workers"] = self.backend.max_workers
        if self.config.use_planner:
            # Keep the stage present (and first) even on the star path,
            # where the coordinator never plans — its zero-cost row mirrors
            # how the star shortcut zeroes the other optimization stages.
            stats.stage(STAGE_PLANNING)

        if self.config.star_shortcut and query_graph.is_star():
            bindings = self._evaluate_star(query, timer, stats, trace, profiler)
        else:
            plan = self._plan_query(query_graph, timer, stats, trace, profiler)
            bindings = self._evaluate_general(
                query, query_graph, plan, timer, stats, trace, profiler
            )

        results = ResultSet(bindings, query.variables)
        projected = results.project(query.effective_projection, distinct=True)
        limited = projected.limit(query.limit)
        stats.num_results = len(limited)
        stats.extra["query_shape"] = query_graph.classify_shape()
        stats.extra["selective"] = query_graph.has_selective_pattern()
        return DistributedResult(limited, stats)

    # ------------------------------------------------------------------
    # Stage 0: cost-based planning
    # ------------------------------------------------------------------
    def _plan_query(
        self,
        query_graph: QueryGraph,
        timer: StageTimer,
        stats: QueryStatistics,
        trace: Optional[Trace] = None,
        profiler: Optional[StageProfiler] = None,
    ) -> Optional[QueryPlan]:
        """Plan the query on the coordinator and record the planning stage.

        The coordinator plans over the cluster-wide aggregated statistics;
        its plan drives the partial-evaluation edge order.  The sites'
        matchers additionally plan their fragment-local work with their own
        (already enabled) planners.
        """
        if not self.config.use_planner:
            return None
        stage = stats.stage(STAGE_PLANNING)
        planner = self.cluster.coordinator_planner(self.config.plan_cache_size)
        hits_before = planner.cache.hits
        span_cm = (
            trace.span("plan", CATEGORY_PLANNING) if trace is not None else nullcontext()
        )
        profile_cm = (
            profiler.capture(STAGE_PLANNING) if profiler is not None else nullcontext()
        )
        with profile_cm, span_cm as span:
            with timer.measure(STAGE_PLANNING, COORDINATOR):
                plan = planner.plan_for(query_graph)
            cache_hit = planner.cache.hits > hits_before
            if span is not None:
                trace.event("plan_cache", CATEGORY_PLANNING, hit=cache_hit)
                span.set(
                    source=plan.source,
                    estimated_cost=round(plan.estimated_cost, 1),
                    cache_hit=cache_hit,
                )
        stage.coordinator_time_s += timer.elapsed(STAGE_PLANNING, COORDINATOR)
        stage.add_counter("plan_cache_hit", 1 if cache_hit else 0)
        stage.add_counter("planned_vertices", len(plan))
        stats.extra["plan_source"] = plan.source
        stats.extra["plan_estimated_cost"] = round(plan.estimated_cost, 1)
        stats.extra["plan_cache_hit_rate"] = round(planner.cache.hit_rate, 3)
        return plan

    # ------------------------------------------------------------------
    # Star shortcut
    # ------------------------------------------------------------------
    def _evaluate_star(
        self,
        query: SelectQuery,
        timer: StageTimer,
        stats: QueryStatistics,
        trace: Optional[Trace] = None,
        profiler: Optional[StageProfiler] = None,
    ) -> List[Binding]:
        """Evaluate a star query purely locally at every site."""
        stage = stats.stage(STAGE_PARTIAL_EVAL)
        tasks = local_eval_tasks(self._site_ids(), query)
        all_bindings: List[Binding] = []
        with stage_scope(trace, profiler, STAGE_PARTIAL_EVAL, star_shortcut=True) as span:
            for result in self._run_site_tasks(tasks, timer, STAGE_PARTIAL_EVAL, trace):
                outcome = result.value
                shipped = self.cluster.bus.send(
                    result.site_id,
                    COORDINATOR,
                    "local_matches",
                    outcome.matches,
                    STAGE_PARTIAL_EVAL,
                )
                stage.shipped_bytes += shipped
                stage.messages += 1
                all_bindings.extend(outcome.matches)
                stats.work["search_steps"] = (
                    stats.work.get("search_steps", 0) + outcome.search_steps
                )
            if span is not None:
                span.set(shipped_bytes=stage.shipped_bytes, messages=stage.messages)
        stage.site_times_s.update(timer.site_times(STAGE_PARTIAL_EVAL))
        self._charge_network(stage)
        stage.add_counter("local_matches", len(all_bindings))
        stage.add_counter("local_partial_matches", 0)
        # Keep the optimization stages present (at zero cost) so the table
        # rows show the same zeros as the paper does for star queries.
        stats.stage(STAGE_CANDIDATES)
        stats.stage(STAGE_PRUNING)
        stats.stage(STAGE_ASSEMBLY).add_counter("crossing_matches", 0)
        return all_bindings

    # ------------------------------------------------------------------
    # General pipeline
    # ------------------------------------------------------------------
    def _evaluate_general(
        self,
        query: SelectQuery,
        query_graph: QueryGraph,
        plan: Optional[QueryPlan],
        timer: StageTimer,
        stats: QueryStatistics,
        trace: Optional[Trace] = None,
        profiler: Optional[StageProfiler] = None,
    ) -> List[Binding]:
        candidate_filter = self._candidate_exchange(
            query_graph, timer, stats, trace, profiler
        )
        local_bindings, lpms_by_site = self._partial_evaluation(
            query, query_graph, plan, candidate_filter, timer, stats, trace, profiler
        )
        surviving_by_site = self._lec_pruning(
            query_graph, lpms_by_site, timer, stats, trace, profiler
        )
        crossing_bindings = self._assembly(
            query_graph, surviving_by_site, timer, stats, trace, profiler
        )
        return local_bindings + crossing_bindings

    # -- Stage 1: Algorithm 4 -------------------------------------------------
    def _candidate_exchange(
        self,
        query_graph: QueryGraph,
        timer: StageTimer,
        stats: QueryStatistics,
        trace: Optional[Trace] = None,
        profiler: Optional[StageProfiler] = None,
    ) -> Optional[GlobalCandidateFilter]:
        stage = stats.stage(STAGE_CANDIDATES)
        if not self.config.use_candidate_exchange:
            return None
        tasks = candidate_vector_tasks(self._site_ids(), query_graph, self.config.bit_vector_bits)
        per_site_vectors = []
        internal_candidate_total = 0
        with stage_scope(trace, profiler, STAGE_CANDIDATES) as span:
            for result in self._run_site_tasks(tasks, timer, STAGE_CANDIDATES, trace):
                internal_candidate_total += result.value.internal_candidates
                vectors = result.value.vectors
                per_site_vectors.append(vectors)
                shipped = self.cluster.bus.send(
                    result.site_id, COORDINATOR, "candidate_vectors", list(vectors.values()), STAGE_CANDIDATES
                )
                stage.shipped_bytes += shipped
                stage.messages += 1
            with timer.measure(STAGE_CANDIDATES, COORDINATOR):
                global_filter = union_site_vectors(per_site_vectors, self.config.bit_vector_bits)
            shipped = self.cluster.bus.broadcast(
                COORDINATOR, self.cluster.site_ids, "global_candidate_filter", global_filter, STAGE_CANDIDATES
            )
            stage.shipped_bytes += shipped
            stage.messages += self.cluster.num_sites
            if span is not None:
                span.set(shipped_bytes=stage.shipped_bytes, messages=stage.messages)
        stage.site_times_s.update(timer.site_times(STAGE_CANDIDATES))
        stage.coordinator_time_s += timer.elapsed(STAGE_CANDIDATES, COORDINATOR)
        self._charge_network(stage)
        stage.add_counter("internal_candidates", internal_candidate_total)
        stage.add_counter("variables", len(global_filter))
        return global_filter

    # -- Stage 2: partial evaluation -------------------------------------------
    def _partial_evaluation(
        self,
        query: SelectQuery,
        query_graph: QueryGraph,
        plan: Optional[QueryPlan],
        candidate_filter: Optional[GlobalCandidateFilter],
        timer: StageTimer,
        stats: QueryStatistics,
        trace: Optional[Trace] = None,
        profiler: Optional[StageProfiler] = None,
    ) -> Tuple[List[Binding], Dict[int, List[LocalPartialMatch]]]:
        stage = stats.stage(STAGE_PARTIAL_EVAL)
        edge_order = plan.edge_order if plan is not None else None
        tasks = partial_eval_tasks(
            self._site_ids(),
            query,
            query_graph,
            edge_order,
            candidate_filter,
            self.config.paranoid_validation,
        )
        local_bindings: List[Binding] = []
        lpms_by_site: Dict[int, List[LocalPartialMatch]] = {}
        filtered_branches = 0
        with stage_scope(trace, profiler, STAGE_PARTIAL_EVAL) as span:
            for result in self._run_site_tasks(tasks, timer, STAGE_PARTIAL_EVAL, trace):
                outcome = result.value
                local_bindings.extend(outcome.local_matches)
                lpms_by_site[result.site_id] = outcome.local_partial_matches
                filtered_branches += outcome.branches_pruned_by_filter
                stats.work["search_steps"] = (
                    stats.work.get("search_steps", 0) + outcome.search_steps
                )
                shipped = self.cluster.bus.send(
                    result.site_id, COORDINATOR, "local_matches", outcome.local_matches, STAGE_PARTIAL_EVAL
                )
                stage.shipped_bytes += shipped
                stage.messages += 1
            if span is not None:
                span.set(shipped_bytes=stage.shipped_bytes, messages=stage.messages)
        stage.site_times_s.update(timer.site_times(STAGE_PARTIAL_EVAL))
        self._charge_network(stage)
        stage.add_counter("local_matches", len(local_bindings))
        stage.add_counter(
            "local_partial_matches", sum(len(lpms) for lpms in lpms_by_site.values())
        )
        stage.add_counter("filtered_extended_candidates", filtered_branches)
        return local_bindings, lpms_by_site

    # -- Stage 3: Algorithms 1-2 ------------------------------------------------
    def _lec_pruning(
        self,
        query_graph: QueryGraph,
        lpms_by_site: Dict[int, List[LocalPartialMatch]],
        timer: StageTimer,
        stats: QueryStatistics,
        trace: Optional[Trace] = None,
        profiler: Optional[StageProfiler] = None,
    ) -> Dict[int, List[LocalPartialMatch]]:
        stage = stats.stage(STAGE_PRUNING)
        if not self.config.use_lec_pruning:
            return lpms_by_site

        classes_by_site: Dict[int, Dict[LECFeature, List[LocalPartialMatch]]] = {}
        features_by_site: Dict[int, List[LECFeature]] = {}
        surviving_by_site: Dict[int, List[LocalPartialMatch]] = {}
        with stage_scope(trace, profiler, STAGE_PRUNING) as span:
            for result in self._run_site_tasks(
                lec_feature_tasks(lpms_by_site), timer, STAGE_PRUNING, trace
            ):
                classes = result.value
                classes_by_site[result.site_id] = classes
                features_by_site[result.site_id] = list(classes)
                shipped = self.cluster.bus.send(
                    result.site_id, COORDINATOR, "lec_features", list(classes), STAGE_PRUNING
                )
                stage.shipped_bytes += shipped
                stage.messages += 1
            with timer.measure(STAGE_PRUNING, COORDINATOR):
                outcome, surviving_features = prune_features(query_graph, features_by_site)
            for site_id in lpms_by_site:
                shipped = self.cluster.bus.send(
                    COORDINATOR, site_id, "surviving_features", list(surviving_features[site_id]), STAGE_PRUNING
                )
                stage.shipped_bytes += shipped
                stage.messages += 1

            filter_tasks = lec_filter_tasks(classes_by_site, surviving_features)
            for result in self._run_site_tasks(filter_tasks, timer, STAGE_PRUNING, trace):
                surviving_by_site[result.site_id] = result.value
            if span is not None:
                span.set(shipped_bytes=stage.shipped_bytes, messages=stage.messages)
        stage.site_times_s.update(timer.site_times(STAGE_PRUNING))
        stage.coordinator_time_s += timer.elapsed(STAGE_PRUNING, COORDINATOR)
        self._charge_network(stage)
        stage.add_counter("lec_features", outcome.total_features)
        stage.add_counter("lec_feature_groups", outcome.groups)
        stage.add_counter("surviving_features", len(outcome.surviving))
        stage.add_counter(
            "pruned_local_partial_matches",
            sum(len(lpms) for lpms in lpms_by_site.values())
            - sum(len(lpms) for lpms in surviving_by_site.values()),
        )
        return surviving_by_site

    # -- Stage 4: assembly --------------------------------------------------------
    def _assembly(
        self,
        query_graph: QueryGraph,
        lpms_by_site: Dict[int, List[LocalPartialMatch]],
        timer: StageTimer,
        stats: QueryStatistics,
        trace: Optional[Trace] = None,
        profiler: Optional[StageProfiler] = None,
    ) -> List[Binding]:
        stage = stats.stage(STAGE_ASSEMBLY)
        all_lpms: List[LocalPartialMatch] = []
        with stage_scope(trace, profiler, STAGE_ASSEMBLY) as span:
            for site_id, lpms in lpms_by_site.items():
                shipped = self.cluster.bus.send(
                    site_id, COORDINATOR, "local_partial_matches", lpms, STAGE_ASSEMBLY
                )
                stage.shipped_bytes += shipped
                stage.messages += 1
                all_lpms.extend(lpms)
            with timer.measure(STAGE_ASSEMBLY, COORDINATOR):
                outcome = assemble_matches(query_graph, all_lpms, use_lec_grouping=self.config.use_lec_assembly)
            if span is not None:
                span.set(shipped_bytes=stage.shipped_bytes, messages=stage.messages)
        stage.coordinator_time_s += timer.elapsed(STAGE_ASSEMBLY, COORDINATOR)
        self._charge_network(stage)
        stage.add_counter("assembled_local_partial_matches", len(all_lpms))
        stage.add_counter("crossing_matches", outcome.num_matches)
        stage.add_counter("join_attempts", outcome.join_attempts)
        stage.add_counter("lpm_groups", outcome.groups)
        return outcome.bindings()


def execute_ablation(
    cluster: Cluster,
    query: SelectQuery,
    query_name: str = "",
    dataset: str = "",
    configs: Optional[List[EngineConfig]] = None,
) -> List[DistributedResult]:
    """Run the same query under several engine configurations (Fig. 9 helper)."""
    from .config import ABLATION_CONFIGS

    chosen = configs if configs is not None else list(ABLATION_CONFIGS)
    results = []
    for config in chosen:
        cluster.reset_network()
        engine = GStoreDEngine(cluster, config)
        try:
            results.append(engine.execute(query, query_name=query_name, dataset=dataset))
        finally:
            engine.close()
    return results
