"""Engine configuration and optimization levels.

The paper's ablation (Fig. 9) compares four configurations of the same
engine:

* ``gStoreD-Basic`` — partial evaluation + the ungrouped join of [18];
* ``gStoreD-LA``    — + LEC feature-based assembly (Algorithm 3);
* ``gStoreD-LO``    — + LEC feature-based pruning (Algorithms 1-2);
* ``gStoreD``       — + assembling variables' internal candidates (Algorithm 4).

:class:`EngineConfig` captures the three independent switches plus a couple
of knobs (bit-vector width, star-query shortcut) and provides named
constructors for the four paper configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, Optional

from ..planner.plan_cache import DEFAULT_PLAN_CACHE_SIZE
from .candidate_exchange import DEFAULT_BIT_VECTOR_BITS


class OptimizationLevel(str, Enum):
    """The four configurations evaluated in the paper's Fig. 9."""

    BASIC = "basic"
    LA = "la"
    LO = "lo"
    FULL = "full"


@dataclass(frozen=True)
class EngineConfig:
    """Switches controlling which of the paper's optimizations are active."""

    #: Use the LEC feature-based assembly (Algorithm 3) instead of the
    #: ungrouped join of [18].
    use_lec_assembly: bool = True
    #: Run LEC feature-based pruning (Algorithms 1-2) before assembly.
    use_lec_pruning: bool = True
    #: Run the candidate bit-vector exchange (Algorithm 4) before partial
    #: evaluation.
    use_candidate_exchange: bool = True
    #: Evaluate star queries purely locally (the paper's observation that
    #: every result of a star query lies within a single fragment).
    star_shortcut: bool = True
    #: Width of the candidate bit vectors, in bits.
    bit_vector_bits: int = DEFAULT_BIT_VECTOR_BITS
    #: Re-validate every enumerated local partial match against Definition 5
    #: (slow; meant for tests and debugging).
    paranoid_validation: bool = False
    #: Use the statistics-driven cost-based planner (:mod:`repro.planner`)
    #: to order local matching and partial evaluation.  Orthogonal to the
    #: paper's three optimizations: it changes how the search space is
    #: walked, never which results exist, so it is on at every level (and in
    #: particular in :meth:`full`).
    use_planner: bool = True
    #: Maximum number of cached plans per planner (coordinator and sites).
    plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE
    #: Execution backend for the per-site stage fan-out (:mod:`repro.exec`):
    #: ``"serial"``, ``"threads"`` or ``"processes"``.  ``None`` resolves
    #: from $REPRO_EXECUTOR and defaults to serial, the reference behavior.
    #: Like the planner this is orthogonal to the paper's optimizations:
    #: results and shipment accounting are bit-identical under every backend.
    executor: Optional[str] = None
    #: Workers for the ``"threads"`` / ``"processes"`` backends; ``None``
    #: resolves from $REPRO_MAX_WORKERS and defaults to the CPU count.
    max_workers: Optional[int] = None
    #: Intra-site sharding: split each site's star-shortcut local evaluation
    #: into this many depth-0 frontier shards, fanned out as independent
    #: site tasks (``K`` tasks per site) that the coordinator reassembles in
    #: shard order.  Purely a scheduling knob, like ``executor``: answers,
    #: ``search_steps`` and shipment accounting are bit-identical for every
    #: value, so small fragments of a skewed partitioning can still occupy
    #: the whole worker pool.
    shards_per_site: int = 1

    # ------------------------------------------------------------------
    # Named configurations
    # ------------------------------------------------------------------
    @classmethod
    def basic(cls) -> "EngineConfig":
        return cls(use_lec_assembly=False, use_lec_pruning=False, use_candidate_exchange=False)

    @classmethod
    def lec_assembly_only(cls) -> "EngineConfig":
        return cls(use_lec_assembly=True, use_lec_pruning=False, use_candidate_exchange=False)

    @classmethod
    def lec_optimized(cls) -> "EngineConfig":
        return cls(use_lec_assembly=True, use_lec_pruning=True, use_candidate_exchange=False)

    @classmethod
    def full(cls) -> "EngineConfig":
        return cls(use_lec_assembly=True, use_lec_pruning=True, use_candidate_exchange=True)

    @classmethod
    def for_level(cls, level: OptimizationLevel) -> "EngineConfig":
        factories = {
            OptimizationLevel.BASIC: cls.basic,
            OptimizationLevel.LA: cls.lec_assembly_only,
            OptimizationLevel.LO: cls.lec_optimized,
            OptimizationLevel.FULL: cls.full,
        }
        return factories[level]()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def level(self) -> OptimizationLevel:
        """The closest named level for reporting purposes."""
        if self.use_candidate_exchange and self.use_lec_pruning and self.use_lec_assembly:
            return OptimizationLevel.FULL
        if self.use_lec_pruning and self.use_lec_assembly:
            return OptimizationLevel.LO
        if self.use_lec_assembly:
            return OptimizationLevel.LA
        return OptimizationLevel.BASIC

    @property
    def label(self) -> str:
        """The gStoreD-style label used in the paper's figures."""
        return {
            OptimizationLevel.BASIC: "gStoreD-Basic",
            OptimizationLevel.LA: "gStoreD-LA",
            OptimizationLevel.LO: "gStoreD-LO",
            OptimizationLevel.FULL: "gStoreD",
        }[self.level]

    def with_options(self, **changes) -> "EngineConfig":
        """A copy of this configuration with the given fields replaced."""
        return replace(self, **changes)

    def with_workers(self, max_workers: int, executor: str = "threads") -> "EngineConfig":
        """A copy running the per-site fan-out on ``max_workers`` threads
        (or on the given backend, e.g. ``executor="processes"``)."""
        return replace(self, executor=executor, max_workers=max_workers)

    def with_executor(self, executor: str, max_workers: Optional[int] = None) -> "EngineConfig":
        """A copy using the named execution backend for the per-site fan-out.

        ``max_workers=None`` keeps the backend's own default resolution
        ($REPRO_MAX_WORKERS, then the CPU count).
        """
        return replace(self, executor=executor, max_workers=max_workers)

    def describe(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "lec_assembly": self.use_lec_assembly,
            "lec_pruning": self.use_lec_pruning,
            "candidate_exchange": self.use_candidate_exchange,
            "star_shortcut": self.star_shortcut,
            "bit_vector_bits": self.bit_vector_bits,
            "planner": self.use_planner,
            "plan_cache_size": self.plan_cache_size,
            "executor": self.executor or "auto",
            "max_workers": self.max_workers or "auto",
            "shards_per_site": self.shards_per_site,
        }


#: All four paper configurations, in the order Fig. 9 plots them.
ABLATION_CONFIGS = (
    EngineConfig.basic(),
    EngineConfig.lec_assembly_only(),
    EngineConfig.lec_optimized(),
    EngineConfig.full(),
)
