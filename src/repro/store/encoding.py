"""Dictionary encoding: the integer substrate of the matching kernel.

Real RDF stores (S2RDF, gStore) dictionary-encode terms into dense integer
ids so that the join/matching kernel runs on machine integers instead of
term objects.  This module is that layer for the reproduction:

* :class:`TermDictionary` maps every term of one graph (vertices *and*
  predicates) to a dense id.  Ids are assigned in the total order
  ``(type name, n3 text)`` — exactly the order the matcher has always used
  to sort candidate pools — so **sorting ids is sorting candidates**: the
  backtracking search stays bit-for-bit deterministic (same answers, same
  ``search_steps``) while every per-step ``node.n3()`` sort disappears.
* :class:`EncodedGraph` holds the integer permutation indexes
  (``spo``: s→p→{o}, ``pos``: p→o→{s}, ``osp``: o→s→{p}) plus per-vertex
  neighbour sets, giving the matcher O(1) set-membership edge probes.
* :func:`encoded_view` caches one :class:`EncodedGraph` per graph, keyed on
  :attr:`~repro.rdf.graph.RDFGraph.version`, so the encoding is built
  lazily, reused across queries, and rebuilt only after a mutation —
  the same lifecycle as the signature index and planner statistics.

Decoding happens only at result boundaries (bindings, candidate sets handed
to the distributed layers); everything inside the kernel is ints.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..rdf.graph import RDFGraph
from ..rdf.terms import Node, Term

#: Predicate code of a query edge whose predicate is a variable ("any label").
PREDICATE_ANY = -1
#: Predicate code of a constant query predicate that cannot match any data
#: edge (the IRI is absent from the graph, or the term is not an IRI at all).
PREDICATE_ABSENT = -2

_EMPTY_DICT: Dict[int, Set[int]] = {}
_EMPTY_SET: Set[int] = set()

#: Attribute under which :func:`encoded_view` caches the per-graph encoding.
_CACHE_ATTRIBUTE = "_repro_encoded_view"


def term_sort_key(term: Term) -> Tuple[str, str]:
    """The canonical total order on terms: by type name, then surface syntax.

    This is the order the object-path matcher sorted candidate pools with;
    the dictionary assigns ids in this order, which is what makes integer
    order and candidate order the same thing.
    """
    return (type(term).__name__, term.n3())


class TermDictionary:
    """A bidirectional Node ↔ dense-int-id mapping for one graph.

    Ids are dense (``0..len-1``) and assigned in :func:`term_sort_key` order
    over *all* terms of the graph — vertices and predicates alike — so any
    subset of ids sorts exactly like the corresponding terms.
    """

    __slots__ = ("_ids", "_terms", "_n3")

    def __init__(self, terms: Iterable[Term]) -> None:
        decorated = sorted((term_sort_key(term), term) for term in set(terms))
        self._terms: List[Term] = [term for _, term in decorated]
        self._n3: List[str] = [key[1] for key, _ in decorated]
        self._ids: Dict[Term, int] = {
            term: position for position, term in enumerate(self._terms)
        }

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: Term) -> bool:
        return term in self._ids

    def id_of(self, term: Term) -> int:
        """The id of ``term``; raises ``KeyError`` for unknown terms."""
        return self._ids[term]

    def get(self, term: Term) -> Optional[int]:
        """The id of ``term``, or ``None`` when the graph never saw it."""
        return self._ids.get(term)

    def term_of(self, term_id: int) -> Term:
        """The term behind ``term_id`` (dense ids make this a list lookup)."""
        return self._terms[term_id]

    def n3_of(self, term_id: int) -> str:
        """The (precomputed) N3 text of ``term_id`` — no re-serialization."""
        return self._n3[term_id]

    def encode_nodes(self, nodes: Iterable[Node]) -> Set[int]:
        """Ids of ``nodes``, silently dropping terms unknown to the graph."""
        ids = self._ids
        return {ids[node] for node in nodes if node in ids}

    def decode_ids(self, ids: Iterable[int]) -> Set[Node]:
        """The terms behind ``ids`` as a set of nodes."""
        terms = self._terms
        return {terms[term_id] for term_id in ids}


class EncodedGraph:
    """Integer adjacency indexes over one :class:`~repro.rdf.graph.RDFGraph`.

    All probes the matching kernel performs — "does edge (s, p, o) exist",
    "which subjects reach object o via p", "which objects does s reach via
    p" — are O(1) dictionary/set lookups here, against ids from
    :attr:`dictionary`.
    """

    __slots__ = (
        "dictionary",
        "_spo",
        "_pos",
        "_osp",
        "_out_nbrs",
        "_in_nbrs",
        "_p_subjects",
        "_p_objects",
        "_all_subjects",
        "_all_objects",
        "_vertex_ids",
        "_sorted_vertex_ids",
        "_num_triples",
    )

    def __init__(self, graph: RDFGraph) -> None:
        terms: Set[Term] = set()
        for triple in graph:
            terms.add(triple.subject)
            terms.add(triple.predicate)
            terms.add(triple.object)
        self.dictionary = TermDictionary(terms)
        id_of = self.dictionary.id_of
        spo: Dict[int, Dict[int, Set[int]]] = {}
        pos: Dict[int, Dict[int, Set[int]]] = {}
        osp: Dict[int, Dict[int, Set[int]]] = {}
        out_nbrs: Dict[int, Set[int]] = {}
        in_nbrs: Dict[int, Set[int]] = {}
        p_subjects: Dict[int, Set[int]] = {}
        p_objects: Dict[int, Set[int]] = {}
        for triple in graph:
            s, p, o = id_of(triple.subject), id_of(triple.predicate), id_of(triple.object)
            spo.setdefault(s, {}).setdefault(p, set()).add(o)
            pos.setdefault(p, {}).setdefault(o, set()).add(s)
            osp.setdefault(o, {}).setdefault(s, set()).add(p)
            out_nbrs.setdefault(s, set()).add(o)
            in_nbrs.setdefault(o, set()).add(s)
            p_subjects.setdefault(p, set()).add(s)
            p_objects.setdefault(p, set()).add(o)
        self._spo = spo
        self._pos = pos
        self._osp = osp
        self._out_nbrs = out_nbrs
        self._in_nbrs = in_nbrs
        self._p_subjects = p_subjects
        self._p_objects = p_objects
        self._all_subjects: Set[int] = set(out_nbrs)
        self._all_objects: Set[int] = set(in_nbrs)
        self._vertex_ids: Set[int] = self._all_subjects | self._all_objects
        # Ids are assigned in candidate-sort order, so this is the "all
        # vertices" candidate pool, pre-sorted once at encode time.
        self._sorted_vertex_ids: Tuple[int, ...] = tuple(sorted(self._vertex_ids))
        self._num_triples = len(graph)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_triples(self) -> int:
        return self._num_triples

    @property
    def vertex_ids(self) -> Set[int]:
        """Ids of every subject/object vertex (predicates excluded)."""
        return self._vertex_ids

    @property
    def sorted_vertex_ids(self) -> Tuple[int, ...]:
        """All vertex ids in canonical (= candidate sort) order."""
        return self._sorted_vertex_ids

    def is_vertex(self, term_id: int) -> bool:
        """Is ``term_id`` a subject or object of some triple?"""
        return term_id in self._vertex_ids

    def iter_triple_ids(self) -> Iterator[Tuple[int, int, int]]:
        """Every triple as an ``(s, p, o)`` id tuple (index order, not sorted)."""
        for s, by_predicate in self._spo.items():
            for p, objects in by_predicate.items():
                for o in objects:
                    yield (s, p, o)

    # ------------------------------------------------------------------
    # Kernel probes (all O(1) dictionary/set lookups)
    # ------------------------------------------------------------------
    def has_edge(self, subject_id: int, predicate_code: int, object_id: int) -> bool:
        """Does the data edge exist?  ``predicate_code`` may be a sentinel.

        :data:`PREDICATE_ANY` matches any label (variable query predicate);
        :data:`PREDICATE_ABSENT` matches nothing.
        """
        if predicate_code >= 0:
            return object_id in self._spo.get(subject_id, _EMPTY_DICT).get(
                predicate_code, _EMPTY_SET
            )
        if predicate_code == PREDICATE_ANY:
            return subject_id in self._osp.get(object_id, _EMPTY_DICT)
        return False

    def subjects_to(self, predicate_code: int, object_id: int) -> Set[int]:
        """Ids of subjects with an edge labelled ``predicate_code`` into ``object_id``."""
        if predicate_code >= 0:
            return self._pos.get(predicate_code, _EMPTY_DICT).get(object_id, _EMPTY_SET)
        if predicate_code == PREDICATE_ANY:
            return self._in_nbrs.get(object_id, _EMPTY_SET)
        return _EMPTY_SET

    def objects_from(self, subject_id: int, predicate_code: int) -> Set[int]:
        """Ids of objects reached from ``subject_id`` via ``predicate_code``."""
        if predicate_code >= 0:
            return self._spo.get(subject_id, _EMPTY_DICT).get(predicate_code, _EMPTY_SET)
        if predicate_code == PREDICATE_ANY:
            return self._out_nbrs.get(subject_id, _EMPTY_SET)
        return _EMPTY_SET

    def subjects_of_predicate(self, predicate_code: int) -> Set[int]:
        """Ids of all subjects of edges labelled ``predicate_code``."""
        if predicate_code >= 0:
            return self._p_subjects.get(predicate_code, _EMPTY_SET)
        if predicate_code == PREDICATE_ANY:
            return self._all_subjects
        return _EMPTY_SET

    def objects_of_predicate(self, predicate_code: int) -> Set[int]:
        """Ids of all objects of edges labelled ``predicate_code``."""
        if predicate_code >= 0:
            return self._p_objects.get(predicate_code, _EMPTY_SET)
        if predicate_code == PREDICATE_ANY:
            return self._all_objects
        return _EMPTY_SET

    def has_out_edge(self, subject_id: int, predicate_code: int) -> bool:
        """Does ``subject_id`` have any outgoing edge labelled ``predicate_code``?"""
        if predicate_code >= 0:
            return predicate_code in self._spo.get(subject_id, _EMPTY_DICT)
        if predicate_code == PREDICATE_ANY:
            return subject_id in self._out_nbrs
        return False

    def has_in_edge(self, object_id: int, predicate_code: int) -> bool:
        """Does ``object_id`` have any incoming edge labelled ``predicate_code``?"""
        if predicate_code >= 0:
            return object_id in self._pos.get(predicate_code, _EMPTY_DICT)
        if predicate_code == PREDICATE_ANY:
            return object_id in self._in_nbrs
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<EncodedGraph terms={len(self.dictionary)} "
            f"vertices={len(self._vertex_ids)} triples={self._num_triples}>"
        )


#: Process-local count of :class:`EncodedGraph` constructions performed by
#: :func:`encoded_view` (cache misses + version-invalidated rebuilds).  The
#: observability layer exposes it as the ``repro_encoded_graph_rebuilds``
#: gauge; a count that climbs query-over-query means graphs are being
#: mutated (or recreated) between queries and the encoding cache is cold.
_REBUILDS = 0
_REBUILDS_LOCK = threading.Lock()

#: Serializes cache-miss rebuilds in :func:`encoded_view`: two queries
#: hitting a cold graph concurrently must share one build (and count one
#: rebuild), not race to construct two.  Builds are rare — one per graph
#: version — so a single global lock costs nothing measurable.
_BUILD_LOCK = threading.Lock()


def encoded_rebuilds() -> int:
    """How many ``EncodedGraph`` builds this process has performed so far.

    Only this process: sites bootstrapped inside process-pool workers build
    their encodings in the worker, where the coordinator's counter cannot
    see them.
    """
    with _REBUILDS_LOCK:
        return _REBUILDS


def encoded_view(graph: RDFGraph) -> EncodedGraph:
    """The (cached) dictionary-encoded view of ``graph``.

    Built lazily on first use, cached on the graph object, and rebuilt when
    the graph's :attr:`~repro.rdf.graph.RDFGraph.version` moves — i.e. the
    encoding is invalidated by mutation exactly like the signature index and
    the planner statistics, but revalidation is a version compare, not an
    eager rebuild.
    """
    cached = getattr(graph, _CACHE_ATTRIBUTE, None)
    if cached is not None and cached[0] == graph.version:
        return cached[1]
    with _BUILD_LOCK:
        cached = getattr(graph, _CACHE_ATTRIBUTE, None)
        if cached is not None and cached[0] == graph.version:
            return cached[1]
        encoded = EncodedGraph(graph)
        setattr(graph, _CACHE_ATTRIBUTE, (graph.version, encoded))
        global _REBUILDS
        with _REBUILDS_LOCK:
            _REBUILDS += 1
        return encoded
