"""Dictionary encoding: the integer substrate of the matching kernel.

Real RDF stores (S2RDF, gStore) dictionary-encode terms into dense integer
ids so that the join/matching kernel runs on machine integers instead of
term objects.  This module is that layer for the reproduction:

* :class:`TermDictionary` maps every term of one graph (vertices *and*
  predicates) to a dense id.  Ids are assigned in the total order
  ``(type name, n3 text)`` — exactly the order the matcher has always used
  to sort candidate pools — so **sorting ids is sorting candidates**: the
  backtracking search stays bit-for-bit deterministic (same answers, same
  ``search_steps``) while every per-step ``node.n3()`` sort disappears.
* :class:`EncodedGraph` holds the integer permutation indexes
  (``spo``: s→p→{o}, ``pos``: p→o→{s}, ``osp``: o→s→{p}) plus per-vertex
  neighbour sets, giving the matcher O(1) set-membership edge probes.
* :func:`encoded_view` caches one :class:`EncodedGraph` per graph, keyed on
  :attr:`~repro.rdf.graph.RDFGraph.version`, so the encoding is built
  lazily, reused across queries, and rebuilt only after a mutation —
  the same lifecycle as the signature index and planner statistics.

Decoding happens only at result boundaries (bindings, candidate sets handed
to the distributed layers); everything inside the kernel is ints.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..rdf.graph import RDFGraph
from ..rdf.terms import IRI, Node, PatternTerm, Term, Variable
from ..rdf.triples import Triple

#: Predicate code of a query edge whose predicate is a variable ("any label").
PREDICATE_ANY = -1
#: Predicate code of a constant query predicate that cannot match any data
#: edge (the IRI is absent from the graph, or the term is not an IRI at all).
PREDICATE_ABSENT = -2

_EMPTY_DICT: Dict[int, Set[int]] = {}
_EMPTY_SET: Set[int] = set()

#: Attribute under which :func:`encoded_view` caches the per-graph encoding.
_CACHE_ATTRIBUTE = "_repro_encoded_view"


def term_sort_key(term: Term) -> Tuple[str, str]:
    """The canonical total order on terms: by type name, then surface syntax.

    This is the order the object-path matcher sorted candidate pools with;
    the dictionary assigns ids in this order, which is what makes integer
    order and candidate order the same thing.
    """
    return (type(term).__name__, term.n3())


def predicate_code(encoded: "EncodedGraph", predicate: PatternTerm) -> int:
    """The kernel code of a query-edge predicate.

    Variables map to :data:`PREDICATE_ANY`; constant IRIs map to their
    dictionary id, or :data:`PREDICATE_ABSENT` when the graph never uses the
    label (no data edge can match).  Non-IRI constants cannot label data
    edges, so they are absent by construction.
    """
    if isinstance(predicate, Variable):
        return PREDICATE_ANY
    if not isinstance(predicate, IRI):
        return PREDICATE_ABSENT
    predicate_id = encoded.dictionary.get(predicate)
    return PREDICATE_ABSENT if predicate_id is None else predicate_id


class TermDictionary:
    """A bidirectional Node ↔ dense-int-id mapping for one graph.

    Ids are dense (``0..len-1``) and assigned in :func:`term_sort_key` order
    over *all* terms of the graph — vertices and predicates alike — so any
    subset of ids sorts exactly like the corresponding terms.
    """

    __slots__ = ("_ids", "_terms", "_n3")

    def __init__(self, terms: Iterable[Term]) -> None:
        decorated = sorted((term_sort_key(term), term) for term in set(terms))
        self._terms: List[Term] = [term for _, term in decorated]
        self._n3: List[str] = [key[1] for key, _ in decorated]
        self._ids: Dict[Term, int] = {
            term: position for position, term in enumerate(self._terms)
        }

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: Term) -> bool:
        return term in self._ids

    def id_of(self, term: Term) -> int:
        """The id of ``term``; raises ``KeyError`` for unknown terms."""
        return self._ids[term]

    def get(self, term: Term) -> Optional[int]:
        """The id of ``term``, or ``None`` when the graph never saw it."""
        return self._ids.get(term)

    def term_of(self, term_id: int) -> Term:
        """The term behind ``term_id`` (dense ids make this a list lookup)."""
        return self._terms[term_id]

    def n3_of(self, term_id: int) -> str:
        """The (precomputed) N3 text of ``term_id`` — no re-serialization."""
        return self._n3[term_id]

    def encode_nodes(self, nodes: Iterable[Node]) -> Set[int]:
        """Ids of ``nodes``, silently dropping terms unknown to the graph."""
        ids = self._ids
        return {ids[node] for node in nodes if node in ids}

    def decode_ids(self, ids: Iterable[int]) -> Set[Node]:
        """The terms behind ``ids`` as a set of nodes."""
        terms = self._terms
        return {terms[term_id] for term_id in ids}

    def ensure(self, term: Term) -> int:
        """The id of ``term``, appending a fresh id for unseen terms.

        Appended ids break the "sorted ids == sorted candidates" invariant
        for the *new* terms only; the delta machinery keeps determinism by
        making every replica of a graph apply the identical op sequence from
        the identical base, so appended ids agree everywhere (see
        docs/persistence.md).
        """
        existing = self._ids.get(term)
        if existing is not None:
            return existing
        term_id = len(self._terms)
        self._terms.append(term)
        self._n3.append(term.n3())
        self._ids[term] = term_id
        return term_id


class EncodedGraph:
    """Integer adjacency indexes over one :class:`~repro.rdf.graph.RDFGraph`.

    All probes the matching kernel performs — "does edge (s, p, o) exist",
    "which subjects reach object o via p", "which objects does s reach via
    p" — are O(1) dictionary/set lookups here, against ids from
    :attr:`dictionary`.
    """

    __slots__ = (
        "dictionary",
        "_spo",
        "_pos",
        "_osp",
        "_out_nbrs",
        "_in_nbrs",
        "_p_subjects",
        "_p_objects",
        "_all_subjects",
        "_all_objects",
        "_vertex_ids",
        "_sorted_vertex_ids",
        "_num_triples",
        "_kernel_adjacency",
    )

    def __init__(self, graph: RDFGraph) -> None:
        terms: Set[Term] = set()
        for triple in graph:
            terms.add(triple.subject)
            terms.add(triple.predicate)
            terms.add(triple.object)
        self.dictionary = TermDictionary(terms)
        id_of = self.dictionary.id_of
        spo: Dict[int, Dict[int, Set[int]]] = {}
        pos: Dict[int, Dict[int, Set[int]]] = {}
        osp: Dict[int, Dict[int, Set[int]]] = {}
        out_nbrs: Dict[int, Set[int]] = {}
        in_nbrs: Dict[int, Set[int]] = {}
        p_subjects: Dict[int, Set[int]] = {}
        p_objects: Dict[int, Set[int]] = {}
        for triple in graph:
            s, p, o = id_of(triple.subject), id_of(triple.predicate), id_of(triple.object)
            spo.setdefault(s, {}).setdefault(p, set()).add(o)
            pos.setdefault(p, {}).setdefault(o, set()).add(s)
            osp.setdefault(o, {}).setdefault(s, set()).add(p)
            out_nbrs.setdefault(s, set()).add(o)
            in_nbrs.setdefault(o, set()).add(s)
            p_subjects.setdefault(p, set()).add(s)
            p_objects.setdefault(p, set()).add(o)
        self._spo = spo
        self._pos = pos
        self._osp = osp
        self._out_nbrs = out_nbrs
        self._in_nbrs = in_nbrs
        self._p_subjects = p_subjects
        self._p_objects = p_objects
        self._all_subjects: Set[int] = set(out_nbrs)
        self._all_objects: Set[int] = set(in_nbrs)
        self._vertex_ids: Set[int] = self._all_subjects | self._all_objects
        # Ids are assigned in candidate-sort order, so this is the "all
        # vertices" candidate pool, pre-sorted once at encode time.  It is
        # recomputed lazily after in-place patches (apply_ops sets it None).
        self._sorted_vertex_ids: Optional[Tuple[int, ...]] = tuple(
            sorted(self._vertex_ids)
        )
        self._num_triples = len(graph)
        # Sorted-column adjacency caches, one per kernel flavor, attached
        # lazily by repro.store.kernel.adjacency_view.  Kept here (not in a
        # module-level WeakValue map) so the cache dies with the encoding
        # and per-predicate invalidation in apply_ops stays a local call.
        self._kernel_adjacency: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_triples(self) -> int:
        return self._num_triples

    @property
    def vertex_ids(self) -> Set[int]:
        """Ids of every subject/object vertex (predicates excluded)."""
        return self._vertex_ids

    @property
    def sorted_vertex_ids(self) -> Tuple[int, ...]:
        """All vertex ids in canonical (= candidate sort) order."""
        if self._sorted_vertex_ids is None:
            self._sorted_vertex_ids = tuple(sorted(self._vertex_ids))
        return self._sorted_vertex_ids

    def is_vertex(self, term_id: int) -> bool:
        """Is ``term_id`` a subject or object of some triple?"""
        return term_id in self._vertex_ids

    def iter_triple_ids(self) -> Iterator[Tuple[int, int, int]]:
        """Every triple as an ``(s, p, o)`` id tuple (index order, not sorted)."""
        for s, by_predicate in self._spo.items():
            for p, objects in by_predicate.items():
                for o in objects:
                    yield (s, p, o)

    # ------------------------------------------------------------------
    # Kernel probes (all O(1) dictionary/set lookups)
    # ------------------------------------------------------------------
    def has_edge(self, subject_id: int, predicate_code: int, object_id: int) -> bool:
        """Does the data edge exist?  ``predicate_code`` may be a sentinel.

        :data:`PREDICATE_ANY` matches any label (variable query predicate);
        :data:`PREDICATE_ABSENT` matches nothing.
        """
        if predicate_code >= 0:
            return object_id in self._spo.get(subject_id, _EMPTY_DICT).get(
                predicate_code, _EMPTY_SET
            )
        if predicate_code == PREDICATE_ANY:
            return subject_id in self._osp.get(object_id, _EMPTY_DICT)
        return False

    def subjects_to(self, predicate_code: int, object_id: int) -> Set[int]:
        """Ids of subjects with an edge labelled ``predicate_code`` into ``object_id``."""
        if predicate_code >= 0:
            return self._pos.get(predicate_code, _EMPTY_DICT).get(object_id, _EMPTY_SET)
        if predicate_code == PREDICATE_ANY:
            return self._in_nbrs.get(object_id, _EMPTY_SET)
        return _EMPTY_SET

    def objects_from(self, subject_id: int, predicate_code: int) -> Set[int]:
        """Ids of objects reached from ``subject_id`` via ``predicate_code``."""
        if predicate_code >= 0:
            return self._spo.get(subject_id, _EMPTY_DICT).get(predicate_code, _EMPTY_SET)
        if predicate_code == PREDICATE_ANY:
            return self._out_nbrs.get(subject_id, _EMPTY_SET)
        return _EMPTY_SET

    def subjects_of_predicate(self, predicate_code: int) -> Set[int]:
        """Ids of all subjects of edges labelled ``predicate_code``."""
        if predicate_code >= 0:
            return self._p_subjects.get(predicate_code, _EMPTY_SET)
        if predicate_code == PREDICATE_ANY:
            return self._all_subjects
        return _EMPTY_SET

    def objects_of_predicate(self, predicate_code: int) -> Set[int]:
        """Ids of all objects of edges labelled ``predicate_code``."""
        if predicate_code >= 0:
            return self._p_objects.get(predicate_code, _EMPTY_SET)
        if predicate_code == PREDICATE_ANY:
            return self._all_objects
        return _EMPTY_SET

    def has_out_edge(self, subject_id: int, predicate_code: int) -> bool:
        """Does ``subject_id`` have any outgoing edge labelled ``predicate_code``?"""
        if predicate_code >= 0:
            return predicate_code in self._spo.get(subject_id, _EMPTY_DICT)
        if predicate_code == PREDICATE_ANY:
            return subject_id in self._out_nbrs
        return False

    def has_in_edge(self, object_id: int, predicate_code: int) -> bool:
        """Does ``object_id`` have any incoming edge labelled ``predicate_code``?"""
        if predicate_code >= 0:
            return object_id in self._pos.get(predicate_code, _EMPTY_DICT)
        if predicate_code == PREDICATE_ANY:
            return object_id in self._in_nbrs
        return False

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def apply_ops(self, ops: Iterable[Tuple[str, Triple]]) -> None:
        """Patch the indexes in place for a journal window of graph ops.

        ``ops`` is a list of ``("+"|"-", triple)`` pairs in mutation order,
        as returned by :meth:`RDFGraph.journal_since`.  New terms get fresh
        appended dictionary ids; removals scrub empty inner containers so a
        patched encoding answers every probe exactly like a cold rebuild of
        the same triples would.
        """
        ensure = self.dictionary.ensure
        touched_predicates: Set[int] = set()
        for op, triple in ops:
            s = ensure(triple.subject)
            p = ensure(triple.predicate)
            o = ensure(triple.object)
            touched_predicates.add(p)
            if op == "+":
                self._add_ids(s, p, o)
            else:
                self._remove_ids(s, p, o)
        self._sorted_vertex_ids = None
        # Drop only the mutated predicates' sorted columns; every other
        # kernel column stays warm across the patch.
        for adjacency in self._kernel_adjacency.values():
            adjacency.invalidate(touched_predicates)

    def _add_ids(self, s: int, p: int, o: int) -> None:
        self._spo.setdefault(s, {}).setdefault(p, set()).add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self._out_nbrs.setdefault(s, set()).add(o)
        self._in_nbrs.setdefault(o, set()).add(s)
        self._p_subjects.setdefault(p, set()).add(s)
        self._p_objects.setdefault(p, set()).add(o)
        self._all_subjects.add(s)
        self._all_objects.add(o)
        self._vertex_ids.add(s)
        self._vertex_ids.add(o)
        self._num_triples += 1

    def _remove_ids(self, s: int, p: int, o: int) -> None:
        objects = self._spo[s][p]
        objects.discard(o)
        if not objects:
            del self._spo[s][p]
            if not self._spo[s]:
                del self._spo[s]
        subjects = self._pos[p][o]
        subjects.discard(s)
        if not subjects:
            del self._pos[p][o]
            if not self._pos[p]:
                del self._pos[p]
        labels = self._osp[o][s]
        labels.discard(p)
        if not labels:
            del self._osp[o][s]
            if not self._osp[o]:
                del self._osp[o]
            # The last (s, ?, o) edge is gone: drop the neighbour links.
            out = self._out_nbrs[s]
            out.discard(o)
            if not out:
                del self._out_nbrs[s]
                self._all_subjects.discard(s)
            into = self._in_nbrs[o]
            into.discard(s)
            if not into:
                del self._in_nbrs[o]
                self._all_objects.discard(o)
        if p not in self._spo.get(s, _EMPTY_DICT):
            subjects_of_p = self._p_subjects.get(p)
            if subjects_of_p is not None:
                subjects_of_p.discard(s)
                if not subjects_of_p:
                    del self._p_subjects[p]
        if o not in self._pos.get(p, _EMPTY_DICT):
            objects_of_p = self._p_objects.get(p)
            if objects_of_p is not None:
                objects_of_p.discard(o)
                if not objects_of_p:
                    del self._p_objects[p]
        for vertex in (s, o):
            if vertex not in self._out_nbrs and vertex not in self._in_nbrs:
                self._vertex_ids.discard(vertex)
        self._num_triples -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<EncodedGraph terms={len(self.dictionary)} "
            f"vertices={len(self._vertex_ids)} triples={self._num_triples}>"
        )


#: Process-local count of :class:`EncodedGraph` constructions performed by
#: :func:`encoded_view` (cache misses + version-invalidated rebuilds).  The
#: observability layer exposes it as the ``repro_encoded_graph_rebuilds``
#: gauge; a count that climbs query-over-query means graphs are being
#: mutated (or recreated) between queries and the encoding cache is cold.
_REBUILDS = 0
#: Process-local count of in-place :meth:`EncodedGraph.apply_ops` patches
#: performed by :func:`encoded_view` instead of full rebuilds.  Exposed as
#: the ``repro_encoded_graph_patches`` gauge: with the delta machinery in
#: place, mutations should move this counter, not ``_REBUILDS``.
_PATCHES = 0
_REBUILDS_LOCK = threading.Lock()

#: Serializes cache-miss rebuilds in :func:`encoded_view`: two queries
#: hitting a cold graph concurrently must share one build (and count one
#: rebuild), not race to construct two.  Builds are rare — one per graph
#: version — so a single global lock costs nothing measurable.
_BUILD_LOCK = threading.Lock()


def encoded_rebuilds() -> int:
    """How many ``EncodedGraph`` builds this process has performed so far.

    Only this process: sites bootstrapped inside process-pool workers build
    their encodings in the worker, where the coordinator's counter cannot
    see them.
    """
    with _REBUILDS_LOCK:
        return _REBUILDS


def encoded_patches() -> int:
    """How many in-place encoding patches this process has performed."""
    with _REBUILDS_LOCK:
        return _PATCHES


def patch_encoded_view(
    graph: RDFGraph,
    encoded: EncodedGraph,
    ops: Iterable[Tuple[str, Triple]],
) -> EncodedGraph:
    """Bring ``graph``'s cached encoding up to date by applying ``ops`` directly.

    The delta-application entry point for the cluster/persistence layer:
    ``encoded`` must be the view obtained from :func:`encoded_view` *before*
    the mutations, and ``ops`` the exact op sequence since.  Unlike the lazy
    journal path inside :func:`encoded_view`, this never falls back to a
    rebuild, so the final encoding (including appended dictionary ids) is a
    pure function of (base state, op sequence) — independent of the graph's
    bounded journal and of how the ops were batched.  That purity is what
    lets a replica that replays the same ops from the same base (a reopened
    store file, a process-pool worker) end up with the bit-identical
    encoding.
    """
    global _PATCHES
    with _BUILD_LOCK:
        cached = getattr(graph, _CACHE_ATTRIBUTE, None)
        if cached is not None and cached[0] == graph.version:
            return cached[1]
        encoded.apply_ops(ops)
        setattr(graph, _CACHE_ATTRIBUTE, (graph.version, encoded))
        with _REBUILDS_LOCK:
            _PATCHES += 1
        return encoded


def encoded_view(graph: RDFGraph) -> EncodedGraph:
    """The (cached) dictionary-encoded view of ``graph``.

    Built lazily on first use and cached on the graph object.  When the
    graph's :attr:`~repro.rdf.graph.RDFGraph.version` moves, the cached
    encoding is *patched in place* from the graph's mutation journal
    (:meth:`RDFGraph.journal_since`); only when the journal window has been
    exceeded — e.g. by a bulk load — does the encoding fall back to a full
    rebuild.
    """
    global _REBUILDS, _PATCHES
    cached = getattr(graph, _CACHE_ATTRIBUTE, None)
    if cached is not None and cached[0] == graph.version:
        return cached[1]
    with _BUILD_LOCK:
        cached = getattr(graph, _CACHE_ATTRIBUTE, None)
        if cached is not None and cached[0] == graph.version:
            return cached[1]
        if cached is not None:
            ops = graph.journal_since(cached[0])
            if ops is not None:
                encoded = cached[1]
                encoded.apply_ops(ops)
                setattr(graph, _CACHE_ATTRIBUTE, (graph.version, encoded))
                with _REBUILDS_LOCK:
                    _PATCHES += 1
                return encoded
        encoded = EncodedGraph(graph)
        setattr(graph, _CACHE_ATTRIBUTE, (graph.version, encoded))
        with _REBUILDS_LOCK:
            _REBUILDS += 1
        return encoded
