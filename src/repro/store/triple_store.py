"""Local triple store facade ("gStore-lite").

Each site of the simulated cluster hosts one :class:`TripleStore`, which
bundles the fragment's RDF graph with its signature index, a matcher, and
cached per-query candidate computations.  The centralized baseline uses the
same class over the unpartitioned graph, so every engine in the repository
shares one local-evaluation code path.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from ..planner.optimizer import QueryPlanner
from ..planner.plan_cache import DEFAULT_PLAN_CACHE_SIZE
from ..planner.statistics import GraphStatistics, collect_statistics
from ..rdf.graph import RDFGraph
from ..rdf.terms import Node, PatternTerm
from ..rdf.triples import Triple
from ..sparql.algebra import SelectQuery
from ..sparql.bindings import ResultSet
from ..sparql.query_graph import QueryGraph
from .candidates import compute_candidates
from .encoding import EncodedGraph, encoded_view
from .matcher import LocalMatcher
from .signatures import DEFAULT_SIGNATURE_BITS, SignatureIndex


class TripleStore:
    """An indexed, queryable triple store over one RDF graph."""

    def __init__(
        self,
        graph: Optional[RDFGraph] = None,
        name: str = "",
        signature_bits: int = DEFAULT_SIGNATURE_BITS,
        use_planner: bool = False,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
    ) -> None:
        self._graph = graph if graph is not None else RDFGraph(name=name)
        if name:
            self._graph.name = name
        self._signature_bits = signature_bits
        self._signatures: Optional[SignatureIndex] = None
        self._matcher: Optional[LocalMatcher] = None
        self._statistics: Optional[GraphStatistics] = None
        self._use_planner = use_planner
        self._plan_cache_size = plan_cache_size
        self._planner: Optional[QueryPlanner] = None

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @property
    def graph(self) -> RDFGraph:
        return self._graph

    @property
    def name(self) -> str:
        return self._graph.name

    def load(self, triples: Iterable[Triple]) -> int:
        """Bulk-load triples, invalidating the indexes; return the number added."""
        added = self._graph.add_all(triples)
        if added:
            self._invalidate()
        return added

    def add(self, triple: Triple) -> bool:
        added = self._graph.add(triple)
        if added:
            self._invalidate()
        return added

    def _invalidate(self) -> None:
        self._signatures = None
        self._matcher = None
        self._statistics = None
        self._planner = None

    def __len__(self) -> int:
        return len(self._graph)

    # ------------------------------------------------------------------
    # Index access
    # ------------------------------------------------------------------
    @property
    def signatures(self) -> SignatureIndex:
        """The (lazily rebuilt) signature index for candidate filtering."""
        if self._signatures is None:
            self._signatures = SignatureIndex(self._graph, self._signature_bits)
        return self._signatures

    @property
    def encoded(self) -> EncodedGraph:
        """The dictionary-encoded view the matching kernel runs on.

        Cached per graph *version* (see :func:`repro.store.encoded_view`),
        so it survives ``_invalidate`` untouched and rebuilds itself lazily
        only when the underlying graph has actually changed.
        """
        return encoded_view(self._graph)

    @property
    def statistics(self) -> GraphStatistics:
        """Planner statistics for this store's graph (computed once, lazily,
        and invalidated whenever the graph changes)."""
        if self._statistics is None:
            self._statistics = collect_statistics(self._graph)
        return self._statistics

    @property
    def planner(self) -> Optional[QueryPlanner]:
        """The store's query planner, or ``None`` while planning is disabled."""
        if not self._use_planner:
            return None
        if self._planner is None:
            self._planner = QueryPlanner(self.statistics, cache_size=self._plan_cache_size)
        return self._planner

    def enable_planner(self, plan_cache_size: Optional[int] = None) -> QueryPlanner:
        """Turn on cost-based planning for this store's matcher."""
        if plan_cache_size is not None and plan_cache_size != self._plan_cache_size:
            self._plan_cache_size = plan_cache_size
            self._planner = None
            self._matcher = None
        if not self._use_planner:
            self._use_planner = True
            self._matcher = None
        planner = self.planner
        assert planner is not None
        return planner

    def disable_planner(self) -> None:
        """Fall back to the static traversal order.

        The planner object (and its warm plan cache) is kept so a later
        ``enable_planner`` resumes where it left off; only the matcher stops
        consulting it.
        """
        if self._use_planner:
            self._use_planner = False
            self._matcher = None

    @property
    def matcher(self) -> LocalMatcher:
        if self._matcher is None:
            self._matcher = LocalMatcher(self._graph, self.signatures, planner=self.planner)
        return self._matcher

    # ------------------------------------------------------------------
    # Query evaluation
    # ------------------------------------------------------------------
    def evaluate(self, query: SelectQuery) -> ResultSet:
        """Evaluate a full SPARQL BGP query over this store's graph."""
        return self.matcher.evaluate(query)

    def find_matches(self, query: QueryGraph):
        """Yield complete vertex assignments of ``query`` over this store's graph."""
        return self.matcher.find_matches(query)

    def candidates(
        self,
        query: QueryGraph,
        relaxed_edges: Optional[Dict[PatternTerm, Set[int]]] = None,
        restrict_to: Optional[Set[Node]] = None,
    ) -> Dict[PatternTerm, Set[Node]]:
        """Per-query-vertex candidates using this store's signature index."""
        return compute_candidates(
            self._graph,
            query,
            self.signatures,
            relaxed_edges=relaxed_edges,
            restrict_to=restrict_to,
        )

    def stats(self) -> Dict[str, int]:
        return self._graph.stats()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<TripleStore {self._graph.name!r} triples={len(self._graph)}>"
