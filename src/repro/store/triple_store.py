"""Local triple store facade ("gStore-lite").

Each site of the simulated cluster hosts one :class:`TripleStore`, which
bundles the fragment's RDF graph with its signature index, a matcher, and
cached per-query candidate computations.  The centralized baseline uses the
same class over the unpartitioned graph, so every engine in the repository
shares one local-evaluation code path.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from ..planner.optimizer import QueryPlanner
from ..planner.plan_cache import DEFAULT_PLAN_CACHE_SIZE
from ..planner.statistics import (
    GraphStatistics,
    apply_statistics_ops,
    collect_statistics,
)
from ..rdf.graph import RDFGraph
from ..rdf.terms import Node, PatternTerm
from ..rdf.triples import Triple
from ..sparql.algebra import SelectQuery
from ..sparql.bindings import ResultSet
from ..sparql.query_graph import QueryGraph
from .candidates import compute_candidates
from .encoding import EncodedGraph, encoded_view
from .matcher import LocalMatcher
from .signatures import DEFAULT_SIGNATURE_BITS, SignatureIndex


class TripleStore:
    """An indexed, queryable triple store over one RDF graph."""

    def __init__(
        self,
        graph: Optional[RDFGraph] = None,
        name: str = "",
        signature_bits: int = DEFAULT_SIGNATURE_BITS,
        use_planner: bool = False,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
    ) -> None:
        self._graph = graph if graph is not None else RDFGraph(name=name)
        if name:
            self._graph.name = name
        self._signature_bits = signature_bits
        self._signatures: Optional[SignatureIndex] = None
        self._matcher: Optional[LocalMatcher] = None
        self._statistics: Optional[GraphStatistics] = None
        self._use_planner = use_planner
        self._plan_cache_size = plan_cache_size
        self._planner: Optional[QueryPlanner] = None
        # Graph version the cached statistics reflect (see _sync).
        self._stats_version = self._graph.version

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @property
    def graph(self) -> RDFGraph:
        return self._graph

    @property
    def name(self) -> str:
        return self._graph.name

    def load(self, triples: Iterable[Triple]) -> int:
        """Bulk-load triples; derived indexes resync lazily on next use."""
        return self._graph.add_all(triples)

    def add(self, triple: Triple) -> bool:
        return self._graph.add(triple)

    def discard(self, triple: Triple) -> bool:
        """Remove ``triple`` if present; indexes resync lazily on next use."""
        return self._graph.discard(triple)

    def _sync(self) -> None:
        """Bring the cached statistics (and plan cache) up to the graph.

        The signature index and encoded view maintain themselves against
        :attr:`RDFGraph.version`; statistics are this store's to keep.  A
        contiguous journal window is patched in place (exact — see
        :func:`repro.planner.statistics.apply_statistics_ops`), a gap falls
        back to a fresh collection copied into the *same* object so the
        planner and optimizer, which hold a reference to it, see the update.
        Either way the plan cache is cleared: cached orders were chosen
        against the old statistics.
        """
        if self._statistics is None or self._stats_version == self._graph.version:
            return
        ops = self._graph.journal_since(self._stats_version)
        if ops is not None:
            apply_statistics_ops(self._statistics, self._graph, ops)
        else:
            self._statistics.replace_with(collect_statistics(self._graph))
        self._stats_version = self._graph.version
        if self._planner is not None:
            self._planner.cache.clear()

    def __len__(self) -> int:
        return len(self._graph)

    # ------------------------------------------------------------------
    # Index access
    # ------------------------------------------------------------------
    @property
    def signatures(self) -> SignatureIndex:
        """The (lazily rebuilt) signature index for candidate filtering."""
        if self._signatures is None:
            self._signatures = SignatureIndex(self._graph, self._signature_bits)
        return self._signatures

    @property
    def encoded(self) -> EncodedGraph:
        """The dictionary-encoded view the matching kernel runs on.

        Cached per graph *version* (see :func:`repro.store.encoded_view`),
        so it survives ``_invalidate`` untouched and rebuilds itself lazily
        only when the underlying graph has actually changed.
        """
        return encoded_view(self._graph)

    @property
    def statistics(self) -> GraphStatistics:
        """Planner statistics for this store's graph (computed once, lazily,
        then patched incrementally as the graph mutates)."""
        if self._statistics is None:
            self._statistics = collect_statistics(self._graph)
            self._stats_version = self._graph.version
        else:
            self._sync()
        return self._statistics

    def preload_statistics(self, statistics: GraphStatistics) -> None:
        """Adopt previously collected statistics for the graph's current state.

        Used by the persistence layer to skip the collection pass when a
        store file already carries the summary.  The caller asserts that
        ``statistics`` describes the graph exactly as it stands now.
        """
        self._statistics = statistics
        self._stats_version = self._graph.version
        if self._planner is not None:
            self._planner = None
            self._matcher = None

    @property
    def planner(self) -> Optional[QueryPlanner]:
        """The store's query planner, or ``None`` while planning is disabled."""
        if not self._use_planner:
            return None
        if self._planner is None:
            self._planner = QueryPlanner(self.statistics, cache_size=self._plan_cache_size)
        else:
            self._sync()
        return self._planner

    def enable_planner(self, plan_cache_size: Optional[int] = None) -> QueryPlanner:
        """Turn on cost-based planning for this store's matcher."""
        if plan_cache_size is not None and plan_cache_size != self._plan_cache_size:
            self._plan_cache_size = plan_cache_size
            self._planner = None
            self._matcher = None
        if not self._use_planner:
            self._use_planner = True
            self._matcher = None
        planner = self.planner
        assert planner is not None
        return planner

    def disable_planner(self) -> None:
        """Fall back to the static traversal order.

        The planner object (and its warm plan cache) is kept so a later
        ``enable_planner`` resumes where it left off; only the matcher stops
        consulting it.
        """
        if self._use_planner:
            self._use_planner = False
            self._matcher = None

    @property
    def matcher(self) -> LocalMatcher:
        if self._matcher is None:
            self._matcher = LocalMatcher(self._graph, self.signatures, planner=self.planner)
        else:
            # The matcher's graph/signature references self-maintain against
            # the graph version; the statistics behind its planner are ours
            # to refresh (and stale plan-cache entries to drop).
            self._sync()
        return self._matcher

    # ------------------------------------------------------------------
    # Query evaluation
    # ------------------------------------------------------------------
    def evaluate(self, query: SelectQuery) -> ResultSet:
        """Evaluate a full SPARQL BGP query over this store's graph."""
        return self.matcher.evaluate(query)

    def find_matches(self, query: QueryGraph):
        """Yield complete vertex assignments of ``query`` over this store's graph."""
        return self.matcher.find_matches(query)

    def shard_matches(self, query: SelectQuery, shard_index: int, num_shards: int):
        """One shard's raw bindings of ``query`` (see :meth:`LocalMatcher.shard_matches`)."""
        return self.matcher.shard_matches(query, shard_index, num_shards)

    def candidates(
        self,
        query: QueryGraph,
        relaxed_edges: Optional[Dict[PatternTerm, Set[int]]] = None,
        restrict_to: Optional[Set[Node]] = None,
    ) -> Dict[PatternTerm, Set[Node]]:
        """Per-query-vertex candidates using this store's signature index."""
        return compute_candidates(
            self._graph,
            query,
            self.signatures,
            relaxed_edges=relaxed_edges,
            restrict_to=restrict_to,
        )

    def stats(self) -> Dict[str, int]:
        return self._graph.stats()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<TripleStore {self._graph.name!r} triples={len(self._graph)}>"
