"""Per-variable candidate computation.

Existing RDF stores (the paper names gStore's filter-and-evaluate design)
first compute a candidate set for every query variable, then run subgraph
matching over those candidates.  The candidate sets are also the raw
material of the paper's third optimization (Section VI): each site computes
the *internal* candidates of every variable, compresses them into a bit
vector, and the coordinator ORs the vectors so sites can discard extended
candidates that are internal nowhere.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from ..rdf.graph import RDFGraph
from ..rdf.terms import IRI, Literal, Node, PatternTerm, Variable
from ..sparql.query_graph import QueryGraph
from .signatures import SignatureIndex


def edge_supported(
    graph: RDFGraph,
    vertex: Node,
    query: QueryGraph,
    query_vertex: PatternTerm,
    edge_index: int,
) -> bool:
    """Does ``vertex`` have at least one incident data edge matching query edge ``edge_index``?

    Only the direction and (constant) predicate are checked, plus the other
    endpoint when it is a constant; the other endpoint being a variable means
    any neighbour will do.
    """
    edge = query.edge_at(edge_index)
    predicate = None if isinstance(edge.predicate, Variable) else edge.predicate
    if edge.subject == query_vertex:
        other = edge.object
        other_bound = None if isinstance(other, Variable) else other
        return any(True for _ in graph.triples(vertex, predicate, other_bound))
    if edge.object == query_vertex:
        other = edge.subject
        other_bound = None if isinstance(other, Variable) else other
        return any(True for _ in graph.triples(other_bound, predicate, vertex))
    raise ValueError("query vertex is not an endpoint of the given edge")


def compute_candidates(
    graph: RDFGraph,
    query: QueryGraph,
    signature_index: Optional[SignatureIndex] = None,
    relaxed_edges: Optional[Dict[PatternTerm, Set[int]]] = None,
    restrict_to: Optional[Set[Node]] = None,
) -> Dict[PatternTerm, Set[Node]]:
    """Compute a candidate set for every query vertex.

    Parameters
    ----------
    graph:
        The data graph (a whole RDF graph, or one fragment's graph).
    query:
        The query graph.
    signature_index:
        Optional pre-built signature index over ``graph``; built on demand
        when omitted.
    relaxed_edges:
        Per query vertex, indices of query edges whose support must *not* be
        required.  Sites use this for extended vertices, whose edges inside
        other fragments are invisible locally.
    restrict_to:
        Optional universe to intersect every candidate set with (e.g. only
        internal vertices of a fragment).

    Returns
    -------
    dict
        Mapping each query vertex (constant vertices included) to the set of
        data vertices that could match it based on local-only checks.
    """
    relaxed_edges = relaxed_edges or {}
    index = signature_index or SignatureIndex(graph)
    vertices_universe = graph.vertices
    candidates: Dict[PatternTerm, Set[Node]] = {}
    for query_vertex in query.vertices:
        relaxed = relaxed_edges.get(query_vertex, set())
        if isinstance(query_vertex, (IRI, Literal)):
            found = {query_vertex} if query_vertex in vertices_universe else set()
        else:
            found = _variable_candidates(graph, query, query_vertex, index, relaxed)
        if restrict_to is not None:
            found &= restrict_to
        candidates[query_vertex] = found
    return candidates


def _variable_candidates(
    graph: RDFGraph,
    query: QueryGraph,
    query_vertex: PatternTerm,
    index: SignatureIndex,
    relaxed: Set[int],
) -> Set[Node]:
    required_edges = [edge for edge in query.edges_of(query_vertex) if edge.index not in relaxed]
    if not required_edges:
        # Every incident edge was relaxed: any vertex could match.
        return set(graph.vertices)
    # Seed with the most selective incident edge to avoid scanning all vertices.
    seed: Optional[Set[Node]] = None
    for edge in required_edges:
        predicate = None if isinstance(edge.predicate, Variable) else edge.predicate
        if edge.subject == query_vertex:
            other = edge.object
            other_bound = None if isinstance(other, Variable) else other
            matching = {t.subject for t in graph.triples(None, predicate, other_bound)}
        else:
            other = edge.subject
            other_bound = None if isinstance(other, Variable) else other
            matching = {t.object for t in graph.triples(other_bound, predicate, None)}
        if seed is None or len(matching) < len(seed):
            seed = matching
        if seed is not None and not seed:
            return set()
    assert seed is not None
    needed_signature = index.query_signature(query, query_vertex, skip_edges=relaxed)
    survivors: Set[Node] = set()
    for vertex in seed:
        if not index.signature_of(vertex).covers(needed_signature):
            continue
        if all(edge_supported(graph, vertex, query, query_vertex, edge.index) for edge in required_edges):
            survivors.add(vertex)
    return survivors


def candidate_sizes(candidates: Dict[PatternTerm, Set[Node]]) -> Dict[str, int]:
    """Small helper used by statistics and logging."""
    return {vertex.n3(): len(values) for vertex, values in candidates.items()}
