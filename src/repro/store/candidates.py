"""Per-variable candidate computation.

Existing RDF stores (the paper names gStore's filter-and-evaluate design)
first compute a candidate set for every query variable, then run subgraph
matching over those candidates.  The candidate sets are also the raw
material of the paper's third optimization (Section VI): each site computes
the *internal* candidates of every variable, compresses them into a bit
vector, and the coordinator ORs the vectors so sites can discard extended
candidates that are internal nowhere.

The computation runs on the graph's dictionary-encoded view
(:mod:`repro.store.encoding`): seeds, edge-support probes and signature
containment all work on integer ids, and the resulting id sets are decoded
to :class:`~repro.rdf.terms.Node` sets only at this module's public
boundary.  :func:`compute_candidate_ids` is the kernel-side entry point the
matcher uses directly, skipping the decode/re-encode round trip.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from ..rdf.graph import RDFGraph
from ..rdf.terms import IRI, Literal, Node, PatternTerm, Variable
from ..sparql.query_graph import QueryEdge, QueryGraph
from .encoding import (
    PREDICATE_ABSENT,
    PREDICATE_ANY,
    EncodedGraph,
    encoded_view,
    predicate_code,
)
from .signatures import SignatureIndex

__all__ = [
    "predicate_code",
    "edge_supported",
    "compute_candidate_ids",
    "compute_candidates",
    "candidate_sizes",
]


def edge_supported(
    graph: RDFGraph,
    vertex: Node,
    query: QueryGraph,
    query_vertex: PatternTerm,
    edge_index: int,
) -> bool:
    """Does ``vertex`` have at least one incident data edge matching query edge ``edge_index``?

    Only the direction and (constant) predicate are checked, plus the other
    endpoint when it is a constant; the other endpoint being a variable means
    any neighbour will do.
    """
    encoded = encoded_view(graph)
    vertex_id = encoded.dictionary.get(vertex)
    if vertex_id is None:
        return False
    edge = query.edge_at(edge_index)
    if query_vertex not in (edge.subject, edge.object):
        raise ValueError("query vertex is not an endpoint of the given edge")
    return _edge_supported_id(encoded, vertex_id, edge, query_vertex)


def _edge_supported_id(
    encoded: EncodedGraph,
    vertex_id: int,
    edge: QueryEdge,
    query_vertex: PatternTerm,
) -> bool:
    """Integer-kernel edge-support probe (see :func:`edge_supported`)."""
    code = predicate_code(encoded, edge.predicate)
    if edge.subject == query_vertex:
        other = edge.object
        if isinstance(other, Variable):
            return encoded.has_out_edge(vertex_id, code)
        other_id = encoded.dictionary.get(other)
        return other_id is not None and encoded.has_edge(vertex_id, code, other_id)
    other = edge.subject
    if isinstance(other, Variable):
        return encoded.has_in_edge(vertex_id, code)
    other_id = encoded.dictionary.get(other)
    return other_id is not None and encoded.has_edge(other_id, code, vertex_id)


def compute_candidate_ids(
    encoded: EncodedGraph,
    query: QueryGraph,
    signature_index: SignatureIndex,
    relaxed_edges: Optional[Dict[PatternTerm, Set[int]]] = None,
    kernel: Optional[str] = None,
) -> Dict[PatternTerm, Set[int]]:
    """Candidate *ids* for every query vertex — the matcher's fast path.

    Same semantics as :func:`compute_candidates` (without ``restrict_to``),
    but input and output stay in the integer domain of ``encoded``.

    ``kernel`` picks the filtering substrate (``None`` means the process
    default, :func:`repro.store.kernel.default_kernel`): the array kernels
    filter the seed pool with numpy bit-matrix signature containment and
    sorted-column membership instead of per-id Python bit ops.  The choice
    never changes the returned sets — only how fast they are computed.
    """
    from .kernel import KERNEL_SETS, make_runner, resolve_kernel

    if resolve_kernel(kernel) != KERNEL_SETS:
        runner = make_runner(resolve_kernel(kernel), encoded, signature_index)
        pools = runner.compute_pools(query, relaxed_edges)
        return {vertex: set(map(int, pool)) for vertex, pool in pools.items()}
    relaxed_edges = relaxed_edges or {}
    candidates: Dict[PatternTerm, Set[int]] = {}
    for query_vertex in query.vertices:
        relaxed = relaxed_edges.get(query_vertex, set())
        if isinstance(query_vertex, (IRI, Literal)):
            vertex_id = encoded.dictionary.get(query_vertex)
            if vertex_id is not None and encoded.is_vertex(vertex_id):
                candidates[query_vertex] = {vertex_id}
            else:
                candidates[query_vertex] = set()
        else:
            candidates[query_vertex] = _variable_candidate_ids(
                encoded, query, query_vertex, signature_index, relaxed
            )
    return candidates


def compute_candidates(
    graph: RDFGraph,
    query: QueryGraph,
    signature_index: Optional[SignatureIndex] = None,
    relaxed_edges: Optional[Dict[PatternTerm, Set[int]]] = None,
    restrict_to: Optional[Set[Node]] = None,
) -> Dict[PatternTerm, Set[Node]]:
    """Compute a candidate set for every query vertex.

    Parameters
    ----------
    graph:
        The data graph (a whole RDF graph, or one fragment's graph).
    query:
        The query graph.
    signature_index:
        Optional pre-built signature index over ``graph``; built on demand
        when omitted.
    relaxed_edges:
        Per query vertex, indices of query edges whose support must *not* be
        required.  Sites use this for extended vertices, whose edges inside
        other fragments are invisible locally.
    restrict_to:
        Optional universe to intersect every candidate set with (e.g. only
        internal vertices of a fragment).

    Returns
    -------
    dict
        Mapping each query vertex (constant vertices included) to the set of
        data vertices that could match it based on local-only checks.
    """
    encoded = encoded_view(graph)
    index = signature_index or SignatureIndex(graph)
    id_candidates = compute_candidate_ids(encoded, query, index, relaxed_edges)
    decode = encoded.dictionary.decode_ids
    candidates: Dict[PatternTerm, Set[Node]] = {}
    for query_vertex, ids in id_candidates.items():
        found = decode(ids)
        if restrict_to is not None:
            found &= restrict_to
        candidates[query_vertex] = found
    return candidates


def _variable_candidate_ids(
    encoded: EncodedGraph,
    query: QueryGraph,
    query_vertex: PatternTerm,
    index: SignatureIndex,
    relaxed: Set[int],
) -> Set[int]:
    required_edges = [edge for edge in query.edges_of(query_vertex) if edge.index not in relaxed]
    if not required_edges:
        # Every incident edge was relaxed: any vertex could match.
        return set(encoded.vertex_ids)
    # Seed with the most selective incident edge to avoid scanning all vertices.
    seed: Optional[Set[int]] = None
    for edge in required_edges:
        matching = _edge_endpoint_ids(encoded, edge, query_vertex)
        if seed is None or len(matching) < len(seed):
            seed = matching
        if not seed:
            return set()
    assert seed is not None
    needed = index.query_signature(query, query_vertex, skip_edges=relaxed).bits
    signature_bits = index.bits_table(encoded)
    survivors: Set[int] = set()
    for vertex_id in seed:
        if (signature_bits[vertex_id] & needed) != needed:
            continue
        if all(
            _edge_supported_id(encoded, vertex_id, edge, query_vertex)
            for edge in required_edges
        ):
            survivors.add(vertex_id)
    return survivors


def _edge_endpoint_ids(
    encoded: EncodedGraph, edge: QueryEdge, query_vertex: PatternTerm
) -> Set[int]:
    """Ids of data vertices that could sit at ``query_vertex``'s end of ``edge``.

    Returns live index sets — callers only iterate them, never mutate.
    """
    code = predicate_code(encoded, edge.predicate)
    if edge.subject == query_vertex:
        other = edge.object
        if isinstance(other, Variable):
            return encoded.subjects_of_predicate(code)
        other_id = encoded.dictionary.get(other)
        if other_id is None:
            return set()
        return encoded.subjects_to(code, other_id)
    other = edge.subject
    if isinstance(other, Variable):
        return encoded.objects_of_predicate(code)
    other_id = encoded.dictionary.get(other)
    if other_id is None:
        return set()
    return encoded.objects_from(other_id, code)


def candidate_sizes(candidates: Dict[PatternTerm, Set[Node]]) -> Dict[str, int]:
    """Small helper used by statistics and logging."""
    return {vertex.n3(): len(values) for vertex, values in candidates.items()}
