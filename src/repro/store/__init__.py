"""Local triple store substrate: encoding, signatures, candidates, matcher, store facade."""

from .candidates import candidate_sizes, compute_candidates, edge_supported
from .encoding import EncodedGraph, TermDictionary, encoded_view
from .kernel import (
    KERNEL_CHOICES,
    KERNEL_ENV,
    KERNEL_PYTHON,
    KERNEL_SETS,
    KERNEL_VECTORIZED,
    default_kernel,
    resolve_kernel,
    shard_bounds,
)
from .matcher import LocalMatcher, evaluate_centralized, finalize_matches
from .signatures import DEFAULT_SIGNATURE_BITS, SignatureIndex, VertexSignature
from .triple_store import TripleStore

__all__ = [
    "DEFAULT_SIGNATURE_BITS",
    "EncodedGraph",
    "KERNEL_CHOICES",
    "KERNEL_ENV",
    "KERNEL_PYTHON",
    "KERNEL_SETS",
    "KERNEL_VECTORIZED",
    "LocalMatcher",
    "SignatureIndex",
    "TermDictionary",
    "TripleStore",
    "VertexSignature",
    "candidate_sizes",
    "compute_candidates",
    "default_kernel",
    "edge_supported",
    "encoded_view",
    "evaluate_centralized",
    "finalize_matches",
    "resolve_kernel",
    "shard_bounds",
]
