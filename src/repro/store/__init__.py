"""Local triple store substrate: encoding, signatures, candidates, matcher, store facade."""

from .candidates import candidate_sizes, compute_candidates, edge_supported
from .encoding import EncodedGraph, TermDictionary, encoded_view
from .matcher import LocalMatcher, evaluate_centralized
from .signatures import DEFAULT_SIGNATURE_BITS, SignatureIndex, VertexSignature
from .triple_store import TripleStore

__all__ = [
    "DEFAULT_SIGNATURE_BITS",
    "EncodedGraph",
    "LocalMatcher",
    "SignatureIndex",
    "TermDictionary",
    "TripleStore",
    "VertexSignature",
    "candidate_sizes",
    "compute_candidates",
    "edge_supported",
    "encoded_view",
    "evaluate_centralized",
]
