"""Local triple store substrate: signatures, candidates, matcher, store facade."""

from .candidates import candidate_sizes, compute_candidates, edge_supported
from .matcher import LocalMatcher, evaluate_centralized
from .signatures import DEFAULT_SIGNATURE_BITS, SignatureIndex, VertexSignature
from .triple_store import TripleStore

__all__ = [
    "DEFAULT_SIGNATURE_BITS",
    "LocalMatcher",
    "SignatureIndex",
    "TripleStore",
    "VertexSignature",
    "candidate_sizes",
    "compute_candidates",
    "edge_supported",
    "evaluate_centralized",
]
